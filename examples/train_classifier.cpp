// Train all four model families on the measurement campaign, compare their
// accuracy, and interrogate the deployed random forest about specific
// what-if situations -- the core of LiBRA's "which mechanism?" decision.
#include <cstdio>
#include <memory>

#include "core/classifier.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "phy/error_model.h"
#include "trace/dataset.h"

using namespace libra;

int main() {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  trace::CollectOptions opt;
  const trace::Dataset training =
      trace::collect_dataset(trace::training_scenarios(), em, opt);
  trace::GroundTruthConfig gt;

  ml::DataSet data(trace::FeatureVector::kDim);
  for (const auto& e : training.labeled(gt)) {
    data.add(e.x.v, e.y == trace::Action::kBA ? 0 : 1);
  }
  std::printf("training on %zu labeled cases (BA vs RA)\n", data.size());

  util::Rng rng(1);
  const std::pair<const char*, ml::ClassifierFactory> models[] = {
      {"decision tree", [] { return std::make_unique<ml::DecisionTree>(); }},
      {"random forest", [] { return std::make_unique<ml::RandomForest>(); }},
      {"SVM (RBF)", [] { return std::make_unique<ml::Svm>(); }},
      {"DNN", [] { return std::make_unique<ml::NeuralNet>(); }},
  };
  for (const auto& [name, factory] : models) {
    const ml::CvResult cv = ml::cross_validate(data, factory, 5, 5, rng);
    std::printf("  %-14s 5-fold CV accuracy %.1f%%, weighted F1 %.1f%%\n",
                name, 100 * cv.accuracy, 100 * cv.weighted_f1);
  }

  // Deploy the 3-class model and ask it about scenarios.
  core::LibraClassifier libra_clf;
  libra_clf.train(training, gt, rng);

  std::printf("\nwhat would LiBRA do?\n");
  struct WhatIf {
    const char* description;
    trace::FeatureVector x;
  };
  auto features = [](double snr_diff, double tof_diff, double noise_diff,
                     double pdp, double csi, double cdr, double mcs) {
    trace::FeatureVector f;
    f.v = {snr_diff, tof_diff, noise_diff, pdp, csi, cdr, mcs};
    return f;
  };
  const WhatIf cases[] = {
      {"18 dB SNR drop, ToF unmeasurable (hard rotation)",
       features(18, trace::kTofInfinity, 0, 0.95, 0.9, 0.0, 5)},
      {"6 dB drop, ToF got longer (walked backwards)",
       features(6, -20, 0, 1.0, 0.98, 0.1, 8)},
      {"2 dB drop, noise +6 dB (hidden terminal)",
       features(2, 0, 6, 1.0, 1.0, 0.55, 6)},
      {"0.3 dB drop, everything stable",
       features(0.3, 0, 0.1, 1.0, 1.0, 0.97, 7)},
  };
  for (const WhatIf& w : cases) {
    const trace::Action a = libra_clf.classify(w.x, rng);
    std::printf("  %-50s -> %s\n", w.description, to_string(a).c_str());
  }
  return 0;
}
