// Quickstart: build a 60 GHz link in a room, beam-train it, break it with a
// human blocker, and let LiBRA decide how to repair it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/classifier.h"
#include "env/registry.h"
#include "mac/beam_training.h"
#include "phy/sampler.h"
#include "sim/event_sim.h"
#include "trace/dataset.h"

using namespace libra;

int main() {
  // 1. A lobby, a Tx (AP) and an Rx (client) with SiBeam-style 25-beam
  //    phased arrays, and the X60-like PHY (9 MCSs, 300 Mbps - 4.75 Gbps).
  env::Environment lobby = env::make_lobby();
  const array::Codebook codebook;
  array::PhasedArray ap({2.0, 6.0}, 0.0, &codebook);
  array::PhasedArray client({10.0, 6.0}, 180.0, &codebook);
  channel::Link link(&lobby, &ap, &client);

  phy::McsTable mcs_table;
  phy::ErrorModel error_model(&mcs_table);
  phy::PhySampler sampler(&error_model);
  util::Rng rng(1);

  // 2. Beam training: exhaustive 625-pair sweep, like the dataset collection.
  mac::BeamTrainer trainer;
  const mac::SweepResult beams = trainer.exhaustive(link, sampler, rng);
  std::printf("best beam pair: tx=%d rx=%d, SNR %.1f dB\n", beams.tx_beam,
              beams.rx_beam, beams.snr_db);
  const phy::McsIndex mcs = mcs_table.highest_supported(beams.snr_db);
  std::printf("highest supported MCS: %d (%.0f Mbps PHY rate)\n", mcs,
              mcs_table.rate_mbps(mcs));

  // 3. Break the link: a person steps onto the line of sight.
  lobby.add_blocker({{6.0, 6.0}, 0.25, 28.0});
  std::printf("after blockage: SNR %.1f dB on the old pair\n",
              link.snr_db(beams.tx_beam, beams.rx_beam));

  // 4. Train LiBRA's 3-class model on the paper's measurement campaign
  //    (simulated) and replay the blockage event under every strategy.
  trace::CollectOptions opt;
  const trace::Dataset training =
      trace::collect_dataset(trace::training_scenarios(), error_model, opt);
  trace::GroundTruthConfig gt;
  core::LibraClassifier classifier;
  classifier.train(training, gt, rng);

  // Grab a real blockage case from the campaign and simulate all five
  // strategies on it.
  const trace::CaseRecord* blockage_case = nullptr;
  for (const auto& rec : training.records) {
    if (rec.impairment == trace::Impairment::kBlockage) {
      blockage_case = &rec;
      break;
    }
  }
  sim::EventSimulator simulator(&classifier);
  sim::EventParams params;
  params.rule = gt;
  std::printf("\nreplaying a collected blockage event (1 s flow):\n");
  for (core::Strategy s : core::kAllStrategies) {
    const sim::EventResult r =
        simulator.run(*blockage_case, s, params, rng);
    std::printf("  %-12s %6.1f MB delivered, link recovered in %5.1f ms\n",
                core::to_string(s).c_str(), r.bytes_mb, r.recovery_delay_ms);
  }
  return 0;
}
