// ASCII coverage maps: sample the channel model over a grid of client
// positions in each environment and print the best achievable MCS at every
// point (after ideal beam training on both ends). Makes the ray-traced
// geometry tangible: LOS corridors, reflection-lit corners, shadowed zones
// behind obstacles.
//
//   ./build/examples/coverage_map [env-substring]
#include <cstdio>
#include <cstring>
#include <string>

#include "env/registry.h"
#include "mac/beam_training.h"
#include "phy/error_model.h"
#include "phy/sampler.h"

using namespace libra;

namespace {

void map_environment(env::Environment& environment, geom::Vec2 tx_pos,
                     double tx_boresight, const phy::ErrorModel& em) {
  const array::Codebook codebook;
  array::PhasedArray tx(tx_pos, tx_boresight, &codebook);
  array::PhasedArray rx(tx_pos, 0.0, &codebook);
  channel::Link link(&environment, &tx, &rx);

  const auto bb = environment.bounding_box();
  const double width = bb.max.x - bb.min.x;
  const double height = bb.max.y - bb.min.y;
  const int cols = 64;
  const int rows = std::max(3, static_cast<int>(cols * height / width / 2.2));

  std::printf("\n%s (%.1f x %.1f m), AP at (%.1f, %.1f): best MCS per cell\n",
              environment.name().c_str(), width, height, tx_pos.x, tx_pos.y);
  for (int r = rows - 1; r >= 0; --r) {
    for (int c = 0; c < cols; ++c) {
      const geom::Vec2 p{bb.min.x + (c + 0.5) * width / cols,
                         bb.min.y + (r + 0.5) * height / rows};
      if (geom::distance(p, tx_pos) < 0.4) {
        std::putchar('A');
        continue;
      }
      rx.set_position(p);
      rx.set_boresight_deg((tx_pos - p).angle_deg());
      link.refresh();
      // Ideal beam training: best pair by true SNR.
      double best = -1e9;
      for (array::BeamId tb = 0; tb < codebook.size(); ++tb) {
        for (array::BeamId rb = 0; rb < codebook.size(); ++rb) {
          best = std::max(best, link.snr_db(tb, rb));
        }
      }
      const phy::McsIndex m = em.table().highest_supported(best);
      std::putchar(m < 0 ? '.' : static_cast<char>('0' + m));
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "";
  phy::McsTable table;
  const phy::ErrorModel em(&table);
  std::printf("legend: A = AP, 0-8 = best supported MCS, . = no link\n");

  auto envs = env::training_environments();
  const geom::Vec2 tx_positions[] = {{2.0, 6.0}, {0.8, 3.0}, {1.0, 5.6},
                                     {0.5, 0.87}, {0.5, 1.6}, {0.5, 3.1}};
  const double tx_boresights[] = {0.0, 0.0, -35.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (!filter.empty() &&
        envs[i].name().find(filter) == std::string::npos) {
      continue;
    }
    map_environment(envs[i], tx_positions[i], tx_boresights[i], em);
  }
  return 0;
}
