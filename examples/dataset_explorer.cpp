// Explore the measurement campaign: collect the training dataset (the
// simulated equivalent of the paper's Table 1 campaign), print a few raw
// cases with their PHY-metric deltas and ground-truth labels, and dump the
// whole feature matrix as CSV for external analysis.
//
//   ./build/examples/dataset_explorer [--csv]
#include <cstdio>
#include <cstring>

#include "phy/error_model.h"
#include "trace/dataset.h"
#include "util/table.h"

using namespace libra;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

  phy::McsTable table;
  phy::ErrorModel em(&table);
  const trace::Dataset ds =
      trace::collect_dataset(trace::training_scenarios(), em, {});
  trace::GroundTruthConfig gt;
  const auto entries = ds.labeled(gt);

  if (csv) {
    util::Table t({"snr_diff_db", "tof_diff_ns", "noise_diff_db", "pdp_sim",
                   "csi_sim", "cdr", "initial_mcs", "impairment", "env",
                   "label"});
    for (const auto& e : entries) {
      t.add_row({util::format_double(e.x.v[0], 3),
                 util::format_double(e.x.v[1], 3),
                 util::format_double(e.x.v[2], 3),
                 util::format_double(e.x.v[3], 4),
                 util::format_double(e.x.v[4], 4),
                 util::format_double(e.x.v[5], 4),
                 util::format_double(e.x.v[6], 0), to_string(e.impairment),
                 e.env_name, to_string(e.y)});
    }
    std::fputs(t.to_csv().c_str(), stdout);
    return 0;
  }

  const auto summary = trace::summarize(ds, gt);
  std::printf("collected %d cases over %d positions\n", summary.overall.total,
              summary.overall.positions);
  std::printf("ground truth (alpha=1): BA %d, RA %d\n", summary.overall.ba,
              summary.overall.ra);

  std::printf("\nsample cases (one in twenty):\n");
  util::Table t({"impairment", "env", "dSNR", "dToF", "dNoise", "PDPsim",
                 "CDR", "MCS0", "label", "Th(RA)", "Th(BA)"});
  for (std::size_t i = 0; i < entries.size(); i += 20) {
    const auto& e = entries[i];
    t.add_row({to_string(e.impairment), e.env_name,
               util::format_double(e.x.snr_diff_db(), 1),
               util::format_double(e.x.tof_diff_ns(), 0),
               util::format_double(e.x.noise_diff_db(), 1),
               util::format_double(e.x.pdp_similarity(), 2),
               util::format_double(e.x.cdr(), 2),
               util::format_double(e.x.initial_mcs(), 0), to_string(e.y),
               util::format_double(e.gt.th_ra_mbps, 0),
               util::format_double(e.gt.th_ba_mbps, 0)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nrun with --csv to dump the full feature matrix.\n");
  return 0;
}
