// AP-side fleet serving: one trained LiBRA classifier makes decisions for
// eight associated stations at once. Every lockstep tick, each station's
// controller observes its own channel (walking clients, a blocker crossing
// one beam, a jammer near another), the fleet gathers the pending feature
// rows, and a single batched forest pass returns every verdict -- the
// multi-STA deployment the observe/decide/apply split exists for.
//
// Usage: fleet_serving [--trace-out FILE] [--faults SEED]
//                      [--shards N] [--threads N] [--backend remote:ADDR]
//   --trace-out FILE   write the run's trace spans as Chrome trace-event
//                      JSON (open in Perfetto or chrome://tracing)
//   --faults SEED      attach the demo fault schedule (faults::demo_plan
//                      seeded from SEED): ACK loss bursts, garbage PHY,
//                      a classifier outage window -- and watch the
//                      degradation ladder fire in the telemetry scrape
//   --shards N         shard count for the fleet engine (0 = one per
//                      worker thread); results are bit-identical for any N
//   --threads N        worker threads for shard ticks (1 = serial,
//                      0 = hardware concurrency); also bit-identical
//   --backend remote:ADDR
//                      serve the decide phase through a running
//                      `libra serve` daemon (unix:PATH, /path, HOST:PORT).
//                      The example pushes its own trained forest first, so
//                      a loopback run is bit-identical to in-process; a
//                      dead daemon degrades to the RA-first fallback
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "env/registry.h"
#include "obs/span.h"
#include "phy/error_model.h"
#include "rpc/client.h"
#include "sim/fleet.h"
#include "trace/dataset.h"
#include "util/cli.h"

using namespace libra;

int main(int argc, char** argv) {
  const util::CliArgs args = util::CliArgs::parse(argc, argv);
  args.require_known({"trace-out", "faults", "shards", "threads", "backend"});
  phy::McsTable table;
  phy::ErrorModel em(&table);
  const trace::Dataset training =
      trace::collect_dataset(trace::training_scenarios(), em, {});
  trace::GroundTruthConfig gt;
  util::Rng rng(11);
  core::LibraClassifier classifier;  // shared by the whole fleet
  classifier.train(training, gt, rng);

  constexpr int kStations = 8;
  const array::Codebook codebook;

  // Each station gets its own copy of the world: the AP at one end of the
  // lobby, the client somewhere along the far wall.
  std::vector<env::Environment> envs;
  std::vector<array::PhasedArray> aps, clients;
  std::vector<channel::Link> links;
  std::vector<core::LibraController> controllers;
  envs.reserve(kStations);
  aps.reserve(kStations);
  clients.reserve(kStations);
  links.reserve(kStations);
  controllers.reserve(kStations);
  for (int s = 0; s < kStations; ++s) {
    envs.push_back(env::make_lobby());
    aps.emplace_back(geom::Vec2{2.0, 6.0}, 0.0, &codebook);
    clients.emplace_back(geom::Vec2{8.0 + s, 4.0 + (s % 3)}, 180.0,
                         &codebook);
    links.emplace_back(&envs[s], &aps[s], &clients[s]);
    controllers.emplace_back(&links[s], &em, &classifier);
  }

  std::vector<sim::FleetLink> fleet(kStations);
  for (int s = 0; s < kStations; ++s) {
    fleet[s] = {&envs[s], &links[s], &controllers[s], {}};
    fleet[s].script.duration_ms = 8000.0;
    fleet[s].script.rx_trajectory = sim::Trajectory::stationary(
        clients[s].position(), clients[s].boresight_deg());
  }
  // Station 2 walks away; a person blocks station 5; station 7 gets jammed.
  fleet[2].script.rx_trajectory =
      sim::Trajectory::walk({10, 4}, {20, 8}, 8000.0, geom::Vec2{2, 6});
  fleet[5].script.blockage.push_back({2000, 5000, {{6, 6}, 0.3, 35.0}});
  fleet[7].script.interference.push_back({3000, 6000, {{14, 3}, 55.0, 0.5}});

  sim::FleetConfig cfg;
  cfg.seed = 42;
  cfg.shards = static_cast<int>(args.number("shards", 0));
  cfg.num_threads = static_cast<int>(args.number("threads", 1));
  if (args.flag("faults")) {
    cfg.faults = faults::demo_plan(
        static_cast<std::uint64_t>(args.number("faults", 1)));
  }
  std::optional<rpc::RemoteBackend> remote;
  const std::string backend_spec = args.str("backend");
  if (!backend_spec.empty()) {
    if (backend_spec.rfind("remote:", 0) != 0) {
      std::fprintf(stderr, "--backend expects remote:ADDR, got '%s'\n",
                   backend_spec.c_str());
      return 2;
    }
    remote.emplace(rpc::parse_remote_addr(backend_spec.substr(7)));
    const std::optional<rpc::AckMsg> ack =
        remote->client().push_model(classifier.forest());
    if (ack.has_value() && !ack->ok) {
      std::fprintf(stderr, "daemon rejected the model: %s\n",
                   ack->message.c_str());
      return 1;
    }
    std::printf("decide phase served by %s%s\n",
                remote->client().address().c_str(),
                ack.has_value() ? "" : " (unreachable -- will degrade)");
    cfg.backend = &*remote;
  }
  const sim::FleetResult result = sim::run_fleet(fleet, cfg);

  std::printf("fleet of %d stations in %d shard(s), %lld lockstep ticks, "
              "%lld feature rows served in batches%s\n\n",
              kStations, result.shards_used,
              static_cast<long long>(result.ticks),
              static_cast<long long>(result.batched_rows),
              cfg.faults.empty() ? "" : " (demo fault schedule attached)");
  std::printf("%-8s %-10s %-8s %-6s %-6s %-8s %s\n", "station", "goodput",
              "bytes", "BA", "RA", "outages", "outage ms");
  for (int s = 0; s < kStations; ++s) {
    const sim::SessionResult& r = result.links[s];
    std::printf("%-8d %-10.0f %-8.0f %-6lld %-6lld %-8lld %.0f\n", s,
                r.avg_goodput_mbps, r.bytes_mb,
                static_cast<long long>(r.adaptations_ba),
                static_cast<long long>(r.adaptations_ra),
                static_cast<long long>(r.outages), r.total_outage_ms);
  }
  std::printf("\ntick latency: mean %.1f us, p0 %.1f us, max %.1f us over "
              "%zu ticks\n",
              result.tick_latency_us.mean(), result.tick_latency_us.min(),
              result.tick_latency_us.max(), result.tick_latency_us.count());

  // The scrape rode back on the result; dump it like a /metrics endpoint.
  std::printf("\n--- telemetry scrape ---\n%s",
              result.metrics.to_text().c_str());

  const std::string trace_path = args.str("trace-out");
  if (!trace_path.empty()) {
    obs::TraceBuffer::global().write_chrome_json(trace_path);
    std::printf("wrote %zu trace events to %s\n",
                obs::TraceBuffer::global().event_count(), trace_path.c_str());
  }
  return 0;
}
