// Run Algorithm 1 live: a LiBRA controller drives a link through a scripted
// day-in-the-life session (walking, a person blocking the beam, a hidden
// terminal) with temporal fading, and prints the adaptation timeline.
#include <cstdio>

#include "core/controller.h"
#include "env/registry.h"
#include "phy/error_model.h"
#include "sim/session.h"
#include "trace/dataset.h"

using namespace libra;

int main() {
  // Train LiBRA's model on the (simulated) measurement campaign.
  phy::McsTable table;
  phy::ErrorModel em(&table);
  const trace::Dataset training =
      trace::collect_dataset(trace::training_scenarios(), em, {});
  trace::GroundTruthConfig gt;
  util::Rng rng(11);
  core::LibraClassifier classifier;
  classifier.train(training, gt, rng);

  // The world: a lobby; the client walks away, a person crosses the beam,
  // then a neighboring link bursts.
  env::Environment lobby = env::make_lobby();
  const array::Codebook codebook;
  array::PhasedArray ap({2.0, 6.0}, 0.0, &codebook);
  array::PhasedArray client({8.0, 6.0}, 180.0, &codebook);
  channel::Link link(&lobby, &ap, &client);

  sim::SessionScript script;
  script.duration_ms = 15000;
  script.rx_trajectory = sim::Trajectory({{0, {8, 6}, 180.0},
                                          {5000, {8, 6}, 180.0},
                                          {12000, {18, 8}, 175.0},
                                          {15000, {18, 8}, 175.0}});
  script.blockage.push_back({2000, 4000, {{5, 6}, 0.25, 28.0}});
  script.interference.push_back({13000, 15000, {{14, 3}, 55.0, 0.5}});
  script.fading = {1.0, 200.0};

  core::LibraController controller(&link, &em, &classifier);
  util::Rng session_rng(42);
  const sim::SessionResult result = sim::run_session(
      lobby, link, controller, script, session_rng, /*keep_frame_log=*/true);

  std::printf("adaptation timeline (decisions only):\n");
  std::printf("%-9s %-6s %-5s %-6s %-10s %s\n", "t (ms)", "beam", "MCS",
              "action", "goodput", "");
  for (const core::FrameReport& f : result.frame_log) {
    if (f.action == trace::Action::kNA) continue;
    std::printf("%-9.0f %2d/%-3d %-5d %-6s %-10.0f\n", f.t_ms, f.tx_beam,
                f.rx_beam, f.mcs, to_string(f.action).c_str(),
                f.goodput_mbps);
  }
  std::printf(
      "\nsession: %.0f MB in %.1f s (avg %.0f Mbps), %lld BA + %lld RA "
      "adaptations, %lld outages totaling %.0f ms\n",
      result.bytes_mb, script.duration_ms / 1000.0, result.avg_goodput_mbps,
      static_cast<long long>(result.adaptations_ba),
      static_cast<long long>(result.adaptations_ra),
      static_cast<long long>(result.outages), result.total_outage_ms);
  return 0;
}
