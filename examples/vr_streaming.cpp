// Stream 8K VR over a 60 GHz link while the player moves around, and watch
// how the choice of link adaptation strategy turns into stalls (Sec. 8.4).
#include <cstdio>

#include "core/classifier.h"
#include "phy/error_model.h"
#include "sim/timeline.h"
#include "sim/vr.h"

using namespace libra;

int main() {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  trace::CollectOptions opt;
  const trace::Dataset training =
      trace::collect_dataset(trace::training_scenarios(), em, opt);
  const trace::Dataset testing = trace::collect_dataset(
      trace::testing_scenarios(), em, {opt.collector, 77, true});

  trace::GroundTruthConfig gt;
  gt.alpha = 0.7;
  util::Rng rng(3);
  core::LibraClassifier classifier;
  classifier.train(training, gt, rng);
  const sim::EventSimulator simulator(&classifier);

  // Mobility-only pool, restricted to links that can carry the stream.
  const sim::VrConfig vr_cfg;
  sim::RecordPools pools;
  for (const auto& rec : testing.records) {
    if (rec.impairment != trace::Impairment::kDisplacement) continue;
    double best = 0.0;
    for (double t : rec.new_best.throughput_mbps) best = std::max(best, t);
    if (best * vr_cfg.cots_scale >= vr_cfg.bitrate_mbps * 1.15) {
      pools.displacement.push_back(&rec);
    }
  }
  std::printf("VR-capable mobility cases: %zu\n", pools.displacement.size());

  sim::EventParams params;
  params.rule = gt;
  std::printf("\n30 s of 8K VR at 60 FPS (%.0f Mbps demand), 10 play-throughs:\n",
              vr_cfg.bitrate_mbps);
  std::printf("%-14s %-16s %-14s\n", "strategy", "avg stalls", "avg stall ms");
  for (core::Strategy s : core::kAllStrategies) {
    double stalls = 0.0, stall_ms = 0.0;
    constexpr int kRuns = 10;
    for (int i = 0; i < kRuns; ++i) {
      util::Rng tl_rng(100 + i);
      const auto timeline =
          sim::make_timeline(sim::ScenarioType::kMotion, pools, {}, tl_rng);
      util::Rng run_rng(200 + i);
      const auto link_run = sim::run_timeline(timeline, s, simulator, params,
                                              run_rng, /*record=*/true);
      double duration = 0.0;
      for (const auto& [tput, dur] : link_run.tput_segments) duration += dur;
      util::Rng vr_rng(300 + i);
      const auto frames =
          sim::generate_frame_sizes_mb(vr_cfg, duration, vr_rng);
      const auto vr = sim::play_vr(frames, link_run.tput_segments, vr_cfg);
      stalls += vr.stalls;
      stall_ms += vr.avg_stall_ms;
    }
    std::printf("%-14s %-16.1f %-14.1f\n", core::to_string(s).c_str(),
                stalls / kRuns, stall_ms / kRuns);
  }
  return 0;
}
