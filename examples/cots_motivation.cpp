// Watch a COTS 802.11ad device mismanage its link (Sec. 3 of the paper):
// a static client, zero mobility -- and the firmware still fires sector
// sweeps, flaps between sectors, and loses throughput against a device
// locked on the best sector.
#include <cstdio>

#include "core/cots_device.h"
#include "env/registry.h"

using namespace libra;

int main() {
  env::Environment corridor = env::make_corridor(3.2);
  const array::Codebook codebook;
  channel::LinkBudgetConfig budget;
  budget.tx_power_dbm = 13.0;  // COTS-grade EIRP
  array::PhasedArray ap({0.5, 1.6}, 0.0, &codebook);
  array::PhasedArray client({9.5, 1.6}, 180.0, &codebook);
  channel::Link link(&corridor, &ap, &client, budget);

  phy::McsTable table;
  phy::ErrorModel em(&table);

  core::CotsDeviceConfig cfg;
  cfg.ba_after_ack_losses = 2;  // trigger-happy phone firmware
  cfg.ba_cdr_threshold = 0.4;
  core::CotsDevice phone(&link, &em, cfg);
  util::Rng rng(7);
  phone.associate(rng);

  std::printf("10 s of a STATIC link as seen by phone firmware:\n");
  std::printf("%-8s %-8s %-5s %-10s %s\n", "t (ms)", "sector", "MCS",
              "tput", "event");
  int last_sector = -1;
  double tput_sum = 0.0;
  int frames = 0;
  while (phone.time_ms() < 10000.0) {
    const core::CotsFrameLog log = phone.step(rng);
    tput_sum += log.throughput_mbps;
    ++frames;
    if (log.ba_triggered || log.tx_sector != last_sector) {
      std::printf("%-8.0f %-8d %-5d %-10.0f %s\n", log.t_ms, log.tx_sector,
                  log.mcs, log.throughput_mbps,
                  log.ba_triggered ? "<- sector sweep!" : "");
      last_sector = log.tx_sector;
    }
  }
  std::printf("\naverage throughput: %.0f Mbps\n", tput_sum / frames);
  std::printf(
      "A device locked on the best static sector avoids every one of those\n"
      "sweeps -- run bench/fig01_03_motivation for the full comparison.\n");
  return 0;
}
