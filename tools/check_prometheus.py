#!/usr/bin/env python3
"""Validate a Prometheus text-format (0.0.4) exposition. Stdlib only.

CI's scrape-payload gate: the remote-serving smoke step curls the live
/metrics endpoint mid-run and pipes the body through this checker, so a
malformed exposition (bad metric name, a TYPE line after its samples, a
non-cumulative histogram, a missing +Inf bucket) fails the job instead of
silently producing a scrape Prometheus would reject.

Checks enforced:
  - every line is a comment (# HELP / # TYPE / #...), blank, or a sample;
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
    [a-zA-Z_][a-zA-Z0-9_]*, label values use \\\\, \\" and \\n escapes only;
  - at most one TYPE per metric name, declared before any sample of it;
  - sample values parse as floats (NaN/+Inf/-Inf included);
  - histograms are internally consistent per label set: bucket counts are
    cumulative and monotone in le, an le="+Inf" bucket exists, and it
    equals the matching _count sample.

Usage:
  tools/check_prometheus.py metrics.prom \\
      --require-label 'origin="controller"' \\
      --require-label 'origin="daemon"'

--require-label asserts at least one sample carries the given label pair
(the merged-origin acceptance check for the fleet scrape). Exits 0 when
valid, 1 with one message per violation otherwise.
"""

import argparse
import math
import re
import sys

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value [timestamp] -- labels optional.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?\s*$")


def parse_labels(raw, lineno, errors):
    """'a="x",b="y"' -> {name: value} with escapes decoded."""
    labels = {}
    pos = 0
    while pos < len(raw):
        eq = raw.find("=", pos)
        if eq < 0:
            errors.append(f"line {lineno}: malformed label pair in {raw!r}")
            return labels
        name = raw[pos:eq].strip().lstrip(",").strip()
        if not _LABEL_NAME.match(name):
            errors.append(f"line {lineno}: bad label name {name!r}")
            return labels
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            errors.append(f"line {lineno}: unquoted value for label {name!r}")
            return labels
        value = []
        i = eq + 2
        closed = False
        while i < len(raw):
            c = raw[i]
            if c == "\\":
                if i + 1 >= len(raw):
                    break
                esc = raw[i + 1]
                if esc == "n":
                    value.append("\n")
                elif esc in ('"', "\\"):
                    value.append(esc)
                else:
                    errors.append(
                        f"line {lineno}: unknown escape \\{esc} "
                        f"in label {name!r}")
                    value.append(esc)
                i += 2
                continue
            if c == '"':
                closed = True
                i += 1
                break
            value.append(c)
            i += 1
        if not closed:
            errors.append(f"line {lineno}: unterminated value for {name!r}")
            return labels
        labels[name] = "".join(value)
        pos = i
    return labels


def parse_value(text, lineno, errors):
    try:
        return float(text)  # accepts NaN, +Inf, -Inf spellings
    except ValueError:
        errors.append(f"line {lineno}: unparsable sample value {text!r}")
        return None


def label_key(labels, drop=()):
    return tuple(sorted(
        (k, v) for k, v in labels.items() if k not in drop))


def check(text, required_labels):
    errors = []
    types = {}            # metric name -> declared type
    sampled = set()       # metric names that have emitted a sample
    buckets = {}          # (base, label_key sans le) -> [(le, count, line)]
    counts = {}           # (base, label_key) -> _count value
    seen_labels = set()   # (label, value) pairs seen on any sample

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 2 and fields[1] in ("HELP", "TYPE"):
                if len(fields) < 3 or not _METRIC_NAME.match(fields[2]):
                    errors.append(
                        f"line {lineno}: malformed {fields[1]} comment")
                    continue
                if fields[1] == "TYPE":
                    name = fields[2]
                    if name in types:
                        errors.append(
                            f"line {lineno}: duplicate TYPE for {name!r}")
                    if name in sampled:
                        errors.append(
                            f"line {lineno}: TYPE for {name!r} after its "
                            f"samples")
                    types[name] = fields[3].strip() if len(fields) > 3 else ""
            continue

        m = _SAMPLE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparsable sample line {line!r}")
            continue
        name = m.group("name")
        labels = (parse_labels(m.group("labels"), lineno, errors)
                  if m.group("labels") else {})
        value = parse_value(m.group("value"), lineno, errors)
        sampled.add(name)
        for pair in labels.items():
            seen_labels.add(pair)
        if value is None:
            continue

        # A histogram's series share the base name's TYPE declaration.
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base is not None and types.get(base) == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label")
                    continue
                le_raw = labels["le"]
                le = math.inf if le_raw == "+Inf" else None
                if le is None:
                    try:
                        le = float(le_raw)
                    except ValueError:
                        errors.append(
                            f"line {lineno}: unparsable le {le_raw!r}")
                        continue
                buckets.setdefault(
                    (base, label_key(labels, drop=("le",))), []).append(
                        (le, value, lineno))
            elif name.endswith("_count"):
                counts[(base, label_key(labels))] = (value, lineno)
        elif name not in types:
            errors.append(
                f"line {lineno}: sample for {name!r} without a TYPE "
                f"declaration")

    for (base, key), series in sorted(buckets.items()):
        series.sort(key=lambda item: item[0])
        prev = -1.0
        for le, value, lineno in series:
            if value < prev:
                errors.append(
                    f"line {lineno}: {base}_bucket le={le} count {value} "
                    f"below previous bucket {prev} (not cumulative)")
            prev = value
        if not series or not math.isinf(series[-1][0]):
            errors.append(f"{base}{dict(key)}: no le=\"+Inf\" bucket")
            continue
        total = counts.get((base, key))
        if total is None:
            errors.append(f"{base}{dict(key)}: buckets without a _count")
        elif total[0] != series[-1][1]:
            errors.append(
                f"line {total[1]}: {base}_count {total[0]} != +Inf bucket "
                f"{series[-1][1]}")

    for requirement in required_labels:
        name, _, value = requirement.partition("=")
        value = value.strip('"')
        if (name, value) not in seen_labels:
            errors.append(
                f"required label {name}={value!r} appears on no sample")

    return errors


def main():
    parser = argparse.ArgumentParser(
        description="Validate a Prometheus text exposition.")
    parser.add_argument("path", help="exposition file ('-' for stdin)")
    parser.add_argument(
        "--require-label", action="append", default=[],
        metavar="NAME=VALUE",
        help="fail unless some sample carries this label (repeatable)")
    args = parser.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as fh:
            text = fh.read()

    errors = check(text, args.require_label)
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    if not errors:
        samples = sum(
            1 for line in text.splitlines()
            if line.strip() and not line.startswith("#"))
        print(f"ok: {samples} samples, valid exposition")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
