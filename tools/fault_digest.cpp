// Golden-digest refresh helper: runs the canonical faulted fleet
// (sim/golden.h) and prints the degradation digest for the default seeds,
// in exactly the form kGoldenDigest expects. One line, one command:
//
//   build/tools/fault_digest
//   -> fault digest (fleet_seed=77, fault_seed=1234): 0x1234abcd...ULL
//
// Paste the printed constant into sim/golden.h when a deliberate behavior
// change moves the canonical run.
// CI's release job also runs this binary twice — auto-dispatch vs
// LIBRA_FORCE_SCALAR=1 — and diffs the digests, so the dispatched ISA is
// printed next to the digest to make any mismatch attributable.
#include <cstdio>

#include "sim/golden.h"
#include "util/simd.h"

int main() {
  std::printf("simd dispatch: %s%s\n", libra::util::simd::active_isa_name(),
              libra::util::simd::force_scalar_env()
                  ? " (LIBRA_FORCE_SCALAR)"
                  : "");
  const libra::sim::FleetResult result =
      libra::sim::run_canonical_faulted_fleet(libra::sim::kGoldenFleetSeed,
                                              libra::sim::kGoldenFaultSeed);
  const std::uint64_t digest = libra::sim::degradation_digest(result);
  std::printf("fault digest (fleet_seed=%llu, fault_seed=%llu): 0x%016llxULL\n",
              static_cast<unsigned long long>(libra::sim::kGoldenFleetSeed),
              static_cast<unsigned long long>(libra::sim::kGoldenFaultSeed),
              static_cast<unsigned long long>(digest));
  if (digest == libra::sim::kGoldenDigest) {
    std::printf("matches sim/golden.h kGoldenDigest\n");
  } else {
    std::printf("DIFFERS from sim/golden.h kGoldenDigest (0x%016llxULL)\n",
                static_cast<unsigned long long>(libra::sim::kGoldenDigest));
  }
  return 0;
}
