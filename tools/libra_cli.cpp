// libra — command-line front end for the LiBRA framework.
//
//   libra collect <out.ds> [--testing] [--seed N] [--frames N] [--no-na]
//       Run the measurement campaign (training scenarios by default) and
//       save the dataset.
//   libra summarize <ds> [--alpha A]
//       Print the Table-1 style summary of a saved dataset.
//   libra train <ds> <out.forest> [--three-class] [--trees N] [--alpha A]
//       Train a random forest on a saved dataset and save the model.
//   libra eval <forest> <ds> [--three-class] [--alpha A]
//       Evaluate a saved model on a saved dataset (accuracy, F1, confusion).
//   libra export-csv <ds> [--alpha A]
//       Dump the labeled feature matrix as CSV to stdout.
//   libra simulate <train.ds> <eval.ds> [--ba MS] [--fat MS] [--flow MS]
//       Trace-driven comparison of all five strategies (Sec. 8 style).
//   libra serve <forest> --socket PATH | --port N [--host H] [--workers N]
//       Run the inference daemon: serve batched classify RPCs for the
//       saved forest until SIGINT/SIGTERM (ROADMAP item 2, the
//       controller/minion split). --metrics-port N additionally mounts the
//       observability tier on 127.0.0.1:N: GET /metrics (Prometheus),
//       /healthz, /series.json.
//   libra top HOST:PORT [--interval-ms N] [--once]
//       Live fleet dashboard: poll /series.json from a scrape endpoint
//       (a `libra serve --metrics-port` daemon or a fleet run with
//       FleetConfig::scrape_port / `simulate --scrape-port`) and render
//       links/s, tick p99, degraded/fallback rates, per-MCS occupancy, and
//       -- when the origin runs an online FleetTrainer -- the trainer panel
//       (generation, drift score, holdout accuracies, swap counts).
//       --once prints a single frame and exits (CI smoke uses this).
//
// `collect` and `simulate` additionally take telemetry flags:
//   --metrics          print a Prometheus-format scrape of the run's
//                      counters/histograms to stdout at the end
//   --trace-out FILE   write buffered trace spans as Chrome trace-event
//                      JSON (open in Perfetto or chrome://tracing)
// `simulate` also accepts:
//   --faults SEED      run the fleet stage under the demo fault schedule
//                      (faults::demo_plan seeded from SEED) and report how
//                      many faults were injected
//   --backend remote:ADDR
//                      serve the fleet stage's decide phase through a
//                      running `libra serve` daemon (unix:PATH, /path, or
//                      HOST:PORT). The trained forest is pushed to the
//                      daemon first, so a loopback run is bit-identical to
//                      local -- the printed fleet digest proves it.
//   --scrape-port N    mount the live scrape endpoint on 127.0.0.1:N for
//                      the fleet stage (FleetConfig::scrape_port); with
//                      --backend the daemon's stats are merged in under
//                      its own origin label.
//   --online-fleet     attach a free-running background trainer to the
//                      fleet stage (core/trainer.h): shards sample a seeded
//                      subset of inference decisions into hindsight-labeled
//                      rows, the trainer refits candidates off-path, and a
//                      drift+accuracy-gated swap publishes through the
//                      generation-tagged ModelSlot the fleet serves from.
//                      With --backend remote:ADDR every shipped candidate
//                      is also pushed to the daemon (ModelPush).
// Unrecognized options fail any command with exit code 2.
#include <csignal>
#include <cstdio>
#include <ctime>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/controller.h"
#include "core/trainer.h"
#include "env/registry.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/random_forest.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/span.h"
#include "phy/error_model.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "sim/event_sim.h"
#include "sim/fleet.h"
#include "sim/golden.h"
#include "trace/io.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

using namespace libra;

namespace {

// --key value / --flag / positional parsing, shared with the examples.
// argv[1] is the subcommand, so parsing starts at index 2.
using Args = util::CliArgs;

// Honour --metrics / --trace-out at the end of a command.
void dump_telemetry(const Args& args) {
  if (args.flag("metrics")) {
    std::fputs(obs::Registry::global().snapshot().to_prometheus().c_str(),
               stdout);
  }
  const std::string trace_path = args.str("trace-out");
  if (!trace_path.empty()) {
    obs::TraceBuffer::global().write_chrome_json(trace_path);
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 obs::TraceBuffer::global().event_count(),
                 trace_path.c_str());
  }
}

trace::GroundTruthConfig ground_truth_from(const Args& args) {
  trace::GroundTruthConfig gt;
  gt.alpha = args.number("alpha", 1.0);
  gt.fat_ms = args.number("fat", 10.0);
  gt.ba_overhead_ms = args.number("ba", 5.0);
  return gt;
}

ml::DataSet to_ml(const std::vector<trace::LabeledEntry>& entries,
                  bool three_class) {
  ml::DataSet d(trace::FeatureVector::kDim);
  for (const auto& e : entries) {
    d.add(e.x.v, three_class
                     ? core::LibraClassifier::to_label(e.y)
                     : (e.y == trace::Action::kBA ? 0 : 1));
  }
  return d;
}

int cmd_collect(const Args& args) {
  args.require_known({"testing", "seed", "frames", "no-na", "metrics",
                      "trace-out"});
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: libra collect <out.ds> [--testing]\n");
    return 2;
  }
  phy::McsTable table;
  phy::ErrorModel em(&table);
  trace::CollectOptions opt;
  opt.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  opt.collector.frames_per_trace =
      static_cast<int>(args.number("frames", 100));
  opt.with_na_augmentation = !args.flag("no-na");
  const trace::ScenarioSet scenarios =
      args.flag("testing") ? trace::testing_scenarios()
                           : trace::training_scenarios();
  std::printf("collecting %zu cases...\n", scenarios.cases.size());
  const trace::Dataset ds = trace::collect_dataset(scenarios, em, opt);
  trace::save_dataset_file(ds, args.positional[0]);
  std::printf("saved %zu records (+%zu NA) to %s\n", ds.records.size(),
              ds.na_records.size(), args.positional[0].c_str());
  dump_telemetry(args);
  return 0;
}

int cmd_summarize(const Args& args) {
  args.require_known({"alpha", "fat", "ba"});
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: libra summarize <ds>\n");
    return 2;
  }
  const trace::Dataset ds = trace::load_dataset_file(args.positional[0]);
  const auto s = trace::summarize(ds, ground_truth_from(args));
  util::Table t({"impairment", "cases", "BA", "RA", "positions"});
  const std::pair<const char*, const trace::DatasetSummaryRow*> rows[] = {
      {"displacement", &s.displacement},
      {"blockage", &s.blockage},
      {"interference", &s.interference},
      {"overall", &s.overall}};
  for (const auto& [name, row] : rows) {
    t.add_row({name, std::to_string(row->total), std::to_string(row->ba),
               std::to_string(row->ra), std::to_string(row->positions)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}

int cmd_train(const Args& args) {
  args.require_known({"three-class", "trees", "seed", "alpha", "fat", "ba"});
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: libra train <ds> <out.forest>\n");
    return 2;
  }
  const trace::Dataset ds = trace::load_dataset_file(args.positional[0]);
  const trace::GroundTruthConfig gt = ground_truth_from(args);
  const bool three = args.flag("three-class");
  const ml::DataSet data =
      to_ml(three ? ds.labeled3(gt) : ds.labeled(gt), three);
  ml::RandomForestConfig cfg;
  cfg.num_trees = static_cast<int>(args.number("trees", 60));
  ml::RandomForest forest(cfg);
  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  forest.fit(data, rng);
  ml::save_forest_file(forest, args.positional[1]);
  std::printf("trained %d-tree %s forest on %zu entries -> %s\n",
              cfg.num_trees, three ? "3-class" : "2-class", data.size(),
              args.positional[1].c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  args.require_known({"three-class", "alpha", "fat", "ba"});
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: libra eval <forest> <ds>\n");
    return 2;
  }
  const ml::RandomForest forest =
      ml::load_forest_file(args.positional[0]);
  const trace::Dataset ds = trace::load_dataset_file(args.positional[1]);
  const trace::GroundTruthConfig gt = ground_truth_from(args);
  const bool three = args.flag("three-class");
  const ml::DataSet data =
      to_ml(three ? ds.labeled3(gt) : ds.labeled(gt), three);
  const std::vector<ml::Label> pred = forest.predict_all(data);
  std::printf("accuracy %.1f%%, weighted F1 %.1f%% on %zu entries\n",
              100 * ml::accuracy(data.labels(), pred),
              100 * ml::weighted_f1(data.labels(), pred), data.size());
  const auto cm = ml::confusion_matrix(data.labels(), pred);
  const char* names3[] = {"BA", "RA", "NA"};
  const char* names2[] = {"BA", "RA"};
  const char** names = three ? names3 : names2;
  std::printf("confusion (rows=truth):\n");
  for (std::size_t r = 0; r < cm.size(); ++r) {
    std::printf("  %-3s", names[r]);
    for (std::size_t c = 0; c < cm.size(); ++c) std::printf(" %5d", cm[r][c]);
    std::printf("\n");
  }
  return 0;
}

int cmd_export_csv(const Args& args) {
  args.require_known({"alpha", "fat", "ba"});
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: libra export-csv <ds>\n");
    return 2;
  }
  const trace::Dataset ds = trace::load_dataset_file(args.positional[0]);
  trace::write_feature_csv(ds, ground_truth_from(args), std::cout);
  return 0;
}

// Telemetry demo stage for `simulate --metrics/--trace-out`: the event
// simulator never touches the fleet serving path, so run the trained
// classifier through a small lockstep fleet too -- the scrape and trace
// then cover gather/decide/scatter and batched inference as deployed.
void run_fleet_stage(core::LibraClassifier& classifier, std::uint64_t seed,
                     const faults::FaultPlan* faults_plan = nullptr,
                     core::DecisionBackend* backend = nullptr,
                     int scrape_port = 0,
                     core::FleetTrainer* trainer = nullptr) {
  constexpr int kStations = 4;
  phy::McsTable table;
  phy::ErrorModel em(&table);
  const array::Codebook codebook;
  std::vector<env::Environment> envs;
  std::vector<array::PhasedArray> aps, clients;
  std::vector<channel::Link> links;
  std::vector<core::LibraController> controllers;
  envs.reserve(kStations);
  aps.reserve(kStations);
  clients.reserve(kStations);
  links.reserve(kStations);
  controllers.reserve(kStations);
  for (int s = 0; s < kStations; ++s) {
    envs.push_back(env::make_lobby());
    aps.emplace_back(geom::Vec2{2.0, 6.0}, 0.0, &codebook);
    clients.emplace_back(geom::Vec2{8.0 + s, 4.0 + (s % 3)}, 180.0,
                         &codebook);
    links.emplace_back(&envs[s], &aps[s], &clients[s]);
    controllers.emplace_back(&links[s], &em, &classifier);
  }
  std::vector<sim::FleetLink> fleet(kStations);
  for (int s = 0; s < kStations; ++s) {
    fleet[s] = {&envs[s], &links[s], &controllers[s], {}};
    fleet[s].script.duration_ms = 2000.0;
    fleet[s].script.rx_trajectory = sim::Trajectory::stationary(
        clients[s].position(), clients[s].boresight_deg());
  }
  // One walker and one blocked station so the fleet actually batches
  // inference rows (stationary links rarely trip the classifier).
  fleet[1].script.rx_trajectory =
      sim::Trajectory::walk({9, 4}, {16, 7}, 2000.0, geom::Vec2{2, 6});
  fleet[3].script.blockage.push_back({500, 1500, {{6, 6}, 0.3, 35.0}});

  sim::FleetConfig cfg;
  cfg.seed = seed;
  cfg.keep_frame_logs = true;  // feeds the digest below
  cfg.backend = backend;
  cfg.scrape_port = scrape_port;
  if (faults_plan != nullptr) cfg.faults = *faults_plan;
  if (trainer != nullptr) {
    // Online fleet: the trainer samples the row stream AND serves the
    // decide phase through its generation-tagged slot -- a remote daemon
    // (if any) receives shipped candidates via set_remote_push instead of
    // answering vote batches.
    cfg.trainer = trainer;
    cfg.backend = trainer->backend();
  }
  if (scrape_port > 0) {
    std::printf("fleet scrape: http://127.0.0.1:%d/metrics (also /healthz, "
                "/series.json)\n", scrape_port);
    std::fflush(stdout);
  }
  const sim::FleetResult result = sim::run_fleet(fleet, cfg);
  std::printf("fleet stage: %d stations, %lld ticks, %lld batched rows\n",
              kStations, static_cast<long long>(result.ticks),
              static_cast<long long>(result.batched_rows));
  // The frame-log fold: identical decisions (local vs remote loopback, any
  // shard/thread grid) print identical digests. CI greps this line.
  std::printf("fleet digest: 0x%016llx (backend=%s)\n",
              static_cast<unsigned long long>(
                  sim::degradation_digest(result)),
              cfg.backend != nullptr
                  ? std::string(cfg.backend->name()).c_str()
                  : "local");
  if (trainer != nullptr) {
    std::printf("online trainer: generation %llu, %llu rows sampled "
                "(%llu dropped), %llu fits, %llu shipped / %llu rejected, "
                "drift %.3f\n",
                static_cast<unsigned long long>(trainer->generation()),
                static_cast<unsigned long long>(trainer->rows_sampled()),
                static_cast<unsigned long long>(trainer->rows_dropped()),
                static_cast<unsigned long long>(trainer->fits()),
                static_cast<unsigned long long>(trainer->swaps_shipped()),
                static_cast<unsigned long long>(trainer->swaps_rejected()),
                trainer->drift_score());
  }
  if (faults_plan != nullptr) {
    const auto* injected = result.metrics.find_counter("faults.injected");
    std::printf("fault stage: plan seed %llu, %llu faults injected "
                "(process-cumulative)\n",
                static_cast<unsigned long long>(faults_plan->seed),
                static_cast<unsigned long long>(
                    injected != nullptr ? injected->value : 0));
  }
}

int cmd_simulate(const Args& args) {
  args.require_known({"ba", "fat", "flow", "alpha", "seed", "metrics",
                      "trace-out", "faults", "backend", "scrape-port",
                      "online-fleet"});
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: libra simulate <train.ds> <eval.ds>\n");
    return 2;
  }
  const trace::Dataset train = trace::load_dataset_file(args.positional[0]);
  const trace::Dataset eval = trace::load_dataset_file(args.positional[1]);
  trace::GroundTruthConfig gt = ground_truth_from(args);
  sim::EventParams params;
  params.ba_overhead_ms = gt.ba_overhead_ms;
  params.fat_ms = gt.fat_ms;
  params.flow_ms = args.number("flow", 1000.0);
  params.rule = gt;

  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  core::LibraClassifier classifier;
  classifier.train(train, gt, rng);
  const sim::EventSimulator simulator(&classifier);

  util::Table t({"strategy", "total MB", "avg recovery ms", "restored"});
  for (core::Strategy s : core::kAllStrategies) {
    double bytes = 0.0, delay = 0.0;
    int broken = 0, restored = 0;
    for (const trace::CaseRecord& rec : eval.records) {
      const sim::EventResult r = simulator.run(rec, s, params, rng);
      bytes += r.bytes_mb;
      if (r.recovery_delay_ms > 0.0) {
        ++broken;
        delay += r.recovery_delay_ms;
        restored += r.link_restored;
      }
    }
    t.add_row({core::to_string(s), util::format_double(bytes, 1),
               util::format_double(broken ? delay / broken : 0.0, 1),
               std::to_string(restored) + "/" + std::to_string(broken)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  // --faults SEED runs the fleet stage under the demo fault schedule
  // (faults::demo_plan) seeded from SEED: the quickest way to watch the
  // degradation ladder fire outside the test suite. --backend remote:ADDR
  // forces the fleet stage and serves its decide phase through a running
  // `libra serve` daemon.
  const std::string backend_spec = args.str("backend");
  const int scrape_port = static_cast<int>(args.number("scrape-port", 0));
  const bool online_fleet = args.flag("online-fleet");
  if (args.flag("metrics") || !args.str("trace-out").empty() ||
      args.flag("faults") || !backend_spec.empty() || scrape_port > 0 ||
      online_fleet) {
    std::optional<faults::FaultPlan> plan;
    if (args.flag("faults")) {
      plan = faults::demo_plan(
          static_cast<std::uint64_t>(args.number("faults", 1)));
    }
    std::optional<rpc::RemoteBackend> remote;
    if (!backend_spec.empty()) {
      if (backend_spec.rfind("remote:", 0) != 0) {
        std::fprintf(stderr,
                     "error: --backend expects remote:ADDR, got '%s'\n",
                     backend_spec.c_str());
        return 2;
      }
      remote.emplace(rpc::parse_remote_addr(backend_spec.substr(7)));
      // Push the freshly trained forest so the daemon serves the exact
      // model this process would use locally -- the precondition for the
      // digest line below matching a --backend-less run. A dead daemon is
      // not an error: the fleet degrades through the rung-2 fallback.
      const std::optional<rpc::AckMsg> ack =
          remote->client().push_model(classifier.forest());
      if (!ack.has_value()) {
        std::fprintf(stderr,
                     "warning: daemon %s unreachable; fleet stage will run "
                     "degraded (RA-first fallback)\n",
                     remote->client().address().c_str());
      } else if (!ack->ok) {
        std::fprintf(stderr, "error: daemon rejected the model: %s\n",
                     ack->message.c_str());
        return 1;
      } else {
        std::printf("pushed %d-tree forest to %s\n",
                    static_cast<int>(classifier.forest().trees().size()),
                    remote->client().address().c_str());
      }
    }
    std::unique_ptr<core::FleetTrainer> trainer;
    if (online_fleet) {
      // Free-running online learning over the fleet stage: the trainer
      // starts from the freshly trained forest (generation 1) and serves
      // the decide phase through its swap slot. With --backend, shipped
      // candidates are forwarded to the daemon too -- a failed push keeps
      // the local swap and is only counted.
      core::FleetTrainerConfig tcfg;
      tcfg.seed = static_cast<std::uint64_t>(args.number("seed", 1));
      trainer = std::make_unique<core::FleetTrainer>(tcfg);
      trainer->seed_model(classifier.forest());
      if (remote) {
        trainer->set_remote_push([&remote](const ml::RandomForest& forest) {
          const std::optional<rpc::AckMsg> ack =
              remote->client().push_model(forest);
          return ack.has_value() && ack->ok;
        });
      }
      trainer->start();
    }
    run_fleet_stage(classifier,
                    static_cast<std::uint64_t>(args.number("seed", 1)),
                    plan ? &*plan : nullptr,
                    remote ? &*remote : nullptr, scrape_port,
                    trainer.get());
    if (trainer) trainer->stop();
  }
  dump_telemetry(args);
  return 0;
}

// SIGINT/SIGTERM -> clean daemon shutdown (flag checked by the serve loop).
volatile std::sig_atomic_t g_stop_requested = 0;
void handle_stop_signal(int) { g_stop_requested = 1; }

int cmd_serve(const Args& args) {
  args.require_known({"socket", "port", "host", "workers", "metrics",
                      "metrics-port", "trace-out"});
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: libra serve <forest> --socket PATH | --port N "
                 "[--host H] [--workers N] [--metrics] [--metrics-port N]\n");
    return 2;
  }
  const ml::RandomForest forest = ml::load_forest_file(args.positional[0]);
  rpc::ServerConfig cfg;
  cfg.unix_socket = args.str("socket");
  cfg.host = args.str("host", "127.0.0.1");
  cfg.port = static_cast<int>(args.number("port", 0));
  cfg.num_workers = static_cast<int>(args.number("workers", 4));
  if (cfg.unix_socket.empty() && !args.flag("port")) {
    std::fprintf(stderr,
                 "error: serve needs --socket PATH or --port N (0 picks an "
                 "ephemeral port)\n");
    return 2;
  }
  // The daemon is trace process 2 ("libra-serve"): a merged Perfetto export
  // then shows its rpc.server.* spans on their own track, nested under the
  // controller's decide spans via the propagated trace ids.
  obs::set_trace_process(2, "libra-serve");
  rpc::DecisionServer server(cfg);
  server.set_forest(forest);
  server.start();
  std::printf("serving %d-tree forest on %s (%d workers)\n",
              static_cast<int>(forest.trees().size()), server.address().c_str(),
              cfg.num_workers);

  // --metrics-port N: the daemon's own observability tier -- an aggregator
  // rolling up this process's registry, scraped at /metrics, /healthz,
  // /series.json. Origin label matches what StatsAck reports.
  std::unique_ptr<obs::Aggregator> aggregator;
  std::unique_ptr<obs::ScrapeServer> scrape;
  const int metrics_port = static_cast<int>(args.number("metrics-port", 0));
  if (args.flag("metrics-port")) {
    obs::AggregatorConfig agg_cfg;
    agg_cfg.local_origin = cfg.stats_origin;
    aggregator = std::make_unique<obs::Aggregator>(agg_cfg);
    aggregator->rollup_now();
    aggregator->start();
    obs::ScrapeConfig scrape_cfg;
    scrape_cfg.port = metrics_port;
    scrape = std::make_unique<obs::ScrapeServer>(*aggregator, scrape_cfg);
    scrape->start();
    std::printf("metrics on http://%s/metrics (also /healthz, /series.json)\n",
                scrape->address().c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0) {
    // The accept/handler threads do all the work; this thread only waits
    // for a stop signal (sleep via sigtimedwait-free portable polling).
    struct timespec ts {0, 100 * 1000 * 1000};  // 100 ms
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down %s\n", server.address().c_str());
  server.stop();
  dump_telemetry(args);
  return 0;
}

// ---- libra top: live dashboard over /series.json ---------------------------

// Last point of a ring series ([..] of numbers), or fallback when the
// series is absent/empty (endpoint just started, no roll-up yet).
double ring_last(const util::JsonValue* series, const char* key) {
  if (series == nullptr) return 0.0;
  const util::JsonValue* ring = series->find(key);
  if (ring == nullptr || !ring->is_array() || ring->array.empty()) return 0.0;
  return ring->array.back().number;
}

const util::JsonValue* find_metric(const util::JsonValue& origin,
                                   const char* kind, const std::string& name) {
  const util::JsonValue* k = origin.find(kind);
  return k == nullptr ? nullptr : k->find(name);
}

// A gauge series carries a scalar "last" (most recent set), a counter
// series a scalar "total" -- not the ring arrays ring_last reads.
double scalar_of(const util::JsonValue* series, const char* key) {
  if (series == nullptr) return 0.0;
  const util::JsonValue* v = series->find(key);
  return v == nullptr ? 0.0 : v->number;
}

void render_top_frame(const util::JsonValue& root, bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);
  const util::JsonValue* rollups = root.find("rollups");
  std::printf("libra top -- %.0f roll-ups, period %.0f ms\n",
              rollups != nullptr ? rollups->number : 0.0,
              root.find("period_ms") != nullptr
                  ? root.find("period_ms")->number : 0.0);
  const util::JsonValue* origins = root.find("origins");
  if (origins == nullptr || origins->object.empty()) {
    std::printf("  (no series yet -- waiting for the first roll-up)\n");
    std::fflush(stdout);
    return;
  }
  util::Table t({"origin", "links/s", "tick p99 us", "degraded/s",
                 "fallback/s", "req/s"});
  for (const auto& [name, origin] : origins->object) {
    t.add_row(
        {name,
         util::format_double(
             ring_last(find_metric(origin, "counters", "fleet.link_frames"),
                       "rate"), 0),
         util::format_double(
             ring_last(find_metric(origin, "histograms",
                                   "fleet.tick_latency_us"), "p99"), 0),
         util::format_double(
             ring_last(find_metric(origin, "counters",
                                   "controller.degraded_decisions"), "rate"),
             1),
         util::format_double(
             ring_last(find_metric(origin, "counters", "rpc.outage_fallbacks"),
                       "rate"), 1),
         util::format_double(
             ring_last(find_metric(origin, "counters", "rpc.server.requests"),
                       "rate"), 0)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Online-trainer panel: shown only for origins running a FleetTrainer
  // (the trainer.generation gauge exists once a model is seeded).
  for (const auto& [name, origin] : origins->object) {
    const util::JsonValue* generation =
        find_metric(origin, "gauges", "trainer.generation");
    if (generation == nullptr) continue;
    std::printf(
        "online trainer (%s): gen %.0f, drift %.3f, acc %.3f vs %.3f, "
        "window %.0f rows, %.0f rows/s sampled, swaps %.0f/%.0f "
        "(shipped/rejected), fits %.0f\n",
        name.c_str(), scalar_of(generation, "last"),
        scalar_of(find_metric(origin, "gauges", "trainer.drift_score"),
                  "last"),
        scalar_of(find_metric(origin, "gauges", "trainer.candidate_acc"),
                  "last"),
        scalar_of(find_metric(origin, "gauges", "trainer.incumbent_acc"),
                  "last"),
        scalar_of(find_metric(origin, "gauges", "trainer.window_rows"),
                  "last"),
        ring_last(find_metric(origin, "counters", "trainer.rows_sampled"),
                  "rate"),
        scalar_of(find_metric(origin, "counters", "trainer.swaps_shipped"),
                  "total"),
        scalar_of(find_metric(origin, "counters", "trainer.swaps_rejected"),
                  "total"),
        scalar_of(find_metric(origin, "counters", "trainer.fits"), "total"));
  }

  // Per-MCS occupancy (frames transmitted per MCS index, cumulative):
  // share-of-total bars across every origin that reports the counters.
  for (const auto& [name, origin] : origins->object) {
    const util::JsonValue* counters = origin.find("counters");
    if (counters == nullptr) continue;
    static constexpr char kPrefix[] = "controller.mcs_occupancy.";
    double total = 0.0;
    std::vector<std::pair<std::string, double>> occupancy;
    for (const auto& [cname, series] : counters->object) {
      if (cname.rfind(kPrefix, 0) != 0) continue;
      const util::JsonValue* v = series.find("total");
      const double frames = v != nullptr ? v->number : 0.0;
      occupancy.emplace_back(cname.substr(sizeof(kPrefix) - 1), frames);
      total += frames;
    }
    if (occupancy.empty() || total <= 0.0) continue;
    std::printf("mcs occupancy (%s):\n", name.c_str());
    for (const auto& [mcs, frames] : occupancy) {
      const double share = frames / total;
      const int bar = static_cast<int>(share * 40.0 + 0.5);
      std::printf("  mcs %-3s %-40.*s %5.1f%%\n", mcs.c_str(), bar,
                  "########################################", 100.0 * share);
    }
  }
  std::fflush(stdout);
}

int cmd_top(const Args& args) {
  args.require_known({"interval-ms", "once"});
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: libra top HOST:PORT [--interval-ms N] [--once]\n");
    return 2;
  }
  const std::string& target = args.positional[0];
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 == target.size()) {
    std::fprintf(stderr, "error: top expects HOST:PORT, got '%s'\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  const double interval_ms = args.number("interval-ms", 1000.0);
  const bool once = args.flag("once");

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0) {
    const std::optional<obs::HttpResponse> resp =
        obs::http_get(host, port, "/series.json");
    if (!resp.has_value() || resp->status != 200) {
      if (once) {
        std::fprintf(stderr, "error: no scrape endpoint at %s\n",
                     target.c_str());
        return 1;
      }
      std::printf("waiting for scrape endpoint at %s...\n", target.c_str());
      std::fflush(stdout);
    } else {
      try {
        render_top_frame(util::parse_json(resp->body), /*clear_screen=*/!once);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: bad /series.json payload: %s\n",
                     e.what());
        return 1;
      }
      if (once) return 0;
    }
    const long long ns = static_cast<long long>(interval_ms * 1e6);
    struct timespec ts{static_cast<time_t>(ns / 1000000000),
                       static_cast<long>(ns % 1000000000)};
    nanosleep(&ts, nullptr);
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "libra <command> ...\n"
               "  collect <out.ds> [--testing] [--seed N] [--frames N]\n"
               "            [--metrics] [--trace-out FILE]\n"
               "  summarize <ds> [--alpha A]\n"
               "  train <ds> <out.forest> [--three-class] [--trees N]\n"
               "  eval <forest> <ds> [--three-class]\n"
               "  export-csv <ds>\n"
               "  simulate <train.ds> <eval.ds> [--ba MS] [--fat MS] "
               "[--flow MS]\n"
               "            [--metrics] [--trace-out FILE] [--faults SEED]\n"
               "            [--backend remote:ADDR] [--scrape-port N]\n"
               "            [--online-fleet]\n"
               "  serve <forest> --socket PATH | --port N [--host H]\n"
               "            [--workers N] [--metrics] [--metrics-port N]\n"
               "  top HOST:PORT [--interval-ms N] [--once]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, /*first=*/2);
  try {
    if (cmd == "collect") return cmd_collect(args);
    if (cmd == "summarize") return cmd_summarize(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "export-csv") return cmd_export_csv(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "top") return cmd_top(args);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
