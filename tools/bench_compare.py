#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

CI's performance-regression gate: the release job runs the serving-path
micro benches (BM_FleetClassifyBatch, BM_CompiledForestBatch,
BM_FleetMillionLinks), then compares the fresh JSON against the checked-in
BENCH_baseline.json. Any selected benchmark whose real_time grew by more
than --threshold (default 25%) fails the job, as does any benchmark whose
links_per_s rate counter (the sharded fleet engine's throughput metric)
DROPPED by more than the same threshold; a benchmark present in the
baseline but missing from the current run also fails (deleting a bench
must be an explicit baseline refresh, not a silent gap).

Usage:
  tools/bench_compare.py BENCH_baseline.json fleet_bench.json \
      --filter 'BM_FleetClassifyBatch|BM_CompiledForestBatch' \
      --threshold 0.25 --report bench_compare.md

Refreshing the baseline: download the release job's bench JSON artifact and
commit it as BENCH_baseline.json (tools/bench_compare.py exits 0 when a
file is compared against itself).
"""

import argparse
import json
import re
import sys

# google-benchmark time_unit -> nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Return {name: {"real_time_ns": float, "links_per_s": float | None}}
    for every non-aggregate benchmark."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip mean/median/stddev aggregate rows from --benchmark_repetitions.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            continue
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            raise SystemExit(f"{path}: unknown time_unit for {name!r}")
        links_per_s = bench.get("links_per_s")
        out[name] = {
            "real_time_ns": float(real_time) * unit,
            "links_per_s": (float(links_per_s)
                            if links_per_s is not None else None),
        }
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3f} {unit}"
    return f"{ns:.1f} ns"


def fmt_rate(rate):
    if rate is None:
        return "—"
    for unit, scale in (("M", 1e6), ("k", 1e3)):
        if rate >= scale:
            return f"{rate / scale:.2f}{unit}/s"
    return f"{rate:.1f}/s"


def compare(baseline, current, pattern, threshold):
    """Return (rows, regressions, missing) over baseline names matching
    pattern; rows are (name, base, cur, ratio, rate_ratio, status) where
    base/cur are the loaded benchmark dicts (cur None when missing).
    real_time regresses when it GROWS past the threshold; links_per_s
    regresses when it DROPS past it."""
    rows = []
    regressions = []
    missing = []
    for name in sorted(baseline):
        if not pattern.search(name):
            continue
        base = baseline[name]
        if name not in current:
            missing.append(name)
            rows.append((name, base, None, None, None, "MISSING"))
            continue
        cur = current[name]
        base_ns = base["real_time_ns"]
        ratio = cur["real_time_ns"] / base_ns if base_ns > 0 else float("inf")
        rate_ratio = None
        if base["links_per_s"] and cur["links_per_s"] is not None:
            rate_ratio = cur["links_per_s"] / base["links_per_s"]
        time_regressed = ratio > 1.0 + threshold
        rate_regressed = rate_ratio is not None and rate_ratio < 1.0 - threshold
        if time_regressed or rate_regressed:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - threshold or (rate_ratio is not None
                                         and rate_ratio > 1.0 + threshold):
            status = "improved"
        else:
            status = "ok"
        rows.append((name, base, cur, ratio, rate_ratio, status))
    return rows, regressions, missing


def write_report(path, rows, regressions, missing, threshold, args):
    lines = [
        "# Benchmark comparison",
        "",
        f"Baseline: `{args.baseline}` — current: `{args.current}` — "
        f"gate: real_time ratio > {1.0 + threshold:.2f} "
        f"or links/s ratio < {1.0 - threshold:.2f}",
        "",
        "| benchmark | baseline | current | ratio "
        "| links/s (base → cur) | status |",
        "|---|---|---|---|---|---|",
    ]
    for name, base, cur, ratio, rate_ratio, status in rows:
        cur_time = fmt_ns(cur["real_time_ns"]) if cur is not None else "—"
        rat = f"{ratio:.3f}" if ratio is not None else "—"
        if base["links_per_s"] is not None:
            rate = (f"{fmt_rate(base['links_per_s'])} → "
                    f"{fmt_rate(cur['links_per_s']) if cur else '—'}")
            if rate_ratio is not None:
                rate += f" ({rate_ratio:.3f})"
        else:
            rate = "—"
        lines.append(
            f"| {name} | {fmt_ns(base['real_time_ns'])} | {cur_time} "
            f"| {rat} | {rate} | {status} |")
    lines.append("")
    if regressions or missing:
        lines.append(
            f"**FAIL**: {len(regressions)} regression(s), "
            f"{len(missing)} missing benchmark(s).")
    else:
        lines.append("**PASS**: no regressions.")
    lines.append("")
    text = "\n".join(lines)
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def main():
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress vs. a baseline JSON.")
    parser.add_argument("baseline", help="baseline google-benchmark JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional real_time growth / links_per_s drop "
             "(default 0.25 = 25%%)")
    parser.add_argument(
        "--filter", default=".",
        help="regex selecting benchmark names to gate (default: all)")
    parser.add_argument(
        "--report", default=None, help="write a markdown report here")
    args = parser.parse_args()

    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    pattern = re.compile(args.filter)
    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    rows, regressions, missing = compare(
        baseline, current, pattern, args.threshold)
    if not rows:
        print(f"error: no baseline benchmarks match filter {args.filter!r}",
              file=sys.stderr)
        return 2

    print(write_report(args.report, rows, regressions, missing,
                       args.threshold, args))
    return 1 if (regressions or missing) else 0


if __name__ == "__main__":
    sys.exit(main())
