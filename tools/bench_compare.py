#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

CI's performance-regression gate: the release job runs the serving-path
micro benches (BM_FleetClassifyBatch, BM_CompiledForestBatch,
BM_FleetMillionLinks, BM_AggregatorRollup, ...), then compares the fresh
JSON against the checked-in BENCH_baseline.json. Any selected benchmark
whose real_time grew by more than --threshold (default 25%) fails the
job, as does any benchmark where a *_per_s rate counter (links_per_s on
the fleet engine, rows_per_s on the batch engines) DROPPED by more than
the same threshold -- so an aggregator- or scrape-induced links/s drop on
BM_FleetMillionLinks fails CI even if its real_time stays inside the
window. A benchmark present in the baseline but missing from the current
run also fails (deleting a bench must be an explicit baseline refresh,
not a silent gap).

Usage:
  tools/bench_compare.py BENCH_baseline.json fleet_bench.json \
      --filter 'BM_FleetClassifyBatch|BM_CompiledForestBatch' \
      --threshold 0.25 --report bench_compare.md

Refreshing the baseline: download the release job's bench JSON artifact and
commit it as BENCH_baseline.json (tools/bench_compare.py exits 0 when a
file is compared against itself).
"""

import argparse
import json
import re
import sys

# google-benchmark time_unit -> nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Return {name: {"real_time_ns": float, "rates": {counter: float},
    "label": str}} for every non-aggregate benchmark. `rates` holds every
    *_per_s user counter (links_per_s, rows_per_s, ...) -- all of them are
    gated. `label` carries SetLabel() text (the SIMD benches report the
    dispatched ISA there); it is printed, not gated."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip mean/median/stddev aggregate rows from --benchmark_repetitions.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            continue
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            raise SystemExit(f"{path}: unknown time_unit for {name!r}")
        rates = {
            key: float(value)
            for key, value in bench.items()
            if key.endswith("_per_s") and isinstance(value, (int, float))
        }
        out[name] = {
            "real_time_ns": float(real_time) * unit,
            "rates": rates,
            "label": str(bench.get("label", "")),
        }
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3f} {unit}"
    return f"{ns:.1f} ns"


def fmt_rate(rate):
    if rate is None:
        return "—"
    for unit, scale in (("M", 1e6), ("k", 1e3)):
        if rate >= scale:
            return f"{rate / scale:.2f}{unit}/s"
    return f"{rate:.1f}/s"


def rate_ratios(base, cur):
    """{counter: cur/base} over the *_per_s counters present in both."""
    out = {}
    for key, base_rate in base["rates"].items():
        cur_rate = cur["rates"].get(key)
        if base_rate and cur_rate is not None:
            out[key] = cur_rate / base_rate
    return out


def compare(baseline, current, pattern, threshold):
    """Return (rows, regressions, missing) over baseline names matching
    pattern; rows are (name, base, cur, ratio, ratios, status) where
    base/cur are the loaded benchmark dicts (cur None when missing) and
    ratios maps each shared *_per_s counter to cur/base. real_time
    regresses when it GROWS past the threshold; any rate counter
    regresses when it DROPS past it."""
    rows = []
    regressions = []
    missing = []
    for name in sorted(baseline):
        if not pattern.search(name):
            continue
        base = baseline[name]
        if name not in current:
            missing.append(name)
            rows.append((name, base, None, None, {}, "MISSING"))
            continue
        cur = current[name]
        base_ns = base["real_time_ns"]
        ratio = cur["real_time_ns"] / base_ns if base_ns > 0 else float("inf")
        ratios = rate_ratios(base, cur)
        time_regressed = ratio > 1.0 + threshold
        rate_regressed = any(r < 1.0 - threshold for r in ratios.values())
        if time_regressed or rate_regressed:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - threshold or any(
                r > 1.0 + threshold for r in ratios.values()):
            status = "improved"
        else:
            status = "ok"
        rows.append((name, base, cur, ratio, ratios, status))
    return rows, regressions, missing


def write_report(path, rows, regressions, missing, threshold, args):
    lines = [
        "# Benchmark comparison",
        "",
        f"Baseline: `{args.baseline}` — current: `{args.current}` — "
        f"gate: real_time ratio > {1.0 + threshold:.2f} "
        f"or any *_per_s ratio < {1.0 - threshold:.2f}",
        "",
        "| benchmark | baseline | current | ratio "
        "| rates (base → cur) | isa | status |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, base, cur, ratio, ratios, status in rows:
        cur_time = fmt_ns(cur["real_time_ns"]) if cur is not None else "—"
        rat = f"{ratio:.3f}" if ratio is not None else "—"
        # The dispatched-ISA label of the current run; flag a baseline
        # recorded on different hardware/dispatch so a "regression" that is
        # really an ISA delta is obvious at a glance.
        cur_label = cur.get("label", "") if cur is not None else ""
        base_label = base.get("label", "")
        if cur_label and base_label and cur_label != base_label:
            isa = f"{base_label} → {cur_label}"
        else:
            isa = cur_label or base_label or "—"
        rate_cells = []
        for key in sorted(base["rates"]):
            base_rate = base["rates"][key]
            cur_rate = cur["rates"].get(key) if cur is not None else None
            cell = (f"{key}: {fmt_rate(base_rate)} → "
                    f"{fmt_rate(cur_rate)}")
            if key in ratios:
                cell += f" ({ratios[key]:.3f})"
            rate_cells.append(cell)
        rate = "<br>".join(rate_cells) if rate_cells else "—"
        lines.append(
            f"| {name} | {fmt_ns(base['real_time_ns'])} | {cur_time} "
            f"| {rat} | {rate} | {isa} | {status} |")
    lines.append("")
    if regressions or missing:
        lines.append(
            f"**FAIL**: {len(regressions)} regression(s), "
            f"{len(missing)} missing benchmark(s).")
    else:
        lines.append("**PASS**: no regressions.")
    lines.append("")
    text = "\n".join(lines)
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def main():
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress vs. a baseline JSON.")
    parser.add_argument("baseline", help="baseline google-benchmark JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional real_time growth / *_per_s rate drop "
             "(default 0.25 = 25%%)")
    parser.add_argument(
        "--filter", default=".",
        help="regex selecting benchmark names to gate (default: all)")
    parser.add_argument(
        "--report", default=None, help="write a markdown report here")
    args = parser.parse_args()

    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    pattern = re.compile(args.filter)
    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    rows, regressions, missing = compare(
        baseline, current, pattern, args.threshold)
    if not rows:
        print(f"error: no baseline benchmarks match filter {args.filter!r}",
              file=sys.stderr)
        return 2

    print(write_report(args.report, rows, regressions, missing,
                       args.threshold, args))
    return 1 if (regressions or missing) else 0


if __name__ == "__main__":
    sys.exit(main())
