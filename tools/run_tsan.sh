#!/usr/bin/env sh
# Configure, build and run the test suite under ThreadSanitizer.
#
# Usage: tools/run_tsan.sh [build-dir] [ctest-args...]
#   build-dir defaults to build-tsan; everything after it is passed through
#   to ctest, e.g. `tools/run_tsan.sh build-tsan -L 'faults|determinism'`
#   to mirror CI's tsan matrix entry.
#
# Exercises the util::ThreadPool paths (parallel forest training, parallel
# cross validation, batched inference) with TSan's data-race detection.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}
[ "$#" -gt 0 ] && shift

cmake -B "$build_dir" -S "$repo_root" -DLIBRA_SANITIZE=thread
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
