#!/usr/bin/env sh
# Configure, build and run the test suite under ThreadSanitizer.
#
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
#
# Exercises the util::ThreadPool paths (parallel forest training, parallel
# cross validation, batched inference) with TSan's data-race detection.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DLIBRA_SANITIZE=thread
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j
