// Live link sessions: scripted channel dynamics (mobility trajectories,
// blockage episodes, interference bursts) driven against a live controller.
//
// This complements the trace-replay evaluation of Sec. 8: instead of
// replaying collected (initial, impaired) state pairs, a Session evolves the
// channel continuously and lets a LinkController (Algorithm 1 or a
// heuristic) adapt in closed loop -- the deployment scenario the paper's
// framework targets.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "channel/fading.h"
#include "core/controller.h"
#include "env/environment.h"
#include "faults/faults.h"

namespace libra::sim {

// Piecewise-linear position + orientation trajectory.
class Trajectory {
 public:
  struct Waypoint {
    double t_ms = 0.0;
    geom::Vec2 position;
    double boresight_deg = 0.0;
  };

  Trajectory() = default;
  explicit Trajectory(std::vector<Waypoint> waypoints);

  // Pose at time t (clamped to the first/last waypoint).
  Waypoint at(double t_ms) const;

  bool empty() const { return waypoints_.empty(); }
  double duration_ms() const {
    return waypoints_.empty() ? 0.0 : waypoints_.back().t_ms;
  }

  // Convenience builders.
  static Trajectory stationary(geom::Vec2 position, double boresight_deg);
  // Straight walk from a to b over [0, duration], facing `facing` the whole
  // time (or the walking direction when nullopt).
  static Trajectory walk(geom::Vec2 from, geom::Vec2 to, double duration_ms,
                         std::optional<geom::Vec2> facing = std::nullopt);
  // In-place rotation from one orientation to another.
  static Trajectory rotate(geom::Vec2 position, double from_deg,
                           double to_deg, double duration_ms);

 private:
  std::vector<Waypoint> waypoints_;  // sorted by t_ms
};

// A blocker that exists during [start, end).
struct BlockageEpisode {
  double start_ms = 0.0;
  double end_ms = 0.0;
  env::Blocker blocker;
};

// An interferer active during [start, end).
struct InterferenceEpisode {
  double start_ms = 0.0;
  double end_ms = 0.0;
  channel::Interferer interferer;
};

struct SessionScript {
  Trajectory rx_trajectory;
  std::vector<BlockageEpisode> blockage;
  std::vector<InterferenceEpisode> interference;
  double duration_ms = 10000.0;
  // Temporal shadowing applied on top of the ray-traced channel; sigma 0
  // disables it.
  channel::FadingConfig fading{0.0, 200.0};
  std::uint64_t fading_seed = 99;
};

struct SessionResult {
  double bytes_mb = 0.0;
  double avg_goodput_mbps = 0.0;
  // Counters are 64-bit: fleet-scale aggregation (10^5-10^6 links, see
  // sim/fleet.h) sums these across links, and int32 totals overflow within
  // minutes at that scale.
  std::int64_t frames = 0;
  std::int64_t adaptations_ba = 0;
  std::int64_t adaptations_ra = 0;
  // Outage accounting: spans of at least three consecutive frames with
  // goodput below the working threshold (single dead frames are ordinary
  // loss, not outages).
  std::int64_t outages = 0;
  double total_outage_ms = 0.0;
  std::vector<core::FrameReport> frame_log;  // filled when requested
};

// One link's scripted session, advanced tick by tick: scripted dynamics and
// fading before each frame, outage/goodput accounting after. run_session()
// drives one of these to completion; sim::run_fleet() (sim/fleet.h) drives
// N of them in lockstep with a batched decision phase between observe and
// apply. Mutates the environment's blockers and the link's interferer per
// the episodes and moves the Rx along the trajectory. Throws
// std::invalid_argument on a script with duration_ms <= 0.
class SessionDriver {
 public:
  SessionDriver(env::Environment& environment, channel::Link& link,
                core::LinkController& controller, const SessionScript& script,
                bool keep_frame_log = false);

  // Initial association (applies the t = 0 dynamics first).
  void start(util::Rng& rng);
  bool done() const { return controller_->time_ms() >= script_.duration_ms; }

  // Phase 1 of one tick: dynamics + fading, then transmit one frame.
  core::DecisionRequest observe(util::Rng& rng);
  // Phase 3: run the verdict through the controller and account the frame.
  void apply(trace::Action verdict, core::DecisionRequest& request,
             util::Rng& rng);
  // Final accounting; call once after done().
  SessionResult finish();

  core::LinkController& controller() { return *controller_; }

 private:
  void apply_dynamics(double t_ms);

  env::Environment* environment_;       // non-owning
  channel::Link* link_;                 // non-owning
  core::LinkController* controller_;    // non-owning
  SessionScript script_;
  bool keep_frame_log_;
  channel::FadingProcess fading_;
  SessionResult result_;
  double goodput_sum_ = 0.0;
  bool in_outage_ = false;
  int dead_frames_ = 0;
  double outage_start_ = 0.0;
  double last_t_ms_ = 0.0;
};

// Drive a controller through the script. The session mutates the
// environment's blockers and the link's interferer according to the
// episodes and moves the Rx along the trajectory. When `faults` is
// non-null (and non-empty), a FaultInjector whose stream is the first fork
// of Rng(faults->seed) is attached for the duration of the run -- exactly
// the stream a 1-link fleet would hand the same controller, so single-link
// and fleet faulted runs agree bit-for-bit.
SessionResult run_session(env::Environment& environment, channel::Link& link,
                          core::LinkController& controller,
                          const SessionScript& script, util::Rng& rng,
                          bool keep_frame_log = false,
                          const faults::FaultPlan* faults = nullptr);

}  // namespace libra::sim
