#include "sim/session.h"

#include <algorithm>
#include <stdexcept>

namespace libra::sim {

Trajectory::Trajectory(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (!std::is_sorted(waypoints_.begin(), waypoints_.end(),
                      [](const Waypoint& a, const Waypoint& b) {
                        return a.t_ms < b.t_ms;
                      })) {
    throw std::invalid_argument("trajectory waypoints must be time-sorted");
  }
}

Trajectory::Waypoint Trajectory::at(double t_ms) const {
  if (waypoints_.empty()) return {};
  if (t_ms <= waypoints_.front().t_ms) return waypoints_.front();
  if (t_ms >= waypoints_.back().t_ms) return waypoints_.back();
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (t_ms > waypoints_[i].t_ms) continue;
    const Waypoint& a = waypoints_[i - 1];
    const Waypoint& b = waypoints_[i];
    const double span = b.t_ms - a.t_ms;
    const double frac = span > 0 ? (t_ms - a.t_ms) / span : 1.0;
    Waypoint w;
    w.t_ms = t_ms;
    w.position = a.position + (b.position - a.position) * frac;
    w.boresight_deg =
        a.boresight_deg +
        geom::wrap_angle_deg(b.boresight_deg - a.boresight_deg) * frac;
    return w;
  }
  return waypoints_.back();
}

Trajectory Trajectory::stationary(geom::Vec2 position, double boresight_deg) {
  return Trajectory({{0.0, position, boresight_deg}});
}

Trajectory Trajectory::walk(geom::Vec2 from, geom::Vec2 to,
                            double duration_ms,
                            std::optional<geom::Vec2> facing) {
  const double f0 = facing ? (*facing - from).angle_deg()
                           : (to - from).angle_deg();
  const double f1 = facing ? (*facing - to).angle_deg()
                           : (to - from).angle_deg();
  return Trajectory({{0.0, from, f0}, {duration_ms, to, f1}});
}

Trajectory Trajectory::rotate(geom::Vec2 position, double from_deg,
                              double to_deg, double duration_ms) {
  return Trajectory({{0.0, position, from_deg},
                     {duration_ms, position, to_deg}});
}

SessionResult run_session(env::Environment& environment, channel::Link& link,
                          core::LinkController& controller,
                          const SessionScript& script, util::Rng& rng,
                          bool keep_frame_log) {
  SessionResult result;

  const auto apply_dynamics = [&](double t_ms) {
    bool moved = false;
    if (!script.rx_trajectory.empty()) {
      const Trajectory::Waypoint pose = script.rx_trajectory.at(t_ms);
      if (geom::distance(link.rx().position(), pose.position) > 1e-6 ||
          std::abs(geom::wrap_angle_deg(link.rx().boresight_deg() -
                                        pose.boresight_deg)) > 1e-6) {
        link.rx().set_position(pose.position);
        link.rx().set_boresight_deg(pose.boresight_deg);
        moved = true;
      }
    }
    environment.clear_blockers();
    for (const BlockageEpisode& ep : script.blockage) {
      if (t_ms >= ep.start_ms && t_ms < ep.end_ms) {
        environment.add_blocker(ep.blocker);
      }
    }
    bool interferer_set = false;
    for (const InterferenceEpisode& ep : script.interference) {
      if (t_ms >= ep.start_ms && t_ms < ep.end_ms) {
        link.set_interferer(ep.interferer);
        interferer_set = true;
        break;
      }
    }
    if (!interferer_set) link.set_interferer(std::nullopt);
    if (moved) link.refresh();
  };

  apply_dynamics(0.0);
  controller.start(rng);

  channel::FadingProcess fading(script.fading, script.fading_seed);
  double goodput_sum = 0.0;
  bool in_outage = false;
  int dead_frames = 0;
  constexpr int kOutageFrames = 3;
  double outage_start = 0.0;
  double last_t_ms = controller.time_ms();
  while (controller.time_ms() < script.duration_ms) {
    apply_dynamics(controller.time_ms());
    if (script.fading.sigma_db > 0.0) {
      link.set_fade_db(fading.advance(controller.time_ms() - last_t_ms));
      last_t_ms = controller.time_ms();
    }
    const core::FrameReport report = controller.step(rng);
    ++result.frames;
    goodput_sum += report.goodput_mbps;
    result.bytes_mb += report.goodput_mbps * report.duration_ms / 8000.0;
    if (report.action == trace::Action::kBA) ++result.adaptations_ba;
    if (report.action == trace::Action::kRA) ++result.adaptations_ra;

    const bool frame_ok = report.goodput_mbps > 150.0;
    if (!frame_ok) {
      if (dead_frames == 0) outage_start = report.t_ms;
      ++dead_frames;
      if (dead_frames == kOutageFrames) {
        in_outage = true;
        ++result.outages;
      }
    } else {
      if (in_outage) {
        in_outage = false;
        result.total_outage_ms += report.t_ms - outage_start;
      }
      dead_frames = 0;
    }
    if (keep_frame_log) result.frame_log.push_back(report);
  }
  if (in_outage) {
    result.total_outage_ms += controller.time_ms() - outage_start;
  }
  result.avg_goodput_mbps =
      result.frames > 0 ? goodput_sum / result.frames : 0.0;
  return result;
}

}  // namespace libra::sim
