#include "sim/session.h"

#include <algorithm>
#include <stdexcept>

namespace libra::sim {

Trajectory::Trajectory(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (!std::is_sorted(waypoints_.begin(), waypoints_.end(),
                      [](const Waypoint& a, const Waypoint& b) {
                        return a.t_ms < b.t_ms;
                      })) {
    throw std::invalid_argument("trajectory waypoints must be time-sorted");
  }
}

Trajectory::Waypoint Trajectory::at(double t_ms) const {
  if (waypoints_.empty()) return {};
  if (t_ms <= waypoints_.front().t_ms) return waypoints_.front();
  if (t_ms >= waypoints_.back().t_ms) return waypoints_.back();
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (t_ms > waypoints_[i].t_ms) continue;
    const Waypoint& a = waypoints_[i - 1];
    const Waypoint& b = waypoints_[i];
    const double span = b.t_ms - a.t_ms;
    const double frac = span > 0 ? (t_ms - a.t_ms) / span : 1.0;
    Waypoint w;
    w.t_ms = t_ms;
    w.position = a.position + (b.position - a.position) * frac;
    w.boresight_deg =
        a.boresight_deg +
        geom::wrap_angle_deg(b.boresight_deg - a.boresight_deg) * frac;
    return w;
  }
  return waypoints_.back();
}

Trajectory Trajectory::stationary(geom::Vec2 position, double boresight_deg) {
  return Trajectory({{0.0, position, boresight_deg}});
}

Trajectory Trajectory::walk(geom::Vec2 from, geom::Vec2 to,
                            double duration_ms,
                            std::optional<geom::Vec2> facing) {
  const double f0 = facing ? (*facing - from).angle_deg()
                           : (to - from).angle_deg();
  const double f1 = facing ? (*facing - to).angle_deg()
                           : (to - from).angle_deg();
  return Trajectory({{0.0, from, f0}, {duration_ms, to, f1}});
}

Trajectory Trajectory::rotate(geom::Vec2 position, double from_deg,
                              double to_deg, double duration_ms) {
  return Trajectory({{0.0, position, from_deg},
                     {duration_ms, position, to_deg}});
}

SessionDriver::SessionDriver(env::Environment& environment,
                             channel::Link& link,
                             core::LinkController& controller,
                             const SessionScript& script, bool keep_frame_log)
    : environment_(&environment),
      link_(&link),
      controller_(&controller),
      script_(script),
      keep_frame_log_(keep_frame_log),
      fading_(script.fading, script.fading_seed) {
  if (!(script_.duration_ms > 0.0)) {
    throw std::invalid_argument(
        "SessionScript: duration_ms must be > 0, got " +
        std::to_string(script_.duration_ms));
  }
}

void SessionDriver::apply_dynamics(double t_ms) {
  bool moved = false;
  if (!script_.rx_trajectory.empty()) {
    const Trajectory::Waypoint pose = script_.rx_trajectory.at(t_ms);
    if (geom::distance(link_->rx().position(), pose.position) > 1e-6 ||
        std::abs(geom::wrap_angle_deg(link_->rx().boresight_deg() -
                                      pose.boresight_deg)) > 1e-6) {
      link_->rx().set_position(pose.position);
      link_->rx().set_boresight_deg(pose.boresight_deg);
      moved = true;
    }
  }
  environment_->clear_blockers();
  for (const BlockageEpisode& ep : script_.blockage) {
    if (t_ms >= ep.start_ms && t_ms < ep.end_ms) {
      environment_->add_blocker(ep.blocker);
    }
  }
  bool interferer_set = false;
  for (const InterferenceEpisode& ep : script_.interference) {
    if (t_ms >= ep.start_ms && t_ms < ep.end_ms) {
      link_->set_interferer(ep.interferer);
      interferer_set = true;
      break;
    }
  }
  if (!interferer_set) link_->set_interferer(std::nullopt);
  if (moved) link_->refresh();
}

void SessionDriver::start(util::Rng& rng) {
  apply_dynamics(0.0);
  controller_->start(rng);
  last_t_ms_ = controller_->time_ms();
}

core::DecisionRequest SessionDriver::observe(util::Rng& rng) {
  apply_dynamics(controller_->time_ms());
  if (script_.fading.sigma_db > 0.0) {
    link_->set_fade_db(fading_.advance(controller_->time_ms() - last_t_ms_));
    last_t_ms_ = controller_->time_ms();
  }
  return controller_->observe(rng);
}

void SessionDriver::apply(trace::Action verdict,
                          core::DecisionRequest& request, util::Rng& rng) {
  controller_->apply(verdict, request, rng);
  const core::FrameReport& report = request.report;
  ++result_.frames;
  goodput_sum_ += report.goodput_mbps;
  result_.bytes_mb += report.goodput_mbps * report.duration_ms / 8000.0;
  if (report.action == trace::Action::kBA) ++result_.adaptations_ba;
  if (report.action == trace::Action::kRA) ++result_.adaptations_ra;

  constexpr int kOutageFrames = 3;
  const bool frame_ok = report.goodput_mbps > 150.0;
  if (!frame_ok) {
    if (dead_frames_ == 0) outage_start_ = report.t_ms;
    ++dead_frames_;
    if (dead_frames_ == kOutageFrames) {
      in_outage_ = true;
      ++result_.outages;
    }
  } else {
    if (in_outage_) {
      in_outage_ = false;
      result_.total_outage_ms += report.t_ms - outage_start_;
    }
    dead_frames_ = 0;
  }
  if (keep_frame_log_) result_.frame_log.push_back(report);
}

SessionResult SessionDriver::finish() {
  if (in_outage_) {
    in_outage_ = false;
    result_.total_outage_ms += controller_->time_ms() - outage_start_;
  }
  result_.avg_goodput_mbps =
      result_.frames > 0 ? goodput_sum_ / result_.frames : 0.0;
  return std::move(result_);
}

SessionResult run_session(env::Environment& environment, channel::Link& link,
                          core::LinkController& controller,
                          const SessionScript& script, util::Rng& rng,
                          bool keep_frame_log,
                          const faults::FaultPlan* faults) {
  // Attach/detach the injector around the run on every exit path; the
  // stream is the first fork of Rng(seed), matching a 1-link fleet.
  struct InjectorGuard {
    core::LinkController* controller = nullptr;
    std::optional<faults::FaultInjector> injector;
    ~InjectorGuard() {
      if (controller != nullptr) controller->set_fault_injector(nullptr);
    }
  } guard;
  if (faults != nullptr && !faults->empty()) {
    faults->validate();
    util::Rng fault_rng(faults->seed);
    guard.injector.emplace(faults, fault_rng.fork());
    guard.controller = &controller;
    controller.set_fault_injector(&*guard.injector);
  }
  SessionDriver driver(environment, link, controller, script, keep_frame_log);
  driver.start(rng);
  while (!driver.done()) {
    core::DecisionRequest request = driver.observe(rng);
    const trace::Action verdict = controller.decide(request, rng);
    driver.apply(verdict, request, rng);
  }
  return driver.finish();
}

}  // namespace libra::sim
