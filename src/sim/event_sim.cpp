#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libra::sim {

namespace {

using trace::Action;

// Shared frame-stepped accounting for one event.
class Engine {
 public:
  Engine(const trace::CaseRecord& rec, const EventParams& p, bool record)
      : rec_(rec), p_(p), record_(record) {
    // A non-positive frame or flow duration would march time backwards (or
    // not at all) and spin the frame loops forever.
    if (!(p.fat_ms > 0.0) || !(p.flow_ms > 0.0) ||
        !(p.ba_overhead_ms >= 0.0)) {
      throw std::invalid_argument(
          "EventParams: fat_ms and flow_ms must be > 0 and ba_overhead_ms "
          ">= 0");
    }
    result_.settled_mcs = rec.init_mcs;
  }

  const trace::PairTrace& trace_for(PairSel pair) const {
    switch (pair) {
      case PairSel::kInitPair: return rec_.new_at_init_pair;
      case PairSel::kFailoverPair: return rec_.new_at_failover;
      case PairSel::kBestPair: break;
    }
    return rec_.new_best;
  }

  bool done() const { return t_ms_ >= p_.flow_ms - 1e-9; }
  double t_ms() const { return t_ms_; }

  // Transmit one aggregated frame (FAT) at (pair, mcs); truncated by flow
  // end. Returns false when the flow is over.
  bool frame(PairSel pair, phy::McsIndex mcs) {
    if (done()) return false;
    const double dur = std::min(p_.fat_ms, p_.flow_ms - t_ms_);
    const double tput =
        trace_for(pair).throughput_mbps[static_cast<std::size_t>(mcs)];
    emit(tput, dur);
    return true;
  }

  void silence(double ms) {
    if (done()) return;
    emit(0.0, std::min(ms, p_.flow_ms - t_ms_));
  }

  // Mark the first time a working MCS is in use.
  void link_restored_now() {
    if (!delay_recorded_) {
      delay_recorded_ = true;
      result_.recovery_delay_ms = t_ms_;
    }
  }

  bool is_working(const trace::PairTrace& t, phy::McsIndex m) const {
    const auto i = static_cast<std::size_t>(m);
    return trace::is_working(t.cdr[i], t.throughput_mbps[i], p_.rule);
  }

  // Run the downward repair walk on `pair` starting at `start`; charges one
  // frame per probe and records the restoration time. Returns the settled
  // MCS (-1 if nothing works on this pair).
  phy::McsIndex repair_walk(PairSel pair, phy::McsIndex start) {
    const core::RaWalk walk =
        core::ra_repair_walk(trace_for(pair), start, p_.rule);
    for (std::size_t i = 0; i < walk.probes.size() && !done(); ++i) {
      frame(pair, walk.probes[i]);
      if (static_cast<int>(i) == walk.first_working_probe) {
        link_restored_now();
      }
    }
    return walk.settled;
  }

  // Steady state: hold (pair, mcs) with periodic upward probing until the
  // flow ends.
  void settle(PairSel pair, phy::McsIndex mcs) {
    result_.settled_pair = pair;
    result_.settled_mcs = mcs;
    if (is_working(trace_for(pair), mcs)) link_restored_now();
    core::UpProber prober(mcs);
    while (!done()) {
      const phy::McsIndex m = prober.on_frame(trace_for(pair), p_.rule);
      frame(pair, m);
      result_.settled_mcs = prober.current();
    }
  }

  // The link could not be repaired: idle out the flow.
  void dead_air() {
    result_.link_restored = false;
    silence(p_.flow_ms - t_ms_);
  }

  EventResult finish() {
    if (!delay_recorded_) {
      result_.recovery_delay_ms = p_.flow_ms;
      result_.link_restored = false;
    }
    return std::move(result_);
  }

 private:
  void emit(double tput_mbps, double dur_ms) {
    result_.bytes_mb += tput_mbps * dur_ms / 8000.0;
    if (record_) result_.tput_segments.emplace_back(tput_mbps, dur_ms);
    t_ms_ += dur_ms;
  }

  const trace::CaseRecord& rec_;
  const EventParams& p_;
  bool record_;
  EventResult result_;
  double t_ms_ = 0.0;
  bool delay_recorded_ = false;
};

}  // namespace

EventSimulator::EventSimulator(const core::LibraClassifier* classifier)
    : classifier_(classifier) {}

EventResult EventSimulator::play(const trace::CaseRecord& rec, Action action,
                                 int lead_frames, const EventParams& params,
                                 bool record_series) const {
  Engine e(rec, params, record_series);
  const phy::McsIndex m0 = rec.init_mcs;
  const bool init_working = e.is_working(rec.new_at_init_pair, m0);

  // A link that never broke has zero recovery delay by definition.
  if (init_working) e.link_restored_now();

  // Lead-in frames at the pre-impairment configuration (observation window
  // or detection latency).
  for (int i = 0; i < lead_frames && !e.done(); ++i) {
    e.frame(PairSel::kInitPair, m0);
  }

  switch (action) {
    case Action::kNA: {
      e.settle(PairSel::kInitPair, m0);
      break;
    }
    case Action::kRA: {
      const phy::McsIndex settled = e.repair_walk(PairSel::kInitPair, m0);
      if (settled >= 0) {
        e.settle(PairSel::kInitPair, settled);
      } else {
        // RA exhausted all MCSs: BA, then RA again on the new best pair.
        e.silence(params.ba_overhead_ms);
        const phy::McsIndex after = e.repair_walk(PairSel::kBestPair, m0);
        if (after >= 0) {
          e.settle(PairSel::kBestPair, after);
        } else {
          e.dead_air();
        }
      }
      break;
    }
    case Action::kBA: {
      e.silence(params.ba_overhead_ms);
      const phy::McsIndex settled = e.repair_walk(PairSel::kBestPair, m0);
      if (settled >= 0) {
        e.settle(PairSel::kBestPair, settled);
      } else {
        e.dead_air();
      }
      break;
    }
  }
  return e.finish();
}

EventResult EventSimulator::run_libra(const trace::CaseRecord& rec,
                                      const EventParams& params,
                                      util::Rng& rng,
                                      bool record_series) const {
  if (!classifier_ || !classifier_->trained()) {
    throw std::logic_error("LiBRA strategy requires a trained classifier");
  }
  const phy::McsIndex m0 = rec.init_mcs;
  const double cdr0 =
      rec.new_at_init_pair.cdr[static_cast<std::size_t>(m0)];
  // A frame's Block ACK survives as long as one of ~32 subframes decodes.
  const double p_ack = 1.0 - std::pow(1.0 - cdr0, 32.0);

  // Missing ACK on the first impaired frame: the Tx has no PHY metrics, the
  // distilled rule fires immediately (Sec. 7, issue 3).
  if (!rng.bernoulli(p_ack)) {
    const Action a = classifier_->no_ack_action(m0, params.ba_overhead_ms);
    return play(rec, a, /*lead_frames=*/1, params, record_series);
  }

  // ACKs flow: LiBRA observes one 2-frame window, then classifies; an NA
  // verdict is re-examined on subsequent windows (fresh observation noise).
  const trace::FeatureVector features = trace::extract_features(rec);
  constexpr int kMaxNaRedecisions = 5;
  int lead = 2;
  for (int round = 0; round <= kMaxNaRedecisions; ++round) {
    const Action a = classifier_->classify(features, rng);
    if (a != Action::kNA) return play(rec, a, lead, params, record_series);
    lead += 2;
  }
  return play(rec, Action::kNA, 0, params, record_series);
}

EventResult EventSimulator::run(const trace::CaseRecord& rec,
                                core::Strategy strategy,
                                const EventParams& params, util::Rng& rng,
                                bool record_series) const {
  const phy::McsIndex m0 = rec.init_mcs;
  const bool init_working = [&] {
    const auto i = static_cast<std::size_t>(m0);
    return trace::is_working(rec.new_at_init_pair.cdr[i],
                             rec.new_at_init_pair.throughput_mbps[i],
                             params.rule);
  }();

  // Everyone needs one transmitted frame to notice the impairment; even an
  // oracle cannot adapt before the first failed/degraded frame.
  constexpr int kDetectFrames = 1;
  switch (strategy) {
    case core::Strategy::kRaFirst:
      // Trigger only when the current MCS stops working (Sec. 8.1).
      return play(rec, init_working ? Action::kNA : Action::kRA,
                  kDetectFrames, params, record_series);
    case core::Strategy::kBaFirst:
      return play(rec, init_working ? Action::kNA : Action::kBA,
                  kDetectFrames, params, record_series);
    case core::Strategy::kBeamSounding: {
      // MOCA-style: hop to the pre-sounded failover pair at (nearly) zero
      // cost, rate-adapt there, and only run a full sweep if the failover
      // pair is dead too.
      if (init_working) {
        return play(rec, Action::kNA, kDetectFrames, params, record_series);
      }
      Engine e(rec, params, record_series);
      for (int i = 0; i < kDetectFrames && !e.done(); ++i) {
        e.frame(PairSel::kInitPair, rec.init_mcs);
      }
      const phy::McsIndex settled =
          e.repair_walk(PairSel::kFailoverPair, rec.init_mcs);
      if (settled >= 0) {
        e.settle(PairSel::kFailoverPair, settled);
      } else {
        e.silence(params.ba_overhead_ms);
        const phy::McsIndex after =
            e.repair_walk(PairSel::kBestPair, rec.init_mcs);
        if (after >= 0) {
          e.settle(PairSel::kBestPair, after);
        } else {
          e.dead_air();
        }
      }
      return e.finish();
    }
    case core::Strategy::kLibra:
      return run_libra(rec, params, rng, record_series);
    case core::Strategy::kOracleData: {
      EventResult best;
      bool first = true;
      for (Action a : {Action::kNA, Action::kRA, Action::kBA}) {
        EventResult r = play(rec, a, kDetectFrames, params, record_series);
        if (first || r.bytes_mb > best.bytes_mb) {
          best = std::move(r);
          first = false;
        }
      }
      return best;
    }
    case core::Strategy::kOracleDelay: {
      EventResult best;
      bool first = true;
      for (Action a : {Action::kNA, Action::kRA, Action::kBA}) {
        EventResult r = play(rec, a, kDetectFrames, params, record_series);
        const bool better =
            first || r.recovery_delay_ms < best.recovery_delay_ms ||
            (r.recovery_delay_ms == best.recovery_delay_ms &&
             r.bytes_mb > best.bytes_mb);
        if (better) {
          best = std::move(r);
          first = false;
        }
      }
      return best;
    }
  }
  throw std::invalid_argument("unknown strategy");
}

}  // namespace libra::sim
