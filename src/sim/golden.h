// Canonical faulted-fleet regression run (the golden-trace gate).
//
// run_canonical_faulted_fleet() builds a fixed 3-station mixed fleet (two
// LiBRA stations, one RA-first baseline) over a self-contained synthetic
// classifier, attaches faults::demo_plan(fault_seed), and runs it to
// completion with frame logs kept. Everything -- dataset, forest seed,
// station geometry, scripts -- is hard-coded here, so the run is a pure
// function of (fleet_seed, fault_seed).
//
// degradation_digest() folds the per-link frame logs into one FNV-1a 64
// value over integer-ish fields only (link index, frame index, MCS, action,
// ACK) -- deliberately excluding goodput and timestamps, whose doubles
// depend on libm rounding and would make the digest platform-sensitive.
// tests/faults_test.cpp pins the digest for the default seeds;
// tools/fault_digest prints it so a refresh is one command.
#pragma once

#include <cstdint>

#include "sim/fleet.h"

namespace libra::sim {

inline constexpr std::uint64_t kGoldenFleetSeed = 77;
inline constexpr std::uint64_t kGoldenFaultSeed = 1234;
// The pinned digest of the canonical run at the seeds above. Refresh after
// a deliberate behavior change by running `build/tools/fault_digest` and
// pasting the value it prints.
inline constexpr std::uint64_t kGoldenDigest = 0xb7cd6e51aba0ec4aULL;

// Run the canonical faulted fleet. Deterministic for fixed seeds at any
// forest thread count (the fleet determinism contract).
FleetResult run_canonical_faulted_fleet(std::uint64_t fleet_seed,
                                        std::uint64_t fault_seed);

// FNV-1a 64 over (link idx, frame idx, mcs, action, ack) of every frame of
// every link, in order.
std::uint64_t degradation_digest(const FleetResult& result);

}  // namespace libra::sim
