// Multi-impairment timelines (Sec. 8.3).
//
// A timeline is 10 segments of random duration (300 ms - 3 s). Four types:
//   Motion       - every segment starts with a fresh displacement event;
//   Blockage     - alternates human-blockage segments and clear-LOS segments;
//   Interference - alternates interfered and clear-channel segments;
//   Mixed        - a random mixture of the three.
//
// An impaired segment replays a collected case (the device enters it at the
// case's initial configuration, as in the paper's per-segment trace
// stitching); a clear segment continues from the configuration the strategy
// settled on, using the pre-impairment trace of that pair.
#pragma once

#include <vector>

#include "sim/event_sim.h"

namespace libra::sim {

enum class ScenarioType { kMotion, kBlockage, kInterference, kMixed };
std::string to_string(ScenarioType t);

inline constexpr ScenarioType kAllScenarioTypes[] = {
    ScenarioType::kMotion, ScenarioType::kBlockage,
    ScenarioType::kInterference, ScenarioType::kMixed};

struct TimelineSegment {
  const trace::CaseRecord* record = nullptr;
  bool impaired = true;
  double duration_ms = 1000.0;
};

struct TimelineConfig {
  int segments = 10;
  double min_segment_ms = 300.0;
  double max_segment_ms = 3000.0;
};

// Pools of case records per impairment type, drawn from a dataset.
struct RecordPools {
  std::vector<const trace::CaseRecord*> displacement;
  std::vector<const trace::CaseRecord*> blockage;
  std::vector<const trace::CaseRecord*> interference;

  static RecordPools from_dataset(const trace::Dataset& ds);
};

std::vector<TimelineSegment> make_timeline(ScenarioType type,
                                           const RecordPools& pools,
                                           const TimelineConfig& cfg,
                                           util::Rng& rng);

struct TimelineResult {
  double bytes_mb = 0.0;
  double avg_recovery_delay_ms = 0.0;  // sum of delays / number of breaks
  int link_breaks = 0;
  std::vector<std::pair<double, double>> tput_segments;  // when recorded
};

TimelineResult run_timeline(const std::vector<TimelineSegment>& timeline,
                            core::Strategy strategy,
                            const EventSimulator& simulator,
                            const EventParams& params, util::Rng& rng,
                            bool record_series = false);

}  // namespace libra::sim
