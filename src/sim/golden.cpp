#include "sim/golden.h"

#include <memory>
#include <optional>
#include <vector>

#include "env/registry.h"

namespace libra::sim {

namespace {

constexpr int kNumMcs = 9;

// Synthetic fixtures mirroring the test corpus: a PairTrace where MCSs
// [0, highest_working] deliver their full rate and everything above
// delivers nothing.
trace::PairTrace golden_trace(int highest_working) {
  const double rates[kNumMcs] = {300,  385,  770,  1155, 1540,
                                 1925, 2310, 3080, 4750};
  trace::PairTrace t;
  t.snr_db = 10.0 + 2.0 * highest_working;
  t.noise_dbm = -74.0;
  t.tof_ns = 20.0;
  t.pdp.assign(64, 1e-12);
  t.pdp[20] = 1e-6;
  t.csi.assign(32, 1.0);
  t.throughput_mbps.resize(kNumMcs);
  t.cdr.resize(kNumMcs);
  for (int m = 0; m < kNumMcs; ++m) {
    const bool works = m <= highest_working;
    t.cdr[static_cast<std::size_t>(m)] = works ? 0.95 : 0.0;
    t.throughput_mbps[static_cast<std::size_t>(m)] =
        works ? rates[m] * 0.92 : 0.0;
  }
  return t;
}

trace::CaseRecord golden_record(int init, int after_ra, int after_ba) {
  trace::CaseRecord rec;
  rec.env_name = "golden";
  rec.position_id = "golden#0";
  rec.init_best = golden_trace(init);
  rec.init_mcs = init;
  rec.new_at_init_pair = golden_trace(after_ra);
  rec.new_best = golden_trace(after_ba);
  rec.init_failover = golden_trace(init > 0 ? init - 1 : 0);
  rec.new_at_failover = golden_trace(after_ba);
  return rec;
}

// A trained 3-class classifier over clearly separated synthetic cases, with
// a multi-threaded forest so the golden run also exercises the thread-count
// invariance of the determinism contract.
const core::LibraClassifier& golden_classifier() {
  static const core::LibraClassifier clf = [] {
    trace::Dataset ds;
    for (int i = 0; i < 40; ++i) {
      trace::CaseRecord ba = golden_record(4, -1, 4);
      ba.init_best.snr_db = 20.0;
      ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
      ba.new_at_init_pair.tof_ns = std::nullopt;
      ds.records.push_back(ba);
      trace::CaseRecord ra = golden_record(8, 5, 5);
      ra.init_best.snr_db = 26.0;
      ra.init_best.tof_ns = 20.0;
      ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
      ra.new_at_init_pair.tof_ns = 45.0;
      ds.records.push_back(ra);
      trace::CaseRecord na = golden_record(6, 6, 6);
      na.forced_na = true;
      na.init_best.snr_db = 22.0;
      na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
      ds.na_records.push_back(na);
    }
    core::LibraClassifierConfig cfg;
    cfg.forest.num_threads = 4;
    core::LibraClassifier c(cfg);
    util::Rng rng(1);
    c.train(ds, {}, rng);
    return c;
  }();
  return clf;
}

const phy::ErrorModel& golden_error_model() {
  static const phy::McsTable table;
  static const phy::ErrorModel em(&table);
  return em;
}

// One station's whole world, owned in one place so the fleet members can
// borrow raw pointers.
struct GoldenStation {
  env::Environment env;
  array::PhasedArray ap;
  array::PhasedArray client;
  channel::Link link;
  std::unique_ptr<core::LinkController> controller;
  SessionScript script;

  GoldenStation(const array::Codebook* codebook, geom::Vec2 client_pos,
                bool libra)
      : env(env::make_lobby()),
        ap({2, 6}, 0.0, codebook),
        client(client_pos, 180.0, codebook),
        link(&env, &ap, &client) {
    if (libra) {
      controller = std::make_unique<core::LibraController>(
          &link, &golden_error_model(), &golden_classifier());
    } else {
      controller = std::make_unique<core::RaFirstController>(
          &link, &golden_error_model(), core::ControllerConfig{});
    }
  }
};

}  // namespace

FleetResult run_canonical_faulted_fleet(std::uint64_t fleet_seed,
                                        std::uint64_t fault_seed) {
  const array::Codebook codebook;
  std::vector<std::unique_ptr<GoldenStation>> stations;

  // Station 0: stationary LiBRA link hit by a mid-run blockage episode.
  stations.push_back(
      std::make_unique<GoldenStation>(&codebook, geom::Vec2{10, 6}, true));
  stations[0]->script.duration_ms = 2000.0;
  stations[0]->script.rx_trajectory = Trajectory::stationary({10, 6}, 180.0);
  stations[0]->script.blockage.push_back({600.0, 1400.0, {{6, 6}, 0.3, 35.0}});

  // Station 1: walking LiBRA link (displacement impairment).
  stations.push_back(
      std::make_unique<GoldenStation>(&codebook, geom::Vec2{12, 7}, true));
  stations[1]->script.duration_ms = 2000.0;
  stations[1]->script.rx_trajectory =
      Trajectory::walk({12, 7}, {18, 8}, 2000.0, geom::Vec2{2, 6});

  // Station 2: RA-first baseline under an interference burst.
  stations.push_back(
      std::make_unique<GoldenStation>(&codebook, geom::Vec2{9, 5}, false));
  stations[2]->script.duration_ms = 2000.0;
  stations[2]->script.rx_trajectory = Trajectory::stationary({9, 5}, 180.0);
  stations[2]->script.interference.push_back(
      {500.0, 1500.0, {{10, 1}, 50.0, 0.5}});

  std::vector<FleetLink> members;
  members.reserve(stations.size());
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  FleetConfig cfg;
  cfg.seed = fleet_seed;
  cfg.keep_frame_logs = true;
  cfg.faults = faults::demo_plan(fault_seed);
  return run_fleet(members, cfg);
}

std::uint64_t degradation_digest(const FleetResult& result) {
  // FNV-1a 64 over little-endian-independent integer values: feed each
  // field as its own 64-bit quantity, byte by byte, in a fixed order.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      h ^= (value >> (8 * b)) & 0xFFULL;
      h *= 1099511628211ULL;
    }
  };
  for (std::size_t i = 0; i < result.links.size(); ++i) {
    const std::vector<core::FrameReport>& log = result.links[i].frame_log;
    mix(i);
    mix(log.size());
    for (std::size_t f = 0; f < log.size(); ++f) {
      const core::FrameReport& r = log[f];
      mix(f);
      mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.mcs)));
      mix(static_cast<std::uint64_t>(static_cast<int>(r.action)));
      mix(r.ack ? 1u : 0u);
    }
  }
  return h;
}

}  // namespace libra::sim
