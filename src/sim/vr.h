// VR streaming application model (Sec. 8.4).
//
// 8K VR at 60 FPS with a bandwidth demand of ~1.2 Gbps, streamed over the
// link a strategy maintains through a mobility timeline. The paper uses a
// 30-s Viking Village scene; we generate a synthetic frame-size trace with
// the same statistics (scene-motion modulation + periodic I-frame spikes).
// Link throughputs are scaled down to what COTS 802.11ad devices achieve
// (up to ~2.4 Gbps) as the paper does.
//
// Playout: video frame i is due at i/60 s; a frame that has not fully
// arrived by its deadline stalls playback until it arrives. We report the
// average stall duration and the average number of stalls (Table 4).
#pragma once

#include <vector>

#include "sim/timeline.h"
#include "util/rng.h"

namespace libra::sim {

struct VrConfig {
  double fps = 60.0;
  double bitrate_mbps = 1200.0;  // 8K VR demand (Sec. 8.4)
  // Frame-size modulation: slow scene-motion swing and I-frame spikes.
  double scene_swing = 0.25;     // +-25% slow modulation
  double iframe_boost = 1.8;     // I-frames are ~1.8x the mean
  int gop_frames = 30;
  // COTS 802.11ad tops out around 2.4 Gbps; scale the trace throughputs.
  double cots_scale = 2400.0 / 4750.0;
};

// Synthetic frame sizes (MB) for a scene of the given duration.
std::vector<double> generate_frame_sizes_mb(const VrConfig& cfg,
                                            double duration_ms,
                                            util::Rng& rng);

struct VrResult {
  double total_stall_ms = 0.0;
  int stalls = 0;
  double avg_stall_ms = 0.0;
};

// Play the frame sequence over a piecewise-constant throughput timeline.
VrResult play_vr(const std::vector<double>& frame_sizes_mb,
                 const std::vector<std::pair<double, double>>& tput_segments,
                 const VrConfig& cfg);

}  // namespace libra::sim
