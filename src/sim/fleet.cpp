#include "sim/fleet.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/decision_backend.h"
#include "core/trainer.h"
#include "obs/aggregate.h"
#include "obs/scrape.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace libra::sim {

namespace {
// Fleet serving telemetry: per-phase latency and throughput counters. The
// tick histogram is fed from the same StopWatch measurement that fills
// FleetResult::tick_latency_us (one source of truth). Phase histograms are
// per-shard observations (shards tick concurrently), the tick histogram is
// per fleet-wide lockstep round.
struct FleetMetrics {
  obs::Counter& ticks;
  obs::Counter& batched_rows;
  obs::Counter& link_frames;
  obs::Counter& degraded_decisions;  // shared with the controller's counter
  obs::Histogram& tick_latency_us;
  obs::Histogram& gather_us;
  obs::Histogram& decide_us;
  obs::Histogram& scatter_us;
};
FleetMetrics& fleet_metrics() {
  obs::Registry& r = obs::Registry::global();
  static FleetMetrics m{r.counter("fleet.ticks"),
                        r.counter("fleet.batched_rows"),
                        r.counter("fleet.link_frames"),
                        r.counter("controller.degraded_decisions"),
                        r.histogram("fleet.tick_latency_us"),
                        r.histogram("fleet.gather_us"),
                        r.histogram("fleet.decide_us"),
                        r.histogram("fleet.scatter_us")};
  return m;
}

// Feature rows pending inference against one classifier, SoA: rows[m] is
// jittered from *row_rngs[m] and its verdict lands in slot row_slot[m].
// The arenas are cleared (capacity kept) every tick, so steady-state ticks
// allocate nothing.
struct Group {
  const core::LibraClassifier* key = nullptr;
  std::vector<trace::FeatureVector> rows;
  std::vector<util::Rng*> row_rngs;
  std::vector<std::size_t> row_slot;  // shard-local request slot per row
};

// One contiguous range of links [begin, end) stepped as a unit. All hot
// per-tick state lives in flat arenas indexed by shard-local slot
// (global link i <-> slot i - begin): request slots are plain
// DecisionRequest values guarded by a has_request byte (no
// std::optional churn -- slots are overwritten in place each tick), and
// group_of gives amortized O(1) classifier -> row-arena lookup in gather
// (the old loop rescanned the group list per request). Shards never share
// mutable state, so shard ticks run concurrently without locks.
struct Shard {
  // Online-learning row stream (FleetConfig::trainer): a sampled inference
  // decision parks here until the link's next observe reveals its outcome
  // in hindsight. Slot-indexed like the request arena.
  struct PendingRow {
    unsigned char active = 0;
    trace::FeatureVector features{};  // decision-time features, un-jittered
    trace::Action served = trace::Action::kNA;
  };

  std::size_t begin = 0;
  std::size_t end = 0;
  bool finished = false;  // every link done -- skip all later ticks
  bool stepped = false;   // did any link transmit this tick
  std::vector<core::DecisionRequest> requests;  // slot-indexed, flat
  std::vector<unsigned char> has_request;
  std::vector<trace::Action> verdicts;
  std::vector<Group> groups;  // first-appearance order, persistent arenas
  std::unordered_map<const core::LibraClassifier*, std::size_t> group_of;
  std::vector<PendingRow> pending;        // trainer only
  std::vector<std::uint64_t> sample_seq;  // per-link inference-decision count
  std::int64_t batched_rows = 0;
  std::int64_t link_frames = 0;
  std::int64_t trainer_rows = 0;
};
}  // namespace

FleetResult run_fleet(std::span<const FleetLink> links,
                      const FleetConfig& cfg) {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (!links[i].environment || !links[i].link || !links[i].controller) {
      throw std::invalid_argument("run_fleet: null member in fleet link " +
                                  std::to_string(i));
    }
  }
  if (cfg.shards < 0) {
    throw std::invalid_argument("run_fleet: shards must be >= 0, got " +
                                std::to_string(cfg.shards));
  }
  if (cfg.num_threads < 0) {
    throw std::invalid_argument("run_fleet: num_threads must be >= 0, got " +
                                std::to_string(cfg.num_threads));
  }
  if (cfg.scrape_port < 0 || cfg.scrape_port > 65535) {
    throw std::invalid_argument("run_fleet: scrape_port must be in [0, 65535], got " +
                                std::to_string(cfg.scrape_port));
  }
  cfg.faults.validate();
  FleetMetrics& metrics = fleet_metrics();

  // Live observability for this run: an aggregator rolling the registry
  // (and the daemon's StatsPush-merged snapshots when the backend has a
  // peer) into time series, scraped over HTTP. Strictly observation-only --
  // the roll-up thread reads shards and clocks, never Rng or link state --
  // so the digest is bit-identical with or without it.
  std::unique_ptr<obs::Aggregator> aggregator;
  std::unique_ptr<obs::ScrapeServer> scrape_server;
  if (cfg.scrape_port > 0) {
    obs::AggregatorConfig agg_cfg;
    agg_cfg.rollup_period_ms = cfg.scrape_rollup_ms;
    agg_cfg.local_origin = "controller";
    aggregator = std::make_unique<obs::Aggregator>(agg_cfg);
    if (cfg.backend != nullptr) {
      core::DecisionBackend* backend = cfg.backend;
      // Peers are labeled by the origin the daemon itself reports
      // (ServerConfig::stats_origin, default "daemon").
      aggregator->add_source(
          [backend]() -> std::optional<obs::LabeledSnapshot> {
            std::optional<core::PeerStats> stats = backend->peer_stats();
            if (!stats.has_value()) return std::nullopt;
            return obs::LabeledSnapshot{std::move(stats->origin),
                                        std::move(stats->snapshot)};
          });
    }
    aggregator->rollup_now();  // first collection point before tick 0
    aggregator->start();
    obs::ScrapeConfig scrape_cfg;
    scrape_cfg.port = cfg.scrape_port;
    scrape_server = std::make_unique<obs::ScrapeServer>(*aggregator, scrape_cfg);
    scrape_server->start();
  }

  // Fork every link's stream up front, in GLOBAL link order: neither the
  // shard layout nor the thread schedule can perturb what an individual
  // link draws. This line is the whole determinism proof -- everything
  // after it only ever touches rngs[i] from link i's own gather / decide
  // row / scatter, which live on exactly one shard.
  util::Rng fleet_rng(cfg.seed);
  std::vector<util::Rng> rngs;
  rngs.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    rngs.push_back(fleet_rng.fork());
  }

  // Fault streams are forked off the *fault* seed, again in global link
  // order -- never off the simulation streams, so attaching a plan perturbs
  // nothing but the faults it injects, and an empty plan attaches nothing
  // at all. The guard detaches every injector on any exit path
  // (controllers are non-owning and may outlive this call).
  struct InjectorGuard {
    std::span<const FleetLink> links;
    std::vector<faults::FaultInjector> injectors;
    ~InjectorGuard() {
      for (std::size_t i = 0; i < injectors.size(); ++i) {
        links[i].controller->set_fault_injector(nullptr);
      }
    }
  } guard{links, {}};
  if (!cfg.faults.empty()) {
    util::Rng fault_rng(cfg.faults.seed);
    guard.injectors.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      guard.injectors.emplace_back(&cfg.faults, fault_rng.fork());
      links[i].controller->set_fault_injector(&guard.injectors[i]);
    }
  }

  std::vector<SessionDriver> drivers;
  drivers.reserve(links.size());
  for (const FleetLink& l : links) {
    drivers.emplace_back(*l.environment, *l.link, *l.controller, l.script,
                         cfg.keep_frame_logs);
  }

  // Resolve the shard/thread grid. One shard per worker by default; an
  // explicit shard count decouples arena granularity from parallelism
  // (and any combination is bit-identical, so it's purely a perf knob).
  const int threads = util::ThreadPool::resolve(cfg.num_threads);
  std::size_t num_shards =
      cfg.shards == 0 ? static_cast<std::size_t>(std::max(threads, 1))
                      : static_cast<std::size_t>(cfg.shards);
  num_shards = std::min(num_shards, links.size());

  std::vector<Shard> shards;
  shards.reserve(num_shards);
  if (num_shards > 0) {
    const std::size_t base = links.size() / num_shards;
    const std::size_t extra = links.size() % num_shards;
    std::size_t begin = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t size = base + (s < extra ? 1 : 0);
      Shard shard;
      shard.begin = begin;
      shard.end = begin + size;
      shard.requests.resize(size);
      shard.has_request.assign(size, 0);
      shard.verdicts.assign(size, trace::Action::kNA);
      if (cfg.trainer != nullptr) {
        shard.pending.resize(size);
        shard.sample_seq.assign(size, 0);
      }
      shards.push_back(std::move(shard));
      begin += size;
    }
  }
  // One row ring per shard: a shard's scatter is its ring's only producer,
  // so offers only ever contend with the trainer's drain, never each other.
  if (cfg.trainer != nullptr) cfg.trainer->attach_producers(shards.size());

  // The pool is only spun up when it can actually overlap shard work.
  // Forest inference inside a shard tick stays safe: classify_batch on a
  // pool worker runs inline (ThreadPool::in_worker()), never nested-pooled.
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (threads > 1 && shards.size() > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(threads);
  }
  util::ThreadPool* pool = owned_pool.get();

  // Initial association. start(rngs[i]) touches only link i's own state
  // and stream, so per-shard parallel start is bit-identical to the
  // serial loop.
  util::parallel_for(pool, shards.size(), [&](std::size_t s) {
    for (std::size_t i = shards[s].begin; i < shards[s].end; ++i) {
      drivers[i].start(rngs[i]);
    }
  });

  FleetResult result;
  result.shards_used = static_cast<int>(num_shards);

  // One shard's full gather -> decide -> scatter tick. Under the pool,
  // shard k can be deep in its decide (batched inference) while shard k+1
  // is still gathering (environment stepping): the request/row arenas are
  // the double buffer -- filled by gather, drained by decide/scatter --
  // and nothing below synchronizes until the tick boundary.
  auto tick_shard = [&](std::size_t s, std::int64_t tick) {
    Shard& shard = shards[s];
    shard.stepped = false;

    // Gather: every active link transmits one frame; rows needing
    // inference are appended to their classifier's contiguous arena.
    {
      OBS_SPAN("fleet.gather", &metrics.gather_us);
      for (Group& group : shard.groups) {
        group.rows.clear();
        group.row_rngs.clear();
        group.row_slot.clear();
      }
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        const std::size_t slot = i - shard.begin;
        if (drivers[i].done()) {
          shard.has_request[slot] = 0;
          continue;
        }
        shard.requests[slot] = drivers[i].observe(rngs[i]);
        shard.has_request[slot] = 1;
        const core::DecisionRequest& req = shard.requests[slot];
        // A parked row's outcome is now visible: this frame's report says
        // whether the sampled decision kept the link working. The offer
        // never blocks (try_lock + drop-oldest inside the ring).
        if (cfg.trainer != nullptr && shard.pending[slot].active) {
          Shard::PendingRow& parked = shard.pending[slot];
          parked.active = 0;
          core::TrainRow row;
          row.tick = tick;
          row.link = static_cast<std::uint32_t>(i);
          row.features = parked.features;
          row.label = core::hindsight_label(parked.served, req.report,
                                            cfg.trainer->config().hindsight);
          cfg.trainer->offer(s, std::move(row));
          ++shard.trainer_rows;
        }
        if (req.needs_inference()) {
          const auto [it, inserted] =
              shard.group_of.try_emplace(req.classifier, shard.groups.size());
          if (inserted) {
            shard.groups.emplace_back();
            shard.groups.back().key = req.classifier;
          }
          Group& group = shard.groups[it->second];
          group.rows.push_back(req.features);
          group.row_rngs.push_back(&rngs[i]);
          group.row_slot.push_back(slot);
        } else {
          shard.verdicts[slot] = req.resolved_without_inference();
        }
      }
    }

    // Decide: one batched inference per classifier with pending rows;
    // row order is link order, each row jittered from its own stream.
    {
      OBS_SPAN("fleet.decide", &metrics.decide_us);
      for (Group& group : shard.groups) {
        if (group.rows.empty()) continue;
        // FleetConfig::backend overrides every classifier's own backend;
        // null falls through to whatever the classifier was configured
        // with (in-process by default).
        core::DecisionBackend* backend =
            cfg.backend != nullptr ? cfg.backend : group.key->backend();
        std::vector<trace::Action> batch;
        try {
          batch = group.key->classify_batch(group.rows, group.row_rngs,
                                            backend);
        } catch (const core::BackendOutageError&) {
          // The jitter draws for this batch are already consumed, so the
          // per-link streams stay aligned with a healthy run. Substitute
          // each row's plan-time rung-2 verdict (the RA-first rule frozen
          // in DecisionRequest::outage_fallback) and keep the fleet
          // ticking -- a dead daemon degrades the fleet, never stops it.
          core::outage_fallback_counter().inc(group.rows.size());
          metrics.degraded_decisions.inc(group.rows.size());
          for (const std::size_t slot : group.row_slot) {
            shard.verdicts[slot] = shard.requests[slot].outage_fallback;
          }
          shard.batched_rows += static_cast<std::int64_t>(group.rows.size());
          metrics.batched_rows.inc(group.rows.size());
          continue;
        }
        for (std::size_t m = 0; m < batch.size(); ++m) {
          shard.verdicts[group.row_slot[m]] = batch[m];
        }
        shard.batched_rows += static_cast<std::int64_t>(group.rows.size());
        metrics.batched_rows.inc(group.rows.size());
      }
    }

    // Scatter: act on the verdicts and account the frames.
    {
      OBS_SPAN("fleet.scatter", &metrics.scatter_us);
      std::size_t applied = 0;
      for (std::size_t slot = 0; slot < shard.requests.size(); ++slot) {
        if (!shard.has_request[slot]) continue;
        const std::size_t i = shard.begin + slot;
        drivers[i].apply(shard.verdicts[slot], shard.requests[slot], rngs[i]);
        // Sample this link's inference decisions for the trainer's row
        // stream. wants() is a pure hash of (trainer seed, link, per-link
        // decision sequence) -- no Rng stream is touched, so the sampling
        // (and an attached trainer whose gates never fire) cannot perturb
        // the simulation.
        if (cfg.trainer != nullptr && shard.requests[slot].needs_inference()) {
          const std::uint64_t seq = shard.sample_seq[slot]++;
          if (cfg.trainer->wants(static_cast<std::uint32_t>(i), seq)) {
            shard.pending[slot] = Shard::PendingRow{
                1, shard.requests[slot].features, shard.verdicts[slot]};
          }
        }
        ++applied;
      }
      if (applied > 0) {
        shard.stepped = true;
        shard.link_frames += static_cast<std::int64_t>(applied);
        metrics.link_frames.inc(applied);
      }
    }
    if (!shard.stepped) shard.finished = true;
  };

  bool any_active = !shards.empty();
  std::int64_t tick = 0;
  while (any_active) {
    const obs::StopWatch tick_watch;
    OBS_SPAN("fleet.tick");
    util::parallel_for(pool, shards.size(), [&](std::size_t s) {
      if (!shards[s].finished) tick_shard(s, tick);
    });
    any_active = false;
    for (const Shard& shard : shards) {
      if (shard.stepped) any_active = true;
    }
    if (any_active) {
      ++result.ticks;
      metrics.ticks.inc();
      const double tick_us = tick_watch.elapsed_us();
      result.tick_latency_us.add(tick_us);
      metrics.tick_latency_us.observe(tick_us);
      // Pinned-schedule trainer mode: drain + scheduled swaps run here, in
      // the serial region after the shard barrier, so a swap lands at a
      // deterministic tick boundary whatever the (shards, threads) grid.
      if (cfg.trainer != nullptr && cfg.trainer->pinned_schedule()) {
        cfg.trainer->on_tick(tick);
      }
    }
    ++tick;
  }

  for (const Shard& shard : shards) {
    result.batched_rows += shard.batched_rows;
    result.link_frames += shard.link_frames;
    result.trainer_rows_sampled += shard.trainer_rows;
  }
  result.links.reserve(drivers.size());
  for (SessionDriver& driver : drivers) {
    result.links.push_back(driver.finish());
  }
  result.metrics = obs::Registry::global().snapshot();
  return result;
}

}  // namespace libra::sim
