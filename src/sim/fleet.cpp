#include "sim/fleet.h"

#include <optional>
#include <stdexcept>
#include <vector>

#include "obs/span.h"

namespace libra::sim {

namespace {
// Fleet serving telemetry: per-phase latency and throughput counters. The
// tick histogram is fed from the same StopWatch measurement that fills
// FleetResult::tick_latency_us (one source of truth).
struct FleetMetrics {
  obs::Counter& ticks;
  obs::Counter& batched_rows;
  obs::Histogram& tick_latency_us;
  obs::Histogram& gather_us;
  obs::Histogram& decide_us;
  obs::Histogram& scatter_us;
};
FleetMetrics& fleet_metrics() {
  obs::Registry& r = obs::Registry::global();
  static FleetMetrics m{r.counter("fleet.ticks"),
                        r.counter("fleet.batched_rows"),
                        r.histogram("fleet.tick_latency_us"),
                        r.histogram("fleet.gather_us"),
                        r.histogram("fleet.decide_us"),
                        r.histogram("fleet.scatter_us")};
  return m;
}
}  // namespace

FleetResult run_fleet(std::span<const FleetLink> links,
                      const FleetConfig& cfg) {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (!links[i].environment || !links[i].link || !links[i].controller) {
      throw std::invalid_argument("run_fleet: null member in fleet link " +
                                  std::to_string(i));
    }
  }
  cfg.faults.validate();
  FleetMetrics& metrics = fleet_metrics();

  // Fork every link's stream up front, in link order: the fleet schedule
  // can never perturb what an individual link draws.
  util::Rng fleet_rng(cfg.seed);
  std::vector<util::Rng> rngs;
  rngs.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    rngs.push_back(fleet_rng.fork());
  }

  // Fault streams are forked off the *fault* seed, again in link order --
  // never off the simulation streams, so attaching a plan perturbs nothing
  // but the faults it injects, and an empty plan attaches nothing at all.
  // The guard detaches every injector on any exit path (controllers are
  // non-owning and may outlive this call).
  struct InjectorGuard {
    std::span<const FleetLink> links;
    std::vector<faults::FaultInjector> injectors;
    ~InjectorGuard() {
      for (std::size_t i = 0; i < injectors.size(); ++i) {
        links[i].controller->set_fault_injector(nullptr);
      }
    }
  } guard{links, {}};
  if (!cfg.faults.empty()) {
    util::Rng fault_rng(cfg.faults.seed);
    guard.injectors.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      guard.injectors.emplace_back(&cfg.faults, fault_rng.fork());
      links[i].controller->set_fault_injector(&guard.injectors[i]);
    }
  }

  std::vector<SessionDriver> drivers;
  drivers.reserve(links.size());
  for (const FleetLink& l : links) {
    drivers.emplace_back(*l.environment, *l.link, *l.controller, l.script,
                         cfg.keep_frame_logs);
  }
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    drivers[i].start(rngs[i]);
  }

  FleetResult result;
  std::vector<std::optional<core::DecisionRequest>> requests(links.size());
  std::vector<trace::Action> verdicts(links.size(), trace::Action::kNA);
  // Inference rows grouped by classifier, first-appearance order (one
  // classify_batch call per distinct classifier per tick).
  std::vector<const core::LibraClassifier*> group_keys;
  std::vector<std::vector<std::size_t>> group_rows;

  bool any_active = true;
  while (any_active) {
    const obs::StopWatch tick_watch;
    OBS_SPAN("fleet.tick");
    any_active = false;

    // Gather: every active link transmits one frame.
    {
      OBS_SPAN("fleet.gather", &metrics.gather_us);
      group_keys.clear();
      group_rows.clear();
      for (std::size_t i = 0; i < drivers.size(); ++i) {
        if (drivers[i].done()) {
          requests[i].reset();
          continue;
        }
        requests[i] = drivers[i].observe(rngs[i]);
        const core::DecisionRequest& req = *requests[i];
        if (req.needs_inference()) {
          std::size_t g = 0;
          while (g < group_keys.size() && group_keys[g] != req.classifier) ++g;
          if (g == group_keys.size()) {
            group_keys.push_back(req.classifier);
            group_rows.emplace_back();
          }
          group_rows[g].push_back(i);
        } else {
          verdicts[i] = req.resolved_without_inference();
        }
      }
    }

    // Decide: one batched inference per classifier; row order is link
    // order, each row jittered from its own link's stream.
    {
      OBS_SPAN("fleet.decide", &metrics.decide_us);
      for (std::size_t g = 0; g < group_keys.size(); ++g) {
        const std::vector<std::size_t>& members = group_rows[g];
        std::vector<trace::FeatureVector> rows;
        std::vector<util::Rng*> row_rngs;
        rows.reserve(members.size());
        row_rngs.reserve(members.size());
        for (const std::size_t i : members) {
          rows.push_back(requests[i]->features);
          row_rngs.push_back(&rngs[i]);
        }
        const std::vector<trace::Action> batch =
            group_keys[g]->classify_batch(rows, row_rngs);
        for (std::size_t m = 0; m < members.size(); ++m) {
          verdicts[members[m]] = batch[m];
        }
        result.batched_rows += static_cast<int>(members.size());
        metrics.batched_rows.inc(members.size());
      }
    }

    // Scatter: act on the verdicts and account the frames.
    {
      OBS_SPAN("fleet.scatter", &metrics.scatter_us);
      for (std::size_t i = 0; i < drivers.size(); ++i) {
        if (!requests[i].has_value()) continue;
        drivers[i].apply(verdicts[i], *requests[i], rngs[i]);
        any_active = true;
      }
    }
    if (any_active) {
      ++result.ticks;
      metrics.ticks.inc();
      const double tick_us = tick_watch.elapsed_us();
      result.tick_latency_us.add(tick_us);
      metrics.tick_latency_us.observe(tick_us);
    }
  }

  result.links.reserve(drivers.size());
  for (SessionDriver& driver : drivers) {
    result.links.push_back(driver.finish());
  }
  result.metrics = obs::Registry::global().snapshot();
  return result;
}

}  // namespace libra::sim
