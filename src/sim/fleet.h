// Fleet serving: one AP-side decision engine stepping many links per tick
// (the multi-STA deployment of Algorithm 1 -- from dozens of associated
// stations up to the 10^5-10^6 links of a dense multi-gigabit deployment,
// all adapting against shared classifiers every beacon interval).
//
// The fleet is partitioned into contiguous *shards*. Each shard keeps its
// per-link hot state in structure-of-arrays arenas (decision-request slots,
// verdicts, and per-classifier feature-row arenas -- the same contiguous
// layout trick that made ml::CompiledForest 2.4-3.9x over the pointer
// walk), and each tick runs the three-phase pipeline shard by shard:
//
//   gather   every active link transmits one frame (SessionDriver::observe)
//            and its DecisionRequest lands in the shard's request arena;
//            rows needing inference are appended to that classifier's
//            contiguous row arena (amortized O(1) group lookup);
//   decide   one classify_batch call per classifier with pending rows --
//            a shard's feature rows ride one pooled forest pass;
//   scatter  verdicts flow back through apply(), which runs BA / the RA
//            walk / upward probing and accounts the frame per link.
//
// With num_threads > 1 the shard ticks are dispatched onto a
// util::ThreadPool, so batched inference for shard k overlaps environment
// stepping for shard k+1: each shard's request/row arenas are filled by its
// gather and drained by its decide/scatter with no fleet-wide barrier
// between the phases -- only the tick boundary synchronizes.
//
// Determinism contract (same discipline as the PR 1 thread-pool work): link
// i draws only from its own stream, forked off the fleet seed in global
// link order before any stepping, and classify_batch jitters rows serially
// in link order from those same streams. Shard boundaries and the thread
// schedule therefore never touch the randomness: a fleet run is
// bit-identical, link for link, to N independent run_session() calls fed
// the same forked streams -- for ANY (shards, num_threads, forest thread
// count) combination. tests/fleet_test.cpp proves this end to end.
#pragma once

#include <cstdint>
#include <span>

#include "faults/faults.h"
#include "obs/metrics.h"
#include "sim/session.h"
#include "util/stats.h"

namespace libra::core {
class DecisionBackend;  // core/decision_backend.h
class FleetTrainer;     // core/trainer.h
}

namespace libra::sim {

// One fleet member: a controller bound to its own environment and link
// (sessions mutate blockers/interferers, so members never share a world).
struct FleetLink {
  env::Environment* environment = nullptr;  // non-owning
  channel::Link* link = nullptr;            // non-owning
  core::LinkController* controller = nullptr;  // non-owning
  SessionScript script;
};

struct FleetConfig {
  // Per-link Rng streams are forked off this seed in link order: link i
  // gets the (i+1)-th fork() of Rng(seed).
  std::uint64_t seed = 1;
  bool keep_frame_logs = false;
  // Shard count: links are split into this many contiguous ranges, each
  // stepped as one unit with its own SoA arenas. 0 = one shard per worker
  // thread (minimum 1); clamped to the link count. Results are
  // bit-identical for any value (determinism contract above).
  int shards = 0;
  // Worker threads for the shard ticks: 1 = the serial legacy loop
  // (default), 0 = hardware_concurrency(), N > 1 = pool of N. Results are
  // bit-identical for any value. Throws std::invalid_argument on negative
  // shards/num_threads.
  int num_threads = 1;
  // Decision backend override for the decide phase (core/decision_backend.h).
  // Null (the default) leaves every classifier serving through its own
  // config -- in-process unless the classifier itself carries a backend. A
  // remote backend here ships every shard's jittered rows to an inference
  // daemon; a loopback daemon serving the same forest is bit-identical to
  // local for any (shards, num_threads). When the backend cannot answer
  // (BackendOutageError), every row of the failed batch falls back to its
  // plan-time rung-2 verdict (DecisionRequest::outage_fallback -- the same
  // RA-first rule as a classifier outage) and rpc.outage_fallbacks counts
  // the rows. Non-owning.
  core::DecisionBackend* backend = nullptr;
  // Deterministic fault schedule (faults/faults.h). Every link gets its own
  // fault stream, forked off Rng(faults.seed) in link order -- disjoint
  // from the simulation streams above, so an empty plan (the default) is
  // bit-identical to a run with no fault machinery at all, and a faulted
  // run replays bit-for-bit from (seed, faults.seed) at any shard/thread
  // count. Validated up front; throws std::invalid_argument on a bad plan.
  faults::FaultPlan faults{};
  // Live observability: > 0 mounts an obs::ScrapeServer on
  // 127.0.0.1:scrape_port for the duration of the run (GET /metrics,
  // /healthz, /series.json), fed by an obs::Aggregator rolling up the
  // controller's registry every scrape_rollup_ms -- plus the daemon's
  // (StatsPush-merged, origin-labeled) when `backend` has a peer. 0 (the
  // default) runs without the aggregation tier. Aggregation is
  // observation-only: the digest is bit-identical either way (proven in
  // tests/rpc_test.cpp / tests/fleet_test.cpp). Throws
  // std::invalid_argument on a port outside [0, 65535].
  int scrape_port = 0;
  double scrape_rollup_ms = 1000.0;
  // Online-learning row stream (core/trainer.h). Non-null attaches the
  // trainer as a row consumer: scatter samples each link's inference
  // decisions through the trainer's seeded hash (never the link Rng
  // streams), and the sampled decision resolves into a hindsight-labeled
  // TrainRow at that link's next observe. run_fleet sizes one ring per
  // shard (attach_producers) up front. An attached trainer that never
  // ships a swap is bit-identical to trainer == nullptr; to actually serve
  // the trainer's models, also point `backend` at trainer->backend(). With
  // a pinned swap_at_ticks schedule, run_fleet calls trainer->on_tick()
  // serially after every tick's shard barrier, so swaps land at
  // deterministic tick boundaries and the run replays bit-for-bit at any
  // (shards, num_threads); in free-running mode start() the trainer before
  // run_fleet (no replay promise). Non-owning.
  core::FleetTrainer* trainer = nullptr;
};

struct FleetResult {
  std::vector<SessionResult> links;  // per-link, in FleetLink order
  // Accounting fields are 64-bit: a 10^5-link fleet pushes ~2.1e9 batched
  // rows (int32 overflow) within minutes, and a 10^6-link run overflows
  // every int32 counter below well before it finishes.
  std::int64_t ticks = 0;         // lockstep rounds until every link finished
  std::int64_t batched_rows = 0;  // feature rows served through classify_batch
  std::int64_t link_frames = 0;   // frames transmitted across all links --
                                  // the links/s numerator for fleet benches
  // Rows offered to FleetConfig::trainer's row stream (0 with no trainer).
  std::int64_t trainer_rows_sampled = 0;
  int shards_used = 0;            // shard count after resolution/clamping
  // Wall-clock per lockstep tick (all shards' gather + batched decide +
  // scatter). The same per-tick measurement also feeds the
  // "fleet.tick_latency_us" histogram, so this and the scrape report from
  // one clock-read pair.
  util::RunningStats tick_latency_us;
  // Scrape of the global obs registry taken as the run finishes (counts
  // are process-cumulative, like any scrape endpoint). All-zero when
  // telemetry is compiled out or disabled.
  obs::MetricsSnapshot metrics;
};

// Step every link in lockstep ticks until all scripts complete. Links whose
// sessions end early (shorter scripts) simply sit out later ticks; shards
// whose links have all finished are skipped entirely. Throws
// std::invalid_argument on null members, an invalid script, or a negative
// shards/num_threads.
FleetResult run_fleet(std::span<const FleetLink> links,
                      const FleetConfig& cfg = {});

}  // namespace libra::sim
