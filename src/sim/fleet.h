// Fleet serving: one AP-side decision engine stepping many links in
// lockstep (the multi-STA deployment of Algorithm 1 -- dozens of associated
// stations adapting against one shared classifier every beacon interval).
//
// Each tick runs the three-phase pipeline across the whole fleet:
//
//   gather   every active link transmits one frame (SessionDriver::observe)
//            and emits its DecisionRequest;
//   decide   requests needing classifier inference are grouped by
//            classifier and resolved through one classify_batch call per
//            group -- N links' feature rows ride one pooled forest pass
//            instead of N independent tree walks;
//   scatter  verdicts flow back through apply(), which runs BA / the RA
//            walk / upward probing and accounts the frame per link.
//
// Determinism contract (same discipline as the PR 1 thread-pool work): link
// i draws only from its own stream, forked off the fleet seed in link order
// before any stepping, and classify_batch jitters rows serially in link
// order from those same streams. A fleet run is therefore bit-identical,
// link for link, to N independent run_session() calls fed the same forked
// streams -- regardless of forest thread count.
#pragma once

#include <span>

#include "faults/faults.h"
#include "obs/metrics.h"
#include "sim/session.h"
#include "util/stats.h"

namespace libra::sim {

// One fleet member: a controller bound to its own environment and link
// (sessions mutate blockers/interferers, so members never share a world).
struct FleetLink {
  env::Environment* environment = nullptr;  // non-owning
  channel::Link* link = nullptr;            // non-owning
  core::LinkController* controller = nullptr;  // non-owning
  SessionScript script;
};

struct FleetConfig {
  // Per-link Rng streams are forked off this seed in link order: link i
  // gets the (i+1)-th fork() of Rng(seed).
  std::uint64_t seed = 1;
  bool keep_frame_logs = false;
  // Deterministic fault schedule (faults/faults.h). Every link gets its own
  // fault stream, forked off Rng(faults.seed) in link order -- disjoint
  // from the simulation streams above, so an empty plan (the default) is
  // bit-identical to a run with no fault machinery at all, and a faulted
  // run replays bit-for-bit from (seed, faults.seed) at any forest thread
  // count. Validated up front; throws std::invalid_argument on a bad plan.
  faults::FaultPlan faults{};
};

struct FleetResult {
  std::vector<SessionResult> links;  // per-link, in FleetLink order
  int ticks = 0;          // lockstep rounds until every link finished
  int batched_rows = 0;   // feature rows served through classify_batch
  // Wall-clock per lockstep tick (gather + batched decide + scatter). The
  // same per-tick measurement also feeds the "fleet.tick_latency_us"
  // histogram, so this and the scrape report from one clock-read pair.
  util::RunningStats tick_latency_us;
  // Scrape of the global obs registry taken as the run finishes (counts
  // are process-cumulative, like any scrape endpoint). All-zero when
  // telemetry is compiled out or disabled.
  obs::MetricsSnapshot metrics;
};

// Step every link in lockstep until all scripts complete. Links whose
// sessions end early (shorter scripts) simply sit out later ticks. Throws
// std::invalid_argument on null members or an invalid script.
FleetResult run_fleet(std::span<const FleetLink> links,
                      const FleetConfig& cfg = {});

}  // namespace libra::sim
