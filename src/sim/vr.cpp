#include "sim/vr.h"

#include <cmath>
#include <numbers>

namespace libra::sim {

std::vector<double> generate_frame_sizes_mb(const VrConfig& cfg,
                                            double duration_ms,
                                            util::Rng& rng) {
  const int n = static_cast<int>(duration_ms / 1000.0 * cfg.fps);
  const double mean_mb = cfg.bitrate_mbps / 8.0 / cfg.fps;  // Mb -> MB
  std::vector<double> sizes;
  sizes.reserve(static_cast<std::size_t>(n));
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  // Normalize so the average rate stays at the configured bitrate: spread
  // the I-frame boost across the GOP.
  const double gop_norm =
      static_cast<double>(cfg.gop_frames) /
      (cfg.gop_frames - 1 + cfg.iframe_boost);
  for (int i = 0; i < n; ++i) {
    const double swing =
        1.0 + cfg.scene_swing *
                  std::sin(phase + 2.0 * std::numbers::pi * i / (cfg.fps * 4.0));
    const double iframe = (i % cfg.gop_frames == 0) ? cfg.iframe_boost : 1.0;
    const double jitter = std::exp(rng.gaussian(0.0, 0.05));
    sizes.push_back(mean_mb * swing * iframe * gop_norm * jitter);
  }
  return sizes;
}

VrResult play_vr(const std::vector<double>& frame_sizes_mb,
                 const std::vector<std::pair<double, double>>& tput_segments,
                 const VrConfig& cfg) {
  VrResult result;
  const double frame_interval_ms = 1000.0 / cfg.fps;

  // Segment boundaries as absolute times, for random access by time.
  std::vector<double> seg_start(tput_segments.size() + 1, 0.0);
  for (std::size_t s = 0; s < tput_segments.size(); ++s) {
    seg_start[s + 1] = seg_start[s] + tput_segments[s].second;
  }

  // VR frames are rendered in real time: frame i cannot start transmitting
  // before its generation time i/fps. Playout allows one frame interval of
  // pipeline latency; a frame missing that deadline stalls playback, and
  // playback resumes shifted by the accumulated stall.
  std::size_t seg = 0;
  double now_ms = 0.0;
  double playhead_delay_ms = 0.0;

  for (std::size_t i = 0; i < frame_sizes_mb.size(); ++i) {
    const double gen_ms = static_cast<double>(i) * frame_interval_ms;
    now_ms = std::max(now_ms, gen_ms);
    double remaining_mb = frame_sizes_mb[i];
    while (remaining_mb > 1e-12) {
      while (seg < tput_segments.size() && seg_start[seg + 1] <= now_ms) {
        ++seg;
      }
      if (seg >= tput_segments.size()) break;  // timeline exhausted
      const double rate_mb_per_ms =
          tput_segments[seg].first * cfg.cots_scale / 8000.0;
      const double seg_left_ms = seg_start[seg + 1] - now_ms;
      const double deliverable = rate_mb_per_ms * seg_left_ms;
      if (deliverable >= remaining_mb && rate_mb_per_ms > 0) {
        now_ms += remaining_mb / rate_mb_per_ms;
        remaining_mb = 0.0;
      } else {
        remaining_mb -= deliverable;
        now_ms = seg_start[seg + 1];
        ++seg;
      }
    }
    if (remaining_mb > 1e-12) break;  // never arrives: stop accounting here
    const double deadline_ms =
        gen_ms + frame_interval_ms + playhead_delay_ms;
    if (now_ms > deadline_ms) {
      const double stall = now_ms - deadline_ms;
      result.total_stall_ms += stall;
      ++result.stalls;
      playhead_delay_ms += stall;
    }
  }
  result.avg_stall_ms =
      result.stalls > 0 ? result.total_stall_ms / result.stalls : 0.0;
  return result;
}

}  // namespace libra::sim
