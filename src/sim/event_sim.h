// Trace-based simulation of one link-impairment event (Sec. 8.1-8.2).
//
// At t=0 the link state changes from a case's initial state to its impaired
// state. The device is transmitting aggregated frames (one per FAT) through
// the initial best pair at the initial best MCS. Each strategy then reacts:
//
//   RA First / BA First - trigger their mechanism when the current MCS stops
//     being a working MCS (Sec. 8.1);
//   LiBRA - per-frame: a missing Block ACK triggers the no-ACK rule; every
//     other frame with ACKs the 3-class classifier decides BA / RA / NA;
//   oracles - evaluate all three plays (NA, RA-then-maybe-BA, BA-then-RA)
//     and pick the best for their metric.
//
// Throughput during every frame comes from the collected traces (per pair
// and per MCS); BA costs ba_overhead_ms of silence; each RA probe costs one
// FAT at the probed MCS's trace throughput. After settling, all strategies
// run the same periodic upward probing (Sec. 8.1 "all algorithms use the
// same mechanism as LiBRA to probe higher rates").
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "core/classifier.h"
#include "core/rate_adaptation.h"
#include "core/strategy.h"
#include "mac/timing.h"
#include "trace/dataset.h"

namespace libra::sim {

enum class PairSel { kInitPair, kBestPair, kFailoverPair };

struct EventParams {
  double fat_ms = 10.0;
  double ba_overhead_ms = 5.0;
  double flow_ms = 1000.0;
  trace::GroundTruthConfig rule;  // working-MCS rule; alpha for oracles
  // Periodic beam refresh during steady operation (802.11ad devices
  // re-train on beacon-interval timescales, ~100 ms); lets a device that
  // escaped to a reflection migrate back to the LOS pair once an
  // impairment clears. The effective interval never drops below 4x the
  // sweep cost, so expensive beam training is refreshed proportionally
  // less often.
  double beam_refresh_interval_ms = 100.0;

  double effective_refresh_interval_ms() const {
    return std::max(beam_refresh_interval_ms, 4.0 * ba_overhead_ms);
  }
};

struct EventResult {
  double bytes_mb = 0.0;
  // Time from the impairment until the first working MCS is in use; 0 when
  // the link never broke (initial MCS still working).
  double recovery_delay_ms = 0.0;
  bool link_restored = true;
  PairSel settled_pair = PairSel::kInitPair;
  phy::McsIndex settled_mcs = 0;
  // Piecewise-constant throughput timeline (Mbps, duration ms), recorded
  // when requested (used by the VR application study, Sec. 8.4).
  std::vector<std::pair<double, double>> tput_segments;
};

class EventSimulator {
 public:
  // The classifier is required only for Strategy::kLibra.
  explicit EventSimulator(const core::LibraClassifier* classifier = nullptr);

  EventResult run(const trace::CaseRecord& rec, core::Strategy strategy,
                  const EventParams& params, util::Rng& rng,
                  bool record_series = false) const;

  // Force a specific first action (used by episode-aware oracles that look
  // beyond the event itself). `lead_frames` frames are transmitted at the
  // pre-impairment configuration before the action fires; every strategy
  // pays at least one such frame of detection latency.
  EventResult play_action(const trace::CaseRecord& rec, trace::Action action,
                          int lead_frames, const EventParams& params,
                          bool record_series = false) const {
    return play(rec, action, lead_frames, params, record_series);
  }

 private:
  EventResult play(const trace::CaseRecord& rec, trace::Action action,
                   int lead_frames, const EventParams& params,
                   bool record_series) const;
  EventResult run_libra(const trace::CaseRecord& rec, const EventParams& params,
                        util::Rng& rng, bool record_series) const;

  const core::LibraClassifier* classifier_;  // non-owning
};

}  // namespace libra::sim
