#include "sim/timeline.h"

#include <stdexcept>
#include <string>

#include "core/rate_adaptation.h"

namespace libra::sim {

std::string to_string(ScenarioType t) {
  switch (t) {
    case ScenarioType::kMotion: return "Motion";
    case ScenarioType::kBlockage: return "Blockage";
    case ScenarioType::kInterference: return "Interference";
    case ScenarioType::kMixed: return "Mixed";
  }
  return "?";
}

RecordPools RecordPools::from_dataset(const trace::Dataset& ds) {
  RecordPools pools;
  for (const trace::CaseRecord& rec : ds.records) {
    switch (rec.impairment) {
      case trace::Impairment::kDisplacement:
        pools.displacement.push_back(&rec);
        break;
      case trace::Impairment::kBlockage:
        pools.blockage.push_back(&rec);
        break;
      case trace::Impairment::kInterference:
        pools.interference.push_back(&rec);
        break;
    }
  }
  return pools;
}

namespace {

// Guard before touching the rng: uniform_int(0, -1) on an empty pool would
// be undefined, and the caller deserves to know WHICH pool the dataset was
// missing (a blockage-only dataset fails kMixed only when the segment draw
// happens to pick another impairment -- name the gap explicitly).
const trace::CaseRecord* draw(const std::vector<const trace::CaseRecord*>& pool,
                              const char* pool_name, util::Rng& rng) {
  if (pool.empty()) {
    throw std::invalid_argument(std::string("make_timeline: empty ") +
                                pool_name +
                                " record pool (dataset has no such cases)");
  }
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
}

}  // namespace

std::vector<TimelineSegment> make_timeline(ScenarioType type,
                                           const RecordPools& pools,
                                           const TimelineConfig& cfg,
                                           util::Rng& rng) {
  if (cfg.segments < 0) {
    throw std::invalid_argument("make_timeline: segments must be >= 0, got " +
                                std::to_string(cfg.segments));
  }
  if (!(cfg.min_segment_ms > 0.0) || cfg.max_segment_ms < cfg.min_segment_ms) {
    throw std::invalid_argument(
        "make_timeline: need 0 < min_segment_ms <= max_segment_ms");
  }
  std::vector<TimelineSegment> timeline;
  timeline.reserve(static_cast<std::size_t>(cfg.segments));
  const trace::CaseRecord* last = nullptr;
  for (int i = 0; i < cfg.segments; ++i) {
    TimelineSegment seg;
    seg.duration_ms = rng.uniform(cfg.min_segment_ms, cfg.max_segment_ms);
    ScenarioType effective = type;
    if (type == ScenarioType::kMixed) {
      const int pick = rng.uniform_int(0, 2);
      effective = pick == 0 ? ScenarioType::kMotion
                  : pick == 1 ? ScenarioType::kBlockage
                              : ScenarioType::kInterference;
    }
    switch (effective) {
      case ScenarioType::kMotion:
        seg.record = draw(pools.displacement, "displacement", rng);
        seg.impaired = true;
        break;
      case ScenarioType::kBlockage:
      case ScenarioType::kInterference: {
        // Alternate impaired and clear segments.
        const bool clear = (i % 2 == 1) && last != nullptr;
        if (clear) {
          seg.record = last;
          seg.impaired = false;
        } else if (effective == ScenarioType::kBlockage) {
          seg.record = draw(pools.blockage, "blockage", rng);
          seg.impaired = true;
        } else {
          seg.record = draw(pools.interference, "interference", rng);
          seg.impaired = true;
        }
        break;
      }
      case ScenarioType::kMixed:
        break;  // unreachable
    }
    last = seg.record;
    timeline.push_back(seg);
  }
  return timeline;
}

namespace {

// Clear-segment continuation: the impairment is gone. The settled pair
// keeps working; with the initial pair the pre-impairment trace applies,
// with the reflected (new best) pair the impairment barely affected it, so
// its own trace applies. Upward probing recovers the MCS. Returns the bytes
// delivered and updates `mcs` in place.
double clear_segment_bytes(const trace::CaseRecord& record, PairSel pair,
                           phy::McsIndex& mcs, double duration_ms,
                           const EventParams& params,
                           std::vector<std::pair<double, double>>* series) {
  const auto trace_of = [&](PairSel p) -> const trace::PairTrace& {
    switch (p) {
      case PairSel::kInitPair: return record.init_best;
      case PairSel::kFailoverPair: return record.init_failover;
      case PairSel::kBestPair: break;
    }
    return record.new_best;
  };
  core::UpProber prober(mcs);
  double bytes = 0.0;
  double t_ms = 0.0;
  const double refresh_ms = params.effective_refresh_interval_ms();
  double next_refresh_ms = refresh_ms;
  while (t_ms < duration_ms) {
    // Periodic beam refresh: re-train and hop back to the better pair for
    // the (clear) state; the sweep costs airtime.
    if (params.beam_refresh_interval_ms > 0.0 && t_ms >= next_refresh_ms) {
      next_refresh_ms += refresh_ms;
      const auto best_tput = [&](PairSel p) {
        const trace::PairTrace& t = trace_of(p);
        const phy::McsIndex m =
            t.best_mcs(params.rule.min_tput_mbps, params.rule.min_cdr);
        return m >= 0 ? t.throughput_mbps[static_cast<std::size_t>(m)] : 0.0;
      };
      const PairSel better = best_tput(PairSel::kInitPair) >=
                                     best_tput(PairSel::kBestPair)
                                 ? PairSel::kInitPair
                                 : PairSel::kBestPair;
      const double sweep = std::min(params.ba_overhead_ms, duration_ms - t_ms);
      if (series) series->emplace_back(0.0, sweep);
      t_ms += sweep;
      if (better != pair) {
        pair = better;
        prober.reset(trace_of(pair).best_mcs(params.rule.min_tput_mbps,
                                             params.rule.min_cdr));
      }
      continue;
    }
    const trace::PairTrace& t = trace_of(pair);
    const double dur = std::min(params.fat_ms, duration_ms - t_ms);
    const phy::McsIndex m = prober.on_frame(t, params.rule);
    const double tput = t.throughput_mbps[static_cast<std::size_t>(m)];
    bytes += tput * dur / 8000.0;
    if (series) series->emplace_back(tput, dur);
    t_ms += dur;
  }
  mcs = prober.current();
  return bytes;
}

// Episode-aware oracle decision: pick the action optimizing the metric over
// the impaired segment PLUS the following clear segment (if any) -- a
// per-event oracle that ignored the continuation could be beaten by a
// "suboptimal" settle that pays off once the impairment clears.
EventResult oracle_episode(const EventSimulator& simulator,
                           const trace::CaseRecord& record,
                           core::Strategy strategy, const EventParams& params,
                           double clear_ms, bool record_series) {
  EventResult best;
  double best_bytes = -1.0;
  double best_delay = 0.0;
  bool first = true;
  for (trace::Action a :
       {trace::Action::kNA, trace::Action::kRA, trace::Action::kBA}) {
    EventResult r = simulator.play_action(record, a, 1, params, record_series);
    double episode_bytes = r.bytes_mb;
    if (clear_ms > 0.0) {
      phy::McsIndex mcs = r.settled_mcs;
      episode_bytes += clear_segment_bytes(record, r.settled_pair, mcs,
                                           clear_ms, params, nullptr);
    }
    const bool better =
        strategy == core::Strategy::kOracleData
            ? (first || episode_bytes > best_bytes)
            : (first || r.recovery_delay_ms < best_delay ||
               (r.recovery_delay_ms == best_delay &&
                episode_bytes > best_bytes));
    if (better) {
      best = std::move(r);
      best_bytes = episode_bytes;
      best_delay = best.recovery_delay_ms;
      first = false;
    }
  }
  return best;
}

}  // namespace

TimelineResult run_timeline(const std::vector<TimelineSegment>& timeline,
                            core::Strategy strategy,
                            const EventSimulator& simulator,
                            const EventParams& params, util::Rng& rng,
                            bool record_series) {
  TimelineResult total;
  double delay_sum = 0.0;

  // Configuration carried across segments (used by clear segments).
  PairSel pair = PairSel::kInitPair;
  phy::McsIndex mcs = 0;
  const trace::CaseRecord* current = nullptr;
  const bool is_oracle = strategy == core::Strategy::kOracleData ||
                         strategy == core::Strategy::kOracleDelay;

  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const TimelineSegment& seg = timeline[i];
    if (seg.impaired) {
      EventParams p = params;
      p.flow_ms = seg.duration_ms;
      const double clear_ms =
          (i + 1 < timeline.size() && !timeline[i + 1].impaired)
              ? timeline[i + 1].duration_ms
              : 0.0;
      const EventResult r =
          is_oracle ? oracle_episode(simulator, *seg.record, strategy, p,
                                     clear_ms, record_series)
                    : simulator.run(*seg.record, strategy, p, rng,
                                    record_series);
      total.bytes_mb += r.bytes_mb;
      // Count a link break only when the impairment actually broke the
      // working MCS (recovery delay 0 means it never broke).
      if (r.recovery_delay_ms > 0.0) {
        ++total.link_breaks;
        delay_sum += r.recovery_delay_ms;
      }
      pair = r.settled_pair;
      mcs = r.settled_mcs;
      current = seg.record;
      if (record_series) {
        total.tput_segments.insert(total.tput_segments.end(),
                                   r.tput_segments.begin(),
                                   r.tput_segments.end());
      }
    } else {
      total.bytes_mb += clear_segment_bytes(
          *current, pair, mcs, seg.duration_ms, params,
          record_series ? &total.tput_segments : nullptr);
    }
  }
  total.avg_recovery_delay_ms =
      total.link_breaks > 0 ? delay_sum / total.link_breaks : 0.0;
  return total;
}

}  // namespace libra::sim
