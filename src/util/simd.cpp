#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace libra::util::simd {

namespace {

// Nesting depth of ScopedForceScalar guards (test-only override).
std::atomic<int> g_force_scalar_depth{0};

bool env_truthy(const char* value) {
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "TRUE") == 0 || std::strcmp(value, "yes") == 0 ||
         std::strcmp(value, "on") == 0;
}

// CPU/env detection happens once; the result never changes within a
// process (the env knob is read at first use, like a flag).
struct Detection {
  bool force_scalar_env = false;
  Isa hardware = Isa::kScalar;
};

const Detection& detect() {
  static const Detection d = [] {
    Detection out;
    out.force_scalar_env = env_truthy(std::getenv("LIBRA_FORCE_SCALAR"));
#if LIBRA_SIMD_X86
    if (__builtin_cpu_supports("avx2")) out.hardware = Isa::kAvx2;
#elif LIBRA_SIMD_NEON
    // NEON is architecturally guaranteed on aarch64.
    out.hardware = Isa::kNeon;
#endif
    return out;
  }();
  return d;
}

}  // namespace

Isa active_isa() {
  const Detection& d = detect();
  if (d.force_scalar_env) return Isa::kScalar;
  if (g_force_scalar_depth.load(std::memory_order_relaxed) > 0) {
    return Isa::kScalar;
  }
  return d.hardware;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
    case Isa::kScalar: break;
  }
  return "scalar";
}

const char* active_isa_name() { return isa_name(active_isa()); }

bool force_scalar_env() { return detect().force_scalar_env; }

ScopedForceScalar::ScopedForceScalar() {
  g_force_scalar_depth.fetch_add(1, std::memory_order_relaxed);
}

ScopedForceScalar::~ScopedForceScalar() {
  g_force_scalar_depth.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace libra::util::simd
