// Runtime SIMD dispatch for the serving hot paths.
//
// The repo's vectorized kernels (ml/forest_kernels.h, util/fft.cpp,
// util/stats.cpp) all pick their implementation through active_isa():
//
//   kScalar   the portable reference path. Always compiled, always
//             correct, and -- by construction -- bit-identical to the
//             vector paths (see "bit-parity discipline" below).
//   kAvx2     AVX2 gather/compare kernels, selected on x86-64 when the
//             CPU reports AVX2 and the build compiled the kernels in.
//   kNeon     guarded NEON variants on aarch64 (forest traversal only;
//             the FP kernels stay scalar there so the compiler cannot
//             contract mul+add into FMA behind our back).
//
// Selection order (first match wins):
//   1. -DLIBRA_SIMD=OFF at configure time -> kScalar (kernels not built).
//   2. LIBRA_FORCE_SCALAR env truthy ("1", "true", "yes", "on") at process
//      start -> kScalar. CI's release job runs the same fleet digest with
//      and without this knob and fails on any mismatch, so the scalar
//      fallback can never silently rot.
//   3. ScopedForceScalar active (tests) -> kScalar.
//   4. CPU capability: AVX2 on x86-64, NEON on aarch64, else kScalar.
//
// Bit-parity discipline: every dispatched kernel must produce results
// bit-identical to its scalar reference. Integer/compare-only kernels
// (forest traversal, CDF binary search) get this for free. Floating-point
// kernels get it by fixing the summation schedule: the scalar reference is
// written in the same blocked/lane form the vector code uses (same
// per-lane accumulation, same horizontal combine order, same elementwise
// formulas, no FMA -- neither baseline x86-64 nor target("avx2") can
// contract mul+add). Anything that cannot honor this contract must not
// dispatch.
#pragma once

// LIBRA_SIMD_X86 / LIBRA_SIMD_NEON gate the kernel *definitions*; callers
// additionally consult active_isa() at runtime. LIBRA_SIMD_ENABLED comes
// from CMake (option LIBRA_SIMD + compiler capability check).
#if defined(LIBRA_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define LIBRA_SIMD_X86 1
#else
#define LIBRA_SIMD_X86 0
#endif

#if defined(LIBRA_SIMD_ENABLED) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define LIBRA_SIMD_NEON 1
#else
#define LIBRA_SIMD_NEON 0
#endif

namespace libra::util::simd {

enum class Isa { kScalar, kAvx2, kNeon };

// The ISA the dispatched kernels will use right now. Cheap (one atomic
// load past the first call); safe to consult per batch.
Isa active_isa();

const char* isa_name(Isa isa);
// Shorthand for isa_name(active_isa()) -- what benches print as the
// dispatch label and tools log next to digests.
const char* active_isa_name();

// True when the LIBRA_FORCE_SCALAR environment knob pinned dispatch to
// scalar at process start.
bool force_scalar_env();

// Test-only: pin dispatch to kScalar for the lifetime of the object
// (nestable, not thread-safe -- tests flip it around single-threaded
// parity checks).
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;
};

}  // namespace libra::util::simd
