// Seeded random number generation for reproducible simulation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that experiments are bit-reproducible across runs. Sub-streams can
// be forked deterministically so that adding randomness to one module does
// not perturb another (counter-based fork seeding).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace libra::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Deterministically derive an independent sub-stream. Successive calls
  // yield distinct streams; the parent stream is not advanced.
  Rng fork() { return Rng(seed_ ^ (0x9e3779b97f4a7c15ULL * ++fork_count_)); }

  std::uint64_t seed() const { return seed_; }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  // Exponentially distributed with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t fork_count_ = 0;
};

}  // namespace libra::util
