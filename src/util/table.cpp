#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace libra::util {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace libra::util
