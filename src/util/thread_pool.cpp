#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/span.h"

namespace libra::util {

namespace {
thread_local bool t_in_worker = false;

// Telemetry handles, registered once. Observation-only: queue depth, how
// long tasks sat queued, and how long they ran.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("threadpool.queue_depth");
  return g;
}
obs::Histogram& task_wait_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("threadpool.task_wait_us");
  return h;
}
obs::Histogram& task_run_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("threadpool.task_run_us");
  return h;
}
}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

int ThreadPool::resolve(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) : threads_(resolve(num_threads)) {
  // With one thread the caller does all the work inline: no workers, no
  // synchronization, exactly the legacy serial behavior.
  workers_.reserve(static_cast<std::size_t>(std::max(0, threads_ - 1)));
  for (int i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Workers exit only once the queue is empty, but if the pool never had
  // workers (threads_ == 1) pending submits still have to run somewhere.
  while (!queue_.empty()) {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_gauge().add(-1.0);
    run_item(std::move(item));
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  Item item{std::packaged_task<void()>(std::move(task)), 0};
  if (obs::enabled()) item.enqueue_us = obs::trace_now_us();
  std::future<void> result = item.task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  queue_depth_gauge().add(1.0);
  cv_.notify_one();
  return result;
}

ThreadPool::Item ThreadPool::pop_locked() {
  Item item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

// Record wait/run telemetry around one dequeued task. Runs on whichever
// thread drains the item (worker or destructor).
void ThreadPool::run_item(Item item) {
  if (item.enqueue_us != 0 && obs::enabled()) {
    const std::uint64_t now = obs::trace_now_us();
    task_wait_hist().observe(static_cast<double>(now - item.enqueue_us));
    item.task();
    task_run_hist().observe(
        static_cast<double>(obs::trace_now_us() - now));
    return;
  }
  item.task();  // packaged_task captures exceptions for the future
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      item = pop_locked();
    }
    queue_depth_gauge().add(-1.0);
    run_item(std::move(item));
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1 || in_worker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared dynamic counter: helpers and the caller pull the next index.
  // Scheduling order is irrelevant to the result because callers keep all
  // per-index state (Rng streams, output slots) disjoint.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mu = std::make_shared<std::mutex>();
  auto run = [n, fn, next, first_error, error_mu] {
    for (;;) {
      const std::size_t i = next->fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mu);
        if (!*first_error) *first_error = std::current_exception();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_ - 1), n - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) pending.push_back(submit(run));
  run();  // the caller participates
  for (auto& f : pending) f.get();
  if (*first_error) std::rethrow_exception(*first_error);
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn);
}

}  // namespace libra::util
