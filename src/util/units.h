// Small strongly-typed helpers for the physical units used throughout the
// library: decibels, milliwatts, seconds/milliseconds, bits and bytes.
//
// The simulation mixes link-budget math (dB domain) with throughput
// accounting (linear domain); keeping the conversions in one place avoids
// the classic factor-of-10 bugs.
#pragma once

#include <cmath>

namespace libra::util {

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

inline double dbm_to_mw(double dbm) { return db_to_linear(dbm); }
inline double mw_to_dbm(double mw) { return linear_to_db(mw); }

// Sum two powers expressed in dBm (linear-domain addition).
inline double dbm_add(double a_dbm, double b_dbm) {
  return mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm));
}

constexpr double kSpeedOfLightMps = 299792458.0;
constexpr double k60GHzFrequencyHz = 60.48e9;  // 802.11ad channel 2 center.

inline double wavelength_m(double freq_hz = k60GHzFrequencyHz) {
  return kSpeedOfLightMps / freq_hz;
}

constexpr double kMsPerSecond = 1e3;
constexpr double kUsPerSecond = 1e6;
constexpr double kNsPerSecond = 1e9;

inline double mbps_to_bytes_per_ms(double mbps) {
  // 1 Mbps = 1e6 bits/s = 125000 bytes/s = 125 bytes/ms.
  return mbps * 125.0;
}

}  // namespace libra::util
