#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libra::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  mean_ += delta * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) throw std::invalid_argument("quantile of empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  return out;
}

BoxplotSummary boxplot(std::span<const double> samples) {
  BoxplotSummary s;
  if (samples.empty()) return s;
  std::vector<double> v(samples.begin(), samples.end());
  EmpiricalCdf cdf(std::move(v));
  s.min = cdf.quantile(0.0);
  s.q1 = cdf.quantile(0.25);
  s.median = cdf.quantile(0.5);
  s.q3 = cdf.quantile(0.75);
  s.max = cdf.quantile(1.0);
  s.mean = mean(samples);
  s.n = samples.size();
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  return EmpiricalCdf(std::move(v)).quantile(p / 100.0);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace libra::util
