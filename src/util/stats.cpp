#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/simd.h"

#if LIBRA_SIMD_X86
#include <immintrin.h>
#endif

namespace libra::util {

namespace {

// Branchless "count of samples <= x" over the sorted array: a binary
// search whose trip count depends only on n, so every query (and every
// SIMD lane) runs the same comparisons in the same order. The window
// invariant tolerates keeping a few known-greater elements, which is what
// makes the step unconditional: after each probe the window always shrinks
// by half, taken or not. NaN compares false everywhere -> count 0.
inline std::size_t count_le(const double* sorted, std::size_t n, double x) {
  std::size_t lo = 0;
  std::size_t nn = n;
  while (nn > 1) {
    const std::size_t half = nn / 2;
    lo += sorted[lo + half - 1] <= x ? half : 0;
    nn -= half;
  }
  return lo + (sorted[lo] <= x ? 1 : 0);
}

// 4-lane blocked sum: lane j accumulates indices congruent j mod 4, lanes
// combine as (s0+s2)+(s1+s3) — the pairwise reduce an AVX2 register does
// with extract128+add — and the tail is appended after the combine. Both
// the scalar and AVX2 pearson below follow this exact schedule, which is
// the whole parity argument: same additions, same order, no FMA on either
// path (baseline x86-64 and target("avx2") lack the instruction).
inline double blocked_sum(const double* x, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t full = n - n % 4;
  for (std::size_t i = 0; i < full; i += 4) {
    acc[0] += x[i];
    acc[1] += x[i + 1];
    acc[2] += x[i + 2];
    acc[3] += x[i + 3];
  }
  double s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (std::size_t i = full; i < n; ++i) s += x[i];
  return s;
}

struct PearsonSums {
  double cov = 0.0, va = 0.0, vb = 0.0;
};

inline PearsonSums pearson_sums_scalar(const double* a, const double* b,
                                       std::size_t n, double ma, double mb) {
  double c[4] = {0.0, 0.0, 0.0, 0.0};
  double sa[4] = {0.0, 0.0, 0.0, 0.0};
  double sb[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t full = n - n % 4;
  for (std::size_t i = 0; i < full; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double da = a[i + j] - ma;
      const double db = b[i + j] - mb;
      c[j] += da * db;
      sa[j] += da * da;
      sb[j] += db * db;
    }
  }
  PearsonSums s;
  s.cov = (c[0] + c[2]) + (c[1] + c[3]);
  s.va = (sa[0] + sa[2]) + (sa[1] + sa[3]);
  s.vb = (sb[0] + sb[2]) + (sb[1] + sb[3]);
  for (std::size_t i = full; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    s.cov += da * db;
    s.va += da * da;
    s.vb += db * db;
  }
  return s;
}

#if LIBRA_SIMD_X86

#define LIBRA_AVX2_FN __attribute__((target("avx2")))

// GCC expands the maskless gather intrinsics with an undef merge operand
// and flags it -Wmaybe-uninitialized at every inlined call site; the
// all-ones mask overwrites every lane, so nothing uninitialized is read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// (a0+a2)+(a1+a3): the same combine order blocked_sum writes out.
LIBRA_AVX2_FN inline double reduce_blocked(__m256d acc) {
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

LIBRA_AVX2_FN double blocked_sum_avx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t full = n - n % 4;
  for (std::size_t i = 0; i < full; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double s = reduce_blocked(acc);
  for (std::size_t i = full; i < n; ++i) s += x[i];
  return s;
}

LIBRA_AVX2_FN PearsonSums pearson_sums_avx2(const double* a, const double* b,
                                            std::size_t n, double ma,
                                            double mb) {
  const __m256d vma = _mm256_set1_pd(ma);
  const __m256d vmb = _mm256_set1_pd(mb);
  __m256d c = _mm256_setzero_pd();
  __m256d sa = _mm256_setzero_pd();
  __m256d sb = _mm256_setzero_pd();
  const std::size_t full = n - n % 4;
  for (std::size_t i = 0; i < full; i += 4) {
    const __m256d da = _mm256_sub_pd(_mm256_loadu_pd(a + i), vma);
    const __m256d db = _mm256_sub_pd(_mm256_loadu_pd(b + i), vmb);
    c = _mm256_add_pd(c, _mm256_mul_pd(da, db));
    sa = _mm256_add_pd(sa, _mm256_mul_pd(da, da));
    sb = _mm256_add_pd(sb, _mm256_mul_pd(db, db));
  }
  PearsonSums s;
  s.cov = reduce_blocked(c);
  s.va = reduce_blocked(sa);
  s.vb = reduce_blocked(sb);
  for (std::size_t i = full; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    s.cov += da * db;
    s.va += da * da;
    s.vb += db * db;
  }
  return s;
}

// Lower half of a 4x64 double-compare mask as 4 packed int32 lanes.
LIBRA_AVX2_FN inline __m128i pd_mask_to_epi32(__m256d m) {
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), pick));
}

// The same fixed-trip binary search as count_le — identical probes,
// identical integer updates, final count / n division — so the result is
// bit-identical to the scalar loop. One 4-query block per gather chain is
// LATENCY-bound (each level's gather waits on the previous level's `lo`),
// which on gather-slow cores loses to the scalar search; walking kChains
// independent blocks through each level together keeps that many gathers
// in flight and hides the chain latency, exactly like the forest kernel's
// in-flight row groups.
LIBRA_AVX2_FN void at_many_avx2(const double* sorted, std::size_t n,
                                const double* xs, double* out,
                                std::size_t m) {
  const __m256d denom = _mm256_set1_pd(static_cast<double>(n));
  constexpr std::size_t kChains = 8;  // 8 blocks x 4 lanes = 32 queries
  std::size_t i = 0;
  for (; i + 4 * kChains <= m; i += 4 * kChains) {
    __m256d x[kChains];
    __m128i lo[kChains];
    for (std::size_t c = 0; c < kChains; ++c) {
      x[c] = _mm256_loadu_pd(xs + i + 4 * c);
      lo[c] = _mm_setzero_si128();
    }
    std::size_t nn = n;
    while (nn > 1) {
      const std::size_t half = nn / 2;
      const __m128i bias = _mm_set1_epi32(static_cast<int>(half) - 1);
      const __m128i step = _mm_set1_epi32(static_cast<int>(half));
      for (std::size_t c = 0; c < kChains; ++c) {
        const __m128i probe = _mm_add_epi32(lo[c], bias);
        const __m256d vals = _mm256_i32gather_pd(sorted, probe, 8);
        const __m128i le =
            pd_mask_to_epi32(_mm256_cmp_pd(vals, x[c], _CMP_LE_OQ));
        lo[c] = _mm_add_epi32(lo[c], _mm_and_si128(le, step));
      }
      nn -= half;
    }
    for (std::size_t c = 0; c < kChains; ++c) {
      const __m256d vals = _mm256_i32gather_pd(sorted, lo[c], 8);
      const __m128i le =
          pd_mask_to_epi32(_mm256_cmp_pd(vals, x[c], _CMP_LE_OQ));
      const __m128i count =
          _mm_add_epi32(lo[c], _mm_and_si128(le, _mm_set1_epi32(1)));
      _mm256_storeu_pd(out + i + 4 * c,
                       _mm256_div_pd(_mm256_cvtepi32_pd(count), denom));
    }
  }
  for (; i + 4 <= m; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    __m128i lo = _mm_setzero_si128();
    std::size_t nn = n;
    while (nn > 1) {
      const std::size_t half = nn / 2;
      const __m128i probe =
          _mm_add_epi32(lo, _mm_set1_epi32(static_cast<int>(half) - 1));
      const __m256d vals = _mm256_i32gather_pd(sorted, probe, 8);
      const __m128i le = pd_mask_to_epi32(_mm256_cmp_pd(vals, x, _CMP_LE_OQ));
      lo = _mm_add_epi32(
          lo, _mm_and_si128(le, _mm_set1_epi32(static_cast<int>(half))));
      nn -= half;
    }
    const __m256d vals = _mm256_i32gather_pd(sorted, lo, 8);
    const __m128i le = pd_mask_to_epi32(_mm256_cmp_pd(vals, x, _CMP_LE_OQ));
    const __m128i count =
        _mm_add_epi32(lo, _mm_and_si128(le, _mm_set1_epi32(1)));
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(_mm256_cvtepi32_pd(count), denom));
  }
  for (; i < m; ++i) {
    out[i] = static_cast<double>(count_le(sorted, n, xs[i])) /
             static_cast<double>(n);
  }
}

// Elementwise quantile interpolation, 4 queries per iteration. Clamp,
// truncation, gathers and the lo*(1-frac) + hi*frac combine mirror the
// scalar quantile() operation for operation.
LIBRA_AVX2_FN void quantile_many_avx2(const double* sorted, std::size_t n,
                                      const double* qs, double* out,
                                      std::size_t m) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d scale = _mm256_set1_pd(static_cast<double>(n - 1));
  const __m128i last = _mm_set1_epi32(static_cast<int>(n - 1));
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d q =
        _mm256_min_pd(_mm256_max_pd(_mm256_loadu_pd(qs + i), zero), one);
    const __m256d pos = _mm256_mul_pd(q, scale);
    const __m128i lo = _mm256_cvttpd_epi32(pos);
    const __m128i hi = _mm_min_epi32(_mm_add_epi32(lo, _mm_set1_epi32(1)),
                                     last);
    const __m256d frac = _mm256_sub_pd(pos, _mm256_cvtepi32_pd(lo));
    const __m256d a = _mm256_i32gather_pd(sorted, lo, 8);
    const __m256d b = _mm256_i32gather_pd(sorted, hi, 8);
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_mul_pd(a, _mm256_sub_pd(one, frac)),
                                   _mm256_mul_pd(b, frac)));
  }
  for (; i < m; ++i) {
    const double q = std::clamp(qs[i], 0.0, 1.0);
    const double pos = q * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
}

// int32 gather lanes cap the sample count the vector CDF paths can index.
constexpr std::size_t kMaxGatherElems = std::size_t{1} << 31;

#pragma GCC diagnostic pop

#endif  // LIBRA_SIMD_X86

}  // namespace

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  mean_ += delta * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

void EmpiricalCdf::at_many(std::span<const double> xs,
                           std::span<double> out) const {
  if (xs.size() != out.size()) {
    throw std::invalid_argument("at_many: query/output size mismatch");
  }
  if (sorted_.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const double* sorted = sorted_.data();
  const std::size_t n = sorted_.size();
#if LIBRA_SIMD_X86
  if (simd::active_isa() == simd::Isa::kAvx2 && n < kMaxGatherElems) {
    at_many_avx2(sorted, n, xs.data(), out.data(), xs.size());
    return;
  }
#endif
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = static_cast<double>(count_le(sorted, n, xs[i])) /
             static_cast<double>(n);
  }
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) throw std::invalid_argument("quantile of empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void EmpiricalCdf::quantile_many(std::span<const double> qs,
                                 std::span<double> out) const {
  if (qs.size() != out.size()) {
    throw std::invalid_argument("quantile_many: query/output size mismatch");
  }
  if (sorted_.empty()) throw std::invalid_argument("quantile of empty CDF");
#if LIBRA_SIMD_X86
  if (simd::active_isa() == simd::Isa::kAvx2 &&
      sorted_.size() < kMaxGatherElems) {
    quantile_many_avx2(sorted_.data(), sorted_.size(), qs.data(), out.data(),
                       qs.size());
    return;
  }
#endif
  for (std::size_t i = 0; i < qs.size(); ++i) out[i] = quantile(qs[i]);
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  return out;
}

BoxplotSummary boxplot(std::span<const double> samples) {
  BoxplotSummary s;
  if (samples.empty()) return s;
  std::vector<double> v(samples.begin(), samples.end());
  EmpiricalCdf cdf(std::move(v));
  const double qs[5] = {0.0, 0.25, 0.5, 0.75, 1.0};
  double vals[5];
  cdf.quantile_many(qs, vals);
  s.min = vals[0];
  s.q1 = vals[1];
  s.median = vals[2];
  s.q3 = vals[3];
  s.max = vals[4];
  s.mean = mean(samples);
  s.n = samples.size();
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  return EmpiricalCdf(std::move(v)).quantile(p / 100.0);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const std::size_t n = a.size();
#if LIBRA_SIMD_X86
  if (simd::active_isa() == simd::Isa::kAvx2) {
    const double ma = blocked_sum_avx2(a.data(), n) / static_cast<double>(n);
    const double mb = blocked_sum_avx2(b.data(), n) / static_cast<double>(n);
    const PearsonSums s = pearson_sums_avx2(a.data(), b.data(), n, ma, mb);
    if (s.va <= 0.0 || s.vb <= 0.0) return 0.0;
    return s.cov / std::sqrt(s.va * s.vb);
  }
#endif
  const double ma = blocked_sum(a.data(), n) / static_cast<double>(n);
  const double mb = blocked_sum(b.data(), n) / static_cast<double>(n);
  const PearsonSums s = pearson_sums_scalar(a.data(), b.data(), n, ma, mb);
  if (s.va <= 0.0 || s.vb <= 0.0) return 0.0;
  return s.cov / std::sqrt(s.va * s.vb);
}

}  // namespace libra::util
