// Minimal command-line parsing shared by tools/libra_cli.cpp and the
// examples: `--key value` options, `--flag` switches, positionals.
//
// A token after `--key` is consumed as the value when it does not start
// with '-' OR when it parses as a number -- so `--fat -1` and
// `--offset -2.5e3` bind the negative value instead of spawning a bogus
// flag plus a stray positional (the historical bug this fixes).
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace libra::util {

// True when the whole token parses as a (possibly signed) number.
bool looks_numeric(std::string_view token);

struct CliArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key [value]

  // Parse argv[first..argc). The CLI passes first = 2 (argv[1] is the
  // subcommand); standalone tools pass the default 1.
  static CliArgs parse(int argc, const char* const* argv, int first = 1);

  // Option value as a number, or `fallback` when absent. Throws
  // std::invalid_argument when present but not numeric (a flag given a
  // garbage value should fail loudly, not silently become the fallback).
  double number(const std::string& key, double fallback) const;
  // Option value as a string, or `fallback` when absent.
  std::string str(const std::string& key,
                  const std::string& fallback = "") const;
  bool flag(const std::string& key) const { return options.count(key) > 0; }

  // Reject typos: throws std::invalid_argument naming every parsed option
  // not in `known` (keys without the leading "--"). A misspelled
  // `--sokcet` must fail the command, not silently fall back to a default.
  void require_known(std::initializer_list<std::string_view> known) const;
};

}  // namespace libra::util
