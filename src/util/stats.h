// Descriptive statistics used by the dataset analysis (Figs. 4-9 CDFs),
// the evaluation (Figs. 10-13 CDFs and boxplots) and the ML metrics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace libra::util {

// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  // Fold another accumulator in exactly (Chan's parallel variance update),
  // so per-thread shards / per-link stats aggregate to the same moments a
  // serial pass over the union would produce.
  void merge(const RunningStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // unbiased sample variance (n-1); 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Empirical CDF over a sample. Values are sorted once at construction.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // P(X <= x) over the sample.
  double at(double x) const;
  // Inverse CDF; q in [0,1]. Linear interpolation between order statistics.
  double quantile(double q) const;

  // Batched queries for the per-metric CDF math on the serving path: one
  // lane-parallel branchless binary search per query (fixed trip count, so
  // the AVX2 path runs the same comparisons and the results are
  // bit-identical to the scalar loop on every ISA). at_many counts NaN
  // queries as 0 (no sample is <= NaN); at() keeps upper_bound's historic
  // NaN-goes-last answer, the one place the two differ. out must match
  // the query span's length.
  void at_many(std::span<const double> xs, std::span<double> out) const;
  // Elementwise quantile(); same interpolation formula, bit-identical
  // across ISAs. Throws like quantile() when the CDF is empty.
  void quantile_many(std::span<const double> qs, std::span<double> out) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  // Render the CDF as (value, probability) pairs at each distinct sample,
  // convenient for printing figure series.
  std::vector<std::pair<double, double>> curve() const;

 private:
  std::vector<double> sorted_;
};

// Five-number summary + mean, as used by the paper's boxplots (Figs. 12-13).
struct BoxplotSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};
BoxplotSummary boxplot(std::span<const double> samples);

double mean(std::span<const double> xs);
double median(std::span<const double> xs);
double percentile(std::span<const double> xs, double p);  // p in [0,100]

// Pearson correlation coefficient; returns 0 when either side is constant.
// Used for PDP similarity and CSI similarity (Sec. 6.1) — a per-frame
// serving cost, so the sums run 4 lanes wide (lane j accumulates indices
// congruent j mod 4, combined (s0+s2)+(s1+s3), tail appended after the
// combine). The scalar path uses the identical schedule, so the AVX2 path
// is bit-identical to it.
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace libra::util
