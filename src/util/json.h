// A minimal recursive-descent JSON parser for our own machine-readable
// outputs: trace-event exports, metrics snapshots, and the aggregator's
// /series.json feed (`libra top` polls it through this). Strict enough to
// catch malformed output -- throws std::runtime_error with an offset on any
// syntax error -- but not a general-purpose library: \uXXXX escapes decode
// only the code-point value as a single char for ASCII, which is all our
// exporters emit. Grew up in tests/json_mini.h; promoted here when the CLI
// needed it.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace libra::util {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string();
      skip_ws();
      expect(':');
      v.object[key.str] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            v.str += static_cast<char>(std::stoi(hex, nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.str += c;
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (consume_literal("true")) {
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.boolean = false;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue parse_json(std::string_view text) {
  return detail::JsonParser(text).parse();
}

}  // namespace libra::util
