#include "util/rng.h"

// Header-only today; this TU anchors the library and keeps room for
// out-of-line additions without touching every dependent target.
