#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace libra::util {

bool looks_numeric(std::string_view token) {
  if (token.empty()) return false;
  const std::string copy(token);
  char* end = nullptr;
  std::strtod(copy.c_str(), &end);
  return end != copy.c_str() && *end == '\0';
}

CliArgs CliArgs::parse(int argc, const char* const* argv, int first) {
  CliArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      if (i + 1 < argc &&
          (argv[i + 1][0] != '-' || looks_numeric(argv[i + 1]))) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

double CliArgs::number(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  if (!looks_numeric(it->second)) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
  return std::stod(it->second);
}

void CliArgs::require_known(
    std::initializer_list<std::string_view> known) const {
  std::string unknown;
  for (const auto& [key, value] : options) {
    bool found = false;
    for (const std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + key;
    }
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unrecognized option(s): " + unknown);
  }
}

std::string CliArgs::str(const std::string& key,
                         const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

}  // namespace libra::util
