// Fixed-size thread pool with a blocking parallel_for helper.
//
// The ML layer (forest training, cross validation, batch inference) is
// embarrassingly parallel; this pool gives those loops a shared, bounded
// set of workers without any work stealing. Determinism is preserved by
// the callers: every parallel task owns its own pre-forked Rng stream and
// writes results into a per-index slot, so the schedule cannot influence
// the output and `num_threads = 1` is bit-identical to `num_threads = N`.
//
// Nested parallelism is safe by construction: parallel_for() called from
// inside a pool worker runs inline on that worker (see in_worker()), so a
// parallel cross validation that fits parallel forests never deadlocks or
// oversubscribes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace libra::util {

class ThreadPool {
 public:
  // `num_threads` follows the library-wide knob convention: 0 means
  // hardware_concurrency(), 1 means no workers (every call runs inline on
  // the caller, the exact legacy serial behavior), N > 1 spawns N workers.
  explicit ThreadPool(int num_threads = 0);
  // Drains the queue: every task submitted before destruction runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return threads_; }

  // Enqueue one task. The future rethrows the task's exception on get().
  std::future<void> submit(std::function<void()> task);

  // Run fn(i) for every i in [0, n), blocking until all complete. The
  // caller participates; the first exception thrown by any fn(i) is
  // rethrown here after the batch finishes.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // True on a pool worker thread (any pool). Used to run nested
  // parallel_for calls inline instead of deadlocking on a busy queue.
  static bool in_worker();

  // Map the config knob to an actual thread count (0 -> hardware).
  static int resolve(int requested);

 private:
  // A queued task plus its enqueue timestamp (obs::trace_now_us; 0 when
  // telemetry is disabled) so the dequeue can record queue-wait latency.
  struct Item {
    std::packaged_task<void()> task;
    std::uint64_t enqueue_us = 0;
  };

  void worker_loop();
  Item pop_locked();
  void run_item(Item item);

  int threads_;
  std::vector<std::thread> workers_;
  std::deque<Item> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper: run fn(i) for i in [0, n) on `pool`, or inline when
// `pool` is null, single-threaded, or we are already on a pool worker.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace libra::util
