// Radix-2 FFT used to convert power delay profiles (time domain) into a CSI
// estimate (frequency domain), mirroring Sec. 6.1's "FFT PDP Similarity".
//
// The butterfly loops are runtime-dispatched (util/simd.h): an AVX2 kernel
// handles the wide stages and is bit-identical to the scalar loop — same
// per-stage twiddle tables, same operation order — so feature extraction
// cannot drift with the host ISA (LIBRA_FORCE_SCALAR=1 selects the scalar
// loop for differential runs).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace libra::util {

// In-place iterative radix-2 Cooley-Tukey. Size must be a power of two.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

// Magnitude spectrum of a real-valued signal, zero-padded to the next power
// of two. Returns the first half (the second half is symmetric).
std::vector<double> magnitude_spectrum(std::span<const double> signal);

std::size_t next_pow2(std::size_t n);

}  // namespace libra::util
