#include "util/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/simd.h"

#if LIBRA_SIMD_X86
#include <immintrin.h>
#endif

namespace libra::util {

namespace {

// One stage's butterfly over block [i, i+len): data[i+k] / data[i+k+len/2]
// combined through twiddle tw[k]. The complex multiply is written out
// elementwise (re = vr*wr - vi*wi, im = vr*wi + vi*wr — the same naive
// formula std::complex uses) so the scalar and AVX2 stages perform
// literally the same multiplications and additions per element; butterflies
// are independent, so there is no cross-element reassociation to diverge
// on, and baseline x86-64 / target("avx2") have no FMA to contract into.
inline void butterflies_scalar(std::complex<double>* data,
                               const std::complex<double>* tw,
                               std::size_t half) {
  for (std::size_t k = 0; k < half; ++k) {
    const double ur = data[k].real();
    const double ui = data[k].imag();
    const double vr = data[k + half].real();
    const double vi = data[k + half].imag();
    const double wr = tw[k].real();
    const double wi = tw[k].imag();
    const double pr = vr * wr - vi * wi;
    const double pi = vr * wi + vi * wr;
    data[k] = {ur + pr, ui + pi};
    data[k + half] = {ur - pr, ui - pi};
  }
}

#if LIBRA_SIMD_X86

#define LIBRA_AVX2_FN __attribute__((target("avx2")))

// Two butterflies per iteration: a __m256d holds two interleaved complex
// doubles [re0, im0, re1, im1]. The twiddle product uses the classic
// mul / swap / addsub shape, which lands on exactly the scalar formula:
// even lanes get vr*wr - vi*wi, odd lanes vi*wr + vr*wi (IEEE addition is
// commutative, so the operand order difference from the scalar pi cannot
// change the bits). Requires half % 2 == 0, i.e. len >= 4.
LIBRA_AVX2_FN void butterflies_avx2(std::complex<double>* data,
                                    const std::complex<double>* tw,
                                    std::size_t half) {
  auto* d = reinterpret_cast<double*>(data);
  const auto* t = reinterpret_cast<const double*>(tw);
  for (std::size_t k = 0; k < half; k += 2) {
    const __m256d u = _mm256_loadu_pd(d + 2 * k);
    const __m256d v = _mm256_loadu_pd(d + 2 * (k + half));
    const __m256d w = _mm256_loadu_pd(t + 2 * k);
    const __m256d w_re = _mm256_movedup_pd(w);          // [wr0 wr0 wr1 wr1]
    const __m256d w_im = _mm256_permute_pd(w, 0b1111);  // [wi0 wi0 wi1 wi1]
    const __m256d v_swap = _mm256_permute_pd(v, 0b0101);
    const __m256d p =
        _mm256_addsub_pd(_mm256_mul_pd(v, w_re), _mm256_mul_pd(v_swap, w_im));
    _mm256_storeu_pd(d + 2 * k, _mm256_add_pd(u, p));
    _mm256_storeu_pd(d + 2 * (k + half), _mm256_sub_pd(u, p));
  }
}

// Magnitudes of two complex doubles per iteration: sqrt(re^2 + im^2), the
// same elementwise formula as the scalar loop (and _mm256_sqrt_pd is
// correctly rounded, like std::sqrt).
LIBRA_AVX2_FN void magnitudes_avx2(const std::complex<double>* buf,
                                   double* mag, std::size_t m) {
  const auto* b = reinterpret_cast<const double*>(buf);
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const __m256d v = _mm256_loadu_pd(b + 2 * i);
    const __m256d sq = _mm256_mul_pd(v, v);
    const __m256d sq_swap = _mm256_permute_pd(sq, 0b0101);
    const __m256d sum = _mm256_add_pd(sq, sq_swap);  // [n0 n0 n1 n1]
    const __m256d root = _mm256_sqrt_pd(sum);
    const __m128d lo = _mm256_castpd256_pd128(root);
    const __m128d hi = _mm256_extractf128_pd(root, 1);
    _mm_storel_pd(mag + i, lo);
    _mm_storel_pd(mag + i + 1, hi);
  }
  for (; i < m; ++i) {
    const double re = buf[i].real();
    const double im = buf[i].imag();
    mag[i] = std::sqrt(re * re + im * im);
  }
}

#endif  // LIBRA_SIMD_X86

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("fft size must be a power of two");
  }
  // Bit reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Per-stage twiddle table, filled by the same sequential w *= wlen
  // recurrence every block of the stage used to run inline — one table
  // shared by all blocks (they repeat the identical sequence) and by both
  // the scalar and vector butterflies.
  std::vector<std::complex<double>> tw;
  tw.reserve(n / 2);
#if LIBRA_SIMD_X86
  const bool use_avx2 = simd::active_isa() == simd::Isa::kAvx2;
#endif
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    const std::size_t half = len / 2;
    tw.assign(1, {1.0, 0.0});
    for (std::size_t k = 1; k < half; ++k) tw.push_back(tw[k - 1] * wlen);
    for (std::size_t i = 0; i < n; i += len) {
#if LIBRA_SIMD_X86
      if (use_avx2 && half % 2 == 0) {
        butterflies_avx2(data.data() + i, tw.data(), half);
        continue;
      }
#endif
      butterflies_scalar(data.data() + i, tw.data(), half);
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<double> magnitude_spectrum(std::span<const double> signal) {
  if (signal.empty()) return {};
  const std::size_t n = next_pow2(signal.size());
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < signal.size(); ++i) buf[i] = signal[i];
  fft(buf);
  std::vector<double> mag(n / 2);
#if LIBRA_SIMD_X86
  if (simd::active_isa() == simd::Isa::kAvx2) {
    magnitudes_avx2(buf.data(), mag.data(), mag.size());
    return mag;
  }
#endif
  // sqrt(re^2 + im^2), not std::abs: abs() takes the overflow-safe scaled
  // route whose bits differ from the plain formula, and PDP/CSI magnitudes
  // sit many orders below the overflow threshold. Keep this formula in
  // lockstep with magnitudes_avx2.
  for (std::size_t i = 0; i < mag.size(); ++i) {
    const double re = buf[i].real();
    const double im = buf[i].imag();
    mag[i] = std::sqrt(re * re + im * im);
  }
  return mag;
}

}  // namespace libra::util
