// Plain-text table renderer used by the benchmark harness to print the
// paper's tables and figure series in a stable, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace libra::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  // Render with column alignment and a separator under the header.
  std::string to_string() const;
  // Render as CSV (no alignment padding).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);

}  // namespace libra::util
