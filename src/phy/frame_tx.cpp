#include "phy/frame_tx.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libra::phy {

FrameTransmitter::FrameTransmitter(const ErrorModel* error_model,
                                   FrameTxConfig cfg)
    : error_model_(error_model), cfg_(cfg) {
  if (!error_model_) throw std::invalid_argument("null error model");
}

int FrameTransmitter::sample_delivered(int n, double p, util::Rng& rng) const {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Normal approximation to Binomial(n, p); n per slot is 92, n*p*(1-p) is
  // usually large enough, and the tails get clamped anyway.
  const double mean = n * p;
  const double stddev = std::sqrt(n * p * (1.0 - p));
  const int sample = static_cast<int>(std::lround(rng.gaussian(mean, stddev)));
  return std::clamp(sample, 0, n);
}

FrameResult FrameTransmitter::transmit(const channel::Link& link,
                                       array::BeamId tx_beam,
                                       array::BeamId rx_beam, McsIndex mcs,
                                       util::Rng& rng) const {
  FrameResult result;
  const int slots = cfg_.tdma.slots_per_frame;
  const int per_slot = cfg_.tdma.codewords_per_slot;
  result.codewords_sent = slots * per_slot;
  result.per_slot_delivered.assign(static_cast<std::size_t>(slots), 0);

  const double p_clean = error_model_->codeword_success_prob(
      mcs, link.snr_clean_db(tx_beam, rx_beam));
  const double p_jam =
      error_model_->codeword_success_prob(mcs, link.snr_db(tx_beam, rx_beam));
  const double duty = link.interferer() ? link.interferer()->duty_cycle : 0.0;

  // A CSMA burst occupies a contiguous run of slots with a random start.
  result.jammed_slots = static_cast<int>(std::lround(duty * slots));
  const int jam_start =
      result.jammed_slots > 0
          ? rng.uniform_int(0, slots - 1)
          : 0;

  for (int s = 0; s < slots; ++s) {
    const bool jammed =
        result.jammed_slots > 0 &&
        ((s - jam_start + slots) % slots) < result.jammed_slots;
    const double p = jammed ? p_jam : p_clean;
    const int delivered = sample_delivered(per_slot, p, rng);
    result.per_slot_delivered[static_cast<std::size_t>(s)] = delivered;
    result.codewords_delivered += delivered;
  }
  result.empirical_cdr =
      static_cast<double>(result.codewords_delivered) / result.codewords_sent;
  result.payload_bytes =
      static_cast<double>(result.codewords_delivered) *
      error_model_->table().entry(mcs).codeword_bytes *
      error_model_->config().framing_efficiency;

  // Block ACK: lost only if every subframe (a contiguous share of the
  // frame's codewords) fails; approximate with the empirical CDR.
  const double p_all_fail =
      std::pow(1.0 - result.empirical_cdr, cfg_.ack_subframes);
  result.block_ack = !rng.bernoulli(std::clamp(p_all_fail, 0.0, 1.0));
  return result;
}

}  // namespace libra::phy
