#include "phy/pdp.h"

#include <algorithm>
#include <cmath>

#include "util/fft.h"
#include "util/units.h"

namespace libra::phy {

std::vector<double> synthesize_pdp(
    const std::vector<channel::PathContribution>& contributions,
    const PdpConfig& cfg) {
  std::vector<double> pdp(static_cast<std::size_t>(cfg.num_taps),
                          cfg.noise_floor_mw);
  for (const auto& c : contributions) {
    const int tap = static_cast<int>(std::round(c.delay_ns / cfg.tap_spacing_ns));
    if (tap < 0 || tap >= cfg.num_taps) continue;
    pdp[static_cast<std::size_t>(tap)] +=
        libra::util::dbm_to_mw(c.rx_power_dbm);
  }
  return pdp;
}

std::optional<double> time_of_flight_ns(const std::vector<double>& pdp,
                                        const PdpConfig& cfg) {
  if (pdp.empty()) return std::nullopt;
  const auto it = std::max_element(pdp.begin(), pdp.end());
  // A tap must rise meaningfully above the measurement floor to be a
  // detectable first arrival; X60 reports infinity otherwise (Sec. 6.1.1).
  if (*it < cfg.noise_floor_mw * 10.0) return std::nullopt;
  return static_cast<double>(it - pdp.begin()) * cfg.tap_spacing_ns;
}

std::vector<double> csi_from_pdp(const std::vector<double>& pdp) {
  return libra::util::magnitude_spectrum(pdp);
}

}  // namespace libra::phy
