// PHY measurement sampler: produces the per-trace observation record that
// X60 logs for every frame (Sec. 5.1): SNR, noise level, PDP, CDR and MAC
// throughput, averaged over a trace, with realistic measurement noise.
#pragma once

#include <optional>
#include <vector>

#include "array/codebook.h"
#include "channel/link.h"
#include "phy/error_model.h"
#include "phy/pdp.h"
#include "util/rng.h"

namespace libra::phy {

struct PhyObservation {
  double snr_db = 0.0;
  double noise_dbm = 0.0;                // measured noise level
  std::optional<double> tof_ns;          // nullopt = "infinity" (no signal)
  std::vector<double> pdp;               // linear mW per tap
  std::vector<double> csi;               // |FFT(pdp)|
  double cdr = 0.0;                      // at the observed MCS
  double throughput_mbps = 0.0;          // MAC throughput at the observed MCS
  McsIndex mcs = 0;
};

struct SamplerConfig {
  double snr_jitter_db = 0.4;      // trace-average SNR estimation error
  double noise_jitter_db = 1.5;    // X60 noise readings span a wide range
                                   // even without interference (Sec. 6.2)
  double pdp_tap_jitter = 0.08;    // multiplicative per-tap jitter (sigma)
  double cdr_jitter = 0.015;       // residual frame-level CDR variation
  PdpConfig pdp;
};

class PhySampler {
 public:
  PhySampler(const ErrorModel* error_model, SamplerConfig cfg = {});

  // Full observation of the link through a beam pair at an MCS.
  PhyObservation observe(const channel::Link& link, array::BeamId tx_beam,
                         array::BeamId rx_beam, McsIndex mcs,
                         util::Rng& rng) const;

  // Quick SNR-only measurement, as used during a sector sweep.
  double measure_snr_db(const channel::Link& link, array::BeamId tx_beam,
                        array::BeamId rx_beam, util::Rng& rng) const;

  const ErrorModel& error_model() const { return *error_model_; }
  const SamplerConfig& config() const { return cfg_; }

 private:
  const ErrorModel* error_model_;  // non-owning
  SamplerConfig cfg_;
};

}  // namespace libra::phy
