#include "phy/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace libra::phy {

PhySampler::PhySampler(const ErrorModel* error_model, SamplerConfig cfg)
    : error_model_(error_model), cfg_(cfg) {
  if (!error_model_) throw std::invalid_argument("null error model");
}

PhyObservation PhySampler::observe(const channel::Link& link,
                                   array::BeamId tx_beam,
                                   array::BeamId rx_beam, McsIndex mcs,
                                   util::Rng& rng) const {
  PhyObservation obs;
  obs.mcs = mcs;

  // A bursty interferer jams `duty` of the frames; per-frame logs average
  // the clean and jammed regimes.
  const double duty =
      link.interferer() ? link.interferer()->duty_cycle : 0.0;
  const double snr_clean = link.snr_clean_db(tx_beam, rx_beam);
  const double snr_jam = link.snr_db(tx_beam, rx_beam);
  const double true_snr = (1.0 - duty) * snr_clean + duty * snr_jam;
  obs.snr_db = true_snr + rng.gaussian(0.0, cfg_.snr_jitter_db);
  const double clean_floor =
      link.thermal_floor_dbm() + link.interference_rise_db();
  const double avg_floor = (1.0 - duty) * clean_floor +
                           duty * link.noise_floor_dbm(rx_beam);
  obs.noise_dbm = avg_floor + rng.gaussian(0.0, cfg_.noise_jitter_db);

  auto contributions = link.contributions(tx_beam, rx_beam);
  // Taps are detectable only above the receiver's effective noise floor;
  // this is what makes X60 report ToF = infinity for very weak signals.
  PdpConfig pdp_cfg = cfg_.pdp;
  pdp_cfg.noise_floor_mw =
      libra::util::dbm_to_mw(link.noise_floor_dbm(rx_beam) - 6.0);
  obs.pdp = synthesize_pdp(contributions, pdp_cfg);
  for (double& tap : obs.pdp) {
    tap *= std::exp(rng.gaussian(0.0, cfg_.pdp_tap_jitter));
  }
  obs.tof_ns = time_of_flight_ns(obs.pdp, pdp_cfg);
  obs.csi = csi_from_pdp(obs.pdp);

  const double expected_cdr =
      (1.0 - duty) * error_model_->expected_cdr(mcs, snr_clean) +
      duty * error_model_->expected_cdr(mcs, snr_jam);
  obs.cdr = std::clamp(expected_cdr + rng.gaussian(0.0, cfg_.cdr_jitter), 0.0,
                       1.0);
  obs.throughput_mbps = error_model_->table().rate_mbps(mcs) * obs.cdr *
                        error_model_->config().framing_efficiency;
  return obs;
}

double PhySampler::measure_snr_db(const channel::Link& link,
                                  array::BeamId tx_beam,
                                  array::BeamId rx_beam,
                                  util::Rng& rng) const {
  const double duty =
      link.interferer() ? link.interferer()->duty_cycle : 0.0;
  const double avg = (1.0 - duty) * link.snr_clean_db(tx_beam, rx_beam) +
                     duty * link.snr_db(tx_beam, rx_beam);
  return avg + rng.gaussian(0.0, cfg_.snr_jitter_db);
}

}  // namespace libra::phy
