// Power delay profile synthesis and derived metrics (Sec. 6.1).
//
// X60 logs the PDP per frame; LiBRA derives from it:
//   - ToF: delay of the strongest tap (reported as "infinity" when the
//     signal is too weak, e.g. after a 90-degree rotation),
//   - CSI estimate: FFT of the PDP (time -> frequency domain),
//   - PDP / CSI similarity: Pearson correlation against a reference.
#pragma once

#include <optional>
#include <vector>

#include "channel/link.h"

namespace libra::phy {

struct PdpConfig {
  int num_taps = 256;
  double tap_spacing_ns = 1.0;   // 2 GHz bandwidth -> sub-ns resolution;
                                 // 1 ns keeps vectors small but preserves
                                 // multipath structure (0.3 m resolution)
  double noise_floor_mw = 1e-12; // per-tap measurement floor
};

// Synthesize a PDP (linear mW per tap) from per-path contributions.
std::vector<double> synthesize_pdp(
    const std::vector<channel::PathContribution>& contributions,
    const PdpConfig& cfg = {});

// Delay (ns) of the strongest tap; nullopt when all taps are at the noise
// floor (the "ToF = infinity" case).
std::optional<double> time_of_flight_ns(const std::vector<double>& pdp,
                                        const PdpConfig& cfg = {});

// CSI estimate: magnitude spectrum of the PDP.
std::vector<double> csi_from_pdp(const std::vector<double>& pdp);

}  // namespace libra::phy
