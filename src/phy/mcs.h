// Single-carrier MCS table modeled on the X60 PHY reference implementation
// (Sec. 4.1): 9 SC MCSs with data rates from 300 Mbps to 4.75 Gbps, similar
// to the SC 802.11ad PHY. Each MCS has a decode SNR threshold; the spacing
// mirrors the modulation/coding ladder (BPSK 1/2 ... 16QAM 3/4).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace libra::phy {

using McsIndex = int;

struct McsEntry {
  McsIndex index;
  std::string modulation;
  double code_rate;
  double phy_rate_mbps;
  double snr_threshold_db;   // ~50% codeword success at this SNR
  int codeword_bytes;        // codeword payload size (180-1080 B, Sec. 4.1)
};

class McsTable {
 public:
  // The default X60-like table.
  McsTable();
  explicit McsTable(std::vector<McsEntry> entries);

  int size() const { return static_cast<int>(entries_.size()); }
  McsIndex min_mcs() const { return 0; }
  McsIndex max_mcs() const { return size() - 1; }
  const McsEntry& entry(McsIndex i) const;
  const std::vector<McsEntry>& entries() const { return entries_; }

  double rate_mbps(McsIndex i) const { return entry(i).phy_rate_mbps; }
  double max_rate_mbps() const { return entries_.back().phy_rate_mbps; }

  // Highest MCS whose threshold is at or below the given SNR; -1 if even
  // MCS 0 cannot decode (link broken).
  McsIndex highest_supported(double snr_db) const;

 private:
  std::vector<McsEntry> entries_;
};

// 802.11ad SC MCS table (MCS 1-12, data frames; Sec. 2), used when
// simulating COTS devices in the motivation experiments.
McsTable ieee80211ad_sc_table();

}  // namespace libra::phy
