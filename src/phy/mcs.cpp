#include "phy/mcs.h"

#include <stdexcept>

namespace libra::phy {

McsTable::McsTable() {
  // X60-like ladder: 300 Mbps .. 4.75 Gbps over 9 steps. Thresholds follow
  // the usual ~2-2.5 dB per modulation/coding step at a 2 GHz symbol rate.
  entries_ = {
      {0, "BPSK", 0.50, 300.0, 3.0, 180},
      {1, "BPSK", 0.63, 385.0, 4.5, 225},
      {2, "QPSK", 0.50, 770.0, 7.0, 360},
      {3, "QPSK", 0.75, 1155.0, 9.5, 540},
      {4, "QPSK", 1.00, 1540.0, 12.0, 720},
      {5, "16QAM", 0.63, 1925.0, 14.5, 810},
      {6, "16QAM", 0.75, 2310.0, 17.0, 900},
      {7, "16QAM", 1.00, 3080.0, 20.5, 1000},
      {8, "64QAM", 0.80, 4750.0, 24.5, 1080},
  };
}

McsTable::McsTable(std::vector<McsEntry> entries)
    : entries_(std::move(entries)) {
  if (entries_.empty()) throw std::invalid_argument("empty MCS table");
}

const McsEntry& McsTable::entry(McsIndex i) const {
  if (i < 0 || i >= size()) throw std::out_of_range("MCS index");
  return entries_[static_cast<std::size_t>(i)];
}

McsIndex McsTable::highest_supported(double snr_db) const {
  McsIndex best = -1;
  for (const McsEntry& e : entries_) {
    if (snr_db >= e.snr_threshold_db) best = e.index;
  }
  return best;
}

McsTable ieee80211ad_sc_table() {
  // 802.11ad SC PHY data-frame MCSs 1-12 (385-4620 Mbps). Index here is
  // re-based to 0..11 for uniform handling.
  return McsTable({
      {0, "BPSK", 0.50, 385.0, 3.0, 256},
      {1, "BPSK", 0.63, 770.0, 4.5, 256},
      {2, "BPSK", 0.75, 962.5, 5.5, 256},
      {3, "BPSK", 0.88, 1155.0, 6.5, 256},
      {4, "QPSK", 0.50, 1251.25, 7.5, 512},
      {5, "QPSK", 0.63, 1540.0, 9.0, 512},
      {6, "QPSK", 0.75, 1925.0, 10.5, 512},
      {7, "QPSK", 0.88, 2310.0, 12.0, 512},
      {8, "16QAM", 0.50, 2502.5, 14.0, 1024},
      {9, "16QAM", 0.63, 3080.0, 16.0, 1024},
      {10, "16QAM", 0.75, 3850.0, 18.5, 1024},
      {11, "16QAM", 0.88, 4620.0, 21.0, 1024},
  });
}

}  // namespace libra::phy
