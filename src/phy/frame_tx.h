// Codeword-level frame transmission (Sec. 4.1).
//
// An X60 frame is 100 slots x 92 CRC-protected codewords. ErrorModel gives
// the *expected* CDR; this module samples the actual per-codeword outcomes
// of one frame, yielding the empirical CDR, per-slot delivery counts, the
// delivered payload bytes, and the Block-ACK outcome -- the level of detail
// a MAC implementation sees. Sampling uses a per-slot binomial draw (via a
// normal approximation for the large slot population) plus an optional
// burst-error overlay for the duty-cycled interferer.
#pragma once

#include <vector>

#include "channel/link.h"
#include "mac/timing.h"
#include "phy/error_model.h"
#include "util/rng.h"

namespace libra::phy {

struct FrameTxConfig {
  mac::TdmaConfig tdma{};
  // Number of MPDUs the Block ACK covers; it is lost only if all fail.
  int ack_subframes = 32;
};

struct FrameResult {
  int codewords_sent = 0;
  int codewords_delivered = 0;
  double empirical_cdr = 0.0;
  double payload_bytes = 0.0;
  bool block_ack = false;
  // Slots jammed by an interferer burst during this frame.
  int jammed_slots = 0;
  std::vector<int> per_slot_delivered;  // size = slots_per_frame
};

class FrameTransmitter {
 public:
  FrameTransmitter(const ErrorModel* error_model, FrameTxConfig cfg = {});

  // Transmit one frame over the link at (tx_beam, rx_beam, mcs). If the
  // link has a duty-cycled interferer, a contiguous run of slots matching
  // the duty cycle is jammed (CSMA bursts are contiguous in time).
  FrameResult transmit(const channel::Link& link, array::BeamId tx_beam,
                       array::BeamId rx_beam, McsIndex mcs,
                       util::Rng& rng) const;

  const FrameTxConfig& config() const { return cfg_; }

 private:
  int sample_delivered(int n, double p, util::Rng& rng) const;

  const ErrorModel* error_model_;  // non-owning
  FrameTxConfig cfg_;
};

}  // namespace libra::phy
