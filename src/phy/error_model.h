// SNR -> codeword error model.
//
// Each X60 slot carries 92 CRC-protected codewords (Sec. 4.1); the codeword
// delivery ratio (CDR) is the per-frame fraction that pass CRC. We model the
// per-codeword success probability as a logistic function of the SNR margin
// over the MCS threshold, which matches the sharp waterfall of LDPC-coded SC
// transmission. MAC throughput is PHY rate x CDR x framing efficiency.
#pragma once

#include "phy/mcs.h"

namespace libra::phy {

struct ErrorModelConfig {
  // Logistic steepness: dB of margin to go from 50% to ~90% success.
  double waterfall_width_db = 0.9;
  // Fraction of a slot usable for MAC payload (preamble/header/GI overhead).
  double framing_efficiency = 0.92;
};

class ErrorModel {
 public:
  ErrorModel(const McsTable* table, ErrorModelConfig cfg = {});

  // P(codeword passes CRC) at the given SNR and MCS.
  double codeword_success_prob(McsIndex mcs, double snr_db) const;

  // Expected CDR (equals the success probability; a frame carries 9200
  // codewords so the empirical CDR concentrates tightly around it).
  double expected_cdr(McsIndex mcs, double snr_db) const;

  // Expected MAC-layer throughput (Mbps) at the given SNR and MCS.
  double expected_throughput_mbps(McsIndex mcs, double snr_db) const;

  const McsTable& table() const { return *table_; }
  const ErrorModelConfig& config() const { return cfg_; }

 private:
  const McsTable* table_;  // non-owning
  ErrorModelConfig cfg_;
};

}  // namespace libra::phy
