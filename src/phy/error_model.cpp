#include "phy/error_model.h"

#include <cmath>
#include <stdexcept>

namespace libra::phy {

ErrorModel::ErrorModel(const McsTable* table, ErrorModelConfig cfg)
    : table_(table), cfg_(cfg) {
  if (!table_) throw std::invalid_argument("null MCS table");
  if (cfg_.waterfall_width_db <= 0.0) {
    throw std::invalid_argument("waterfall width must be positive");
  }
}

double ErrorModel::codeword_success_prob(McsIndex mcs, double snr_db) const {
  const double margin = snr_db - table_->entry(mcs).snr_threshold_db;
  // Logistic scaled so +width dB of margin ~ 90% success.
  const double k = std::log(9.0) / cfg_.waterfall_width_db;
  return 1.0 / (1.0 + std::exp(-k * margin));
}

double ErrorModel::expected_cdr(McsIndex mcs, double snr_db) const {
  return codeword_success_prob(mcs, snr_db);
}

double ErrorModel::expected_throughput_mbps(McsIndex mcs, double snr_db) const {
  return table_->rate_mbps(mcs) * expected_cdr(mcs, snr_db) *
         cfg_.framing_efficiency;
}

}  // namespace libra::phy
