// Fully-connected DNN (Sec. 6.2): 4 dense layers -- ReLU activations on the
// first three, sigmoid (binary) or softmax (multiclass) on the last -- with
// dropout after each hidden layer to curb overfitting, trained with Adam on
// cross-entropy. Features are standardized internally.
#pragma once

#include <vector>

#include "ml/data.h"

namespace libra::ml {

struct NeuralNetConfig {
  std::vector<int> hidden = {32, 24, 16};  // three hidden layers + output = 4
  double dropout = 0.2;
  double learning_rate = 5e-3;
  int epochs = 220;
  int batch_size = 16;
  double l2 = 1e-4;
};

class NeuralNet : public Classifier {
 public:
  explicit NeuralNet(NeuralNetConfig cfg = {});

  void fit(const DataSet& train, util::Rng& rng) override;
  Label predict(std::span<const double> features) const override;

  // Class probabilities for a (raw, unstandardized) feature row.
  std::vector<double> predict_proba(std::span<const double> features) const;

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> w;  // row-major [out][in]
    std::vector<double> b;
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  std::vector<double> forward(std::span<const double> x,
                              std::vector<std::vector<double>>* activations,
                              const std::vector<std::vector<bool>>* drop_masks)
      const;

  NeuralNetConfig cfg_;
  Standardizer standardizer_;
  std::vector<Layer> layers_;
  int num_classes_ = 2;
  long adam_t_ = 0;
};

}  // namespace libra::ml
