// Support vector machine (Sec. 6.2): soft-margin SVM trained with a
// simplified SMO solver, supporting linear and RBF kernels and different
// regularization parameters C (the axes the paper explores). Multiclass is
// handled one-vs-rest. Features are standardized internally.
#pragma once

#include <vector>

#include "ml/data.h"

namespace libra::ml {

enum class Kernel { kLinear, kRbf };

struct SvmConfig {
  Kernel kernel = Kernel::kRbf;
  double c = 5.0;          // regularization
  double gamma = 0.5;      // RBF width (on standardized features)
  double tolerance = 1e-3;
  int max_passes = 8;      // SMO convergence: passes without alpha updates
  int max_iterations = 3000;
};

// Binary SVM with labels in {-1, +1}.
class BinarySvm {
 public:
  explicit BinarySvm(SvmConfig cfg = {});

  // y must contain only -1 and +1.
  void fit(const DataSet& x, const std::vector<int>& y, util::Rng& rng);
  double decision(std::span<const double> features) const;

 private:
  double kernel_eval(std::span<const double> a, std::span<const double> b) const;

  SvmConfig cfg_;
  DataSet support_;            // retained training points (alpha > 0)
  std::vector<double> alpha_y_;  // alpha_i * y_i per support vector
  double bias_ = 0.0;
};

class Svm : public Classifier {
 public:
  explicit Svm(SvmConfig cfg = {});

  void fit(const DataSet& train, util::Rng& rng) override;
  Label predict(std::span<const double> features) const override;

 private:
  SvmConfig cfg_;
  Standardizer standardizer_;
  std::vector<BinarySvm> one_vs_rest_;
  int num_classes_ = 2;
};

}  // namespace libra::ml
