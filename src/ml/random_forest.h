// Random forest (Sec. 6.2): bagged CART trees with per-split feature
// subsampling and majority voting. This is the model LiBRA deploys (98%
// 5-fold accuracy, 88% cross-building). Gini importances (Table 3) are the
// normalized average of the per-tree impurity decreases.
//
// Training is parallel across trees: fit() splits one deterministic child
// Rng stream per tree off the caller's stream *before* dispatching, so a
// forest trained with num_threads = N is bit-identical to num_threads = 1
// for the same seed (the schedule never touches the randomness).
#pragma once

#include <memory>
#include <vector>

#include "ml/compiled_forest.h"
#include "ml/decision_tree.h"
#include "util/thread_pool.h"

namespace libra::ml {

struct RandomForestConfig {
  int num_trees = 60;
  DecisionTreeConfig tree{};  // max_features is overridden below when 0
  // Fraction of the training set bootstrapped per tree.
  double bootstrap_fraction = 1.0;
  // Worker threads for fit()/batched inference: 0 = hardware_concurrency(),
  // 1 = serial legacy behavior (no pool is ever created).
  int num_threads = 0;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig cfg = {});

  void fit(const DataSet& train, util::Rng& rng) override;
  // Throws std::logic_error on an unfitted (empty) forest instead of
  // silently voting label 0 out of thin air.
  Label predict(std::span<const double> features) const override;

  // Per-class vote fractions (sum to 1); the winning class's fraction is a
  // calibrated-enough confidence for gating decisions. An empty forest
  // yields all-zero fractions.
  std::vector<double> vote_fractions(std::span<const double> features) const;

  // Batched inference over every row, parallel across rows on the forest's
  // pool. Row order (and therefore the result) is independent of threading.
  std::vector<Label> predict_batch(const DataSet& data) const;
  std::vector<std::vector<double>> vote_fractions_batch(
      const DataSet& data) const;

  // Freeze the fitted forest into a flat-arena CompiledForest (see
  // ml/compiled_forest.h) and dispatch every subsequent predict /
  // vote_fractions / *_batch call through it. In kDouble mode (the default)
  // the compiled path is bit-identical to the pointer walk. fit() and
  // import_model() drop the compiled form (it would be stale). Throws
  // std::logic_error when unfitted. Returns the compiled forest, which
  // copies of this forest share.
  const CompiledForest& compile(CompiledForestConfig compile_cfg = {});
  // The active compiled form, or nullptr when serving interpreted.
  const CompiledForest* compiled() const { return compiled_.get(); }

  // Share an external pool (e.g. the cross-validation pool) instead of the
  // lazily created owned one; pass nullptr to revert. Not owned.
  void set_thread_pool(util::ThreadPool* pool) { external_pool_ = pool; }

  const std::vector<double>& feature_importances() const {
    return importances_;
  }
  const std::vector<DecisionTree>& trees() const { return trees_; }
  int num_classes() const { return num_classes_; }
  // Restore a forest from serialized state (replaces any fit model, drops
  // any compiled form). Validates the deserialized state -- every tree's
  // classes within num_classes, importance sizes consistent across trees
  // and the forest -- and throws std::invalid_argument instead of trusting
  // the file.
  void import_model(std::vector<DecisionTree> trees,
                    std::vector<double> importances, int num_classes);

 private:
  util::ThreadPool* pool() const;

  RandomForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
  int num_classes_ = 2;
  util::ThreadPool* external_pool_ = nullptr;
  // shared_ptr keeps the forest copyable (copies share the workers).
  mutable std::shared_ptr<util::ThreadPool> owned_pool_;
  // Frozen flat-arena form; shared by copies (immutable once built).
  std::shared_ptr<const CompiledForest> compiled_;
};

}  // namespace libra::ml
