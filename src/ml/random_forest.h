// Random forest (Sec. 6.2): bagged CART trees with per-split feature
// subsampling and majority voting. This is the model LiBRA deploys (98%
// 5-fold accuracy, 88% cross-building). Gini importances (Table 3) are the
// normalized average of the per-tree impurity decreases.
#pragma once

#include <vector>

#include "ml/decision_tree.h"

namespace libra::ml {

struct RandomForestConfig {
  int num_trees = 60;
  DecisionTreeConfig tree{};  // max_features is overridden below when 0
  // Fraction of the training set bootstrapped per tree.
  double bootstrap_fraction = 1.0;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig cfg = {});

  void fit(const DataSet& train, util::Rng& rng) override;
  Label predict(std::span<const double> features) const override;

  // Per-class vote fractions (sum to 1); the winning class's fraction is a
  // calibrated-enough confidence for gating decisions.
  std::vector<double> vote_fractions(std::span<const double> features) const;

  const std::vector<double>& feature_importances() const {
    return importances_;
  }
  const std::vector<DecisionTree>& trees() const { return trees_; }
  int num_classes() const { return num_classes_; }
  // Restore a forest from serialized state (replaces any fit model).
  void import_model(std::vector<DecisionTree> trees,
                    std::vector<double> importances, int num_classes);

 private:
  RandomForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
  int num_classes_ = 2;
};

}  // namespace libra::ml
