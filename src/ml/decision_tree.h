// CART decision tree (Sec. 6.2): axis-aligned binary splits chosen by Gini
// impurity or entropy, with a maximum-depth cap to control overfitting (the
// paper limits tree depth for both DT and RF).
#pragma once

#include <memory>
#include <vector>

#include "ml/data.h"

namespace libra::ml {

enum class Impurity { kGini, kEntropy };

struct DecisionTreeConfig {
  Impurity impurity = Impurity::kGini;
  int max_depth = 8;
  int min_samples_split = 2;
  // When positive, consider only this many randomly chosen features per
  // split (used by the random forest); 0 = all features.
  int max_features = 0;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig cfg = {});

  void fit(const DataSet& train, util::Rng& rng) override;
  Label predict(std::span<const double> features) const override;

  // Impurity-decrease importance per feature, normalized to sum to 1
  // ("Gini importance", Table 3). Empty before fit().
  const std::vector<double>& feature_importances() const {
    return importances_;
  }
  // Raw (unnormalized) importance accumulator; used by the forest to
  // aggregate before normalizing.
  const std::vector<double>& raw_importances() const {
    return raw_importances_;
  }

  int depth() const;
  int node_count() const { return static_cast<int>(nodes_.size()); }

  // Flat node layout, exposed for model serialization (ml/model_io.h).
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    Label label = 0;         // majority label (leaves)
  };
  const std::vector<Node>& nodes() const { return nodes_; }
  int num_classes() const { return num_classes_; }
  // Restore a tree from serialized state (replaces any fit model).
  // Validates the untrusted input -- child indices in range, no cycles or
  // shared/orphaned subtrees, labels within [0, num_classes), split
  // features within the importance vector -- and throws
  // std::invalid_argument on any violation.
  void import_model(std::vector<Node> nodes, std::vector<double> importances,
                    int num_classes);

 private:
  int build(const DataSet& data, std::vector<std::size_t>& indices, int depth,
            util::Rng& rng);
  double node_impurity(const std::vector<std::size_t>& indices,
                       const DataSet& data) const;

  DecisionTreeConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  std::vector<double> raw_importances_;
  int num_classes_ = 2;
};

}  // namespace libra::ml
