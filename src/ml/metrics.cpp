#include "ml/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace libra::ml {

namespace {
int max_class(std::span<const Label> a, std::span<const Label> b) {
  int m = 1;
  for (Label l : a) m = std::max(m, l);
  for (Label l : b) m = std::max(m, l);
  return m + 1;
}
}  // namespace

double accuracy(std::span<const Label> truth, std::span<const Label> pred) {
  if (truth.size() != pred.size() || truth.empty()) {
    throw std::invalid_argument("accuracy: size mismatch or empty");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

std::vector<std::vector<int>> confusion_matrix(std::span<const Label> truth,
                                               std::span<const Label> pred) {
  const int k = max_class(truth, pred);
  std::vector<std::vector<int>> cm(static_cast<std::size_t>(k),
                                   std::vector<int>(static_cast<std::size_t>(k), 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ++cm[static_cast<std::size_t>(truth[i])][static_cast<std::size_t>(pred[i])];
  }
  return cm;
}

double weighted_f1(std::span<const Label> truth, std::span<const Label> pred) {
  const auto cm = confusion_matrix(truth, pred);
  const std::size_t k = cm.size();
  double f1_sum = 0.0;
  std::size_t total = truth.size();
  for (std::size_t c = 0; c < k; ++c) {
    int tp = cm[c][c];
    int fp = 0, fn = 0, support = 0;
    for (std::size_t o = 0; o < k; ++o) {
      if (o != c) {
        fp += cm[o][c];
        fn += cm[c][o];
      }
      support += cm[c][o];
    }
    if (support == 0) continue;
    const double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    const double f1 = precision + recall > 0
                          ? 2.0 * precision * recall / (precision + recall)
                          : 0.0;
    f1_sum += f1 * static_cast<double>(support) / static_cast<double>(total);
  }
  return f1_sum;
}

}  // namespace libra::ml
