// Compiled forest inference: a fitted RandomForest frozen into one
// contiguous structure-of-arrays arena for cache-linear batched traversal.
//
// The interpreted forest walks per-tree std::vector<Node> heaps through
// 40-byte nodes scattered across 60 allocations; at fleet scale (a 60-tree
// vote every 2 frames per link) that pointer-chasing walk dominates serving
// cost. Compiling packs every tree's nodes breadth-first into shared flat
// arrays:
//
//   feature_[i]   int16   split feature; leaves fold the class ID into the
//                         same word as ~label (feature_ < 0 <=> leaf, so
//                         label = -1 - feature_ and one load both ends the
//                         walk and yields the vote)
//   thr_d_[i] /   double  split threshold (go left when x[f] <= thr). The
//   thr_f_[i]     float   precision knob picks which array is populated;
//                         kDouble (default) preserves the training-time
//                         comparisons bit for bit, kFloat halves threshold
//                         bytes at the cost of threshold quantization.
//   child_[2i],   int32   relative child offsets: left child = i +
//   child_[2i+1]          child_[2i], right child = i + child_[2i+1]. The
//                         pair is interleaved so the branch decision indexes
//                         one load (child_[2i + go_right]) instead of
//                         selecting between two. BFS packing keeps offsets
//                         small and forward.
//
// plus per-tree root offsets (roots_[t]). Traversal touches four parallel
// arrays sequentially-indexed per step instead of one scattered node heap,
// and a whole batch walks the same hot arena.
//
// Determinism contract: in kDouble mode every comparison
// `x[f] <= threshold` is evaluated on exactly the values the interpreted
// walk uses, so predict / vote_fractions / the batch variants are
// bit-identical to RandomForest's pointer walk (vote fractions are integer
// counts divided by num_trees -- exact in double). kFloat rounds each
// threshold to the nearest float once at compile time; rows whose feature
// values land between a double threshold and its float rounding may flip
// branch, so kFloat is only safe when features are themselves
// float-quantized (e.g. dB readings from firmware) or a small verdict
// perturbation is acceptable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/data.h"
#include "util/thread_pool.h"

namespace libra::ml {

class RandomForest;

enum class ThresholdPrecision { kDouble, kFloat };

struct CompiledForestConfig {
  ThresholdPrecision precision = ThresholdPrecision::kDouble;
  // Rows per pooled task in the batch paths: large enough to amortize
  // dispatch, small enough to load-balance uneven tree depths.
  std::size_t row_block = 64;
};

class CompiledForest {
 public:
  CompiledForest() = default;  // empty; predict() throws until compiled

  // Freeze a fitted forest. Throws std::invalid_argument when the forest is
  // unfitted or its trees cannot be packed (feature index or leaf label
  // beyond int16, malformed children).
  explicit CompiledForest(const RandomForest& forest,
                          CompiledForestConfig cfg = {});

  bool empty() const { return roots_.empty(); }
  int num_trees() const { return static_cast<int>(roots_.size()); }
  int num_classes() const { return num_classes_; }
  std::size_t node_count() const { return feature_.size(); }
  ThresholdPrecision precision() const { return cfg_.precision; }
  // Total bytes of the packed arena (the cache footprint of a traversal).
  std::size_t arena_bytes() const;

  // Single-row inference; identical tie-breaking (first max) to
  // RandomForest::predict. Throws std::logic_error when empty().
  Label predict(std::span<const double> features) const;
  // Per-class vote fractions (counts / num_trees); all-zero when empty().
  std::vector<double> vote_fractions(std::span<const double> features) const;

  // Batched inference, row-blocked across `pool` (nullptr = serial). Row
  // order of the result is independent of threading.
  std::vector<Label> predict_batch(const DataSet& data,
                                   util::ThreadPool* pool = nullptr) const;
  std::vector<std::vector<double>> vote_fractions_batch(
      const DataSet& data, util::ThreadPool* pool = nullptr) const;

 private:
  // Walk every tree for one row, bumping votes[class]. votes must hold
  // num_classes_ zeroed slots.
  void accumulate_votes(std::span<const double> row,
                        std::vector<std::uint32_t>& votes) const;
  // Vote counts for rows [begin, end), trees outermost with interleaved
  // row groups per tree (see walk_group in the .cpp). votes is caller-owned
  // scratch; it comes back row-major [(end - begin) x num_classes].
  void block_votes(const DataSet& data, std::size_t begin, std::size_t end,
                   std::vector<std::uint32_t>& votes) const;

  CompiledForestConfig cfg_{};
  int num_classes_ = 0;
  std::vector<std::int16_t> feature_;  // < 0: leaf, label = -1 - feature_
  std::vector<double> thr_d_;          // populated in kDouble mode
  std::vector<float> thr_f_;           // populated in kFloat mode
  // Interleaved relative child-offset pairs, 2 per node (both 0 on leaves).
  std::vector<std::int32_t> child_;
  std::vector<std::uint32_t> roots_;   // arena index of each tree's root
};

}  // namespace libra::ml
