// Compiled forest inference: a fitted RandomForest frozen into one
// contiguous structure-of-arrays arena for cache-linear batched traversal.
//
// The interpreted forest walks per-tree std::vector<Node> heaps through
// 40-byte nodes scattered across 60 allocations; at fleet scale (a 60-tree
// vote every 2 frames per link) that pointer-chasing walk dominates serving
// cost. Compiling packs every tree's nodes breadth-first into shared flat
// arrays:
//
//   feature_[i]   int16   split feature; leaves fold the class ID into the
//                         same word as ~label (feature_ < 0 <=> leaf, so
//                         label = -1 - feature_ and one load both ends the
//                         walk and yields the vote)
//   thr_d_[i] /   double  split threshold (go left when x[f] <= thr). The
//   thr_f_[i] /   float   precision knob picks which array is populated;
//   thr_q_[i]     int16   see "Precision & tolerance contract" below.
//   child_[2i],   int32   relative child offsets: left child = i +
//   child_[2i+1]          child_[2i], right child = i + child_[2i+1]. The
//                         pair is interleaved so the branch decision indexes
//                         one load (child_[2i + go_right]) instead of
//                         selecting between two. BFS packing keeps offsets
//                         small and forward.
//
// plus per-tree root offsets (roots_[t]). Traversal touches four parallel
// arrays sequentially-indexed per step instead of one scattered node heap,
// and a whole batch walks the same hot arena.
//
// For the reduced-precision modes (kFloat / kInt16) compilation also emits
// a packed arena tuned for the vector kernels: one int32 meta word per
// node — (left_child_offset << 8) | feature for internal nodes, -1 - label
// (negative) for leaves — alongside the mode's threshold array. BFS
// packing places a node's two children in adjacent slots, so the right
// child is left + 1 and a traversal level costs three indexed loads (meta,
// threshold, row value) instead of four. Forests whose shape cannot pack
// (feature index > 255, a child offset >= 2^23, or >= 2^30 nodes) simply
// stay on the scalar walkers — same results, no SIMD.
//
// SIMD dispatch: the batch paths route each row block through
// ml::kernels — an AVX2 (or guarded NEON) traversal kernel over the packed
// arena replaces the 8-row interleaved scalar group when
// util::simd::active_isa() allows it (see util/simd.h for the selection
// order: LIBRA_SIMD=OFF > LIBRA_FORCE_SCALAR env > ScopedForceScalar > CPU
// detect). kDouble always walks scalar: it is the bit-exact reference
// mode, and 64-bit gathers measured slower than the interleaved scalar
// walk. The vector kernels issue exactly the comparisons the scalar walk
// of the same mode issues, so for every precision mode the dispatched
// result is bit-identical to the forced-scalar result — CI's forced-scalar
// differential enforces this on the full fleet digest.
//
// Precision & tolerance contract (per mode, scalar and SIMD alike):
//
//   kDouble  every comparison `x[f] <= threshold` is evaluated on exactly
//            the values the interpreted walk uses, so predict /
//            vote_fractions / the batch variants are bit-identical to
//            RandomForest's pointer walk (vote fractions are integer counts
//            divided by num_trees — exact in double).
//
//   kFloat   each threshold is rounded once, at compile time, to the
//            nearest float, and each row value is narrowed once per
//            comparison to the nearest float; the comparison runs in
//            float. Both roundings are exact IEEE nearest-even, performed
//            identically by the scalar walk (a per-compare cast) and the
//            batch/vector path (a per-block narrowing pass) — so scalar
//            and SIMD stay bit-identical. A branch can differ from kDouble
//            only when x sits within one float ulp of thr (roughly
//            |thr| * 2^-23; subnormal thresholds saturate at the subnormal
//            spacing): outside that interval both roundings preserve the
//            order of x and thr. Features that are themselves
//            float-quantized (e.g. dB readings from firmware) can never
//            land in it.
//
//   kInt16   thresholds and row values are mapped through the same
//            per-feature affine quantizer q(v) = lrint((v - lo_f) *
//            scale_f) - 32767 with [lo_f, hi_f] the feature's threshold
//            range and scale_f = 65534 / (hi_f - lo_f), so every
//            comparison becomes one int compare q(x) <= q(t). Compilation
//            throws std::invalid_argument if two distinct thresholds of a
//            feature would collapse to the same quantized value (ordering
//            loss — the forest's decision structure cannot be preserved).
//            Given that guarantee: an exact tie x == thr quantizes equal on
//            both sides and goes left, exactly like kDouble; a branch can
//            differ from kDouble only when x lies within one quantization
//            step (max(|lo_f|, |hi_f|) range / 65534) of thr. Row values
//            outside the threshold range clamp to sentinels that compare
//            below/above every threshold, and non-finite features map to
//            the sentinels too (-inf -> INT32_MIN, NaN/+inf -> INT32_MAX),
//            reproducing IEEE `<=` ordering (NaN goes right) bit for bit.
//
// In all three modes the argmax vote is expected to agree with kDouble on
// real feature grids (asserted in tests); kFloat/kInt16 trade the
// documented boundary intervals for half / quarter threshold bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/data.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace libra::ml {

class RandomForest;

enum class ThresholdPrecision { kDouble, kFloat, kInt16 };

struct CompiledForestConfig {
  ThresholdPrecision precision = ThresholdPrecision::kDouble;
  // Rows per pooled task in the batch paths: large enough to amortize
  // dispatch, small enough to load-balance uneven tree depths.
  std::size_t row_block = 64;
};

class CompiledForest {
 public:
  CompiledForest() = default;  // empty; predict() throws until compiled

  // Freeze a fitted forest. Throws std::invalid_argument when the forest is
  // unfitted or its trees cannot be packed (feature index or leaf label
  // beyond int16, malformed children), or — in kInt16 mode — when a
  // feature's threshold range would lose ordering under quantization (see
  // the precision contract above).
  explicit CompiledForest(const RandomForest& forest,
                          CompiledForestConfig cfg = {});

  bool empty() const { return roots_.empty(); }
  int num_trees() const { return static_cast<int>(roots_.size()); }
  int num_classes() const { return num_classes_; }
  std::size_t node_count() const { return node_count_; }
  ThresholdPrecision precision() const { return cfg_.precision; }
  // Total bytes of the packed arena (the cache footprint of a traversal).
  std::size_t arena_bytes() const;

  // The ISA the batch paths will dispatch to right now (env knobs, forced
  // scalar, precision mode and per-forest packing eligibility folded in —
  // kDouble always reports kScalar). Benches label series with it and
  // tools log it next to digests.
  util::simd::Isa dispatch_isa() const;

  // Single-row inference; identical tie-breaking (first max) to
  // RandomForest::predict. Throws std::logic_error when empty().
  Label predict(std::span<const double> features) const;
  // Per-class vote fractions (counts / num_trees); all-zero when empty().
  std::vector<double> vote_fractions(std::span<const double> features) const;

  // Batched inference, row-blocked across `pool` (nullptr = serial). Row
  // order of the result is independent of threading, and the result is
  // bit-identical whichever ISA the blocks dispatch to.
  std::vector<Label> predict_batch(const DataSet& data,
                                   util::ThreadPool* pool = nullptr) const;
  std::vector<std::vector<double>> vote_fractions_batch(
      const DataSet& data, util::ThreadPool* pool = nullptr) const;

 private:
  // Walk every tree for one row, bumping votes[class]. votes must hold
  // num_classes_ zeroed slots. Single-row latency path: always scalar.
  void accumulate_votes(std::span<const double> row,
                        std::vector<std::uint32_t>& votes) const;
  // Vote counts for rows [begin, end), trees outermost with interleaved
  // row groups per tree (scalar) or one SIMD lane per grouped row (see
  // ml/forest_kernels.h). votes is caller-owned scratch; it comes back
  // row-major [(end - begin) x num_classes].
  void block_votes(const DataSet& data, std::size_t begin, std::size_t end,
                   std::vector<std::uint32_t>& votes) const;
  // kInt16: quantize row[0..qlo_.size()) through the per-feature affine
  // maps into out (sentinels for non-finite / out-of-range values).
  void quantize_row(const double* row, std::int32_t* out) const;

  CompiledForestConfig cfg_{};
  int num_classes_ = 0;
  std::size_t node_count_ = 0;         // nodes, excluding gather padding
  std::vector<std::int16_t> feature_;  // < 0: leaf, label = -1 - feature_
  std::vector<double> thr_d_;          // populated in kDouble mode
  std::vector<float> thr_f_;           // populated in kFloat mode
  std::vector<std::int16_t> thr_q_;    // populated in kInt16 mode; +1
                                       // trailing pad for 32-bit gathers
  // Interleaved relative child-offset pairs, 2 per node (both 0 on leaves).
  std::vector<std::int32_t> child_;
  // Packed vector-kernel arena (kFloat/kInt16 only): per-node meta word,
  // (left_offset << 8) | feature on internal nodes, -1 - label on leaves.
  std::vector<std::int32_t> meta_;
  std::vector<std::uint32_t> roots_;   // arena index of each tree's root
  // kInt16 per-feature quantizer params, sized max split feature + 1.
  std::vector<double> qlo_;
  std::vector<double> qscale_;
  // True when the packed arena exists and fits the vector kernels'
  // preconditions (see forest_kernels.h); false in kDouble mode.
  bool simd_ok_ = false;
};

}  // namespace libra::ml
