#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace libra::ml {

RandomForest::RandomForest(RandomForestConfig cfg) : cfg_(cfg) {}

void RandomForest::fit(const DataSet& train, util::Rng& rng) {
  trees_.clear();
  num_classes_ = std::max(train.num_classes(), 2);

  DecisionTreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0) {
    // sqrt(d) features per split, the standard forest default.
    tree_cfg.max_features = std::max(
        1, static_cast<int>(std::round(
               std::sqrt(static_cast<double>(train.num_features())))));
  }

  importances_.assign(train.num_features(), 0.0);
  const auto sample_size = static_cast<std::size_t>(
      std::max<double>(1.0, cfg_.bootstrap_fraction *
                                static_cast<double>(train.size())));
  for (int t = 0; t < cfg_.num_trees; ++t) {
    std::vector<std::size_t> bootstrap(sample_size);
    for (std::size_t& idx : bootstrap) {
      idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(train.size()) - 1));
    }
    const DataSet bag = train.subset(bootstrap);
    DecisionTree tree(tree_cfg);
    tree.fit(bag, rng);
    for (std::size_t f = 0; f < importances_.size(); ++f) {
      importances_[f] += tree.raw_importances()[f];
    }
    trees_.push_back(std::move(tree));
  }
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0) {
    for (double& imp : importances_) imp /= total;
  }
}

void RandomForest::import_model(std::vector<DecisionTree> trees,
                                std::vector<double> importances,
                                int num_classes) {
  trees_ = std::move(trees);
  importances_ = std::move(importances);
  num_classes_ = num_classes;
}

Label RandomForest::predict(std::span<const double> features) const {
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (const DecisionTree& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(features))];
  }
  return static_cast<Label>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> RandomForest::vote_fractions(
    std::span<const double> features) const {
  std::vector<double> fractions(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return fractions;
  for (const DecisionTree& tree : trees_) {
    fractions[static_cast<std::size_t>(tree.predict(features))] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(trees_.size());
  return fractions;
}

}  // namespace libra::ml
