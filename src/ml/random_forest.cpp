#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/span.h"

namespace libra::ml {

namespace {
obs::Histogram& fit_latency_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("forest.fit_latency_us");
  return h;
}
obs::Counter& trees_trained_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("forest.trees_trained");
  return c;
}
obs::Counter& batch_rows_counter() {
  static obs::Counter& c = obs::Registry::global().counter("forest.batch_rows");
  return c;
}
obs::Counter& compiles_counter() {
  static obs::Counter& c = obs::Registry::global().counter("forest.compiles");
  return c;
}
obs::Counter& compiled_batch_rows_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("forest.compiled_batch_rows");
  return c;
}
obs::Histogram& compile_latency_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("forest.compile_latency_us");
  return h;
}
// Compiled vs. interpreted batch latency, separable in one scrape.
obs::Histogram& compiled_batch_latency_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("forest.batch_compiled_latency_us");
  return h;
}
obs::Histogram& interpreted_batch_latency_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("forest.batch_interpreted_latency_us");
  return h;
}
}  // namespace

RandomForest::RandomForest(RandomForestConfig cfg) : cfg_(cfg) {}

util::ThreadPool* RandomForest::pool() const {
  if (external_pool_ != nullptr) return external_pool_;
  const int threads = util::ThreadPool::resolve(cfg_.num_threads);
  // Inside another pool's worker the loops run inline anyway, so don't
  // spin up (and then never use) a private pool per forest.
  if (threads <= 1 || util::ThreadPool::in_worker()) return nullptr;
  if (!owned_pool_) {
    owned_pool_ = std::make_shared<util::ThreadPool>(threads);
  }
  return owned_pool_.get();
}

void RandomForest::fit(const DataSet& train, util::Rng& rng) {
  if (train.empty()) {
    throw std::invalid_argument("RandomForest::fit: empty training set");
  }
  OBS_SPAN("forest.fit", &fit_latency_hist());
  trees_trained_counter().inc(static_cast<std::uint64_t>(
      std::max(0, cfg_.num_trees)));
  compiled_.reset();  // stale the moment the trees change
  trees_.clear();
  num_classes_ = std::max(train.num_classes(), 2);

  DecisionTreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0) {
    // sqrt(d) features per split, the standard forest default.
    tree_cfg.max_features = std::max(
        1, static_cast<int>(std::round(
               std::sqrt(static_cast<double>(train.num_features())))));
  }

  const auto num_trees = static_cast<std::size_t>(cfg_.num_trees);
  // Split one deterministic child stream per tree before any parallel
  // work: tree t consumes only streams[t], so the thread schedule cannot
  // leak into the model and serial == parallel bit-for-bit.
  std::vector<util::Rng> streams;
  streams.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) streams.push_back(rng.fork());

  const auto sample_size = static_cast<std::size_t>(
      std::max<double>(1.0, cfg_.bootstrap_fraction *
                                static_cast<double>(train.size())));
  trees_.assign(num_trees, DecisionTree(tree_cfg));
  util::parallel_for(pool(), num_trees, [&](std::size_t t) {
    util::Rng& tree_rng = streams[t];
    std::vector<std::size_t> bootstrap(sample_size);
    for (std::size_t& idx : bootstrap) {
      idx = static_cast<std::size_t>(
          tree_rng.uniform_int(0, static_cast<int>(train.size()) - 1));
    }
    const DataSet bag = train.subset(bootstrap);
    trees_[t].fit(bag, tree_rng);
  });

  // Aggregate importances serially in tree order (deterministic sum).
  importances_.assign(train.num_features(), 0.0);
  for (const DecisionTree& tree : trees_) {
    for (std::size_t f = 0; f < importances_.size(); ++f) {
      importances_[f] += tree.raw_importances()[f];
    }
  }
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0) {
    for (double& imp : importances_) imp /= total;
  }
}

void RandomForest::import_model(std::vector<DecisionTree> trees,
                                std::vector<double> importances,
                                int num_classes) {
  if (num_classes < 2) {
    throw std::invalid_argument(
        "RandomForest::import_model: num_classes must be >= 2, got " +
        std::to_string(num_classes));
  }
  for (std::size_t t = 0; t < trees.size(); ++t) {
    // Tree-internal structure (children, cycles, labels) was validated by
    // DecisionTree::import_model; here check forest-level consistency so a
    // vote can never index past the accumulator.
    if (trees[t].num_classes() > num_classes) {
      throw std::invalid_argument(
          "RandomForest::import_model: tree " + std::to_string(t) + " has " +
          std::to_string(trees[t].num_classes()) +
          " classes but the forest declares " + std::to_string(num_classes));
    }
    if (trees[t].raw_importances().size() != importances.size()) {
      throw std::invalid_argument(
          "RandomForest::import_model: tree " + std::to_string(t) + " has " +
          std::to_string(trees[t].raw_importances().size()) +
          " feature importances but the forest declares " +
          std::to_string(importances.size()));
    }
  }
  compiled_.reset();
  trees_ = std::move(trees);
  importances_ = std::move(importances);
  num_classes_ = num_classes;
}

const CompiledForest& RandomForest::compile(CompiledForestConfig compile_cfg) {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::compile: forest is not fitted");
  }
  OBS_SPAN("forest.compile", &compile_latency_hist());
  compiles_counter().inc();
  compiled_ = std::make_shared<const CompiledForest>(*this, compile_cfg);
  return *compiled_;
}

Label RandomForest::predict(std::span<const double> features) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict: forest is not fitted");
  }
  if (compiled_) return compiled_->predict(features);
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (const DecisionTree& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(features))];
  }
  return static_cast<Label>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> RandomForest::vote_fractions(
    std::span<const double> features) const {
  std::vector<double> fractions(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return fractions;
  if (compiled_) return compiled_->vote_fractions(features);
  for (const DecisionTree& tree : trees_) {
    fractions[static_cast<std::size_t>(tree.predict(features))] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(trees_.size());
  return fractions;
}

std::vector<Label> RandomForest::predict_batch(const DataSet& data) const {
  OBS_SPAN("forest.predict_batch");
  batch_rows_counter().inc(data.size());
  if (compiled_) {
    OBS_SPAN("forest.batch_compiled", &compiled_batch_latency_hist());
    compiled_batch_rows_counter().inc(data.size());
    return compiled_->predict_batch(data, pool());
  }
  OBS_SPAN("forest.batch_interpreted", &interpreted_batch_latency_hist());
  std::vector<Label> out(data.size());
  util::parallel_for(pool(), data.size(),
                     [&](std::size_t i) { out[i] = predict(data.row(i)); });
  return out;
}

std::vector<std::vector<double>> RandomForest::vote_fractions_batch(
    const DataSet& data) const {
  OBS_SPAN("forest.vote_fractions_batch");
  batch_rows_counter().inc(data.size());
  if (compiled_) {
    OBS_SPAN("forest.batch_compiled", &compiled_batch_latency_hist());
    compiled_batch_rows_counter().inc(data.size());
    return compiled_->vote_fractions_batch(data, pool());
  }
  OBS_SPAN("forest.batch_interpreted", &interpreted_batch_latency_hist());
  std::vector<std::vector<double>> out(data.size());
  util::parallel_for(pool(), data.size(), [&](std::size_t i) {
    out[i] = vote_fractions(data.row(i));
  });
  return out;
}

}  // namespace libra::ml
