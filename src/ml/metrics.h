// Classification metrics (Sec. 6.2): accuracy, weighted F1 score, confusion
// matrix.
#pragma once

#include <span>
#include <vector>

#include "ml/data.h"

namespace libra::ml {

double accuracy(std::span<const Label> truth, std::span<const Label> pred);

// Per-class F1, weighted by class support -- the paper's "weighted F1".
double weighted_f1(std::span<const Label> truth, std::span<const Label> pred);

// confusion[t][p] = count of samples with true class t predicted as p.
std::vector<std::vector<int>> confusion_matrix(std::span<const Label> truth,
                                               std::span<const Label> pred);

}  // namespace libra::ml
