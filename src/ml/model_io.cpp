#include "ml/model_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace libra::ml {

namespace {
constexpr const char* kTreeMagic = "libra-tree-v1";
constexpr const char* kForestMagic = "libra-forest-v1";

void expect(std::istream& in, const char* token) {
  std::string got;
  if (!(in >> got) || got != token) {
    throw std::runtime_error(std::string("model parse error: expected '") +
                             token + "', got '" + got + "'");
  }
}
}  // namespace

void save_tree(const DecisionTree& tree, std::ostream& out) {
  out << kTreeMagic << ' ' << tree.nodes().size() << ' ' << tree.num_classes()
      << ' ' << tree.feature_importances().size() << '\n';
  out << std::setprecision(17);
  for (const DecisionTree::Node& n : tree.nodes()) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.label << '\n';
  }
  for (double imp : tree.feature_importances()) out << imp << ' ';
  out << '\n';
}

DecisionTree load_tree(std::istream& in) {
  expect(in, kTreeMagic);
  std::size_t n_nodes = 0, n_features = 0;
  int num_classes = 0;
  if (!(in >> n_nodes >> num_classes >> n_features)) {
    throw std::runtime_error("model parse error: tree header");
  }
  std::vector<DecisionTree::Node> nodes(n_nodes);
  for (auto& n : nodes) {
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.label)) {
      throw std::runtime_error("model parse error: tree node");
    }
  }
  // Structural validation (child ranges, cycles, labels, feature bounds)
  // happens in import_model, which throws std::invalid_argument.
  std::vector<double> importances(n_features);
  for (double& imp : importances) {
    if (!(in >> imp)) {
      throw std::runtime_error("model parse error: importances");
    }
  }
  DecisionTree tree;
  tree.import_model(std::move(nodes), std::move(importances), num_classes);
  return tree;
}

void save_forest(const RandomForest& forest, std::ostream& out) {
  out << kForestMagic << ' ' << forest.trees().size() << ' '
      << forest.num_classes() << ' ' << forest.feature_importances().size()
      << '\n';
  out << std::setprecision(17);
  for (double imp : forest.feature_importances()) out << imp << ' ';
  out << '\n';
  for (const DecisionTree& tree : forest.trees()) save_tree(tree, out);
}

RandomForest load_forest(std::istream& in) {
  expect(in, kForestMagic);
  std::size_t n_trees = 0, n_features = 0;
  int num_classes = 0;
  if (!(in >> n_trees >> num_classes >> n_features)) {
    throw std::runtime_error("model parse error: forest header");
  }
  std::vector<double> importances(n_features);
  for (double& imp : importances) {
    if (!(in >> imp)) {
      throw std::runtime_error("model parse error: forest importances");
    }
  }
  std::vector<DecisionTree> trees;
  trees.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    trees.push_back(load_tree(in));
  }
  RandomForest forest;
  forest.import_model(std::move(trees), std::move(importances), num_classes);
  return forest;
}

void save_forest_file(const RandomForest& forest, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_forest(forest, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

RandomForest load_forest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_forest(in);
}

}  // namespace libra::ml
