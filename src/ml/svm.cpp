#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libra::ml {

BinarySvm::BinarySvm(SvmConfig cfg) : cfg_(cfg) {}

double BinarySvm::kernel_eval(std::span<const double> a,
                              std::span<const double> b) const {
  if (cfg_.kernel == Kernel::kLinear) {
    double dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return dot;
  }
  double dist2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    dist2 += d * d;
  }
  return std::exp(-cfg_.gamma * dist2);
}

void BinarySvm::fit(const DataSet& x, const std::vector<int>& y,
                    util::Rng& rng) {
  const std::size_t n = x.size();
  if (n == 0 || y.size() != n) throw std::invalid_argument("bad SVM input");

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;

  // Precompute the kernel matrix (datasets here are a few hundred rows).
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      k[i * n + j] = k[j * n + i] = kernel_eval(x.row(i), x.row(j));
    }
  }

  const auto f = [&](std::size_t i) {
    double sum = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) sum += alpha[j] * y[j] * k[j * n + i];
    }
    return sum;
  };

  // Simplified SMO (Platt 1998 / CS229 variant).
  int passes = 0;
  int iterations = 0;
  while (passes < cfg_.max_passes && iterations < cfg_.max_iterations) {
    ++iterations;
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f(i) - y[i];
      const bool violates =
          (y[i] * ei < -cfg_.tolerance && alpha[i] < cfg_.c) ||
          (y[i] * ei > cfg_.tolerance && alpha[i] > 0.0);
      if (!violates) continue;
      std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(n) - 2));
      if (j >= i) ++j;
      const double ej = f(j) - y[j];
      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, alpha[j] - alpha[i]);
        hi = std::min(cfg_.c, cfg_.c + alpha[j] - alpha[i]);
      } else {
        lo = std::max(0.0, alpha[i] + alpha[j] - cfg_.c);
        hi = std::min(cfg_.c, alpha[i] + alpha[j]);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0.0) continue;
      alpha[j] = std::clamp(aj_old - y[j] * (ei - ej) / eta, lo, hi);
      if (std::abs(alpha[j] - aj_old) < 1e-5) continue;
      alpha[i] = ai_old + y[i] * y[j] * (aj_old - alpha[j]);
      const double b1 = b - ei - y[i] * (alpha[i] - ai_old) * k[i * n + i] -
                        y[j] * (alpha[j] - aj_old) * k[i * n + j];
      const double b2 = b - ej - y[i] * (alpha[i] - ai_old) * k[i * n + j] -
                        y[j] * (alpha[j] - aj_old) * k[j * n + j];
      if (alpha[i] > 0.0 && alpha[i] < cfg_.c) {
        b = b1;
      } else if (alpha[j] > 0.0 && alpha[j] < cfg_.c) {
        b = b2;
      } else {
        b = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  // Retain only the support vectors.
  support_ = DataSet(x.num_features());
  alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      support_.add(x.row(i), 0);
      alpha_y_.push_back(alpha[i] * y[i]);
    }
  }
  bias_ = b;
}

double BinarySvm::decision(std::span<const double> features) const {
  double sum = bias_;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    sum += alpha_y_[i] * kernel_eval(support_.row(i), features);
  }
  return sum;
}

Svm::Svm(SvmConfig cfg) : cfg_(cfg) {}

void Svm::fit(const DataSet& train, util::Rng& rng) {
  num_classes_ = std::max(train.num_classes(), 2);
  standardizer_.fit(train);
  const DataSet x = standardizer_.transform(train);

  one_vs_rest_.clear();
  const int machines = num_classes_ == 2 ? 1 : num_classes_;
  for (int c = 0; c < machines; ++c) {
    std::vector<int> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = x.label(i) == c ? 1 : -1;
    }
    BinarySvm machine(cfg_);
    machine.fit(x, y, rng);
    one_vs_rest_.push_back(std::move(machine));
  }
}

Label Svm::predict(std::span<const double> features) const {
  const std::vector<double> z = standardizer_.transform_row(features);
  if (one_vs_rest_.size() == 1) {
    // Binary: machine 0 separates class 0 (+1) from class 1 (-1).
    return one_vs_rest_[0].decision(z) >= 0.0 ? 0 : 1;
  }
  Label best = 0;
  double best_score = -1e300;
  for (std::size_t c = 0; c < one_vs_rest_.size(); ++c) {
    const double score = one_vs_rest_[c].decision(z);
    if (score > best_score) {
      best_score = score;
      best = static_cast<Label>(c);
    }
  }
  return best;
}

}  // namespace libra::ml
