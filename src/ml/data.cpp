#include "ml/data.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace libra::ml {

void DataSet::add(std::span<const double> features, Label label) {
  if (num_features_ == 0) num_features_ = features.size();
  if (features.size() != num_features_) {
    throw std::invalid_argument("inconsistent feature dimension");
  }
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void DataSet::reserve(std::size_t rows) {
  features_.reserve(features_.size() + rows * num_features_);
  labels_.reserve(labels_.size() + rows);
}

int DataSet::num_classes() const {
  int max_label = -1;
  for (Label l : labels_) max_label = std::max(max_label, l);
  return max_label + 1;
}

DataSet DataSet::subset(std::span<const std::size_t> indices) const {
  DataSet out(num_features_);
  for (std::size_t i : indices) out.add(row(i), label(i));
  return out;
}

void Standardizer::fit(const DataSet& train) {
  const std::size_t d = train.num_features();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  if (train.empty()) return;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto row = train.row(i);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto row = train.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      std_[j] += delta * delta;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(train.size()));
    if (s < 1e-12) s = 1.0;  // constant feature: leave centered only
  }
}

std::vector<double> Standardizer::transform_row(
    std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

DataSet Standardizer::transform(const DataSet& data) const {
  DataSet out(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add(transform_row(data.row(i)), data.label(i));
  }
  return out;
}

std::vector<FoldSplit> stratified_kfold(const DataSet& data, int k,
                                        util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("k must be >= 2");
  // Group indices per class, shuffle within each class, then deal them
  // round-robin into folds so every fold keeps the class proportions.
  std::map<Label, std::vector<std::size_t>> per_class;
  for (std::size_t i = 0; i < data.size(); ++i) {
    per_class[data.label(i)].push_back(i);
  }
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  for (auto& [label, indices] : per_class) {
    rng.shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      folds[i % static_cast<std::size_t>(k)].push_back(indices[i]);
    }
  }
  std::vector<FoldSplit> splits(static_cast<std::size_t>(k));
  for (std::size_t f = 0; f < splits.size(); ++f) {
    splits[f].test = folds[f];
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      splits[f].train.insert(splits[f].train.end(), folds[g].begin(),
                             folds[g].end());
    }
  }
  return splits;
}

std::vector<Label> Classifier::predict_all(const DataSet& data,
                                           util::ThreadPool* pool) const {
  std::vector<Label> out(data.size());
  util::parallel_for(pool, data.size(),
                     [&](std::size_t i) { out[i] = predict(data.row(i)); });
  return out;
}

}  // namespace libra::ml
