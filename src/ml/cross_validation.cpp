#include "ml/cross_validation.h"

#include <stdexcept>
#include <string>

namespace libra::ml {

CvResult cross_validate(const DataSet& data, const ClassifierFactory& factory,
                        int k, int repeats, util::Rng& rng,
                        util::ThreadPool* pool) {
  if (k < 2) {
    throw std::invalid_argument("cross_validate: k must be >= 2, got " +
                                std::to_string(k));
  }
  if (repeats < 1) {
    throw std::invalid_argument("cross_validate: repeats must be >= 1, got " +
                                std::to_string(repeats));
  }
  if (data.size() < static_cast<std::size_t>(k)) {
    throw std::invalid_argument(
        "cross_validate: dataset has " + std::to_string(data.size()) +
        " rows, fewer than k = " + std::to_string(k) + " folds");
  }

  CvResult result;
  result.folds = k;
  result.repeats = repeats;

  // Materialize every (repeat, fold) task up front: the splits and the
  // per-fold training streams are forked serially off the caller's Rng, so
  // the parallel schedule cannot perturb any randomness.
  struct FoldTask {
    FoldSplit split;
    util::Rng rng;
  };
  std::vector<FoldTask> tasks;
  tasks.reserve(static_cast<std::size_t>(repeats * k));
  for (int r = 0; r < repeats; ++r) {
    util::Rng repeat_rng = rng.fork();
    auto splits = stratified_kfold(data, k, repeat_rng);
    for (FoldSplit& split : splits) {
      tasks.push_back({std::move(split), repeat_rng.fork()});
    }
  }

  std::vector<double> accs(tasks.size(), 0.0);
  std::vector<double> f1s(tasks.size(), 0.0);
  util::parallel_for(pool, tasks.size(), [&](std::size_t i) {
    FoldTask& task = tasks[i];
    const DataSet train = data.subset(task.split.train);
    const DataSet test = data.subset(task.split.test);
    auto model = factory();
    model->fit(train, task.rng);
    const std::vector<Label> pred = model->predict_all(test);
    accs[i] = accuracy(test.labels(), pred);
    f1s[i] = weighted_f1(test.labels(), pred);
  });

  // Deterministic accumulation order, independent of the schedule.
  double acc_sum = 0.0, f1_sum = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    acc_sum += accs[i];
    f1_sum += f1s[i];
  }
  result.accuracy = acc_sum / static_cast<double>(tasks.size());
  result.weighted_f1 = f1_sum / static_cast<double>(tasks.size());
  return result;
}

CvResult train_test(const DataSet& train, const DataSet& test,
                    const ClassifierFactory& factory, util::Rng& rng) {
  CvResult result;
  result.folds = 1;
  result.repeats = 1;
  auto model = factory();
  model->fit(train, rng);
  const std::vector<Label> pred = model->predict_all(test);
  result.accuracy = accuracy(test.labels(), pred);
  result.weighted_f1 = weighted_f1(test.labels(), pred);
  return result;
}

}  // namespace libra::ml
