#include "ml/cross_validation.h"

namespace libra::ml {

CvResult cross_validate(const DataSet& data, const ClassifierFactory& factory,
                        int k, int repeats, util::Rng& rng) {
  CvResult result;
  result.folds = k;
  result.repeats = repeats;
  double acc_sum = 0.0, f1_sum = 0.0;
  int n = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto splits = stratified_kfold(data, k, rng);
    for (const FoldSplit& split : splits) {
      const DataSet train = data.subset(split.train);
      const DataSet test = data.subset(split.test);
      auto model = factory();
      model->fit(train, rng);
      const std::vector<Label> pred = model->predict_all(test);
      acc_sum += accuracy(test.labels(), pred);
      f1_sum += weighted_f1(test.labels(), pred);
      ++n;
    }
  }
  result.accuracy = acc_sum / n;
  result.weighted_f1 = f1_sum / n;
  return result;
}

CvResult train_test(const DataSet& train, const DataSet& test,
                    const ClassifierFactory& factory, util::Rng& rng) {
  CvResult result;
  result.folds = 1;
  result.repeats = 1;
  auto model = factory();
  model->fit(train, rng);
  const std::vector<Label> pred = model->predict_all(test);
  result.accuracy = accuracy(test.labels(), pred);
  result.weighted_f1 = weighted_f1(test.labels(), pred);
  return result;
}

}  // namespace libra::ml
