// Vectorized forest-traversal kernels over the packed arena. See
// forest_kernels.h for the reference semantics and the bit-parity
// argument; everything here is compare/index-only (no FP arithmetic), so
// parity with the scalar walk needs no summation-schedule tricks -- the
// kernels just have to issue the same comparisons.
#include "ml/forest_kernels.h"

#include <type_traits>

#if LIBRA_SIMD_X86
#include <immintrin.h>
#endif
#if LIBRA_SIMD_NEON
#include <arm_neon.h>
#endif

namespace libra::ml::kernels {

#if LIBRA_SIMD_X86

// The kernels are compiled with per-function target attributes instead of
// a global -mavx2 so the rest of the object (and every other TU) stays
// baseline x86-64: the binary must run, and fall back to scalar, on
// pre-AVX2 hosts. Neither baseline x86-64 nor target("avx2") includes
// FMA, so no mul+add here or elsewhere can be contracted.
#define LIBRA_AVX2_FN __attribute__((target("avx2")))

// GCC expands the maskless gather intrinsics with an undef merge operand
// and flags it -Wmaybe-uninitialized at every inlined call site; the
// all-ones mask overwrites every lane, so nothing uninitialized is read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace {

// Sign-extend the low 16 bits of each 32-bit lane.
LIBRA_AVX2_FN inline __m256i sext16(__m256i v) {
  return _mm256_srai_epi32(_mm256_slli_epi32(v, 16), 16);
}

// Gather 8 int16 values (int16 thresholds) through the 32-bit gather at
// byte offset 2*index. Each load reads 4 bytes, so the final arena element
// needs one int16 of trailing padding -- CompiledForest allocates it (see
// arena preconditions in the header).
LIBRA_AVX2_FN inline __m256i gather_i16(const std::int16_t* base,
                                        __m256i idx) {
  return sext16(
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), idx, 2));
}

// True once every lane's meta word is a leaf label (< 0).
LIBRA_AVX2_FN inline bool all_leaves(__m256i word) {
  const __m256i neg = _mm256_cmpgt_epi32(_mm256_setzero_si256(), word);
  return _mm256_movemask_ps(_mm256_castsi256_ps(neg)) == 0xFF;
}

LIBRA_AVX2_FN inline void store_labels(__m256i word, int* labels) {
  const __m256i lab = _mm256_sub_epi32(_mm256_set1_epi32(-1), word);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(labels), lab);
}

// Lane offsets of the 8 interleaved rows: lane k reads row k of the group,
// rows are `stride` elements apart. stride * 7 + num_features always fits
// int32 (feature vectors are tiny); node indices fit by the < 2^30 arena
// precondition.
LIBRA_AVX2_FN inline __m256i make_row_off(std::size_t stride) {
  const int s = static_cast<int>(stride);
  return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
}

// W groups of 8 rows through one tree, one 32-bit lane per row, all W
// vector states advanced in the same loop. One group alone is as
// latency-bound as one scalar row: every level is a dependent
// gather -> compare -> gather chain, and the out-of-order window has
// nothing to overlap it with (the scalar walk, by contrast, keeps 8
// independent scalar chains in flight -- this W-way form restores that ILP
// on the vector side). With W independent states the gathers of one group
// execute under the latency of another's, turning the walk
// throughput-bound at ~3 gathers per level. Group g's rows start at
// rows + g*8*stride.
//
// Per-lane step, identical to walk_tree_packed on the same row:
//   f        = meta & 0xff            (clamped to 0 on parked lanes so the
//                                      dummy row read stays in bounds)
//   go_right = x[f] <= thr[idx] ? 0 : 1   (_CMP_LE_OQ is false on NaN,
//                                      exactly like the scalar <=; int16
//                                      mode uses the signed > compare)
//   idx     += (meta >> 8) + go_right     (masked to 0 on parked lanes, so
//                                      a finished row self-loops)
// A state that parks early keeps self-looping until the slowest state
// finishes; the wasted gathers touch only in-bounds leaf words and change
// nothing. Votes are per-row, so how rows are grouped cannot alter the
// counts.
template <typename Threshold, typename Row, int W>
LIBRA_AVX2_FN void walk_groups(const std::int32_t* meta, const Threshold* thr,
                               std::uint32_t root, const Row* rows,
                               std::size_t stride, int* labels) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i fmask = _mm256_set1_epi32(0xff);
  const __m256i row_off = make_row_off(stride);
  const Row* base[W];
  for (int w = 0; w < W; ++w) {
    base[w] = rows + static_cast<std::size_t>(w) * 8 * stride;
  }
  __m256i idx[W];
  __m256i word[W];
  const __m256i root_v = _mm256_set1_epi32(static_cast<int>(root));
  const __m256i root_word = _mm256_set1_epi32(meta[root]);
  for (int w = 0; w < W; ++w) {
    idx[w] = root_v;
    word[w] = root_word;
  }
  for (;;) {
    bool done = true;
    for (int w = 0; w < W; ++w) done &= all_leaves(word[w]);
    if (done) break;
    for (int w = 0; w < W; ++w) {
      const __m256i notleaf = _mm256_cmpgt_epi32(word[w], _mm256_set1_epi32(-1));
      const __m256i f =
          _mm256_and_si256(_mm256_max_epi32(word[w], zero), fmask);
      const __m256i xi = _mm256_add_epi32(row_off, f);
      __m256i go_right;
      if constexpr (std::is_same_v<Row, float>) {
        const __m256 x = _mm256_i32gather_ps(base[w], xi, 4);
        const __m256 t = _mm256_i32gather_ps(thr, idx[w], 4);
        const __m256 le = _mm256_cmp_ps(x, t, _CMP_LE_OQ);
        go_right = _mm256_andnot_si256(_mm256_castps_si256(le), one);
      } else {
        // Quantized mode: pre-quantized int32 rows vs int16 thresholds,
        // `x <= t ? left : right` as one signed compare-greater. Sentinels
        // INT32_MIN/INT32_MAX sort below/above every threshold, matching
        // the scalar compare against -inf / {NaN, +inf}.
        const __m256i x = _mm256_i32gather_epi32(base[w], xi, 4);
        const __m256i t = gather_i16(thr, idx[w]);
        go_right = _mm256_and_si256(_mm256_cmpgt_epi32(x, t), one);
      }
      const __m256i step = _mm256_and_si256(
          _mm256_add_epi32(_mm256_srai_epi32(word[w], 8), go_right), notleaf);
      idx[w] = _mm256_add_epi32(idx[w], step);
      word[w] = _mm256_i32gather_epi32(meta, idx[w], 4);
    }
  }
  for (int w = 0; w < W; ++w) store_labels(word[w], labels + 8 * w);
}

// Groups kept in flight per walk. 4 states x (idx, word) plus temporaries
// fit the 16 ymm registers without spilling; going wider starts trading
// spills for overlap.
constexpr int kInFlight = 4;

// Driver: super-groups of kInFlight*8 rows run the W-way walk, leftover
// full groups of 8 a 1-way walk, and the block tail (num_rows % 8) the
// scalar packed walk -- covering any batch size with the same per-row
// comparisons throughout.
template <typename Threshold, typename Row>
LIBRA_AVX2_FN void accumulate_avx2(const std::int32_t* meta,
                                   const Threshold* thr,
                                   const std::uint32_t* roots,
                                   std::size_t num_trees, const Row* rows,
                                   std::size_t stride, int num_rows,
                                   std::uint32_t* votes, int num_classes) {
  constexpr int kSuper = kInFlight * kGroup;
  int labels[kSuper];
  const int full = num_rows - num_rows % kGroup;
  const int super = num_rows - num_rows % kSuper;
  const auto bump = [&](int row0, int count) {
    for (int k = 0; k < count; ++k) {
      ++votes[static_cast<std::size_t>(row0 + k) *
                  static_cast<std::size_t>(num_classes) +
              static_cast<std::size_t>(labels[k])];
    }
  };
  for (std::size_t t = 0; t < num_trees; ++t) {
    int r = 0;
    for (; r < super; r += kSuper) {
      walk_groups<Threshold, Row, kInFlight>(
          meta, thr, roots[t], rows + static_cast<std::size_t>(r) * stride,
          stride, labels);
      bump(r, kSuper);
    }
    for (; r < full; r += kGroup) {
      walk_groups<Threshold, Row, 1>(
          meta, thr, roots[t], rows + static_cast<std::size_t>(r) * stride,
          stride, labels);
      bump(r, kGroup);
    }
    for (int k = full; k < num_rows; ++k) {
      ++votes[static_cast<std::size_t>(k) *
                  static_cast<std::size_t>(num_classes) +
              static_cast<std::size_t>(walk_tree_packed(
                  meta, thr, roots[t],
                  rows + static_cast<std::size_t>(k) * stride))];
    }
  }
}

}  // namespace

void accumulate_block_avx2(const std::int32_t* meta, const float* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const float* rows, std::size_t stride, int num_rows,
                           std::uint32_t* votes, int num_classes) {
  accumulate_avx2(meta, thr, roots, num_trees, rows, stride, num_rows, votes,
                  num_classes);
}

void accumulate_block_avx2(const std::int32_t* meta, const std::int16_t* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const std::int32_t* rows, std::size_t stride,
                           int num_rows, std::uint32_t* votes,
                           int num_classes) {
  accumulate_avx2(meta, thr, roots, num_trees, rows, stride, num_rows, votes,
                  num_classes);
}

#pragma GCC diagnostic pop

#endif  // LIBRA_SIMD_X86

#if LIBRA_SIMD_NEON

namespace {

// 4 rows of one group through one tree, one 32-bit lane per row. NEON has
// no gather, so the per-lane loads are explicit lane inserts; the compare,
// branch-select and masked advance still run vector-wide, and two of these
// walks interleave per 8-row group so the load chains overlap. Lane maths
// is identical to walk_tree_packed (and to the AVX2 lanes): f = meta&0xff
// clamped on parked lanes, `x <= thr ? left : right`, advance masked to 0
// once a lane parks.
template <typename Threshold, typename Row>
void walk4_packed(const std::int32_t* meta, const Threshold* thr,
                  std::uint32_t root, const Row* rows, int32x4_t lane_off,
                  int* labels) {
  const int32x4_t zero = vdupq_n_s32(0);
  const int32x4_t one = vdupq_n_s32(1);
  const int32x4_t fmask = vdupq_n_s32(0xff);
  int32x4_t idx = vdupq_n_s32(static_cast<std::int32_t>(root));
  int32x4_t word = vdupq_n_s32(meta[root]);
  while (vmaxvq_s32(word) >= 0) {
    const uint32x4_t notleaf = vcgeq_s32(word, zero);
    const int32x4_t f = vandq_s32(vmaxq_s32(word, zero), fmask);
    const int32x4_t xi = vaddq_s32(lane_off, f);
    std::int32_t ib[4];
    std::int32_t xb[4];
    vst1q_s32(ib, idx);
    vst1q_s32(xb, xi);
    uint32x4_t le;
    if constexpr (std::is_same_v<Row, float>) {
      float32x4_t x = vdupq_n_f32(0.0f);
      float32x4_t t = vdupq_n_f32(0.0f);
      x = vsetq_lane_f32(rows[xb[0]], x, 0);
      x = vsetq_lane_f32(rows[xb[1]], x, 1);
      x = vsetq_lane_f32(rows[xb[2]], x, 2);
      x = vsetq_lane_f32(rows[xb[3]], x, 3);
      t = vsetq_lane_f32(thr[ib[0]], t, 0);
      t = vsetq_lane_f32(thr[ib[1]], t, 1);
      t = vsetq_lane_f32(thr[ib[2]], t, 2);
      t = vsetq_lane_f32(thr[ib[3]], t, 3);
      le = vcleq_f32(x, t);  // false on NaN, exactly like the scalar <=
    } else {
      int32x4_t x = vdupq_n_s32(0);
      int32x4_t t = vdupq_n_s32(0);
      x = vsetq_lane_s32(rows[xb[0]], x, 0);
      x = vsetq_lane_s32(rows[xb[1]], x, 1);
      x = vsetq_lane_s32(rows[xb[2]], x, 2);
      x = vsetq_lane_s32(rows[xb[3]], x, 3);
      t = vsetq_lane_s32(thr[ib[0]], t, 0);
      t = vsetq_lane_s32(thr[ib[1]], t, 1);
      t = vsetq_lane_s32(thr[ib[2]], t, 2);
      t = vsetq_lane_s32(thr[ib[3]], t, 3);
      le = vcleq_s32(x, t);
    }
    const int32x4_t go_right = vbicq_s32(one, vreinterpretq_s32_u32(le));
    const int32x4_t step = vandq_s32(
        vaddq_s32(vshrq_n_s32(word, 8), go_right),
        vreinterpretq_s32_u32(notleaf));
    idx = vaddq_s32(idx, step);
    std::int32_t nb[4];
    vst1q_s32(nb, idx);
    int32x4_t next = vdupq_n_s32(0);
    next = vsetq_lane_s32(meta[nb[0]], next, 0);
    next = vsetq_lane_s32(meta[nb[1]], next, 1);
    next = vsetq_lane_s32(meta[nb[2]], next, 2);
    next = vsetq_lane_s32(meta[nb[3]], next, 3);
    word = next;
  }
  const int32x4_t lab = vsubq_s32(vdupq_n_s32(-1), word);
  vst1q_s32(labels, lab);
}

template <typename Threshold, typename Row>
void accumulate_neon(const std::int32_t* meta, const Threshold* thr,
                     const std::uint32_t* roots, std::size_t num_trees,
                     const Row* rows, std::size_t stride, int num_rows,
                     std::uint32_t* votes, int num_classes) {
  int labels[kGroup];
  const int full = num_rows - num_rows % kGroup;
  const int s = static_cast<int>(stride);
  const int32x4_t off_lo = {0, s, 2 * s, 3 * s};
  const int32x4_t off_hi = {4 * s, 5 * s, 6 * s, 7 * s};
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (int r = 0; r < full; r += kGroup) {
      const Row* block = rows + static_cast<std::size_t>(r) * stride;
      walk4_packed(meta, thr, roots[t], block, off_lo, labels);
      walk4_packed(meta, thr, roots[t], block, off_hi, labels + 4);
      for (int k = 0; k < kGroup; ++k) {
        ++votes[static_cast<std::size_t>(r + k) *
                    static_cast<std::size_t>(num_classes) +
                static_cast<std::size_t>(labels[k])];
      }
    }
    for (int k = full; k < num_rows; ++k) {
      ++votes[static_cast<std::size_t>(k) *
                  static_cast<std::size_t>(num_classes) +
              static_cast<std::size_t>(walk_tree_packed(
                  meta, thr, roots[t],
                  rows + static_cast<std::size_t>(k) * stride))];
    }
  }
}

}  // namespace

void accumulate_block_neon(const std::int32_t* meta, const float* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const float* rows, std::size_t stride, int num_rows,
                           std::uint32_t* votes, int num_classes) {
  accumulate_neon(meta, thr, roots, num_trees, rows, stride, num_rows, votes,
                  num_classes);
}

void accumulate_block_neon(const std::int32_t* meta, const std::int16_t* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const std::int32_t* rows, std::size_t stride,
                           int num_rows, std::uint32_t* votes,
                           int num_classes) {
  accumulate_neon(meta, thr, roots, num_trees, rows, stride, num_rows, votes,
                  num_classes);
}

#endif  // LIBRA_SIMD_NEON

}  // namespace libra::ml::kernels
