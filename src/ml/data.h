// Dataset containers for the ML models (Sec. 6.2): dense row-major feature
// matrix plus integer class labels, with helpers for stratified splitting
// and standardization (needed by the SVM and the DNN).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace libra::ml {

using Label = int;

class DataSet {
 public:
  DataSet() = default;
  DataSet(std::size_t num_features) : num_features_(num_features) {}

  void add(std::span<const double> features, Label label);
  // Pre-size for `rows` add() calls (batch builders know their row count).
  void reserve(std::size_t rows);

  std::size_t size() const { return labels_.size(); }
  std::size_t num_features() const { return num_features_; }
  bool empty() const { return labels_.empty(); }

  std::span<const double> row(std::size_t i) const {
    return {features_.data() + i * num_features_, num_features_};
  }
  Label label(std::size_t i) const { return labels_[i]; }
  const std::vector<Label>& labels() const { return labels_; }

  int num_classes() const;

  DataSet subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t num_features_ = 0;
  std::vector<double> features_;  // row-major
  std::vector<Label> labels_;
};

// Per-feature standardization (zero mean, unit variance) fit on a training
// set and applied to any set.
class Standardizer {
 public:
  void fit(const DataSet& train);
  std::vector<double> transform_row(std::span<const double> row) const;
  DataSet transform(const DataSet& data) const;

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stddevs() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

// Indices of a stratified train/test split: each fold preserves the class
// proportions of the full set (Sec. 6.2 "stratified 5-fold cross
// validation").
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

std::vector<FoldSplit> stratified_kfold(const DataSet& data, int k,
                                        util::Rng& rng);

// Abstract classifier interface shared by all four model families.
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const DataSet& train, util::Rng& rng) = 0;
  virtual Label predict(std::span<const double> features) const = 0;

  // Predict every row; `pool` parallelizes across rows (nullptr = serial).
  // The output order is row order either way.
  std::vector<Label> predict_all(const DataSet& data,
                                 util::ThreadPool* pool = nullptr) const;
};

}  // namespace libra::ml
