#include "ml/compiled_forest.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>

#include "ml/forest_kernels.h"
#include "ml/random_forest.h"

namespace libra::ml {

namespace {

// Arena preconditions for the vector kernels: every lane index must fit a
// signed 32-bit gather lane, the split feature must fit the packed meta
// word's low byte, and the BFS left-child offset its upper 23 bits.
constexpr std::size_t kMaxSimdNodes = std::size_t{1} << 30;
constexpr std::int32_t kMaxPackedFeature = 0xff;
constexpr std::int32_t kMaxPackedOffset = std::int32_t{1} << 23;
// Row-offset lanes hold stride * 7 + feature; feature vectors are tiny, so
// bounding the stride alone is enough.
constexpr std::size_t kMaxSimdStride =
    static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max() / 8);

// Quantized row values live in int32 with the extremes reserved as
// "below/above every threshold" sentinels; keep lrint's operand far enough
// from the edges that the -32767 re-centering cannot overflow.
constexpr double kQuantClamp = 2147418112.0;  // 2^31 - 2^16

// One row value through a feature's affine quantizer. Thresholds map into
// [-32767, 32767]; row values keep the full int32 width so values outside
// the threshold range still order correctly against every threshold, and
// non-finite values take the sentinels that reproduce IEEE `<=` ordering
// (NaN is never <= thr, so it must land above every threshold).
inline std::int32_t quantize_value(double x, double lo, double scale) {
  if (std::isnan(x)) return std::numeric_limits<std::int32_t>::max();
  const double y = (x - lo) * scale;  // +-inf propagates to the clamps
  if (y >= kQuantClamp) return std::numeric_limits<std::int32_t>::max();
  if (y <= -kQuantClamp) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(std::lrint(y)) - 32767;
}

// Append one tree's nodes to the arena breadth-first. BFS packing keeps a
// level's nodes adjacent, so a batch of rows descending in lockstep touches
// a contiguous window per level instead of preorder's left-spine jumps.
// Thresholds are collected in double regardless of the precision mode; the
// constructor converts afterwards (kInt16 needs the whole forest's
// thresholds before it can fit the per-feature quantizers).
void pack_tree(const DecisionTree& tree, std::size_t tree_index,
               int num_classes, std::vector<std::int16_t>& feature,
               std::vector<std::int32_t>& child,
               std::vector<double>& threshold) {
  const std::vector<DecisionTree::Node>& nodes = tree.nodes();
  const auto n = static_cast<int>(nodes.size());
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("CompiledForest: tree " +
                                std::to_string(tree_index) + ": " + what);
  };

  // First pass: BFS order and the original->arena index map.
  std::vector<std::int32_t> arena_slot(nodes.size(), -1);
  std::vector<std::int32_t> order;
  order.reserve(nodes.size());
  std::deque<std::int32_t> queue{0};
  while (!queue.empty()) {
    const std::int32_t id = queue.front();
    queue.pop_front();
    if (id < 0 || id >= n) fail("child index out of range");
    if (arena_slot[static_cast<std::size_t>(id)] >= 0) {
      fail("cycle or shared subtree");
    }
    arena_slot[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(order.size());
    order.push_back(id);
    const DecisionTree::Node& node = nodes[static_cast<std::size_t>(id)];
    if (node.feature >= 0) {
      queue.push_back(node.left);
      queue.push_back(node.right);
    }
  }

  // Second pass: emit the packed words in BFS order.
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    const DecisionTree::Node& node =
        nodes[static_cast<std::size_t>(order[slot])];
    if (node.feature >= 0) {
      if (node.feature > std::numeric_limits<std::int16_t>::max()) {
        fail("feature index " + std::to_string(node.feature) +
             " does not fit int16");
      }
      feature.push_back(static_cast<std::int16_t>(node.feature));
      child.push_back(arena_slot[static_cast<std::size_t>(node.left)] -
                      static_cast<std::int32_t>(slot));
      child.push_back(arena_slot[static_cast<std::size_t>(node.right)] -
                      static_cast<std::int32_t>(slot));
      threshold.push_back(node.threshold);
    } else {
      if (node.label < 0 || node.label >= num_classes) {
        fail("leaf label " + std::to_string(node.label) +
             " outside [0, " + std::to_string(num_classes) + ")");
      }
      if (node.label > std::numeric_limits<std::int16_t>::max() - 1) {
        fail("leaf label does not fit int16");
      }
      // Fold the class ID into the node word: feature = ~label < 0.
      feature.push_back(static_cast<std::int16_t>(-1 - node.label));
      child.push_back(0);
      child.push_back(0);
      // Leaves store a zero threshold: the word is never compared, but the
      // arrays stay index-parallel.
      threshold.push_back(0.0);
    }
  }
}

}  // namespace

CompiledForest::CompiledForest(const RandomForest& forest,
                               CompiledForestConfig cfg)
    : cfg_(cfg), num_classes_(forest.num_classes()) {
  const std::vector<DecisionTree>& trees = forest.trees();
  if (trees.empty()) {
    throw std::invalid_argument("CompiledForest: forest is not fitted");
  }
  if (num_classes_ < 2) {
    throw std::invalid_argument("CompiledForest: num_classes must be >= 2");
  }
  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : trees) {
    total_nodes += tree.nodes().size();
  }
  feature_.reserve(total_nodes + 1);
  child_.reserve(2 * total_nodes);
  roots_.reserve(trees.size());

  std::vector<double> thr;  // index-parallel, double regardless of mode
  thr.reserve(total_nodes);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (trees[t].nodes().empty()) {
      throw std::invalid_argument("CompiledForest: tree " + std::to_string(t) +
                                  " is empty");
    }
    roots_.push_back(static_cast<std::uint32_t>(feature_.size()));
    pack_tree(trees[t], t, num_classes_, feature_, child_, thr);
  }
  node_count_ = feature_.size();

  switch (cfg_.precision) {
    case ThresholdPrecision::kDouble:
      thr_d_ = std::move(thr);
      break;
    case ThresholdPrecision::kFloat:
      thr_f_.reserve(node_count_);
      for (const double t : thr) thr_f_.push_back(static_cast<float>(t));
      break;
    case ThresholdPrecision::kInt16: {
      // Fit the per-feature affine quantizers over each feature's threshold
      // range, then verify ordering survives: two distinct thresholds that
      // collapse to one quantized value would rewrite the forest's decision
      // structure, so compilation rejects instead.
      std::vector<std::vector<double>> per_feature;
      for (std::size_t i = 0; i < node_count_; ++i) {
        if (feature_[i] < 0) continue;
        const auto f = static_cast<std::size_t>(feature_[i]);
        if (f >= per_feature.size()) per_feature.resize(f + 1);
        per_feature[f].push_back(thr[i]);
      }
      qlo_.assign(per_feature.size(), 0.0);
      qscale_.assign(per_feature.size(), 1.0);
      for (std::size_t f = 0; f < per_feature.size(); ++f) {
        std::vector<double>& ts = per_feature[f];
        if (ts.empty()) continue;  // feature never split on; params unused
        std::sort(ts.begin(), ts.end());
        ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
        const double lo = ts.front();
        const double hi = ts.back();
        if (!std::isfinite(lo) || !std::isfinite(hi)) {
          throw std::invalid_argument(
              "CompiledForest: kInt16: non-finite threshold on feature " +
              std::to_string(f));
        }
        qlo_[f] = lo;
        qscale_[f] = hi > lo ? 65534.0 / (hi - lo) : 1.0;
        std::int32_t prev = std::numeric_limits<std::int32_t>::min();
        for (const double t : ts) {
          const std::int32_t q = quantize_value(t, qlo_[f], qscale_[f]);
          if (q <= prev) {
            throw std::invalid_argument(
                "CompiledForest: kInt16 quantization loses threshold "
                "ordering on feature " +
                std::to_string(f) + " (range [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "] too wide for the gap near " +
                std::to_string(t) + "); use kFloat or kDouble");
          }
          prev = q;
        }
      }
      thr_q_.reserve(node_count_ + 1);
      for (std::size_t i = 0; i < node_count_; ++i) {
        if (feature_[i] < 0) {
          thr_q_.push_back(0);
          continue;
        }
        const auto f = static_cast<std::size_t>(feature_[i]);
        const std::int32_t q = quantize_value(thr[i], qlo_[f], qscale_[f]);
        thr_q_.push_back(static_cast<std::int16_t>(std::clamp<std::int32_t>(
            q, std::numeric_limits<std::int16_t>::min(),
            std::numeric_limits<std::int16_t>::max())));
      }
      thr_q_.push_back(0);  // gather padding (see forest_kernels.h)
      break;
    }
  }
  // Packed vector-kernel arena (reduced-precision modes only; kDouble is
  // the bit-exact scalar reference and never dispatches SIMD). One int32
  // word per node: internal = (left_offset << 8) | feature — valid because
  // BFS packing pops a node's two children consecutively, so the right
  // child always sits at left + 1 — leaf = -1 - label (negative). Forests
  // whose shape cannot pack just stay scalar; results are identical either
  // way, only the kernel choice changes.
  if (cfg_.precision != ThresholdPrecision::kDouble) {
    simd_ok_ = node_count_ < kMaxSimdNodes;
    meta_.reserve(node_count_);
    for (std::size_t i = 0; i < node_count_ && simd_ok_; ++i) {
      if (feature_[i] < 0) {
        meta_.push_back(feature_[i]);  // already -1 - label
        continue;
      }
      const std::int32_t off = child_[2 * i];
      if (feature_[i] > kMaxPackedFeature || off <= 0 ||
          off >= kMaxPackedOffset || child_[2 * i + 1] != off + 1) {
        simd_ok_ = false;
        break;
      }
      meta_.push_back((off << 8) | feature_[i]);
    }
    if (!simd_ok_) {
      meta_.clear();
      meta_.shrink_to_fit();
    }
  }
}

std::size_t CompiledForest::arena_bytes() const {
  return node_count_ * sizeof(std::int16_t) +
         thr_d_.size() * sizeof(double) + thr_f_.size() * sizeof(float) +
         (thr_q_.empty() ? 0 : node_count_ * sizeof(std::int16_t)) +
         child_.size() * sizeof(std::int32_t) +
         meta_.size() * sizeof(std::int32_t) +
         roots_.size() * sizeof(std::uint32_t);
}

util::simd::Isa CompiledForest::dispatch_isa() const {
  const util::simd::Isa isa = util::simd::active_isa();
  return simd_ok_ ? isa : util::simd::Isa::kScalar;
}

void CompiledForest::quantize_row(const double* row, std::int32_t* out) const {
  const std::size_t n = qlo_.size();
  for (std::size_t f = 0; f < n; ++f) {
    out[f] = quantize_value(row[f], qlo_[f], qscale_[f]);
  }
}

void CompiledForest::accumulate_votes(std::span<const double> row,
                                      std::vector<std::uint32_t>& votes) const {
  const std::int16_t* feature = feature_.data();
  const std::int32_t* child = child_.data();
  switch (cfg_.precision) {
    case ThresholdPrecision::kDouble: {
      const double* thr = thr_d_.data();
      for (const std::uint32_t root : roots_) {
        ++votes[static_cast<std::size_t>(
            kernels::walk_tree(feature, thr, child, root, row.data()))];
      }
      break;
    }
    case ThresholdPrecision::kFloat: {
      const float* thr = thr_f_.data();
      for (const std::uint32_t root : roots_) {
        ++votes[static_cast<std::size_t>(
            kernels::walk_tree(feature, thr, child, root, row.data()))];
      }
      break;
    }
    case ThresholdPrecision::kInt16: {
      std::vector<std::int32_t> qrow(qlo_.size());
      quantize_row(row.data(), qrow.data());
      const std::int16_t* thr = thr_q_.data();
      for (const std::uint32_t root : roots_) {
        ++votes[static_cast<std::size_t>(
            kernels::walk_tree(feature, thr, child, root, qrow.data()))];
      }
      break;
    }
  }
}

Label CompiledForest::predict(std::span<const double> features) const {
  if (empty()) {
    throw std::logic_error("CompiledForest::predict: empty (not compiled)");
  }
  std::vector<std::uint32_t> votes(static_cast<std::size_t>(num_classes_), 0);
  accumulate_votes(features, votes);
  return static_cast<Label>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> CompiledForest::vote_fractions(
    std::span<const double> features) const {
  std::vector<double> fractions(static_cast<std::size_t>(num_classes_), 0.0);
  if (empty()) return fractions;
  std::vector<std::uint32_t> votes(static_cast<std::size_t>(num_classes_), 0);
  accumulate_votes(features, votes);
  // Integer vote counts divided by num_trees: exact, and bit-identical to
  // the interpreted path's (sum of 1.0s) / num_trees.
  for (std::size_t c = 0; c < fractions.size(); ++c) {
    fractions[c] = static_cast<double>(votes[c]) /
                   static_cast<double>(roots_.size());
  }
  return fractions;
}

// Run one block's grouped tree walks and leave row-major
// [num_rows x num_classes] counts in votes. The DataSet's feature matrix is
// row-major and contiguous, so the block is addressed as base + k*stride
// directly — no per-row pointer gathering. The ISA choice is per block and
// invisible in the counts: vector and scalar kernels issue identical
// comparisons (forest_kernels.h).
void CompiledForest::block_votes(const DataSet& data, std::size_t begin,
                                 std::size_t end,
                                 std::vector<std::uint32_t>& votes) const {
  const int num_rows = static_cast<int>(end - begin);
  const double* rows = data.row(begin).data();
  const std::size_t stride = data.num_features();
  votes.assign(static_cast<std::size_t>(num_rows) *
                   static_cast<std::size_t>(num_classes_),
               0u);
  util::simd::Isa isa = dispatch_isa();
  if (stride > kMaxSimdStride) isa = util::simd::Isa::kScalar;

  switch (cfg_.precision) {
    case ThresholdPrecision::kDouble: {
      // Bit-exact reference mode: always the scalar interleaved walk (and
      // 64-bit gathers measured slower than it anyway — see
      // forest_kernels.h).
      kernels::accumulate_block(feature_.data(), thr_d_.data(), child_.data(),
                                roots_.data(), roots_.size(), rows, stride,
                                num_rows, votes.data(), num_classes_);
      return;
    }
    case ThresholdPrecision::kFloat: {
      if (isa != util::simd::Isa::kScalar) {
        // Narrow the block's rows to float once; the same IEEE rounding
        // the scalar walk applies per comparison, so the vector kernel
        // compares exactly the values the scalar walk compares.
        std::vector<float> frows(static_cast<std::size_t>(num_rows) * stride);
        const std::size_t n = frows.size();
        for (std::size_t i = 0; i < n; ++i) {
          frows[i] = static_cast<float>(rows[i]);
        }
#if LIBRA_SIMD_X86
        if (isa == util::simd::Isa::kAvx2) {
          kernels::accumulate_block_avx2(meta_.data(), thr_f_.data(),
                                         roots_.data(), roots_.size(),
                                         frows.data(), stride, num_rows,
                                         votes.data(), num_classes_);
          return;
        }
#endif
#if LIBRA_SIMD_NEON
        if (isa == util::simd::Isa::kNeon) {
          kernels::accumulate_block_neon(meta_.data(), thr_f_.data(),
                                         roots_.data(), roots_.size(),
                                         frows.data(), stride, num_rows,
                                         votes.data(), num_classes_);
          return;
        }
#endif
      }
      kernels::accumulate_block(feature_.data(), thr_f_.data(), child_.data(),
                                roots_.data(), roots_.size(), rows, stride,
                                num_rows, votes.data(), num_classes_);
      return;
    }
    case ThresholdPrecision::kInt16: {
      // Quantization is this shared scalar pass for every ISA, so the
      // vector path cannot round differently from the scalar one.
      const std::size_t qstride = qlo_.size();
      std::vector<std::int32_t> qrows(
          static_cast<std::size_t>(num_rows) * qstride);
      for (int r = 0; r < num_rows; ++r) {
        quantize_row(rows + static_cast<std::size_t>(r) * stride,
                     qrows.data() + static_cast<std::size_t>(r) * qstride);
      }
#if LIBRA_SIMD_X86
      if (isa == util::simd::Isa::kAvx2 && qstride > 0) {
        kernels::accumulate_block_avx2(meta_.data(), thr_q_.data(),
                                       roots_.data(), roots_.size(),
                                       qrows.data(), qstride, num_rows,
                                       votes.data(), num_classes_);
        return;
      }
#endif
#if LIBRA_SIMD_NEON
      if (isa == util::simd::Isa::kNeon && qstride > 0) {
        kernels::accumulate_block_neon(meta_.data(), thr_q_.data(),
                                       roots_.data(), roots_.size(),
                                       qrows.data(), qstride, num_rows,
                                       votes.data(), num_classes_);
        return;
      }
#endif
      kernels::accumulate_block(feature_.data(), thr_q_.data(), child_.data(),
                                roots_.data(), roots_.size(), qrows.data(),
                                qstride, num_rows, votes.data(), num_classes_);
      return;
    }
  }
}

std::vector<Label> CompiledForest::predict_batch(const DataSet& data,
                                                 util::ThreadPool* pool) const {
  if (empty()) {
    throw std::logic_error(
        "CompiledForest::predict_batch: empty (not compiled)");
  }
  std::vector<Label> out(data.size());
  const std::size_t block = std::max<std::size_t>(1, cfg_.row_block);
  const std::size_t num_blocks = (data.size() + block - 1) / block;
  const std::size_t classes = static_cast<std::size_t>(num_classes_);
  util::parallel_for(pool, num_blocks, [&](std::size_t b) {
    std::vector<std::uint32_t> votes;
    const std::size_t begin = b * block;
    const std::size_t end = std::min(data.size(), begin + block);
    block_votes(data, begin, end, votes);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t* row_votes = votes.data() + (i - begin) * classes;
      out[i] = static_cast<Label>(
          std::max_element(row_votes, row_votes + classes) - row_votes);
    }
  });
  return out;
}

std::vector<std::vector<double>> CompiledForest::vote_fractions_batch(
    const DataSet& data, util::ThreadPool* pool) const {
  std::vector<std::vector<double>> out(data.size());
  if (empty()) {
    for (auto& row : out) {
      row.assign(static_cast<std::size_t>(num_classes_), 0.0);
    }
    return out;
  }
  const std::size_t block = std::max<std::size_t>(1, cfg_.row_block);
  const std::size_t num_blocks = (data.size() + block - 1) / block;
  const std::size_t classes = static_cast<std::size_t>(num_classes_);
  util::parallel_for(pool, num_blocks, [&](std::size_t b) {
    std::vector<std::uint32_t> votes;
    const std::size_t begin = b * block;
    const std::size_t end = std::min(data.size(), begin + block);
    block_votes(data, begin, end, votes);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t* row_votes = votes.data() + (i - begin) * classes;
      std::vector<double>& fractions = out[i];
      fractions.resize(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        fractions[c] = static_cast<double>(row_votes[c]) /
                       static_cast<double>(roots_.size());
      }
    }
  });
  return out;
}

}  // namespace libra::ml
