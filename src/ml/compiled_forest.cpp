#include "ml/compiled_forest.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>

#include "ml/random_forest.h"

namespace libra::ml {

namespace {

// Append one tree's nodes to the arena breadth-first. BFS packing keeps a
// level's nodes adjacent, so a batch of rows descending in lockstep touches
// a contiguous window per level instead of preorder's left-spine jumps.
template <typename AppendThreshold>
void pack_tree(const DecisionTree& tree, std::size_t tree_index,
               int num_classes, std::vector<std::int16_t>& feature,
               std::vector<std::int32_t>& child,
               const AppendThreshold& append_threshold) {
  const std::vector<DecisionTree::Node>& nodes = tree.nodes();
  const auto n = static_cast<int>(nodes.size());
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("CompiledForest: tree " +
                                std::to_string(tree_index) + ": " + what);
  };

  // First pass: BFS order and the original->arena index map.
  std::vector<std::int32_t> arena_slot(nodes.size(), -1);
  std::vector<std::int32_t> order;
  order.reserve(nodes.size());
  std::deque<std::int32_t> queue{0};
  while (!queue.empty()) {
    const std::int32_t id = queue.front();
    queue.pop_front();
    if (id < 0 || id >= n) fail("child index out of range");
    if (arena_slot[static_cast<std::size_t>(id)] >= 0) {
      fail("cycle or shared subtree");
    }
    arena_slot[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(order.size());
    order.push_back(id);
    const DecisionTree::Node& node = nodes[static_cast<std::size_t>(id)];
    if (node.feature >= 0) {
      queue.push_back(node.left);
      queue.push_back(node.right);
    }
  }

  // Second pass: emit the packed words in BFS order.
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    const DecisionTree::Node& node =
        nodes[static_cast<std::size_t>(order[slot])];
    if (node.feature >= 0) {
      if (node.feature > std::numeric_limits<std::int16_t>::max()) {
        fail("feature index " + std::to_string(node.feature) +
             " does not fit int16");
      }
      feature.push_back(static_cast<std::int16_t>(node.feature));
      child.push_back(arena_slot[static_cast<std::size_t>(node.left)] -
                      static_cast<std::int32_t>(slot));
      child.push_back(arena_slot[static_cast<std::size_t>(node.right)] -
                      static_cast<std::int32_t>(slot));
    } else {
      if (node.label < 0 || node.label >= num_classes) {
        fail("leaf label " + std::to_string(node.label) +
             " outside [0, " + std::to_string(num_classes) + ")");
      }
      if (node.label > std::numeric_limits<std::int16_t>::max() - 1) {
        fail("leaf label does not fit int16");
      }
      // Fold the class ID into the node word: feature = ~label < 0.
      feature.push_back(static_cast<std::int16_t>(-1 - node.label));
      child.push_back(0);
      child.push_back(0);
    }
    append_threshold(node.threshold, node.feature >= 0);
  }
}

// The hot loop: one row through one tree over the flat arrays. Leaf labels
// ride in the feature word, so the loop exit test doubles as the vote read.
// The comparison result indexes into the child pair instead of selecting
// between two loads — no data-dependent branch to mispredict, one load
// instead of two.
template <typename Threshold>
inline int walk_tree(const std::int16_t* feature, const Threshold* thr,
                     const std::int32_t* child, std::size_t idx,
                     const double* row) {
  std::int16_t f = feature[idx];
  while (f >= 0) {
    const std::size_t go_right = row[f] <= static_cast<double>(thr[idx]) ? 0 : 1;
    idx += static_cast<std::size_t>(child[2 * idx + go_right]);
    f = feature[idx];
  }
  return -1 - f;
}

// Batch hot loop: a group of rows through one tree together. A lone walk is
// latency-bound — every level is a dependent load→compare→index chain — so
// interleaving G independent rows lets the core overlap the chains. A
// finished row parks on its leaf: leaf child offsets are both 0, stepping it
// is a no-op (its cached feature word is clamped so the dummy feature read
// stays in bounds), and the group spins only until every row has parked —
// cheap here because trees are depth-capped, so park times are close.
// Evaluation order over (tree, row) changes versus the serial walk but the
// integer vote counts are order-invariant, so batch results stay
// bit-identical.
constexpr int kWalkGroup = 8;

template <typename Threshold, int G>
inline void walk_group(const std::int16_t* feature, const Threshold* thr,
                       const std::int32_t* child, std::size_t root,
                       const double* rows, std::size_t stride, int* labels) {
  std::size_t idx[G];
  std::int16_t word[G];  // feature word at idx[k], cached across sweeps
  const std::int16_t root_word = feature[root];
  for (int k = 0; k < G; ++k) {
    idx[k] = root;
    word[k] = root_word;
  }
  bool active = root_word >= 0;
  while (active) {
    bool any = false;
    for (int k = 0; k < G; ++k) {
      const std::int16_t f = word[k];
      const std::size_t safe_f = static_cast<std::size_t>(f >= 0 ? f : 0);
      const std::size_t i = idx[k];
      const std::size_t go_right =
          rows[static_cast<std::size_t>(k) * stride + safe_f] <=
                  static_cast<double>(thr[i])
              ? 0
              : 1;
      const std::size_t next =
          i + static_cast<std::size_t>(child[2 * i + go_right]);
      idx[k] = next;
      word[k] = feature[next];
      any |= word[k] >= 0;
    }
    active = any;
  }
  for (int k = 0; k < G; ++k) labels[k] = -1 - word[k];
}

// One row block through the whole forest, trees outermost so a tree's upper
// levels stay cache-hot across the block. rows points at the block's first
// row inside the DataSet's row-major matrix (stride doubles apart), so row
// addressing is base + k*stride — no per-row pointer table. votes is
// row-major [num_rows x num_classes]. Full groups run the fixed-size walk
// (the constant trip count keeps the interleaved state in registers); the
// block tail walks serially, so a 1-row batch costs exactly one walk per
// tree.
template <typename Threshold>
void accumulate_block(const std::int16_t* feature, const Threshold* thr,
                      const std::int32_t* child, const std::uint32_t* roots,
                      std::size_t num_trees, const double* rows,
                      std::size_t stride, int num_rows, std::uint32_t* votes,
                      int num_classes) {
  int labels[kWalkGroup];
  const int full = num_rows - num_rows % kWalkGroup;
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (int r = 0; r < full; r += kWalkGroup) {
      walk_group<Threshold, kWalkGroup>(
          feature, thr, child, roots[t],
          rows + static_cast<std::size_t>(r) * stride, stride, labels);
      for (int k = 0; k < kWalkGroup; ++k) {
        ++votes[static_cast<std::size_t>(r + k) *
                    static_cast<std::size_t>(num_classes) +
                static_cast<std::size_t>(labels[k])];
      }
    }
    for (int k = full; k < num_rows; ++k) {
      ++votes[static_cast<std::size_t>(k) *
                  static_cast<std::size_t>(num_classes) +
              static_cast<std::size_t>(walk_tree(
                  feature, thr, child, roots[t],
                  rows + static_cast<std::size_t>(k) * stride))];
    }
  }
}

}  // namespace

CompiledForest::CompiledForest(const RandomForest& forest,
                               CompiledForestConfig cfg)
    : cfg_(cfg), num_classes_(forest.num_classes()) {
  const std::vector<DecisionTree>& trees = forest.trees();
  if (trees.empty()) {
    throw std::invalid_argument("CompiledForest: forest is not fitted");
  }
  if (num_classes_ < 2) {
    throw std::invalid_argument("CompiledForest: num_classes must be >= 2");
  }
  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : trees) {
    total_nodes += tree.nodes().size();
  }
  feature_.reserve(total_nodes);
  child_.reserve(2 * total_nodes);
  if (cfg_.precision == ThresholdPrecision::kDouble) {
    thr_d_.reserve(total_nodes);
  } else {
    thr_f_.reserve(total_nodes);
  }
  roots_.reserve(trees.size());

  const auto append_threshold = [&](double threshold, bool internal) {
    // Leaves store a zero threshold: the word is never compared, but the
    // arrays stay index-parallel.
    const double t = internal ? threshold : 0.0;
    if (cfg_.precision == ThresholdPrecision::kDouble) {
      thr_d_.push_back(t);
    } else {
      thr_f_.push_back(static_cast<float>(t));
    }
  };
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (trees[t].nodes().empty()) {
      throw std::invalid_argument("CompiledForest: tree " + std::to_string(t) +
                                  " is empty");
    }
    roots_.push_back(static_cast<std::uint32_t>(feature_.size()));
    pack_tree(trees[t], t, num_classes_, feature_, child_, append_threshold);
  }
}

std::size_t CompiledForest::arena_bytes() const {
  return feature_.size() * sizeof(std::int16_t) +
         thr_d_.size() * sizeof(double) + thr_f_.size() * sizeof(float) +
         child_.size() * sizeof(std::int32_t) +
         roots_.size() * sizeof(std::uint32_t);
}

void CompiledForest::accumulate_votes(std::span<const double> row,
                                      std::vector<std::uint32_t>& votes) const {
  const std::int16_t* feature = feature_.data();
  const std::int32_t* child = child_.data();
  const double* x = row.data();
  if (cfg_.precision == ThresholdPrecision::kDouble) {
    const double* thr = thr_d_.data();
    for (const std::uint32_t root : roots_) {
      ++votes[static_cast<std::size_t>(walk_tree(feature, thr, child, root, x))];
    }
  } else {
    const float* thr = thr_f_.data();
    for (const std::uint32_t root : roots_) {
      ++votes[static_cast<std::size_t>(walk_tree(feature, thr, child, root, x))];
    }
  }
}

Label CompiledForest::predict(std::span<const double> features) const {
  if (empty()) {
    throw std::logic_error("CompiledForest::predict: empty (not compiled)");
  }
  std::vector<std::uint32_t> votes(static_cast<std::size_t>(num_classes_), 0);
  accumulate_votes(features, votes);
  return static_cast<Label>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> CompiledForest::vote_fractions(
    std::span<const double> features) const {
  std::vector<double> fractions(static_cast<std::size_t>(num_classes_), 0.0);
  if (empty()) return fractions;
  std::vector<std::uint32_t> votes(static_cast<std::size_t>(num_classes_), 0);
  accumulate_votes(features, votes);
  // Integer vote counts divided by num_trees: exact, and bit-identical to
  // the interpreted path's (sum of 1.0s) / num_trees.
  for (std::size_t c = 0; c < fractions.size(); ++c) {
    fractions[c] = static_cast<double>(votes[c]) /
                   static_cast<double>(roots_.size());
  }
  return fractions;
}

// Run one block's grouped tree walks and leave row-major
// [num_rows x num_classes] counts in votes. The DataSet's feature matrix is
// row-major and contiguous, so the block is addressed as base + k*stride
// directly — no per-row pointer gathering.
void CompiledForest::block_votes(const DataSet& data, std::size_t begin,
                                 std::size_t end,
                                 std::vector<std::uint32_t>& votes) const {
  const int num_rows = static_cast<int>(end - begin);
  const double* rows = data.row(begin).data();
  const std::size_t stride = data.num_features();
  votes.assign(static_cast<std::size_t>(num_rows) *
                   static_cast<std::size_t>(num_classes_),
               0u);
  if (cfg_.precision == ThresholdPrecision::kDouble) {
    accumulate_block(feature_.data(), thr_d_.data(), child_.data(),
                     roots_.data(), roots_.size(), rows, stride, num_rows,
                     votes.data(), num_classes_);
  } else {
    accumulate_block(feature_.data(), thr_f_.data(), child_.data(),
                     roots_.data(), roots_.size(), rows, stride, num_rows,
                     votes.data(), num_classes_);
  }
}

std::vector<Label> CompiledForest::predict_batch(const DataSet& data,
                                                 util::ThreadPool* pool) const {
  if (empty()) {
    throw std::logic_error(
        "CompiledForest::predict_batch: empty (not compiled)");
  }
  std::vector<Label> out(data.size());
  const std::size_t block = std::max<std::size_t>(1, cfg_.row_block);
  const std::size_t num_blocks = (data.size() + block - 1) / block;
  const std::size_t classes = static_cast<std::size_t>(num_classes_);
  util::parallel_for(pool, num_blocks, [&](std::size_t b) {
    std::vector<std::uint32_t> votes;
    const std::size_t begin = b * block;
    const std::size_t end = std::min(data.size(), begin + block);
    block_votes(data, begin, end, votes);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t* row_votes = votes.data() + (i - begin) * classes;
      out[i] = static_cast<Label>(
          std::max_element(row_votes, row_votes + classes) - row_votes);
    }
  });
  return out;
}

std::vector<std::vector<double>> CompiledForest::vote_fractions_batch(
    const DataSet& data, util::ThreadPool* pool) const {
  std::vector<std::vector<double>> out(data.size());
  if (empty()) {
    for (auto& row : out) {
      row.assign(static_cast<std::size_t>(num_classes_), 0.0);
    }
    return out;
  }
  const std::size_t block = std::max<std::size_t>(1, cfg_.row_block);
  const std::size_t num_blocks = (data.size() + block - 1) / block;
  const std::size_t classes = static_cast<std::size_t>(num_classes_);
  util::parallel_for(pool, num_blocks, [&](std::size_t b) {
    std::vector<std::uint32_t> votes;
    const std::size_t begin = b * block;
    const std::size_t end = std::min(data.size(), begin + block);
    block_votes(data, begin, end, votes);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t* row_votes = votes.data() + (i - begin) * classes;
      std::vector<double>& fractions = out[i];
      fractions.resize(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        fractions[c] = static_cast<double>(row_votes[c]) /
                       static_cast<double>(roots_.size());
      }
    }
  });
  return out;
}

}  // namespace libra::ml
