#include "ml/neural_net.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace libra::ml {

NeuralNet::NeuralNet(NeuralNetConfig cfg) : cfg_(cfg) {}

std::vector<double> NeuralNet::forward(
    std::span<const double> x, std::vector<std::vector<double>>* activations,
    const std::vector<std::vector<bool>>* drop_masks) const {
  std::vector<double> a(x.begin(), x.end());
  if (activations) activations->push_back(a);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> z(static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double sum = layer.b[static_cast<std::size_t>(o)];
      const double* w_row = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        sum += w_row[i] * a[static_cast<std::size_t>(i)];
      }
      z[static_cast<std::size_t>(o)] = sum;
    }
    const bool last = (l + 1 == layers_.size());
    if (!last) {
      for (double& v : z) v = std::max(0.0, v);  // ReLU
      if (drop_masks) {
        // Inverted dropout: scale kept units so inference needs no rescale.
        const auto& mask = (*drop_masks)[l];
        for (std::size_t i = 0; i < z.size(); ++i) {
          z[i] = mask[i] ? z[i] / (1.0 - cfg_.dropout) : 0.0;
        }
      }
    } else {
      // Output: softmax (covers the 2-class sigmoid case as its 2-way
      // equivalent).
      const double zmax = *std::max_element(z.begin(), z.end());
      double denom = 0.0;
      for (double& v : z) {
        v = std::exp(v - zmax);
        denom += v;
      }
      for (double& v : z) v /= denom;
    }
    a = z;
    if (activations) activations->push_back(a);
  }
  return a;
}

void NeuralNet::fit(const DataSet& train, util::Rng& rng) {
  num_classes_ = std::max(train.num_classes(), 2);
  standardizer_.fit(train);
  const DataSet x = standardizer_.transform(train);

  // Build layers: hidden sizes then the class output.
  layers_.clear();
  int in_dim = static_cast<int>(x.num_features());
  std::vector<int> sizes = cfg_.hidden;
  sizes.push_back(num_classes_);
  for (int out_dim : sizes) {
    Layer layer;
    layer.in = in_dim;
    layer.out = out_dim;
    const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));  // He
    layer.w.resize(static_cast<std::size_t>(in_dim * out_dim));
    for (double& w : layer.w) w = rng.gaussian(0.0, scale);
    layer.b.assign(static_cast<std::size_t>(out_dim), 0.0);
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.b.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
    in_dim = out_dim;
  }
  adam_t_ = 0;

  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch_size));
      // Gradient accumulators.
      std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        gw[l].assign(layers_[l].w.size(), 0.0);
        gb[l].assign(layers_[l].b.size(), 0.0);
      }
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t idx = order[bi];
        // Fresh dropout masks per sample.
        std::vector<std::vector<bool>> masks(layers_.size() - 1);
        for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
          masks[l].resize(static_cast<std::size_t>(layers_[l].out));
          for (std::size_t i = 0; i < masks[l].size(); ++i) {
            masks[l][i] = !rng.bernoulli(cfg_.dropout);
          }
        }
        std::vector<std::vector<double>> acts;
        const std::vector<double> probs = forward(x.row(idx), &acts, &masks);
        // Backprop: delta at output = p - onehot(y).
        std::vector<double> delta = probs;
        delta[static_cast<std::size_t>(x.label(idx))] -= 1.0;
        for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
          const Layer& layer = layers_[static_cast<std::size_t>(l)];
          const auto& a_in = acts[static_cast<std::size_t>(l)];
          for (int o = 0; o < layer.out; ++o) {
            const double d = delta[static_cast<std::size_t>(o)];
            gb[static_cast<std::size_t>(l)][static_cast<std::size_t>(o)] += d;
            double* gw_row =
                &gw[static_cast<std::size_t>(l)][static_cast<std::size_t>(
                    o * layer.in)];
            for (int i = 0; i < layer.in; ++i) {
              gw_row[i] += d * a_in[static_cast<std::size_t>(i)];
            }
          }
          if (l == 0) break;
          // Propagate through weights, ReLU derivative and dropout mask.
          std::vector<double> next(static_cast<std::size_t>(layer.in), 0.0);
          for (int i = 0; i < layer.in; ++i) {
            double sum = 0.0;
            for (int o = 0; o < layer.out; ++o) {
              sum += layer.w[static_cast<std::size_t>(o * layer.in + i)] *
                     delta[static_cast<std::size_t>(o)];
            }
            const double act = acts[static_cast<std::size_t>(l)]
                                   [static_cast<std::size_t>(i)];
            next[static_cast<std::size_t>(i)] = act > 0.0 ? sum : 0.0;
          }
          delta = std::move(next);
        }
      }
      // Adam update.
      ++adam_t_;
      const double batch = static_cast<double>(end - start);
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t i = 0; i < layer.w.size(); ++i) {
          const double g = gw[l][i] / batch + cfg_.l2 * layer.w[i];
          layer.mw[i] = kBeta1 * layer.mw[i] + (1 - kBeta1) * g;
          layer.vw[i] = kBeta2 * layer.vw[i] + (1 - kBeta2) * g * g;
          layer.w[i] -= cfg_.learning_rate * (layer.mw[i] / bc1) /
                        (std::sqrt(layer.vw[i] / bc2) + kEps);
        }
        for (std::size_t i = 0; i < layer.b.size(); ++i) {
          const double g = gb[l][i] / batch;
          layer.mb[i] = kBeta1 * layer.mb[i] + (1 - kBeta1) * g;
          layer.vb[i] = kBeta2 * layer.vb[i] + (1 - kBeta2) * g * g;
          layer.b[i] -= cfg_.learning_rate * (layer.mb[i] / bc1) /
                        (std::sqrt(layer.vb[i] / bc2) + kEps);
        }
      }
    }
  }
}

std::vector<double> NeuralNet::predict_proba(
    std::span<const double> features) const {
  const std::vector<double> z = standardizer_.transform_row(features);
  return forward(z, nullptr, nullptr);
}

Label NeuralNet::predict(std::span<const double> features) const {
  const std::vector<double> probs = predict_proba(features);
  return static_cast<Label>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace libra::ml
