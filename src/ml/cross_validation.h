// Stratified k-fold cross validation (Sec. 6.2): the paper runs stratified
// 5-fold CV, repeated with random splits, and reports average accuracy and
// weighted F1.
//
// The (repeat, fold) grid is embarrassingly parallel and runs on an
// optional util::ThreadPool. All randomness (the per-repeat shuffles and
// the per-fold training streams) is forked off the caller's Rng serially
// before dispatch, and per-fold metrics are accumulated in fold order, so
// the result is bit-identical for any thread count.
#pragma once

#include <functional>
#include <memory>

#include "ml/data.h"
#include "ml/metrics.h"
#include "util/thread_pool.h"

namespace libra::ml {

struct CvResult {
  double accuracy = 0.0;
  double weighted_f1 = 0.0;
  int folds = 0;
  int repeats = 0;
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

// Run `repeats` rounds of stratified k-fold CV with fresh random splits and
// average the metrics across all folds of all rounds. Throws
// std::invalid_argument when k < 2, repeats < 1, or the dataset has fewer
// rows than folds. `pool` parallelizes across the folds of all rounds;
// nullptr runs serially.
CvResult cross_validate(const DataSet& data, const ClassifierFactory& factory,
                        int k, int repeats, util::Rng& rng,
                        util::ThreadPool* pool = nullptr);

// Train on one set, evaluate on another (the cross-building experiment).
CvResult train_test(const DataSet& train, const DataSet& test,
                    const ClassifierFactory& factory, util::Rng& rng);

}  // namespace libra::ml
