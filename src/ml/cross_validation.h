// Stratified k-fold cross validation (Sec. 6.2): the paper runs stratified
// 5-fold CV, repeated with random splits, and reports average accuracy and
// weighted F1.
#pragma once

#include <functional>
#include <memory>

#include "ml/data.h"
#include "ml/metrics.h"

namespace libra::ml {

struct CvResult {
  double accuracy = 0.0;
  double weighted_f1 = 0.0;
  int folds = 0;
  int repeats = 0;
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

// Run `repeats` rounds of stratified k-fold CV with fresh random splits and
// average the metrics across all folds of all rounds.
CvResult cross_validate(const DataSet& data, const ClassifierFactory& factory,
                        int k, int repeats, util::Rng& rng);

// Train on one set, evaluate on another (the cross-building experiment).
CvResult train_test(const DataSet& train, const DataSet& test,
                    const ClassifierFactory& factory, util::Rng& rng);

}  // namespace libra::ml
