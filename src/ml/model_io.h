// Model persistence: save a trained decision tree / random forest and load
// it back -- a deployed LiBRA ships a pre-trained forest in firmware, so the
// framework must be able to export one (and the CLI's train/eval split
// depends on it).
#pragma once

#include <iosfwd>
#include <string>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace libra::ml {

void save_tree(const DecisionTree& tree, std::ostream& out);
DecisionTree load_tree(std::istream& in);

void save_forest(const RandomForest& forest, std::ostream& out);
RandomForest load_forest(std::istream& in);

void save_forest_file(const RandomForest& forest, const std::string& path);
RandomForest load_forest_file(const std::string& path);

}  // namespace libra::ml
