#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace libra::ml {

namespace {

double impurity_from_counts(const std::vector<int>& counts, int total,
                            Impurity kind) {
  if (total == 0) return 0.0;
  double result = kind == Impurity::kGini ? 1.0 : 0.0;
  for (int c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    if (kind == Impurity::kGini) {
      result -= p * p;
    } else {
      result -= p * std::log2(p);
    }
  }
  return result;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig cfg) : cfg_(cfg) {}

double DecisionTree::node_impurity(const std::vector<std::size_t>& indices,
                                   const DataSet& data) const {
  std::vector<int> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i : indices) {
    ++counts[static_cast<std::size_t>(data.label(i))];
  }
  return impurity_from_counts(counts, static_cast<int>(indices.size()),
                              cfg_.impurity);
}

void DecisionTree::fit(const DataSet& train, util::Rng& rng) {
  nodes_.clear();
  num_classes_ = std::max(train.num_classes(), 2);
  raw_importances_.assign(train.num_features(), 0.0);
  std::vector<std::size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(train, indices, 0, rng);
  // Normalize the impurity decreases into Gini importances.
  importances_ = raw_importances_;
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0) {
    for (double& imp : importances_) imp /= total;
  }
}

int DecisionTree::build(const DataSet& data, std::vector<std::size_t>& indices,
                        int depth, util::Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  // Majority label for this node (used if it stays a leaf).
  std::vector<int> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i : indices) {
    ++counts[static_cast<std::size_t>(data.label(i))];
  }
  nodes_[static_cast<std::size_t>(node_id)].label = static_cast<Label>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  const double parent_impurity =
      impurity_from_counts(counts, static_cast<int>(indices.size()),
                           cfg_.impurity);
  const bool pure =
      std::count_if(counts.begin(), counts.end(), [](int c) { return c > 0; }) <= 1;
  if (depth >= cfg_.max_depth || pure ||
      static_cast<int>(indices.size()) < cfg_.min_samples_split) {
    return node_id;
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> features(data.num_features());
  std::iota(features.begin(), features.end(), 0);
  if (cfg_.max_features > 0 &&
      cfg_.max_features < static_cast<int>(features.size())) {
    rng.shuffle(features);
    features.resize(static_cast<std::size_t>(cfg_.max_features));
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  std::vector<std::pair<double, Label>> column(indices.size());
  for (std::size_t f : features) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      column[i] = {data.row(indices[i])[f], data.label(indices[i])};
    }
    std::sort(column.begin(), column.end());
    // Sweep split points between consecutive distinct values.
    std::vector<int> left_counts(static_cast<std::size_t>(num_classes_), 0);
    std::vector<int> right_counts = counts;
    const int n = static_cast<int>(column.size());
    for (int i = 0; i + 1 < n; ++i) {
      const auto cls = static_cast<std::size_t>(column[static_cast<std::size_t>(i)].second);
      ++left_counts[cls];
      --right_counts[cls];
      if (column[static_cast<std::size_t>(i)].first ==
          column[static_cast<std::size_t>(i + 1)].first) {
        continue;
      }
      const int n_left = i + 1;
      const int n_right = n - n_left;
      const double child_impurity =
          (static_cast<double>(n_left) *
               impurity_from_counts(left_counts, n_left, cfg_.impurity) +
           static_cast<double>(n_right) *
               impurity_from_counts(right_counts, n_right, cfg_.impurity)) /
          static_cast<double>(n);
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (column[static_cast<std::size_t>(i)].first +
                          column[static_cast<std::size_t>(i + 1)].first) /
                         2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split found

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (data.row(i)[static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  raw_importances_[static_cast<std::size_t>(best_feature)] +=
      best_gain * static_cast<double>(indices.size());

  indices.clear();
  indices.shrink_to_fit();  // free before recursing

  const int left = build(data, left_idx, depth + 1, rng);
  const int right = build(data, right_idx, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

void DecisionTree::import_model(std::vector<Node> nodes,
                                std::vector<double> importances,
                                int num_classes) {
  // Deserialized state is untrusted: a corrupt model file must fail loudly
  // here, not as out-of-bounds reads or an infinite predict() walk later.
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("DecisionTree::import_model: " + what);
  };
  if (num_classes < 2) {
    fail("num_classes must be >= 2, got " + std::to_string(num_classes));
  }
  const auto n = static_cast<int>(nodes.size());
  for (int id = 0; id < n; ++id) {
    const Node& node = nodes[static_cast<std::size_t>(id)];
    if (node.label < 0 || node.label >= num_classes) {
      fail("node " + std::to_string(id) + " label " +
           std::to_string(node.label) + " outside [0, " +
           std::to_string(num_classes) + ")");
    }
    if (node.feature >= 0) {
      if (!importances.empty() &&
          node.feature >= static_cast<int>(importances.size())) {
        fail("node " + std::to_string(id) + " splits on feature " +
             std::to_string(node.feature) + " but the model has " +
             std::to_string(importances.size()) + " features");
      }
      if (node.left < 0 || node.left >= n || node.right < 0 ||
          node.right >= n) {
        fail("node " + std::to_string(id) + " child index out of range");
      }
    }
  }
  if (n > 0) {
    // Reachability walk from the root: in a well-formed binary tree every
    // node is referenced exactly once, so a revisit means a cycle (or a
    // shared subtree) and a shortfall means orphaned nodes.
    std::vector<char> visited(nodes.size(), 0);
    std::vector<int> stack{0};
    int seen = 0;
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (visited[static_cast<std::size_t>(id)]) {
        fail("cycle or shared subtree at node " + std::to_string(id));
      }
      visited[static_cast<std::size_t>(id)] = 1;
      ++seen;
      const Node& node = nodes[static_cast<std::size_t>(id)];
      if (node.feature >= 0) {
        stack.push_back(node.left);
        stack.push_back(node.right);
      }
    }
    if (seen != n) {
      fail(std::to_string(n - seen) + " node(s) unreachable from the root");
    }
  }
  nodes_ = std::move(nodes);
  importances_ = importances;
  raw_importances_ = std::move(importances);
  num_classes_ = num_classes;
}

Label DecisionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0;
  int id = 0;
  while (nodes_[static_cast<std::size_t>(id)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    id = features[static_cast<std::size_t>(node.feature)] <= node.threshold
             ? node.left
             : node.right;
  }
  return nodes_[static_cast<std::size_t>(id)].label;
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> walk = [&](int id) -> int {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.feature < 0) return 1;
    return 1 + std::max(walk(node.left), walk(node.right));
  };
  return walk(0);
}

}  // namespace libra::ml
