// Forest-traversal kernels over CompiledForest's flat arenas.
//
// The scalar walkers here are the reference semantics: one load-compare-
// index chain per level, leaf labels folded into the node word, a group
// of kGroup interleaved rows advancing in lockstep with finished rows
// parked on their leaves. Two arena shapes exist:
//
//   - the canonical arena (feature / thr / child arrays) that every
//     precision mode walks on the scalar paths, with kDouble as the
//     bit-exact reference against the interpreted forest;
//   - the packed arena (one int32 meta word per node + a threshold array)
//     that the vector kernels walk for the kFloat / kInt16 modes. The meta
//     word folds the split feature (low 8 bits) and the BFS left-child
//     offset (upper bits) of an internal node, or the leaf label as
//     -1 - label (word < 0 <=> leaf), halving the per-level gather count:
//     meta + threshold + row value instead of feature + threshold + row +
//     child. BFS packing places a node's two children in adjacent slots,
//     so right = left + 1 and the branch decision is an add, not a load.
//
// Every vector kernel performs exactly the comparisons the scalar walk of
// the same precision mode performs (same operands, same <= predicate, NaN
// ordering included), and votes are integer counts, so kernel choice never
// changes results: scalar, AVX2 and NEON paths are bit-identical per
// precision mode. Rows are doubles for the double mode, narrowed-to-float
// for the float mode (the narrowing is shared: the scalar walk narrows per
// comparison, the batch path narrows the block once — same IEEE rounding,
// same value), and pre-quantized int32 for the int16 mode (quantization is
// shared scalar code in compiled_forest.cpp, so the vector path cannot
// round differently).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/simd.h"

namespace libra::ml::kernels {

// Rows interleaved per group sweep. The AVX2 kernels use exactly 8 (one
// 32-bit lane each); the scalar walkers are templated but always
// instantiated at 8 so grouping is identical across paths.
inline constexpr int kGroup = 8;

// The one comparison of the walk, per precision mode. kFloat narrows the
// row value to float and compares in float — one rounding on each operand,
// both performed identically by the scalar and vector paths (see the
// precision contract in compiled_forest.h). The other modes compare
// directly (int16 thresholds promote to int against int32 rows).
template <typename Threshold, typename Row>
inline bool goes_left(Row x, Threshold t) {
  if constexpr (std::is_same_v<Threshold, float> &&
                std::is_same_v<Row, double>) {
    return static_cast<float>(x) <= t;
  } else {
    return x <= t;
  }
}

// One row through one tree. Leaf labels ride in the feature word, so the
// loop exit test doubles as the vote read. The comparison result indexes
// into the child pair instead of selecting between two loads -- no
// data-dependent branch to mispredict, one load instead of two.
template <typename Threshold, typename Row>
inline int walk_tree(const std::int16_t* feature, const Threshold* thr,
                     const std::int32_t* child, std::size_t idx,
                     const Row* row) {
  std::int16_t f = feature[idx];
  while (f >= 0) {
    const std::size_t go_right = goes_left(row[f], thr[idx]) ? 0 : 1;
    idx += static_cast<std::size_t>(child[2 * idx + go_right]);
    f = feature[idx];
  }
  return -1 - f;
}

// One row through one tree over the packed arena. Same decisions as
// walk_tree on the same forest: the meta word is just feature + left
// offset (or the leaf label) re-encoded, and right = left + 1 by BFS
// adjacency. Row values arrive pre-narrowed / pre-quantized, so the
// comparison is direct.
template <typename Threshold, typename Row>
inline int walk_tree_packed(const std::int32_t* meta, const Threshold* thr,
                            std::size_t idx, const Row* row) {
  std::int32_t m = meta[idx];
  while (m >= 0) {
    const std::size_t go_right = row[m & 0xff] <= thr[idx] ? 0 : 1;
    idx += static_cast<std::size_t>(m >> 8) + go_right;
    m = meta[idx];
  }
  return -1 - m;
}

// A group of G rows through one tree together. A lone walk is
// latency-bound -- every level is a dependent load->compare->index chain --
// so interleaving G independent rows lets the core overlap the chains. A
// finished row parks on its leaf: leaf child offsets are both 0, stepping
// it is a no-op (its cached feature word is clamped so the dummy feature
// read stays in bounds), and the group spins only until every row has
// parked -- cheap here because trees are depth-capped, so park times are
// close. Evaluation order over (tree, row) changes versus the serial walk
// but the integer vote counts are order-invariant, so batch results stay
// bit-identical.
template <typename Threshold, typename Row, int G>
inline void walk_group(const std::int16_t* feature, const Threshold* thr,
                       const std::int32_t* child, std::size_t root,
                       const Row* rows, std::size_t stride, int* labels) {
  std::size_t idx[G];
  std::int16_t word[G];  // feature word at idx[k], cached across sweeps
  const std::int16_t root_word = feature[root];
  for (int k = 0; k < G; ++k) {
    idx[k] = root;
    word[k] = root_word;
  }
  bool active = root_word >= 0;
  while (active) {
    bool any = false;
    for (int k = 0; k < G; ++k) {
      const std::int16_t f = word[k];
      const std::size_t safe_f = static_cast<std::size_t>(f >= 0 ? f : 0);
      const std::size_t i = idx[k];
      const std::size_t go_right =
          goes_left(rows[static_cast<std::size_t>(k) * stride + safe_f],
                    thr[i])
              ? 0
              : 1;
      const std::size_t next =
          i + static_cast<std::size_t>(child[2 * i + go_right]);
      idx[k] = next;
      word[k] = feature[next];
      any |= word[k] >= 0;
    }
    active = any;
  }
  for (int k = 0; k < G; ++k) labels[k] = -1 - word[k];
}

// One row block through the whole forest, trees outermost so a tree's
// upper levels stay cache-hot across the block. rows points at the block's
// first row (stride elements apart), votes is row-major
// [num_rows x num_classes]. Full groups run the fixed-size walk (the
// constant trip count keeps the interleaved state in registers); the block
// tail walks serially, so a 1-row batch costs exactly one walk per tree.
template <typename Threshold, typename Row>
void accumulate_block(const std::int16_t* feature, const Threshold* thr,
                      const std::int32_t* child, const std::uint32_t* roots,
                      std::size_t num_trees, const Row* rows,
                      std::size_t stride, int num_rows, std::uint32_t* votes,
                      int num_classes) {
  int labels[kGroup];
  const int full = num_rows - num_rows % kGroup;
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (int r = 0; r < full; r += kGroup) {
      walk_group<Threshold, Row, kGroup>(
          feature, thr, child, roots[t],
          rows + static_cast<std::size_t>(r) * stride, stride, labels);
      for (int k = 0; k < kGroup; ++k) {
        ++votes[static_cast<std::size_t>(r + k) *
                    static_cast<std::size_t>(num_classes) +
                static_cast<std::size_t>(labels[k])];
      }
    }
    for (int k = full; k < num_rows; ++k) {
      ++votes[static_cast<std::size_t>(k) *
                  static_cast<std::size_t>(num_classes) +
              static_cast<std::size_t>(walk_tree(
                  feature, thr, child, roots[t],
                  rows + static_cast<std::size_t>(k) * stride))];
    }
  }
}

// Vectorized accumulate_block instances over the packed arena, one lane
// per interleaved row. Per tree level each lane costs three gathers (meta
// word, threshold, row value) plus a handful of cheap vector ALU ops; the
// walkers keep several 8-row groups in flight so the gather latency of one
// group hides under another's (a single group is as latency-bound as a
// single scalar chain). Arena preconditions (enforced by CompiledForest
// before dispatch, via its simd-eligibility flag):
//   - node count < 2^30 so every 32-bit lane index stays in int32 range;
//   - meta words: internal = (left_offset << 8) | feature with feature
//     <= 0xff and 0 < left_offset < 2^23, leaf = -1 - label (< 0), and the
//     leaf self-loop relies on the masked advance (not on zero offsets);
//   - the int16 threshold arena carries one trailing padding element,
//     because the 32-bit gather that reads a 16-bit word overreads 2 bytes
//     at the last node;
//   - kFloat rows are pre-narrowed float, kInt16 rows pre-quantized int32
//     (sentinels INT32_MIN / INT32_MAX encode -inf / {NaN, +inf} so
//     non-finite rows branch exactly like the scalar compare).
// Group tails (num_rows % 8) run walk_tree_packed, so any batch size is
// covered. kDouble has no vector kernel: it is the bit-exact reference
// mode, and on measured hardware 64-bit gathers lose to the interleaved
// scalar walk — CompiledForest always walks it scalar.
#if LIBRA_SIMD_X86
void accumulate_block_avx2(const std::int32_t* meta, const float* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const float* rows, std::size_t stride,
                           int num_rows, std::uint32_t* votes,
                           int num_classes);
void accumulate_block_avx2(const std::int32_t* meta, const std::int16_t* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const std::int32_t* rows, std::size_t stride,
                           int num_rows, std::uint32_t* votes,
                           int num_classes);
#endif

#if LIBRA_SIMD_NEON
void accumulate_block_neon(const std::int32_t* meta, const float* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const float* rows, std::size_t stride,
                           int num_rows, std::uint32_t* votes,
                           int num_classes);
void accumulate_block_neon(const std::int32_t* meta, const std::int16_t* thr,
                           const std::uint32_t* roots, std::size_t num_trees,
                           const std::int32_t* rows, std::size_t stride,
                           int num_rows, std::uint32_t* votes,
                           int num_classes);
#endif

}  // namespace libra::ml::kernels
