#include "trace/io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace libra::trace {

namespace {

constexpr const char* kMagic = "libra-dataset-v2";

void write_vector(std::ostream& out, const char* tag,
                  const std::vector<double>& v) {
  out << tag << ' ' << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

std::vector<double> read_vector(std::istream& in, const std::string& tag) {
  std::string got;
  std::size_t n = 0;
  if (!(in >> got >> n) || got != tag) {
    throw std::runtime_error("dataset parse error: expected '" + tag +
                             "', got '" + got + "'");
  }
  std::vector<double> v(n);
  for (double& x : v) {
    if (!(in >> x)) throw std::runtime_error("dataset parse error in " + tag);
  }
  return v;
}

void write_trace(std::ostream& out, const PairTrace& t) {
  out << "trace " << t.tx_beam << ' ' << t.rx_beam << ' ' << t.snr_db << ' '
      << t.noise_dbm << ' ';
  if (t.tof_ns) {
    out << *t.tof_ns << '\n';
  } else {
    out << "inf\n";
  }
  write_vector(out, "pdp", t.pdp);
  write_vector(out, "csi", t.csi);
  write_vector(out, "tput", t.throughput_mbps);
  write_vector(out, "cdr", t.cdr);
}

PairTrace read_trace(std::istream& in) {
  std::string tag, tof;
  PairTrace t;
  if (!(in >> tag >> t.tx_beam >> t.rx_beam >> t.snr_db >> t.noise_dbm >>
        tof) ||
      tag != "trace") {
    throw std::runtime_error("dataset parse error: expected 'trace'");
  }
  if (tof != "inf") t.tof_ns = std::stod(tof);
  t.pdp = read_vector(in, "pdp");
  t.csi = read_vector(in, "csi");
  t.throughput_mbps = read_vector(in, "tput");
  t.cdr = read_vector(in, "cdr");
  return t;
}

void write_record(std::ostream& out, const CaseRecord& rec) {
  out << "record " << static_cast<int>(rec.impairment) << ' '
      << (rec.env_name.empty() ? "-" : rec.env_name) << ' '
      << (rec.position_id.empty() ? "-" : rec.position_id) << ' '
      << rec.init_mcs << ' ' << rec.interferer_eirp_dbm << ' '
      << (rec.forced_na ? 1 : 0) << ' ' << (rec.angular_displacement ? 1 : 0)
      << '\n';
  write_trace(out, rec.init_best);
  write_trace(out, rec.new_at_init_pair);
  write_trace(out, rec.new_best);
  write_trace(out, rec.init_failover);
  write_trace(out, rec.new_at_failover);
}

CaseRecord read_record(std::istream& in) {
  std::string tag;
  int impairment = 0, forced_na = 0, angular = 0;
  CaseRecord rec;
  if (!(in >> tag >> impairment >> rec.env_name >> rec.position_id >>
        rec.init_mcs >> rec.interferer_eirp_dbm >> forced_na >> angular) ||
      tag != "record") {
    throw std::runtime_error("dataset parse error: expected 'record'");
  }
  rec.angular_displacement = angular != 0;
  if (impairment < 0 || impairment > 2) {
    throw std::runtime_error("dataset parse error: bad impairment");
  }
  rec.impairment = static_cast<Impairment>(impairment);
  if (rec.env_name == "-") rec.env_name.clear();
  if (rec.position_id == "-") rec.position_id.clear();
  rec.forced_na = forced_na != 0;
  rec.init_best = read_trace(in);
  rec.new_at_init_pair = read_trace(in);
  rec.new_best = read_trace(in);
  rec.init_failover = read_trace(in);
  rec.new_at_failover = read_trace(in);
  return rec;
}

}  // namespace

void save_dataset(const Dataset& dataset, std::ostream& out) {
  out << kMagic << ' ' << dataset.records.size() << ' '
      << dataset.na_records.size() << '\n';
  out << std::setprecision(17);
  for (const CaseRecord& rec : dataset.records) write_record(out, rec);
  for (const CaseRecord& rec : dataset.na_records) write_record(out, rec);
}

Dataset load_dataset(std::istream& in) {
  std::string magic;
  std::size_t n_records = 0, n_na = 0;
  if (!(in >> magic >> n_records >> n_na) || magic != kMagic) {
    throw std::runtime_error("not a libra dataset stream");
  }
  Dataset ds;
  ds.records.reserve(n_records);
  ds.na_records.reserve(n_na);
  for (std::size_t i = 0; i < n_records; ++i) {
    ds.records.push_back(read_record(in));
  }
  for (std::size_t i = 0; i < n_na; ++i) {
    ds.na_records.push_back(read_record(in));
  }
  return ds;
}

void save_dataset_file(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_dataset(dataset, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Dataset load_dataset_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_dataset(in);
}

void write_feature_csv(const Dataset& dataset, const GroundTruthConfig& cfg,
                       std::ostream& out) {
  out << "snr_diff_db,tof_diff_ns,noise_diff_db,pdp_similarity,"
         "csi_similarity,cdr,initial_mcs,impairment,env,label\n";
  for (const LabeledEntry& e : dataset.labeled(cfg)) {
    for (double v : e.x.v) out << v << ',';
    out << to_string(e.impairment) << ',' << e.env_name << ','
        << to_string(e.y) << '\n';
  }
}

}  // namespace libra::trace
