// Feature extraction (Sec. 6.1): the seven PHY-layer metrics LiBRA feeds to
// its classifiers, computed from the change between the initial-state trace
// and the impaired-state trace through the SAME (initial) beam pair -- i.e.
// what the transmitter can observe before adapting.
//
//   SNR difference       initial - current (dB); positive under impairment
//   ToF difference       initial - current (ns); negative = path got longer
//                        (backward motion / detour); +kTofInfinity sentinel
//                        when the current state's ToF is unmeasurable
//   Noise difference     current - initial (dB); rises under interference
//   PDP similarity       Pearson correlation of the two PDPs (time domain)
//   CSI similarity       Pearson correlation of the two |FFT(PDP)|
//   CDR                  codeword delivery ratio at the initial MCS, on the
//                        initial pair, at the current state
//   Initial MCS          the best MCS before the impairment
//
// The similarity metrics ride on runtime-dispatched vector kernels
// (util::pearson and the FFT behind magnitude_spectrum — see util/simd.h);
// every kernel is bit-identical to its scalar loop, so extracted features
// and everything downstream (forest votes, fleet digests) are ISA-invariant.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "trace/collector.h"
#include "util/stats.h"

namespace libra::trace {

inline constexpr double kTofInfinity = 1000.0;  // sentinel (ns)

// Pearson similarity of two PDPs after aligning each to its strongest tap.
// X60 (like any receiver) time-synchronizes to the arriving signal, so the
// logged PDP is delay-aligned; comparing raw tap vectors would spuriously
// decorrelate a simple backward move (the whole profile shifts in time).
inline double aligned_pdp_similarity(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto peak_a = static_cast<std::size_t>(
      std::max_element(a.begin(), a.end()) - a.begin());
  const auto peak_b = static_cast<std::size_t>(
      std::max_element(b.begin(), b.end()) - b.begin());
  const std::size_t len =
      std::min(a.size() - peak_a, b.size() - peak_b);
  if (len < 2) return 0.0;
  return util::pearson(std::span(a).subspan(peak_a, len),
                       std::span(b).subspan(peak_b, len));
}

struct FeatureVector {
  static constexpr int kDim = 7;
  static constexpr std::array<std::string_view, kDim> kNames = {
      "SNR", "ToF", "NoiseLevel", "PDP", "CSI", "CDR", "InitialMCS"};

  std::array<double, kDim> v{};

  double snr_diff_db() const { return v[0]; }
  double tof_diff_ns() const { return v[1]; }
  double noise_diff_db() const { return v[2]; }
  double pdp_similarity() const { return v[3]; }
  double csi_similarity() const { return v[4]; }
  double cdr() const { return v[5]; }
  double initial_mcs() const { return v[6]; }
};

inline FeatureVector extract_features(const CaseRecord& rec) {
  // The CDR lookup below indexes with init_mcs; a hand-built or corrupted
  // record must fail loudly instead of reading out of bounds.
  const std::vector<double>& cdr = rec.new_at_init_pair.cdr;
  if (rec.init_mcs < 0 ||
      static_cast<std::size_t>(rec.init_mcs) >= cdr.size()) {
    throw std::invalid_argument(
        "extract_features: init_mcs " + std::to_string(rec.init_mcs) +
        " out of range for a CDR vector of " + std::to_string(cdr.size()) +
        " entries");
  }
  if (cdr.size() != rec.new_at_init_pair.throughput_mbps.size()) {
    throw std::invalid_argument(
        "extract_features: CDR vector has " + std::to_string(cdr.size()) +
        " entries but throughput has " +
        std::to_string(rec.new_at_init_pair.throughput_mbps.size()));
  }
  FeatureVector f;
  f.v[0] = rec.init_best.snr_db - rec.new_at_init_pair.snr_db;
  if (rec.init_best.tof_ns && rec.new_at_init_pair.tof_ns) {
    f.v[1] = *rec.init_best.tof_ns - *rec.new_at_init_pair.tof_ns;
  } else {
    f.v[1] = kTofInfinity;
  }
  f.v[2] = rec.new_at_init_pair.noise_dbm - rec.init_best.noise_dbm;
  f.v[3] = aligned_pdp_similarity(rec.init_best.pdp, rec.new_at_init_pair.pdp);
  f.v[4] = util::pearson(rec.init_best.csi, rec.new_at_init_pair.csi);
  f.v[5] = cdr[static_cast<std::size_t>(rec.init_mcs)];
  f.v[6] = static_cast<double>(rec.init_mcs);
  // A NaN/Inf input metric (corrupted capture, poisoned observation) must
  // not propagate silently into training or inference; name the feature so
  // the bad field in the record is identifiable.
  for (int i = 0; i < FeatureVector::kDim; ++i) {
    if (!std::isfinite(f.v[static_cast<std::size_t>(i)])) {
      throw std::invalid_argument(
          "extract_features: non-finite " +
          std::string(FeatureVector::kNames[static_cast<std::size_t>(i)]) +
          " feature (check the source record's PHY metrics)");
    }
  }
  return f;
}

}  // namespace libra::trace
