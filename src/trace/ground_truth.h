// Ground-truth labeling (Sec. 5.2).
//
// Given a collected case and a protocol parameterization, "simulate" both
// adaptation mechanisms from the logged traces:
//
//   RA alone : probe MCSs downward from the initial MCS on the *initial*
//              beam pair; Th(RA) is the best throughput among MCSs <= the
//              initial MCS on that pair.
//   BA first : pay the sector-sweep overhead, then RA on the *new best*
//              pair starting from the initial MCS; Th(BA) is the best
//              throughput among MCSs <= the initial MCS on the new pair
//              (BA is always followed by RA, per the RA/BA subtleties).
//
// The winner optimizes the utility U = a*Th/Thmax + (1-a)*(1 - D/Dmax) of
// Eqn. (1). The recovery delay D counts one aggregated frame (FAT) per
// probed MCS plus the BA overhead where applicable; Dmax is the worst case
// (full RA sweep + BA + full RA sweep).
#pragma once

#include "mac/timing.h"
#include "trace/collector.h"

namespace libra::trace {

enum class Action { kRA, kBA, kNA };
std::string to_string(Action a);

struct GroundTruthConfig {
  double alpha = 1.0;           // Sec. 5/6 use alpha=1 (throughput only)
  double fat_ms = 10.0;         // frame aggregation time (one RA probe)
  double ba_overhead_ms = 5.0;  // sector sweep duration
  double min_tput_mbps = 150.0; // working-MCS rule
  double min_cdr = 0.10;
  // "No Adaptation" rule for the 3-class labels (Sec. 7): the current MCS on
  // the current pair still works and retains at least this fraction of the
  // pre-impairment throughput.
  double na_tput_fraction = 0.90;
  // Indifference band for the BA-vs-RA utility comparison: when the two
  // utilities are within this margin, RA wins ("perform RA when
  // Th(RA) >= Th(BA)", Sec. 5.2) -- it avoids the sweep overhead and keeps
  // measurement noise from creating unlearnable coin-flip labels.
  double tie_tolerance = 0.02;
};

struct GroundTruth {
  Action label = Action::kRA;        // 2-class (BA vs RA) decision
  Action label3 = Action::kRA;       // 3-class (BA / RA / NA) decision
  double th_ra_mbps = 0.0;
  double th_ba_mbps = 0.0;
  double delay_ra_ms = 0.0;
  double delay_ba_ms = 0.0;
  double utility_ra = 0.0;
  double utility_ba = 0.0;
};

// True if the (cdr, throughput) pair satisfies the working-MCS rule.
bool is_working(double cdr, double tput_mbps, const GroundTruthConfig& cfg);

GroundTruth label_case(const CaseRecord& rec, const GroundTruthConfig& cfg);

}  // namespace libra::trace
