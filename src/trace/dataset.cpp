#include "trace/dataset.h"

namespace libra::trace {

namespace {

LabeledEntry make_entry(const CaseRecord& rec, const GroundTruthConfig& cfg,
                        bool three_class) {
  LabeledEntry e;
  e.x = extract_features(rec);
  e.gt = label_case(rec, cfg);
  e.y = three_class ? e.gt.label3 : e.gt.label;
  e.impairment = rec.impairment;
  e.env_name = rec.env_name;
  return e;
}

}  // namespace

std::vector<LabeledEntry> Dataset::labeled(const GroundTruthConfig& cfg) const {
  std::vector<LabeledEntry> out;
  out.reserve(records.size());
  for (const CaseRecord& rec : records) {
    out.push_back(make_entry(rec, cfg, /*three_class=*/false));
  }
  return out;
}

std::vector<LabeledEntry> Dataset::labeled3(const GroundTruthConfig& cfg) const {
  std::vector<LabeledEntry> out;
  out.reserve(records.size() + na_records.size());
  for (const CaseRecord& rec : records) {
    out.push_back(make_entry(rec, cfg, /*three_class=*/true));
  }
  for (const CaseRecord& rec : na_records) {
    out.push_back(make_entry(rec, cfg, /*three_class=*/true));
  }
  return out;
}

DatasetSummary summarize(const Dataset& ds, const GroundTruthConfig& cfg) {
  DatasetSummary s;
  std::map<Impairment, std::set<std::string>> positions;
  for (const CaseRecord& rec : ds.records) {
    const GroundTruth gt = label_case(rec, cfg);
    DatasetSummaryRow* row = nullptr;
    switch (rec.impairment) {
      case Impairment::kDisplacement: row = &s.displacement; break;
      case Impairment::kBlockage: row = &s.blockage; break;
      case Impairment::kInterference: row = &s.interference; break;
    }
    for (DatasetSummaryRow* r : {row, &s.overall}) {
      ++r->total;
      if (gt.label == Action::kBA) {
        ++r->ba;
      } else {
        ++r->ra;
      }
      ++r->positions_per_env[rec.env_name + "/" + rec.position_id];
    }
    positions[rec.impairment].insert(rec.position_id);
  }
  // Collapse the helper map into distinct-position counts per environment.
  const auto finalize = [](DatasetSummaryRow& row) {
    std::map<std::string, std::set<std::string>> per_env;
    for (const auto& [key, n] : row.positions_per_env) {
      const auto slash = key.find('/');
      per_env[key.substr(0, slash)].insert(key.substr(slash + 1));
    }
    row.positions_per_env.clear();
    row.positions = 0;
    for (const auto& [env_name, ids] : per_env) {
      row.positions_per_env[env_name] = static_cast<int>(ids.size());
      row.positions += static_cast<int>(ids.size());
    }
  };
  finalize(s.displacement);
  finalize(s.blockage);
  finalize(s.interference);
  finalize(s.overall);
  return s;
}

Dataset collect_dataset(const ScenarioSet& scenarios,
                        const phy::ErrorModel& error_model,
                        const CollectOptions& options) {
  Dataset ds;
  ds.records.reserve(scenarios.cases.size());
  TraceCollector collector(&error_model, options.collector);
  util::Rng rng(options.seed);

  // Environments are copied so blocker mutation does not leak across runs.
  std::vector<env::Environment> envs = scenarios.environments;
  for (const Case& c : scenarios.cases) {
    util::Rng case_rng = rng.fork();
    auto& environment = envs[static_cast<std::size_t>(c.env_index)];
    ds.records.push_back(collector.collect(environment, c, case_rng));
    if (options.with_na_augmentation) {
      util::Rng na_rng = rng.fork();
      ds.na_records.push_back(collector.collect_na(environment, c, na_rng));
    }
  }
  return ds;
}

}  // namespace libra::trace
