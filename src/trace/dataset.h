// Dataset assembly (Tables 1-2) and labeling.
//
// A Dataset owns the collected case records; labels are (re)computed on
// demand because the ground truth depends on the protocol parameterization
// (alpha, FAT, BA overhead -- Sec. 5.2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/collector.h"
#include "trace/features.h"
#include "trace/ground_truth.h"
#include "trace/scenario.h"

namespace libra::trace {

struct LabeledEntry {
  FeatureVector x;
  Action y = Action::kRA;
  Impairment impairment = Impairment::kDisplacement;
  std::string env_name;
  GroundTruth gt;
};

struct Dataset {
  std::vector<CaseRecord> records;     // one per impairment case
  std::vector<CaseRecord> na_records;  // same-state augmentation (Sec. 7)

  // 2-class entries (BA vs RA) over the impairment cases.
  std::vector<LabeledEntry> labeled(const GroundTruthConfig& cfg) const;
  // 3-class entries (BA / RA / NA) over impairment + augmentation cases.
  std::vector<LabeledEntry> labeled3(const GroundTruthConfig& cfg) const;
};

// Table 1 / Table 2 row: case and position counts per impairment type.
struct DatasetSummaryRow {
  int total = 0;
  int ba = 0;
  int ra = 0;
  int positions = 0;
  std::map<std::string, int> positions_per_env;
};

struct DatasetSummary {
  DatasetSummaryRow displacement;
  DatasetSummaryRow blockage;
  DatasetSummaryRow interference;
  DatasetSummaryRow overall;
};

DatasetSummary summarize(const Dataset& ds, const GroundTruthConfig& cfg);

struct CollectOptions {
  CollectorConfig collector;
  std::uint64_t seed = 1;
  bool with_na_augmentation = true;
};

// Run the full measurement campaign over a scenario set.
Dataset collect_dataset(const ScenarioSet& scenarios,
                        const phy::ErrorModel& error_model,
                        const CollectOptions& options = {});

}  // namespace libra::trace
