#include "trace/ground_truth.h"

#include <algorithm>

namespace libra::trace {

std::string to_string(Action a) {
  switch (a) {
    case Action::kRA: return "RA";
    case Action::kBA: return "BA";
    case Action::kNA: return "NA";
  }
  return "?";
}

bool is_working(double cdr, double tput_mbps, const GroundTruthConfig& cfg) {
  return cdr > cfg.min_cdr && tput_mbps > cfg.min_tput_mbps;
}

namespace {

// Highest working MCS <= start on this trace; -1 if none.
phy::McsIndex first_working_downward(const PairTrace& t, phy::McsIndex start,
                                     const GroundTruthConfig& cfg) {
  for (phy::McsIndex m = start; m >= 0; --m) {
    const auto i = static_cast<std::size_t>(m);
    if (is_working(t.cdr[i], t.throughput_mbps[i], cfg)) return m;
  }
  return -1;
}

// Best throughput among MCSs <= start on this trace.
double best_tput_upto(const PairTrace& t, phy::McsIndex start) {
  double best = 0.0;
  for (phy::McsIndex m = 0; m <= start; ++m) {
    best = std::max(best, t.throughput_mbps[static_cast<std::size_t>(m)]);
  }
  return best;
}

}  // namespace

GroundTruth label_case(const CaseRecord& rec, const GroundTruthConfig& cfg) {
  GroundTruth gt;
  const phy::McsIndex m0 = rec.init_mcs;
  const int n_mcs = static_cast<int>(rec.init_best.throughput_mbps.size());
  const double th_max =
      *std::max_element(rec.init_best.throughput_mbps.begin(),
                        rec.init_best.throughput_mbps.end());
  const double d_max =
      mac::worst_case_delay_ms(n_mcs, cfg.fat_ms, cfg.ba_overhead_ms);

  // --- RA alone: downward search on the initial pair at the new state. ---
  const phy::McsIndex ra_first = first_working_downward(
      rec.new_at_init_pair, m0, cfg);
  gt.th_ra_mbps = best_tput_upto(rec.new_at_init_pair, m0);
  if (ra_first >= 0) {
    gt.delay_ra_ms = static_cast<double>(m0 - ra_first + 1) * cfg.fat_ms;
  } else {
    // RA probes everything, fails, BA is performed, RA again on the new
    // pair (Sec. 5.2 Dmax discussion).
    const phy::McsIndex after = first_working_downward(rec.new_best, m0, cfg);
    const double second_round =
        after >= 0 ? static_cast<double>(m0 - after + 1) * cfg.fat_ms
                   : static_cast<double>(m0 + 1) * cfg.fat_ms;
    gt.delay_ra_ms = static_cast<double>(m0 + 1) * cfg.fat_ms +
                     cfg.ba_overhead_ms + second_round;
  }

  // --- BA first (always followed by RA on the new best pair). ---
  const phy::McsIndex ba_first = first_working_downward(rec.new_best, m0, cfg);
  gt.th_ba_mbps = best_tput_upto(rec.new_best, m0);
  {
    const double ra_after =
        ba_first >= 0 ? static_cast<double>(m0 - ba_first + 1) * cfg.fat_ms
                      : static_cast<double>(m0 + 1) * cfg.fat_ms;
    gt.delay_ba_ms = cfg.ba_overhead_ms + ra_after;
  }

  gt.delay_ra_ms = std::min(gt.delay_ra_ms, d_max);
  gt.delay_ba_ms = std::min(gt.delay_ba_ms, d_max);

  const auto utility = [&](double th, double d) {
    return cfg.alpha * th / th_max + (1.0 - cfg.alpha) * (1.0 - d / d_max);
  };
  gt.utility_ra = utility(gt.th_ra_mbps, gt.delay_ra_ms);
  gt.utility_ba = utility(gt.th_ba_mbps, gt.delay_ba_ms);

  // Perform RA when U(RA) >= U(BA) (within the indifference band), BA
  // otherwise (Sec. 5.2).
  gt.label = gt.utility_ra >= gt.utility_ba - cfg.tie_tolerance
                 ? Action::kRA
                 : Action::kBA;

  // --- 3-class label: NA when the operating (pair, MCS) still delivers. ---
  const auto i0 = static_cast<std::size_t>(m0);
  const bool still_working =
      is_working(rec.new_at_init_pair.cdr[i0],
                 rec.new_at_init_pair.throughput_mbps[i0], cfg) &&
      rec.new_at_init_pair.throughput_mbps[i0] >=
          cfg.na_tput_fraction * rec.init_best.throughput_mbps[i0];
  gt.label3 = (rec.forced_na || still_working) ? Action::kNA : gt.label;
  return gt;
}

}  // namespace libra::trace
