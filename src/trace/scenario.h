// Measurement scenarios (Sec. 4.2, Appendix A.2.2).
//
// A Case is one dataset entry: an initial state plus a new state that
// differs by exactly one link impairment -- linear/angular displacement,
// blockage, or interference. The generators below enumerate the same state
// spaces the paper measured: per-environment Rx trajectories (backward,
// lateral, diagonal), rotations in 15-degree steps from -90 to 90, three
// blocker placements (near Tx / middle / near Rx) with full and partial
// occlusion, and three interferer positions x three calibrated interference
// levels (throughput drops of ~20/50/80%).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "env/environment.h"
#include "geom/geometry.h"

namespace libra::trace {

enum class Impairment { kDisplacement, kBlockage, kInterference };

std::string to_string(Impairment imp);

struct Pose {
  geom::Vec2 position;
  double boresight_deg = 0.0;
};

// Interference levels from Sec. 4.2: target throughput drop fractions.
enum class InterferenceLevel { kLow, kMedium, kHigh };
double target_drop_fraction(InterferenceLevel level);

// Everything that defines a measurable link state besides the Tx (which is
// fixed per scenario).
struct StateSpec {
  Pose rx;
  std::vector<env::Blocker> blockers;
  // Interferer position; the EIRP is calibrated at collection time to hit
  // the level's target throughput drop.
  std::optional<geom::Vec2> interferer_position;
  std::optional<InterferenceLevel> interference_level;
};

struct Case {
  int env_index = 0;  // into the accompanying environment list
  std::string env_name;
  Impairment impairment = Impairment::kDisplacement;
  Pose tx;
  StateSpec initial;
  StateSpec next;
  // Identifier of the Rx measurement position (for the Table 1/2 position
  // counts); rotations at one spot share the id of that spot.
  std::string position_id;
};

struct ScenarioSet {
  std::vector<env::Environment> environments;
  std::vector<Case> cases;
};

// The main (training) dataset scenarios: lobby, lab, conference room and
// three corridors (Table 1).
ScenarioSet training_scenarios();

// The testing dataset scenarios: Buildings 1 and 2 (Table 2).
ScenarioSet testing_scenarios();

}  // namespace libra::trace
