#include "trace/collector.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/span.h"
#include "phy/pdp.h"

namespace libra::trace {

phy::McsIndex PairTrace::best_mcs(double min_tput_mbps, double min_cdr) const {
  phy::McsIndex best = -1;
  double best_tput = -1.0;
  for (std::size_t m = 0; m < throughput_mbps.size(); ++m) {
    if (cdr[m] <= min_cdr || throughput_mbps[m] <= min_tput_mbps) continue;
    if (throughput_mbps[m] > best_tput) {
      best_tput = throughput_mbps[m];
      best = static_cast<phy::McsIndex>(m);
    }
  }
  if (best >= 0) return best;
  // Nothing works: fall back to the raw throughput argmax (MCS 0 ties).
  best = 0;
  for (std::size_t m = 1; m < throughput_mbps.size(); ++m) {
    if (throughput_mbps[m] > throughput_mbps[static_cast<std::size_t>(best)]) {
      best = static_cast<phy::McsIndex>(m);
    }
  }
  return best;
}

namespace {

phy::SamplerConfig averaged_config(int frames) {
  // 1-s traces average `frames` independent frame measurements; i.i.d.
  // jitter shrinks by sqrt(frames).
  phy::SamplerConfig cfg;
  const double scale = 1.0 / std::sqrt(static_cast<double>(frames));
  cfg.snr_jitter_db *= scale;
  cfg.noise_jitter_db *= scale;
  cfg.pdp_tap_jitter *= scale;
  cfg.cdr_jitter *= scale;
  return cfg;
}

void apply_state(env::Environment& environment, channel::Link& link,
                 const StateSpec& spec, double eirp_dbm) {
  link.rx().set_position(spec.rx.position);
  link.rx().set_boresight_deg(spec.rx.boresight_deg);
  environment.clear_blockers();
  for (const env::Blocker& b : spec.blockers) environment.add_blocker(b);
  if (spec.interferer_position) {
    // CSMA hidden terminal: the burst duty cycle sets the average
    // throughput drop; the (calibrated) EIRP makes bursts destructive.
    link.set_interferer(channel::Interferer{
        *spec.interferer_position, eirp_dbm,
        target_drop_fraction(*spec.interference_level)});
  } else {
    link.set_interferer(std::nullopt);
  }
  link.refresh();
}

}  // namespace

TraceCollector::TraceCollector(const phy::ErrorModel* error_model,
                               CollectorConfig cfg)
    : error_model_(error_model),
      cfg_(cfg),
      sweep_sampler_(error_model),
      trace_sampler_(error_model, averaged_config(cfg.frames_per_trace)) {
  if (!error_model_) throw std::invalid_argument("null error model");
}

PairTrace TraceCollector::measure_pair(const channel::Link& link,
                                       array::BeamId tx_beam,
                                       array::BeamId rx_beam,
                                       util::Rng& rng) const {
  PairTrace t;
  t.tx_beam = tx_beam;
  t.rx_beam = rx_beam;
  const int n_mcs = error_model_->table().size();
  t.throughput_mbps.resize(static_cast<std::size_t>(n_mcs));
  t.cdr.resize(static_cast<std::size_t>(n_mcs));
  for (phy::McsIndex m = 0; m < n_mcs; ++m) {
    const phy::PhyObservation obs =
        trace_sampler_.observe(link, tx_beam, rx_beam, m, rng);
    t.throughput_mbps[static_cast<std::size_t>(m)] = obs.throughput_mbps;
    t.cdr[static_cast<std::size_t>(m)] = obs.cdr;
    if (m == 0) {
      // SNR/noise/PDP/ToF/CSI are MCS-independent; keep the first.
      t.snr_db = obs.snr_db;
      t.noise_dbm = obs.noise_dbm;
      t.tof_ns = obs.tof_ns;
      t.pdp = obs.pdp;
      t.csi = obs.csi;
    }
  }
  return t;
}

double TraceCollector::calibrate_interferer_eirp(
    channel::Link& link, array::BeamId tx_beam, array::BeamId rx_beam,
    phy::McsIndex mcs, geom::Vec2 interferer_pos, double target_drop) const {
  link.set_interferer(std::nullopt);
  const double baseline =
      error_model_->expected_throughput_mbps(mcs, link.snr_db(tx_beam, rx_beam));
  const double target = baseline * (1.0 - target_drop);
  double lo = -30.0, hi = 70.0;
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = (lo + hi) / 2.0;
    link.set_interferer(channel::Interferer{interferer_pos, mid});
    const double tput = error_model_->expected_throughput_mbps(
        mcs, link.snr_db(tx_beam, rx_beam));
    if (tput > target) {
      lo = mid;  // not enough interference yet
    } else {
      hi = mid;
    }
  }
  link.set_interferer(std::nullopt);
  return (lo + hi) / 2.0;
}

CaseRecord TraceCollector::collect(env::Environment& environment, const Case& c,
                                   util::Rng& rng) const {
  OBS_SPAN("collect.case");
  static obs::Counter& cases_counter =
      obs::Registry::global().counter("collect.cases");
  cases_counter.inc();
  CaseRecord rec;
  rec.impairment = c.impairment;
  rec.env_name = c.env_name;
  rec.position_id = c.position_id;
  rec.angular_displacement =
      c.impairment == Impairment::kDisplacement &&
      geom::distance(c.initial.rx.position, c.next.rx.position) < 1e-9;

  const array::Codebook codebook;  // SiBeam-style default for both ends
  array::PhasedArray tx(c.tx.position, c.tx.boresight_deg, &codebook);
  array::PhasedArray rx(c.initial.rx.position, c.initial.rx.boresight_deg,
                        &codebook);
  channel::Link link(&environment, &tx, &rx);

  // --- Initial state ---
  apply_state(environment, link, c.initial, 0.0);
  const mac::SweepResult init_sweep =
      trainer_.exhaustive(link, sweep_sampler_, rng);
  rec.init_best = measure_pair(link, init_sweep.tx_beam, init_sweep.rx_beam,
                               rng);
  rec.init_mcs = rec.init_best.best_mcs(cfg_.min_tput_mbps, cfg_.min_cdr);

  // Failover pair (MOCA-style): the best pair whose Tx sector is at least
  // `failover_min_sector_gap` away from the primary's.
  {
    array::BeamId fo_tx = 0, fo_rx = 0;
    double fo_snr = -1e9;
    for (array::BeamId tb = 0; tb < codebook.size(); ++tb) {
      if (std::abs(tb - init_sweep.tx_beam) < cfg_.failover_min_sector_gap) {
        continue;
      }
      for (array::BeamId rb = 0; rb < codebook.size(); ++rb) {
        const double snr = sweep_sampler_.measure_snr_db(link, tb, rb, rng);
        if (snr > fo_snr) {
          fo_snr = snr;
          fo_tx = tb;
          fo_rx = rb;
        }
      }
    }
    rec.init_failover = measure_pair(link, fo_tx, fo_rx, rng);
  }

  // --- Interferer calibration: the EIRP is set so that a burst through the
  // operating pair suppresses (nearly) all codewords; the burst duty cycle
  // then realizes the level's average throughput drop (Sec. 4.2).
  if (c.next.interferer_position) {
    rec.interferer_eirp_dbm = calibrate_interferer_eirp(
        link, rec.init_best.tx_beam, rec.init_best.rx_beam, rec.init_mcs,
        *c.next.interferer_position, /*target_drop=*/0.98);
  }

  // --- New (impaired) state ---
  apply_state(environment, link, c.next, rec.interferer_eirp_dbm);
  rec.new_at_init_pair =
      measure_pair(link, rec.init_best.tx_beam, rec.init_best.rx_beam, rng);
  rec.new_at_failover = measure_pair(link, rec.init_failover.tx_beam,
                                     rec.init_failover.rx_beam, rng);
  const mac::SweepResult new_sweep =
      trainer_.exhaustive(link, sweep_sampler_, rng);
  rec.new_best = measure_pair(link, new_sweep.tx_beam, new_sweep.rx_beam, rng);

  environment.clear_blockers();
  return rec;
}

CaseRecord TraceCollector::collect_na(env::Environment& environment,
                                      const Case& c, util::Rng& rng) const {
  CaseRecord rec;
  rec.impairment = c.impairment;
  rec.env_name = c.env_name;
  rec.position_id = c.position_id;
  rec.forced_na = true;

  const array::Codebook codebook;
  array::PhasedArray tx(c.tx.position, c.tx.boresight_deg, &codebook);
  array::PhasedArray rx(c.next.rx.position, c.next.rx.boresight_deg, &codebook);
  channel::Link link(&environment, &tx, &rx);

  // The steady state here is the case's *new* state: the link has already
  // adapted (best pair, best MCS) and we observe two consecutive windows.
  double eirp = 0.0;
  if (c.next.interferer_position) {
    apply_state(environment, link, c.next, 0.0);
    const mac::SweepResult pre = trainer_.exhaustive(link, sweep_sampler_, rng);
    eirp = calibrate_interferer_eirp(link, pre.tx_beam, pre.rx_beam, 0,
                                     *c.next.interferer_position,
                                     /*target_drop=*/0.98);
  }
  apply_state(environment, link, c.next, eirp);
  const mac::SweepResult sweep = trainer_.exhaustive(link, sweep_sampler_, rng);
  rec.init_best = measure_pair(link, sweep.tx_beam, sweep.rx_beam, rng);
  rec.init_mcs = rec.init_best.best_mcs(cfg_.min_tput_mbps, cfg_.min_cdr);
  // Second window at the same state, same pair.
  rec.new_at_init_pair =
      measure_pair(link, sweep.tx_beam, sweep.rx_beam, rng);
  rec.new_best = rec.new_at_init_pair;
  rec.init_failover = rec.init_best;
  rec.new_at_failover = rec.new_at_init_pair;

  environment.clear_blockers();
  return rec;
}

}  // namespace libra::trace
