// Dataset persistence.
//
// The paper publishes its dataset; a reusable framework must be able to
// save a collected campaign and reload it later (e.g. to retrain models
// without re-running the collection, or to exchange datasets between
// machines). Two formats:
//
//   - full record stream (save/load_dataset): a line-oriented text format
//     carrying every PairTrace (SNR, noise, ToF, PDP, CSI, per-MCS
//     throughput/CDR) -- lossless round trip;
//   - feature CSV (write_feature_csv): the labeled feature matrix in the
//     layout of Sec. 6.1, for external ML tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/dataset.h"

namespace libra::trace {

void save_dataset(const Dataset& dataset, std::ostream& out);
Dataset load_dataset(std::istream& in);  // throws std::runtime_error on a
                                         // malformed stream

void save_dataset_file(const Dataset& dataset, const std::string& path);
Dataset load_dataset_file(const std::string& path);

// Labeled feature matrix as CSV (header + one row per case).
void write_feature_csv(const Dataset& dataset, const GroundTruthConfig& cfg,
                       std::ostream& out);

}  // namespace libra::trace
