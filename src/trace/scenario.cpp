#include "trace/scenario.h"

#include <stdexcept>

#include "env/registry.h"

namespace libra::trace {

std::string to_string(Impairment imp) {
  switch (imp) {
    case Impairment::kDisplacement: return "displacement";
    case Impairment::kBlockage: return "blockage";
    case Impairment::kInterference: return "interference";
  }
  return "?";
}

double target_drop_fraction(InterferenceLevel level) {
  switch (level) {
    case InterferenceLevel::kLow: return 0.2;
    case InterferenceLevel::kMedium: return 0.5;
    case InterferenceLevel::kHigh: return 0.8;
  }
  throw std::invalid_argument("bad interference level");
}

namespace {

using geom::Vec2;

Pose facing(Vec2 pos, Vec2 target) {
  return Pose{pos, (target - pos).angle_deg()};
}

std::string pos_id(const std::string& env, int idx) {
  return env + "#" + std::to_string(idx);
}

// All displacement moves within one trajectory share the trajectory's
// initial state (Sec. 5.1: the initial state is the Rx position closest to
// the Tx / the 0-degree orientation).
void add_moves(std::vector<Case>& cases, int env_index,
               const std::string& env_name, Pose tx, Pose rx0,
               const std::vector<Pose>& new_poses, int& next_pos) {
  for (const Pose& p : new_poses) {
    Case c;
    c.env_index = env_index;
    c.env_name = env_name;
    c.impairment = Impairment::kDisplacement;
    c.tx = tx;
    c.initial.rx = rx0;
    c.next.rx = p;
    c.position_id = pos_id(env_name, next_pos++);
    cases.push_back(std::move(c));
  }
}

// Rotations from 0 to -90 and 0 to +90 in 15-degree steps (Sec. 4.2): the
// 0-degree orientation at this spot is the initial state.
void add_rotations(std::vector<Case>& cases, int env_index,
                   const std::string& env_name, Pose tx, Pose rx_spot,
                   int& next_pos) {
  const std::string id = pos_id(env_name, next_pos++);
  for (int sign : {-1, 1}) {
    for (int step = 1; step <= 6; ++step) {
      Case c;
      c.env_index = env_index;
      c.env_name = env_name;
      c.impairment = Impairment::kDisplacement;
      c.tx = tx;
      c.initial.rx = rx_spot;
      c.next.rx = rx_spot;
      c.next.rx.boresight_deg =
          geom::wrap_angle_deg(rx_spot.boresight_deg + sign * 15.0 * step);
      c.position_id = id;
      cases.push_back(std::move(c));
    }
  }
}

// Blockage: three blocker placements on the LOS (near Tx, middle, near Rx),
// each with a centered (full) and an offset (partial) variant.
void add_blockage(std::vector<Case>& cases, int env_index,
                  const std::string& env_name, Pose tx, Pose rx,
                  int& next_pos) {
  const std::string id = pos_id(env_name, next_pos++);
  const Vec2 los = rx.position - tx.position;
  const Vec2 perp = Vec2{-los.y, los.x}.normalized();
  for (double frac : {0.2, 0.5, 0.8}) {
    for (double offset : {0.0, 0.12}) {
      Case c;
      c.env_index = env_index;
      c.env_name = env_name;
      c.impairment = Impairment::kBlockage;
      c.tx = tx;
      c.initial.rx = rx;
      c.next.rx = rx;
      env::Blocker blk;
      blk.position = tx.position + los * frac + perp * offset;
      c.next.blockers.push_back(blk);
      c.position_id = id;
      cases.push_back(std::move(c));
    }
  }
}

// Interference: three hidden-terminal placements x three calibrated levels
// (EIRP is solved at collection time). Two placements sit near the Tx-Rx
// axis -- a hidden terminal whose signal arrives from (almost) the same
// direction as the data signal, which no Rx beam can escape -- and one sits
// well off-axis, where beam adaptation can still help (the ~1/3 BA fraction
// in Table 1).
void add_interference(std::vector<Case>& cases, int env_index,
                      const std::string& env_name,
                      const env::Environment& environment, Pose tx, Pose rx,
                      int& next_pos) {
  const std::string id = pos_id(env_name, next_pos++);
  const Vec2 los = rx.position - tx.position;
  const Vec2 dir = los.normalized();
  const Vec2 perp{-dir.y, dir.x};
  const std::vector<Vec2> interferer_positions = {
      // Just behind and beside the Tx: arrival direction ~= signal direction.
      environment.clamp_inside(tx.position - dir * 1.2 + perp * 0.5),
      // Mid-path, just off the LOS: arrival at the Rx stays within a few
      // degrees of the serving beam's pointing direction.
      environment.clamp_inside(tx.position + los * 0.55 + perp * 0.35),
      // Well off-axis: an alternative Rx beam can null it.
      environment.clamp_inside(tx.position + los * 0.5 +
                               perp * (0.8 * los.norm())),
  };
  for (const Vec2& ipos : interferer_positions) {
    for (InterferenceLevel lvl : {InterferenceLevel::kLow,
                                  InterferenceLevel::kMedium,
                                  InterferenceLevel::kHigh}) {
      Case c;
      c.env_index = env_index;
      c.env_name = env_name;
      c.impairment = Impairment::kInterference;
      c.tx = tx;
      c.initial.rx = rx;
      c.next.rx = rx;
      c.next.interferer_position = ipos;
      c.next.interference_level = lvl;
      c.position_id = id;
      cases.push_back(std::move(c));
    }
  }
}

}  // namespace

ScenarioSet training_scenarios() {
  ScenarioSet set;
  set.environments = env::training_environments();
  auto& cases = set.cases;
  int pos = 0;

  // ---- Lobby (24 x 12 m), Fig. 14a: two Tx placements. ----
  {
    const int ei = 0;
    const std::string en = "lobby";
    const Pose tx1{{2.0, 6.0}, 0.0};
    const Pose rx0 = facing({5.0, 6.0}, tx1.position);
    // Backward along the boresight.
    std::vector<Pose> moves;
    for (double x : {8.0, 11.0, 14.0, 17.0, 20.0}) {
      moves.push_back(facing({x, 6.0}, tx1.position));
    }
    // Lateral (orientation kept facing the original Tx direction so
    // misalignment grows with offset).
    for (double y : {7.5, 9.0, 10.5}) {
      moves.push_back(Pose{{5.0, y}, rx0.boresight_deg});
    }
    for (double y : {4.5, 3.0}) {
      moves.push_back(Pose{{5.0, y}, rx0.boresight_deg});
    }
    // Diagonal.
    moves.push_back(Pose{{8.0, 8.0}, rx0.boresight_deg});
    moves.push_back(Pose{{11.0, 9.5}, rx0.boresight_deg});
    moves.push_back(Pose{{14.0, 11.0}, rx0.boresight_deg});
    // Intermediate backward steps (the paper measured many ranges).
    for (double x : {6.5, 9.5, 12.5, 15.5, 18.5}) {
      moves.push_back(facing({x, 6.0}, tx1.position));
    }
    add_moves(cases, ei, en, tx1, rx0, moves, pos);
    add_rotations(cases, ei, en, tx1, facing({11.0, 6.0}, tx1.position), pos);
    add_rotations(cases, ei, en, tx1, Pose{{5.0, 9.0}, rx0.boresight_deg}, pos);
    add_rotations(cases, ei, en, tx1, facing({17.0, 6.0}, tx1.position), pos);

    const Pose tx2{{12.0, 1.5}, 90.0};
    const Pose rx0b = facing({12.0, 4.5}, tx2.position);
    std::vector<Pose> moves2;
    for (double y : {7.0, 9.5, 11.0}) {
      moves2.push_back(facing({12.0, y}, tx2.position));
    }
    for (double x : {15.0, 18.0, 9.0}) {
      moves2.push_back(Pose{{x, 4.5}, rx0b.boresight_deg});
    }
    moves2.push_back(Pose{{15.0, 7.5}, rx0b.boresight_deg});
    moves2.push_back(Pose{{18.0, 10.0}, rx0b.boresight_deg});
    add_moves(cases, ei, en, tx2, rx0b, moves2, pos);
    add_rotations(cases, ei, en, tx2, facing({12.0, 9.5}, tx2.position), pos);

    // Blockage & interference positions (4 in the lobby, Table 1).
    for (Vec2 rxp : {Vec2{8.0, 6.0}, Vec2{14.0, 6.0}, Vec2{11.0, 9.0},
                     Vec2{18.0, 6.0}}) {
      add_blockage(cases, ei, en, tx1, facing(rxp, tx1.position), pos);
      add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx1, facing(rxp, tx1.position), pos);
    }
  }

  // ---- Lab (11.8 x 9.2 m), Fig. 14b. ----
  {
    const int ei = 1;
    const std::string en = "lab";
    const Pose tx{{0.8, 3.0}, 0.0};
    const Pose rx0 = facing({2.6, 3.0}, tx.position);
    std::vector<Pose> moves;
    for (int i = 1; i <= 8; ++i) {
      moves.push_back(facing({2.6 + i * 1.0, 3.0}, tx.position));
    }
    add_moves(cases, ei, en, tx, rx0, moves, pos);
    for (double x : {4.6, 7.6, 10.6}) {
      add_rotations(cases, ei, en, tx, facing({x, 3.0}, tx.position), pos);
    }
    add_blockage(cases, ei, en, tx, facing({6.6, 3.0}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({6.6, 3.0}, tx.position), pos);
  }

  // ---- Conference room (10.4 x 6.8 m), Fig. 14c. ----
  {
    const int ei = 2;
    const std::string en = "conference_room";
    const Pose tx{{1.0, 5.6}, -35.0};
    const Pose rx0 = facing({3.0, 4.4}, tx.position);
    std::vector<Pose> moves;
    moves.push_back(facing({4.6, 4.8}, tx.position));
    moves.push_back(facing({6.2, 5.0}, tx.position));
    moves.push_back(facing({7.8, 4.4}, tx.position));
    // Positions 4-7: the Rx faces the same direction as the Tx, so the link
    // must go through a reflection (Appendix A.2.2).
    for (Vec2 p : {Vec2{7.8, 2.2}, Vec2{6.2, 1.9}, Vec2{4.6, 1.9},
                   Vec2{3.0, 2.2}}) {
      moves.push_back(Pose{p, tx.boresight_deg});
    }
    add_moves(cases, ei, en, tx, rx0, moves, pos);
    add_rotations(cases, ei, en, tx, rx0, pos);
    add_rotations(cases, ei, en, tx, Pose{{7.8, 2.2}, tx.boresight_deg}, pos);
    add_rotations(cases, ei, en, tx, facing({6.2, 5.0}, tx.position), pos);
    add_blockage(cases, ei, en, tx, facing({6.2, 5.0}, tx.position), pos);
    add_blockage(cases, ei, en, tx, facing({4.6, 4.8}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({6.2, 5.0}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({4.6, 4.8}, tx.position), pos);
  }

  // ---- Corridors (widths 1.74, 3.2, 6.2 m), Appendix A.2.2. ----
  const double widths[] = {1.74, 3.2, 6.2};
  for (int k = 0; k < 3; ++k) {
    const int ei = 3 + k;
    const double w = widths[k];
    const std::string en = set.environments[static_cast<std::size_t>(ei)].name();
    const double mid = w / 2.0;
    const Pose tx{{0.5, mid}, 0.0};
    const Pose rx0 = facing({2.5, mid}, tx.position);
    std::vector<Pose> moves;
    const int steps = (k == 0) ? 16 : 9;  // narrow: 17 positions; wide: 10
    for (int i = 1; i <= steps; ++i) {
      moves.push_back(facing({2.5 + i * 1.25, mid}, tx.position));
    }
    add_moves(cases, ei, en, tx, rx0, moves, pos);
    // Rotations 5, 10 and 15 m from the Tx (all three corridors).
    for (double d : {5.0, 10.0, 15.0}) {
      add_rotations(cases, ei, en, tx, facing({0.5 + d, mid}, tx.position),
                    pos);
    }
    // Blockage/interference at 1-2 positions per corridor (5 total).
    add_blockage(cases, ei, en, tx, facing({7.5, mid}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({7.5, mid}, tx.position), pos);
    if (k == 2) {
      add_blockage(cases, ei, en, tx, facing({13.75, mid}, tx.position), pos);
      add_blockage(cases, ei, en, tx, facing({3.75, mid}, tx.position), pos);
      add_interference(cases, ei, en,
                       set.environments[static_cast<std::size_t>(ei)], tx,
                       facing({13.75, mid}, tx.position), pos);
    }
  }

  return set;
}

ScenarioSet testing_scenarios() {
  ScenarioSet set;
  set.environments = env::testing_environments();
  auto& cases = set.cases;
  int pos = 1000;  // distinct id space from training

  // ---- Building 1: long 2.5 m corridor, old construction. ----
  {
    const int ei = 0;
    const std::string en = "building1_corridor";
    const Pose tx{{0.5, 1.25}, 0.0};
    const Pose rx0 = facing({2.5, 1.25}, tx.position);
    std::vector<Pose> moves;
    for (int i = 1; i <= 13; ++i) {
      moves.push_back(facing({2.5 + i * 2.0, 1.25}, tx.position));
    }
    for (int i = 1; i <= 6; ++i) {  // intermediate ranges
      moves.push_back(facing({3.5 + i * 4.0, 1.25}, tx.position));
    }
    add_moves(cases, ei, en, tx, rx0, moves, pos);
    for (double d : {6.0, 10.0, 14.0, 22.0}) {
      add_rotations(cases, ei, en, tx, facing({0.5 + d, 1.25}, tx.position),
                    pos);
    }
    add_blockage(cases, ei, en, tx, facing({4.5, 1.25}, tx.position), pos);
    add_blockage(cases, ei, en, tx, facing({8.5, 1.25}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({4.5, 1.25}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({8.5, 1.25}, tx.position), pos);
  }

  // ---- Building 2: wide open area. ----
  {
    const int ei = 1;
    const std::string en = "building2_open_area";
    const Pose tx{{3.0, 9.0}, 0.0};
    const Pose rx0 = facing({6.0, 9.0}, tx.position);
    std::vector<Pose> moves;
    for (double x : {10.0, 14.0, 18.0, 22.0, 26.0}) {
      moves.push_back(facing({x, 9.0}, tx.position));
    }
    for (double y : {12.0, 15.0, 6.0}) {
      moves.push_back(Pose{{6.0, y}, rx0.boresight_deg});
    }
    moves.push_back(Pose{{10.0, 12.0}, rx0.boresight_deg});
    moves.push_back(Pose{{14.0, 14.5}, rx0.boresight_deg});
    moves.push_back(facing({8.0, 9.0}, tx.position));
    moves.push_back(facing({24.0, 9.0}, tx.position));
    add_moves(cases, ei, en, tx, rx0, moves, pos);
    add_rotations(cases, ei, en, tx, facing({14.0, 9.0}, tx.position), pos);
    add_rotations(cases, ei, en, tx, Pose{{6.0, 12.0}, rx0.boresight_deg}, pos);
    add_rotations(cases, ei, en, tx, facing({22.0, 9.0}, tx.position), pos);
    add_blockage(cases, ei, en, tx, facing({10.0, 9.0}, tx.position), pos);
    add_blockage(cases, ei, en, tx, facing({18.0, 9.0}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({10.0, 9.0}, tx.position), pos);
    add_interference(cases, ei, en, set.environments[static_cast<std::size_t>(ei)], tx, facing({18.0, 9.0}, tx.position), pos);
  }

  return set;
}

}  // namespace libra::trace
