// Trace collection (Sec. 5.1).
//
// At each state the collector performs an exhaustive 625-pair sector sweep
// (the naive O(N^2) BA), selects the highest-SNR beam pair, and records 1-s
// PHY traces (SNR, noise, PDP, CDR) plus MAC throughput for each of the 9
// MCSs. For new states it additionally records the same traces through the
// beam pair that was best at the initial state -- that pair is what the
// transmitter is actually using when the impairment hits.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "channel/link.h"
#include "mac/beam_training.h"
#include "phy/sampler.h"
#include "trace/scenario.h"
#include "util/rng.h"

namespace libra::trace {

// 1-s averaged measurements of one beam pair at one state.
struct PairTrace {
  array::BeamId tx_beam = 0;
  array::BeamId rx_beam = 0;
  double snr_db = 0.0;
  double noise_dbm = 0.0;
  std::optional<double> tof_ns;
  std::vector<double> pdp;
  std::vector<double> csi;
  std::vector<double> throughput_mbps;  // indexed by MCS
  std::vector<double> cdr;              // indexed by MCS

  // Highest-throughput MCS among working ones (falls back to the overall
  // argmax when nothing works). Working rule from Sec. 5.2.
  phy::McsIndex best_mcs(double min_tput_mbps, double min_cdr) const;
};

// One collected dataset case: the initial state plus the impaired state.
struct CaseRecord {
  Impairment impairment = Impairment::kDisplacement;
  std::string env_name;
  std::string position_id;
  PairTrace init_best;          // initial state, its best pair
  phy::McsIndex init_mcs = 0;   // highest-throughput MCS at the initial state
  PairTrace new_at_init_pair;   // impaired state, the initial best pair
  PairTrace new_best;           // impaired state, its own best pair
  // MOCA-style failover sector ([24]): the best pair whose Tx sector is
  // angularly diverse from the primary, measured at both states -- lets the
  // evaluation include a beam-sounding baseline.
  PairTrace init_failover;      // initial state, the failover pair
  PairTrace new_at_failover;    // impaired state, the failover pair
  double interferer_eirp_dbm = 0.0;  // calibrated (interference cases only)
  bool forced_na = false;       // same-state augmentation entry (Sec. 7)
  // Displacement sub-type: true when the Rx rotated in place (angular
  // displacement), false for linear moves and the other impairments. Used
  // by the beam-sounding analysis ([24] fails under angular displacement).
  bool angular_displacement = false;
};

struct CollectorConfig {
  // Working-MCS rule (Sec. 5.2): CDR > 10% and Th > 150 Mbps.
  double min_tput_mbps = 150.0;
  double min_cdr = 0.10;
  // Minimum Tx-sector index distance between the primary and the failover
  // pair (MOCA keeps the backup angularly diverse so one obstacle cannot
  // take out both).
  int failover_min_sector_gap = 3;
  // Number of frames averaged into one trace (1 s of 10 ms X60 frames);
  // jitter of averaged quantities shrinks by sqrt(frames).
  int frames_per_trace = 100;
};

class TraceCollector {
 public:
  TraceCollector(const phy::ErrorModel* error_model, CollectorConfig cfg = {});

  // Collect one case. The environment object is mutated (blockers) during
  // collection and restored before returning.
  CaseRecord collect(env::Environment& environment, const Case& c,
                     util::Rng& rng) const;

  // Same-state "No Adaptation" record for the 3-class model (Sec. 7): two
  // consecutive windows at the case's new state with its best pair.
  CaseRecord collect_na(env::Environment& environment, const Case& c,
                        util::Rng& rng) const;

  const CollectorConfig& config() const { return cfg_; }

  // Calibrate an interferer's EIRP so the expected throughput at (pair, mcs)
  // drops by `target_drop` relative to the interference-free value.
  double calibrate_interferer_eirp(channel::Link& link, array::BeamId tx_beam,
                                   array::BeamId rx_beam, phy::McsIndex mcs,
                                   geom::Vec2 interferer_pos,
                                   double target_drop) const;

 private:
  PairTrace measure_pair(const channel::Link& link, array::BeamId tx_beam,
                         array::BeamId rx_beam, util::Rng& rng) const;

  const phy::ErrorModel* error_model_;  // non-owning
  CollectorConfig cfg_;
  phy::PhySampler sweep_sampler_;   // per-probe jitter (sector sweeps)
  phy::PhySampler trace_sampler_;   // 1-s averaged jitter (traces)
  mac::BeamTrainer trainer_;
};

}  // namespace libra::trace
