#include "faults/faults.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace libra::faults {

namespace {

constexpr std::array<std::string_view, kNumFaultKinds> kKindNames = {
    "drop_ack",          "duplicate_ack",      "stale_phy",
    "garbage_phy",       "truncate_features",  "classifier_outage",
    "beam_training_failure", "clock_skew",     "rpc_drop",
    "rpc_delay"};

// One counter per kind plus the total, pre-registered so the per-frame
// query path never builds a metric name.
struct FaultMetrics {
  obs::Counter& injected;
  std::array<obs::Counter*, kNumFaultKinds> by_kind;
};
FaultMetrics& fault_metrics() {
  static FaultMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    FaultMetrics fm{r.counter("faults.injected"), {}};
    for (int k = 0; k < kNumFaultKinds; ++k) {
      fm.by_kind[static_cast<std::size_t>(k)] = &r.counter(
          "faults.injected." + std::string(kKindNames[(std::size_t)k]));
    }
    return fm;
  }();
  return m;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  const int k = static_cast<int>(kind);
  if (k < 0 || k >= kNumFaultKinds) return "unknown";
  return kKindNames[static_cast<std::size_t>(k)];
}

FaultPlan& FaultPlan::add(FaultKind kind, double probability, double start_ms,
                          double end_ms, double magnitude) {
  windows.push_back({kind, probability, start_ms, end_ms, magnitude});
  return *this;
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const FaultWindow& w = windows[i];
    const std::string where = "FaultPlan window " + std::to_string(i) + " (" +
                              std::string(to_string(w.kind)) + "): ";
    if (!(w.probability >= 0.0) || !(w.probability <= 1.0)) {
      throw std::invalid_argument(where + "probability must be in [0, 1], got " +
                                  std::to_string(w.probability));
    }
    if (std::isnan(w.start_ms) || std::isnan(w.end_ms) ||
        !(w.start_ms <= w.end_ms)) {
      throw std::invalid_argument(where + "window must satisfy start <= end");
    }
    if (!std::isfinite(w.magnitude)) {
      throw std::invalid_argument(where + "magnitude must be finite");
    }
    if (w.kind == FaultKind::kClockSkew && !(w.magnitude > -1.0)) {
      throw std::invalid_argument(
          where + "clock skew must be > -1 (time cannot stop or reverse)");
    }
    if (w.kind == FaultKind::kTruncateFeatures &&
        (w.magnitude < 0.0 || w.magnitude > 1.0)) {
      throw std::invalid_argument(
          where + "truncation keep-fraction must be in [0, 1]");
    }
    if (w.kind == FaultKind::kRpcDelay && w.magnitude < 0.0) {
      throw std::invalid_argument(
          where + "rpc delay must be >= 0 ms, got " +
          std::to_string(w.magnitude));
    }
  }
}

FaultPlan demo_plan(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.add(FaultKind::kStalePhy, 0.25)
      .add(FaultKind::kTruncateFeatures, 0.2, 300.0, 600.0, 0.5)
      .add(FaultKind::kGarbagePhy, 0.3, 600.0, 900.0)
      .add(FaultKind::kDropAck, 0.5, 1000.0, 1400.0)
      .add(FaultKind::kDuplicateAck, 0.1, 1000.0, 1400.0)
      .add(FaultKind::kClassifierOutage, 1.0, 1500.0, 1800.0)
      .add(FaultKind::kBeamTrainingFailure, 0.5)
      .add(FaultKind::kClockSkew, 1.0, 0.0, kForever, 0.02);
  return p;
}

FaultInjector::FaultInjector(const FaultPlan* plan, util::Rng stream)
    : plan_(plan), stream_(stream) {}

FaultInjector::Verdict FaultInjector::query(FaultKind kind, double t_ms) {
  if (plan_ == nullptr) return {};
  for (const FaultWindow& w : plan_->windows) {
    if (w.kind != kind || t_ms < w.start_ms || t_ms >= w.end_ms) continue;
    if (w.probability >= 1.0 || stream_.bernoulli(w.probability)) {
      FaultMetrics& m = fault_metrics();
      m.injected.inc();
      m.by_kind[static_cast<std::size_t>(kind)]->inc();
      return {true, w.magnitude};
    }
  }
  return {};
}

void corrupt_observation(phy::PhyObservation& obs) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  obs.snr_db = kNan;
  obs.noise_dbm = std::numeric_limits<double>::infinity();
  obs.tof_ns = std::nullopt;
  obs.cdr = kNan;
  obs.throughput_mbps = kNan;
  std::fill(obs.pdp.begin(), obs.pdp.end(), kNan);
  std::fill(obs.csi.begin(), obs.csi.end(), kNan);
}

void truncate_observation(phy::PhyObservation& obs, double keep_fraction) {
  const double f = std::clamp(keep_fraction, 0.0, 1.0);
  const auto keep = [f](std::vector<double>& v) {
    if (v.empty()) return;
    const auto n = static_cast<std::size_t>(
        std::ceil(f * static_cast<double>(v.size())));
    v.resize(std::max<std::size_t>(n, 1));
  };
  keep(obs.pdp);
  keep(obs.csi);
}

void truncate_record_cdr(trace::CaseRecord& rec, std::size_t keep) {
  if (rec.new_at_init_pair.cdr.size() > keep) {
    rec.new_at_init_pair.cdr.resize(keep);
  }
}

}  // namespace libra::faults
