// Deterministic fault injection for the serving pipeline.
//
// LiBRA's value proposition is graceful behavior when the link misbehaves:
// Algorithm 1 falls back to the missing-ACK rule whenever classifier input
// is unavailable or stale. This layer makes that behavior testable. A
// FaultPlan is a schedule of seeded fault events -- dropped/duplicated
// Block-ACKs, stale or non-finite PHY observations, truncated metric
// vectors, classifier outage windows, beam-training failures, per-link
// clock skew, dropped/delayed classify RPCs against a remote decision
// backend -- injected at the observe/decide/apply seams of
// core::LinkController and sim::run_fleet.
//
// Determinism contract (same discipline as the fleet engine): every fault
// decision for link i is drawn from link i's own fault stream, the (i+1)-th
// fork() of Rng(FaultPlan::seed), queried in frame order. Fault streams are
// disjoint from the link's simulation streams, so:
//   - a faulted run is bit-reproducible from (fleet_seed, fault_seed),
//     for any forest thread count;
//   - an empty FaultPlan leaves every simulation stream untouched and the
//     run bit-identical to an un-faulted one (the hooks are a null-pointer
//     check per frame -- see BM_FleetWithFaults).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "phy/sampler.h"
#include "trace/collector.h"
#include "util/rng.h"

namespace libra::faults {

inline constexpr double kForever = std::numeric_limits<double>::infinity();

enum class FaultKind : int {
  kDropAck = 0,          // the Block-ACK is lost: Tx sees a missed frame
  kDuplicateAck,         // a stale/duplicated BA arrives: Tx sees success
                         // even when the frame died (silent mis-adaptation)
  kStalePhy,             // PHY feedback replays the last clean observation
  kGarbagePhy,           // non-finite SNR/noise/CDR, dead PDP (baseband
                         // desync); trips the hold-last-safe-MCS rung
  kTruncateFeatures,     // PDP/CSI/per-MCS vectors lose their tail
  kClassifierOutage,     // inference unavailable (timeout) this frame;
                         // trips the missing-ACK fallback rung
  kBeamTrainingFailure,  // the sweep runs (overhead charged) but its result
                         // is unusable: the old beam pair is kept
  kClockSkew,            // this link's clock runs fast/slow by `magnitude`
  kRpcDrop,              // the classify RPC (or its reply) is lost at the
                         // transport seam; only fires against a *remote*
                         // decision backend, where it trips the same
                         // missing-ACK fallback rung as kClassifierOutage
  kRpcDelay,             // the classify round trip takes `magnitude` ms; at
                         // or past the remote backend's deadline it counts
                         // as an outage (below it, only telemetry notices)
};
inline constexpr int kNumFaultKinds = 10;

std::string_view to_string(FaultKind kind);

// One schedulable fault: `kind` fires with `probability` per frame while
// the link's clock is inside [start_ms, end_ms).
struct FaultWindow {
  FaultKind kind = FaultKind::kDropAck;
  double probability = 1.0;
  double start_ms = 0.0;
  double end_ms = kForever;
  // Kind-specific knob: kClockSkew = fractional skew (> -1; 0.1 means the
  // clock runs 10% slow, so frames take 10% longer); kTruncateFeatures =
  // fraction of each vector kept, in [0, 1].
  double magnitude = 0.0;
};

struct FaultPlan {
  // All fault randomness derives from this seed and nothing else.
  std::uint64_t seed = 0;
  std::vector<FaultWindow> windows;

  bool empty() const { return windows.empty(); }

  // Append a window; returns *this so plans build fluently.
  FaultPlan& add(FaultKind kind, double probability, double start_ms = 0.0,
                 double end_ms = kForever, double magnitude = 0.0);

  // Throws std::invalid_argument on a probability outside [0, 1], a
  // non-finite or inverted window, a clock skew <= -1, or a truncation
  // fraction outside [0, 1].
  void validate() const;
};

// A representative kitchen-sink plan: a blockage-style ACK-loss burst with
// ghost ACKs, a garbage-PHY window, stale feedback, a mid-run classifier
// outage, flaky beam training and mild clock skew. Used by the `--faults
// SEED` flag of `libra simulate` / examples/fleet_serving and by the golden
// degradation regression run.
FaultPlan demo_plan(std::uint64_t seed);

// Per-link fault source: owns one forked fault stream and answers "does
// `kind` fire at time t?" queries in frame order. Default-constructed
// injectors are inert (active() == false, no draws ever).
class FaultInjector {
 public:
  FaultInjector() = default;
  // `plan` is borrowed and must outlive the injector. `stream` is this
  // link's private fork of Rng(plan.seed).
  FaultInjector(const FaultPlan* plan, util::Rng stream);

  bool active() const { return plan_ != nullptr && !plan_->windows.empty(); }

  struct Verdict {
    bool fired = false;
    double magnitude = 0.0;  // from the window that fired
  };

  // One decision for (kind, t): windows are scanned in plan order; the
  // first window covering t whose Bernoulli draw succeeds wins. A window
  // with probability >= 1 fires without consuming a draw, so all-certain
  // plans (e.g. a 100% outage) never touch the stream. Each fire bumps
  // faults.injected and faults.injected.<kind>.
  Verdict query(FaultKind kind, double t_ms);

 private:
  const FaultPlan* plan_ = nullptr;  // non-owning
  util::Rng stream_{0};
};

// Poison an observation the way a desynchronized baseband would: NaN SNR
// and CDR, +Inf noise, no ToF, dead PDP/CSI taps, NaN throughput.
void corrupt_observation(phy::PhyObservation& obs);

// Keep only the first ceil(keep_fraction * size) taps of the PDP and CSI
// vectors (at least one tap survives when the vector was non-empty).
void truncate_observation(phy::PhyObservation& obs, double keep_fraction);

// Truncate a trace record's per-MCS CDR vector (and only it) to `keep`
// entries -- the malformed shape extract_features must reject.
void truncate_record_cdr(trace::CaseRecord& rec, std::size_t keep);

}  // namespace libra::faults
