#include "geom/geometry.h"

#include <algorithm>

namespace libra::geom {

double wrap_angle_deg(double deg) {
  while (deg > 180.0) deg -= 360.0;
  while (deg <= -180.0) deg += 360.0;
  return deg;
}

std::optional<Vec2> intersect(const Segment& s1, const Segment& s2) {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.cross(s);
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel
  const Vec2 qp = s2.a - s1.a;
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  constexpr double kEps = 1e-9;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) {
    return std::nullopt;
  }
  return s1.a + r * t;
}

bool segments_cross(const Segment& s1, const Segment& s2) {
  // Strict interior crossing: exclude shared endpoints so a reflected ray
  // leaving a wall is not counted as blocked by that wall.
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.cross(s);
  if (std::abs(denom) < 1e-12) return false;
  const Vec2 qp = s2.a - s1.a;
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  constexpr double kEps = 1e-9;
  return t > kEps && t < 1.0 - kEps && u > kEps && u < 1.0 - kEps;
}

Vec2 mirror(Vec2 p, const Segment& line) {
  const Vec2 d = line.direction();
  const Vec2 ap = p - line.a;
  const double along = ap.dot(d);
  const Vec2 foot = line.a + d * along;
  return foot + (foot - p);
}

double point_segment_distance(Vec2 p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.dot(d);
  if (len2 <= 0.0) return distance(p, s.a);
  const double t = std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
  return distance(p, s.a + d * t);
}

}  // namespace libra::geom
