// 2-D geometry primitives for the indoor ray tracer.
//
// Environments are modeled in plan view (the paper's rooms are traversed at a
// fixed antenna height, and the phased arrays steer only in azimuth, so a 2-D
// model captures the beam/path interaction that matters for BA-vs-RA).
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

namespace libra::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double dot(Vec2 o) const { return x * o.x + y * o.y; }
  double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
  // Angle of this vector in degrees, in (-180, 180].
  double angle_deg() const { return std::atan2(y, x) * 180.0 / M_PI; }
};

inline double distance(Vec2 a, Vec2 b) { return (b - a).norm(); }

// Normalize an angle difference to (-180, 180].
double wrap_angle_deg(double deg);

struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
  Vec2 direction() const { return (b - a).normalized(); }
  // Unit normal (left of a->b direction).
  Vec2 normal() const {
    const Vec2 d = direction();
    return {-d.y, d.x};
  }
};

// Proper intersection of two segments (excluding collinear overlap).
// Returns the intersection point if the segments cross.
std::optional<Vec2> intersect(const Segment& s1, const Segment& s2);

// True if segment pq crosses segment wall strictly between its endpoints.
bool segments_cross(const Segment& s1, const Segment& s2);

// Mirror point p across the infinite line through the segment.
Vec2 mirror(Vec2 p, const Segment& line);

// Distance from point p to segment s.
double point_segment_distance(Vec2 p, const Segment& s);

// A wall with a material reflection loss (dB lost per bounce at 60 GHz).
// Typical values: drywall ~10 dB, glass/metal ~5-7 dB, brick ~13 dB.
struct Wall {
  Segment seg;
  double reflection_loss_db = 10.0;
  std::string name;
};

}  // namespace libra::geom
