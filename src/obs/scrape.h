// Minimal HTTP/1.0 scrape endpoint over an obs::Aggregator.
//
// Serves exactly three routes, TCP only, one short-lived connection per
// request (Connection: close), using the same raw-socket plumbing style as
// src/rpc:
//
//   GET /metrics      -> Aggregator::prometheus_text()  (text/plain)
//   GET /healthz      -> "ok"                            (text/plain)
//   GET /series.json  -> Aggregator::series_json()       (application/json)
//
// This is a scrape port, not a web server: requests are read with a small
// deadline and a hard size cap, anything but a well-formed GET of a known
// route gets a 4xx and a closed connection (tests/obs_test.cpp drives the
// hostile cases). Responses are built outside any registry lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

namespace libra::obs {

class Aggregator;

struct ScrapeConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; the bound port is port() after start()
  int listen_backlog = 16;
  // Per-connection recv/send deadline; a camped client cannot hold the
  // accept thread longer than this.
  int io_timeout_ms = 2000;
  // Request head cap; longer request lines/headers get 431 and a close.
  std::size_t max_request_bytes = 8192;
};

class ScrapeServer {
 public:
  // `agg` must outlive the server; the server only reads from it.
  ScrapeServer(const Aggregator& agg, ScrapeConfig cfg = {});
  ~ScrapeServer();
  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Bound TCP port (resolves ephemeral binds); valid after start().
  int port() const { return resolved_port_; }
  std::string address() const;

 private:
  void accept_loop();
  void serve_connection(int fd);

  const Aggregator& agg_;
  ScrapeConfig cfg_;
  // Atomic because stop() writes -1 (after shutdown()+close()) while the
  // accept loop is still reading the fd for its next ::accept call.
  std::atomic<int> listen_fd_{-1};
  int resolved_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

// Tiny blocking HTTP/1.0 GET used by `libra top`, the tests and benches.
// Returns nullopt on connect/send/recv failure or an unparsable response.
struct HttpResponse {
  int status = 0;
  std::string body;
};
std::optional<HttpResponse> http_get(const std::string& host, int port,
                                     const std::string& path,
                                     int timeout_ms = 2000);

}  // namespace libra::obs
