#include "obs/scrape.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/aggregate.h"
#include "obs/metrics.h"

namespace libra::obs {

namespace {

struct ScrapeMetrics {
  Counter& requests = Registry::global().counter("obs.scrape.requests");
  Counter& bad_requests =
      Registry::global().counter("obs.scrape.bad_requests");
};
ScrapeMetrics& scrape_metrics() {
  static ScrapeMetrics m;
  return m;
}

void set_io_deadline(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ScrapeServer::ScrapeServer(const Aggregator& agg, ScrapeConfig cfg)
    : agg_(agg), cfg_(std::move(cfg)) {
  if (cfg_.port < 0 || cfg_.port > 65535) {
    throw std::invalid_argument("ScrapeServer: port must be in [0, 65535]");
  }
  if (cfg_.max_request_bytes == 0 || cfg_.io_timeout_ms <= 0) {
    throw std::invalid_argument("ScrapeServer: bad request cap or timeout");
  }
}

ScrapeServer::~ScrapeServer() { stop(); }

std::string ScrapeServer::address() const {
  return cfg_.host + ":" + std::to_string(resolved_port_);
}

void ScrapeServer::start() {
  if (running()) throw std::logic_error("ScrapeServer: already running");
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("ScrapeServer: socket(): ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ScrapeServer: bad host address " + cfg_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ScrapeServer: bind(" + cfg_.host + ":" +
                             std::to_string(cfg_.port) + "): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    resolved_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ScrapeServer: listen(): " + err);
  }

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ScrapeServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void ScrapeServer::accept_loop() {
  // Scrapes are rare (one per roll-up period per collector) and responses
  // are small, so connections are served inline on the accept thread; the
  // per-fd deadline bounds how long a camped client can hold it.
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop() or fatal error
    }
    set_io_deadline(fd, cfg_.io_timeout_ms);
    serve_connection(fd);
    ::close(fd);
  }
}

void ScrapeServer::serve_connection(int fd) {
  ScrapeMetrics& metrics = scrape_metrics();
  std::string head;
  char chunk[2048];
  // Read until the end of the request head; everything past it (a body on
  // a GET) is ignored.
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find('\n') == std::string::npos) {
    if (head.size() > cfg_.max_request_bytes) {
      metrics.bad_requests.inc();
      send_all(fd, http_response(431, "Request Header Fields Too Large",
                                 "text/plain", "request too large\n"));
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      metrics.bad_requests.inc();
      return;  // peer vanished or deadline hit
    }
    head.append(chunk, static_cast<std::size_t>(n));
  }

  // Parse the request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    metrics.bad_requests.inc();
    send_all(fd, http_response(400, "Bad Request", "text/plain",
                               "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    metrics.bad_requests.inc();
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                               "only GET is served here\n"));
    return;
  }

  if (path == "/metrics") {
    metrics.requests.inc();
    send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4",
                               agg_.prometheus_text()));
  } else if (path == "/healthz") {
    metrics.requests.inc();
    send_all(fd, http_response(200, "OK", "text/plain", "ok\n"));
  } else if (path == "/series.json") {
    metrics.requests.inc();
    send_all(fd, http_response(200, "OK", "application/json",
                               agg_.series_json()));
  } else {
    metrics.bad_requests.inc();
    send_all(fd, http_response(404, "Not Found", "text/plain",
                               "unknown path\n"));
  }
}

std::optional<HttpResponse> http_get(const std::string& host, int port,
                                     const std::string& path,
                                     int timeout_ms) {
  if (port <= 0 || port > 65535) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  set_io_deadline(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!send_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF (HTTP/1.0 close-delimited) or deadline
    raw.append(chunk, static_cast<std::size_t>(n));
    if (raw.size() > (64u << 20)) break;  // runaway peer
  }
  ::close(fd);

  // "HTTP/1.x NNN ...\r\n...\r\n\r\n<body>"
  if (raw.compare(0, 5, "HTTP/") != 0) return std::nullopt;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return std::nullopt;
  HttpResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  if (resp.status < 100 || resp.status > 599) return std::nullopt;
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at == std::string::npos) return std::nullopt;
  resp.body = raw.substr(body_at + 4);
  return resp;
}

}  // namespace libra::obs
