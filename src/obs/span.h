// Scoped trace spans recorded into per-thread ring buffers and exported as
// Chrome trace-event JSON (the format Perfetto and chrome://tracing load).
//
//   void run_tick() {
//     OBS_SPAN("fleet.tick");               // span = this scope's lifetime
//     { OBS_SPAN("fleet.gather"); ... }     // nested spans nest in the UI
//   }
//
// Each thread owns a fixed-capacity ring (oldest events overwritten), so
// recording is wait-free and memory is bounded no matter how long a run
// is. `TraceBuffer::global().write_chrome_json(path)` dumps complete
// "ph":"X" duration events; export is meant to run when workers are
// quiescent (end of a run / a bench), matching how the CLI and tests use
// it.
//
// Span names must be string literals (or otherwise outlive the buffer):
// the ring stores the pointer, never a copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace libra::obs {

// Microseconds since the process's trace epoch (the first call), from
// steady_clock. Also used by the thread-pool wait/run instrumentation.
std::uint64_t trace_now_us();

// Per-thread ring capacity, in events.
inline constexpr std::size_t kTraceRingCapacity = 8192;

// Cross-process trace correlation: the (trace id, enclosing span id) pair a
// caller stamps onto outgoing RPCs so the remote side's spans nest under it
// in a merged export. trace_id == 0 means "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

namespace detail {
inline thread_local TraceContext t_trace_ctx;
}  // namespace detail

// The calling thread's current context: what the next SpanGuard parents
// under, and what rpc::DecisionClient copies into ClassifyRequest.
inline TraceContext current_trace() { return detail::t_trace_ctx; }

// Allocate a process-unique, never-zero span/trace id. Ids are salted per
// process so controller-side and daemon-side allocations don't collide in
// a merged export.
std::uint64_t next_trace_id();

// RAII override of the calling thread's context. The rpc server wraps each
// classify in a scope built from the request's trace fields, so daemon-side
// spans parent under the controller's decide span. Restores the previous
// context on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

// Process identity stamped on exported events ("pid" plus a process_name
// metadata row). Defaults to pid 1, no name; `libra serve` sets pid 2 /
// "libra-serve" so a merged controller+daemon export keeps distinct rows.
void set_trace_process(std::uint32_t pid, std::string name);

// Splice several Chrome trace-event documents produced by to_chrome_json()
// into one (the merged Perfetto export for a multi-process run). Inputs
// must come from this exporter; this is a structural splice, not a general
// JSON parser.
std::string merge_chrome_json(const std::vector<std::string>& docs);

class TraceBuffer {
 public:
  TraceBuffer();
  ~TraceBuffer();
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  static TraceBuffer& global();

  // Record one completed span on the calling thread's ring. The id triple
  // is optional (0 = unset) and flows into the exported event's args.
  void record(const char* name, std::uint64_t ts_us, std::uint64_t dur_us,
              std::uint64_t trace_id = 0, std::uint64_t span_id = 0,
              std::uint64_t parent_id = 0);

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string to_chrome_json() const;
  // Write to a file; throws std::runtime_error when the file can't open.
  void write_chrome_json(const std::string& path) const;

  // Total events currently buffered across threads (capped by the rings).
  std::size_t event_count() const;
  // Drop all buffered events (tests/benches). Only safe when quiescent.
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// RAII span: times its own scope and records into the global TraceBuffer.
// With telemetry compiled out or runtime-disabled the constructor is an
// empty inline body. Optionally feeds the measured duration into a
// Histogram so the scrape and the trace share one clock-read pair.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, Histogram* hist = nullptr) {
#if LIBRA_OBS_ENABLED
    if (enabled()) {
      name_ = name;
      hist_ = hist;
      parent_ = detail::t_trace_ctx;
      span_id_ = next_trace_id();
      // Root spans open a fresh trace; nested spans (and spans under an
      // adopted RPC context) continue the caller's.
      const std::uint64_t trace =
          parent_.trace_id != 0 ? parent_.trace_id : next_trace_id();
      detail::t_trace_ctx = {trace, span_id_};
      start_ = trace_now_us();
    }
#else
    (void)name;
    (void)hist;
#endif
  }
  ~SpanGuard() {
#if LIBRA_OBS_ENABLED
    if (name_ != nullptr) {
      const std::uint64_t dur = trace_now_us() - start_;
      TraceBuffer::global().record(name_, start_, dur,
                                   detail::t_trace_ctx.trace_id, span_id_,
                                   parent_.span_id);
      detail::t_trace_ctx = parent_;
      if (hist_ != nullptr) hist_->observe(static_cast<double>(dur));
    }
#endif
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
#if LIBRA_OBS_ENABLED
  const char* name_ = nullptr;
  Histogram* hist_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t span_id_ = 0;
  TraceContext parent_;
#endif
};

#define LIBRA_OBS_CONCAT_INNER(a, b) a##b
#define LIBRA_OBS_CONCAT(a, b) LIBRA_OBS_CONCAT_INNER(a, b)
// Trace the enclosing scope: OBS_SPAN("name") or OBS_SPAN("name", &hist).
#define OBS_SPAN(...) \
  ::libra::obs::SpanGuard LIBRA_OBS_CONCAT(obs_span_, __COUNTER__)(__VA_ARGS__)

}  // namespace libra::obs
