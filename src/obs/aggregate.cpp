#include "obs/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace libra::obs {

namespace {

struct AggregatorMetrics {
  Counter& rollups = Registry::global().counter("obs.aggregator.rollups");
  Counter& source_errors =
      Registry::global().counter("obs.aggregator.source_errors");
  Histogram& rollup_us =
      Registry::global().histogram("obs.aggregator.rollup_us");
};

AggregatorMetrics& agg_metrics() {
  static AggregatorMetrics m;
  return m;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_ring(std::ostringstream& os, const std::deque<double>& pts) {
  os << "[";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) os << ",";
    os << format_double(pts[i]);
  }
  os << "]";
}

}  // namespace

Aggregator::Aggregator(AggregatorConfig cfg) : cfg_(std::move(cfg)) {
  if (!(cfg_.rollup_period_ms > 0.0)) {
    throw std::invalid_argument("obs: rollup_period_ms must be > 0");
  }
  if (cfg_.ring_capacity == 0) {
    throw std::invalid_argument("obs: ring_capacity must be > 0");
  }
}

Aggregator::~Aggregator() { stop(); }

void Aggregator::add_source(SnapshotFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.push_back(std::move(fn));
}

void Aggregator::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] {
    const auto period = std::chrono::duration<double, std::milli>(
        cfg_.rollup_period_ms);
    std::unique_lock<std::mutex> lk(stop_mu_);
    while (!stop_requested_) {
      if (stop_cv_.wait_for(lk, period, [this] { return stop_requested_; })) {
        break;
      }
      lk.unlock();
      rollup_now();
      lk.lock();
    }
  });
}

void Aggregator::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Aggregator::running() const { return thread_.joinable(); }

std::vector<double> Aggregator::counter_rate_series(
    const std::string& origin, const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto origin_it = origins_.find(origin);
  if (origin_it == origins_.end()) return {};
  const auto counter_it = origin_it->second.counters.find(name);
  if (counter_it == origin_it->second.counters.end()) return {};
  const std::deque<double>& pts = counter_it->second.rate.pts;
  return {pts.begin(), pts.end()};
}

void Aggregator::rollup_now() {
  StopWatch sw;
  // Collect outside the fold lock: a source poll is a network round trip
  // and must not block a concurrent scrape.
  std::vector<SnapshotFn> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources = sources_;
  }
  std::vector<LabeledSnapshot> collected;
  collected.push_back({cfg_.local_origin, Registry::global().snapshot()});
  for (const SnapshotFn& fn : sources) {
    std::optional<LabeledSnapshot> snap;
    try {
      snap = fn();
    } catch (const std::exception&) {
      snap.reset();
    }
    // A label that collides with the local origin would fold two processes'
    // cumulative counters into one delta chain and produce garbage rates.
    if (snap.has_value() && !snap->origin.empty() &&
        snap->origin != cfg_.local_origin) {
      collected.push_back(std::move(*snap));
    } else {
      agg_metrics().source_errors.inc();
    }
  }

  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LabeledSnapshot& ls : collected) {
      fold_locked(ls.origin, ls.snapshot, now);
    }
    ++rollups_;
  }
  agg_metrics().rollups.inc();
  agg_metrics().rollup_us.observe(sw.elapsed_us());
}

void Aggregator::fold_locked(const std::string& origin,
                             const MetricsSnapshot& now_snap,
                             std::chrono::steady_clock::time_point now) {
  OriginState& st = origins_[origin];
  // First roll-up for an origin: the window is "everything so far", rated
  // over one period (there is no earlier collection point to measure from).
  const double dt_s =
      st.has_last
          ? std::chrono::duration<double>(now - st.last_at).count()
          : cfg_.rollup_period_ms / 1000.0;
  const MetricsSnapshot delta =
      st.has_last ? now_snap.delta_since(st.last) : now_snap;
  const double safe_dt = dt_s > 1e-9 ? dt_s : 1e-9;

  for (const auto& c : delta.counters) {
    CounterSeries& s = st.counters[c.name];
    s.rate.push(static_cast<double>(c.value) / safe_dt, cfg_.ring_capacity);
  }
  for (const auto& c : now_snap.counters) {
    st.counters[c.name].total = c.value;
  }
  for (const auto& g : now_snap.gauges) {
    GaugeSeries& s = st.gauges[g.name];
    s.last = g.value;
    s.values.push(g.value, cfg_.ring_capacity);
  }
  for (const auto& h : delta.histograms) {
    HistSeries& s = st.histograms[h.name];
    s.p50.push(h.data.quantile(0.50), cfg_.ring_capacity);
    s.p95.push(h.data.quantile(0.95), cfg_.ring_capacity);
    s.p99.push(h.data.quantile(0.99), cfg_.ring_capacity);
    s.rate.push(static_cast<double>(h.data.count) / safe_dt,
                cfg_.ring_capacity);
  }
  for (const auto& h : now_snap.histograms) {
    st.histograms[h.name].count = h.data.count;
  }

  st.last = now_snap;
  st.last_at = now;
  st.has_last = true;
}

std::uint64_t Aggregator::rollups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rollups_;
}

std::string Aggregator::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group by metric name across origins: the exposition format wants one
  // HELP/TYPE header per metric name, then one sample per label set.
  std::set<std::string> counter_names, gauge_names, hist_names;
  for (const auto& [origin, st] : origins_) {
    for (const auto& c : st.last.counters) counter_names.insert(c.name);
    for (const auto& g : st.last.gauges) gauge_names.insert(g.name);
    for (const auto& h : st.last.histograms) hist_names.insert(h.name);
  }

  std::ostringstream os;
  for (const std::string& name : counter_names) {
    const std::string n = prom_metric_name(name);
    os << "# HELP " << n << " " << name << "\n"
       << "# TYPE " << n << " counter\n";
    for (const auto& [origin, st] : origins_) {
      if (const auto* c = st.last.find_counter(name)) {
        os << n << "{origin=\"" << prom_escape_label(origin) << "\"} "
           << c->value << "\n";
      }
    }
  }
  for (const std::string& name : gauge_names) {
    const std::string n = prom_metric_name(name);
    os << "# HELP " << n << " " << name << "\n"
       << "# TYPE " << n << " gauge\n";
    for (const auto& [origin, st] : origins_) {
      if (const auto* g = st.last.find_gauge(name)) {
        os << n << "{origin=\"" << prom_escape_label(origin) << "\"} "
           << format_double(g->value) << "\n";
      }
    }
  }
  for (const std::string& name : hist_names) {
    const std::string n = prom_metric_name(name);
    os << "# HELP " << n << " " << name << "\n"
       << "# TYPE " << n << " histogram\n";
    for (const auto& [origin, st] : origins_) {
      const auto* h = st.last.find_histogram(name);
      if (h == nullptr) continue;
      const std::string olabel = prom_escape_label(origin);
      const HistogramData& d = h->data;
      std::uint64_t cumulative = 0;
      std::size_t last = kHistogramBuckets;
      while (last > 1 && d.buckets[last - 1] == 0) --last;
      for (std::size_t b = 0; b < last; ++b) {
        const double upper = histogram_bucket_upper(b);
        if (std::isinf(upper)) break;
        cumulative += d.buckets[b];
        os << n << "_bucket{origin=\"" << olabel << "\",le=\""
           << format_double(upper) << "\"} " << cumulative << "\n";
      }
      os << n << "_bucket{origin=\"" << olabel << "\",le=\"+Inf\"} "
         << d.count << "\n"
         << n << "_sum{origin=\"" << olabel << "\"} "
         << format_double(d.sum) << "\n"
         << n << "_count{origin=\"" << olabel << "\"} " << d.count << "\n";
    }
  }
  return os.str();
}

std::string Aggregator::series_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"period_ms\":" << format_double(cfg_.rollup_period_ms)
     << ",\"rollups\":" << rollups_ << ",\"origins\":{";
  bool first_origin = true;
  for (const auto& [origin, st] : origins_) {
    if (!first_origin) os << ",";
    first_origin = false;
    os << "\"" << json_escape(origin) << "\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, s] : st.counters) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":{\"total\":" << s.total
         << ",\"rate\":";
      append_ring(os, s.rate.pts);
      os << "}";
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, s] : st.gauges) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":{\"last\":"
         << format_double(s.last) << ",\"values\":";
      append_ring(os, s.values.pts);
      os << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, s] : st.histograms) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":{\"count\":" << s.count
         << ",\"p50\":";
      append_ring(os, s.p50.pts);
      os << ",\"p95\":";
      append_ring(os, s.p95.pts);
      os << ",\"p99\":";
      append_ring(os, s.p99.pts);
      os << ",\"rate\":";
      append_ring(os, s.rate.pts);
      os << "}";
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace libra::obs
