// Fleet-scale metrics aggregation: a background roll-up tier that turns the
// registry's cumulative counters into bounded time series.
//
// `Registry::snapshot()` answers "what happened since process start";
// watching a running fleet needs "what is happening now". The Aggregator
// periodically collects cumulative snapshots -- the local process's global
// registry plus any number of remote sources (e.g. the inference daemon,
// polled over the rpc StatsPush/StatsAck pair) -- computes the delta since
// the previous roll-up (`MetricsSnapshot::delta_since`), and folds it into
// fixed-capacity ring-buffer series per origin:
//
//   - counters:   per-second rates (plus the running cumulative total)
//   - gauges:     last value
//   - histograms: windowed p50/p95/p99 and an observations-per-second rate
//
// The folded state is exposed two ways: `prometheus_text()` renders the
// merged cumulative snapshots of every origin as one exposition document
// with `origin="..."` labels (what obs::ScrapeServer serves at /metrics),
// and `series_json()` dumps the ring series (what /series.json serves and
// `libra top` polls).
//
// Aggregation is observation-only: the roll-up thread reads shards and
// clocks but never touches Rng or decision state, so a fleet run's digest
// is bit-identical with the aggregator on or off (tests/fleet_test.cpp and
// tests/rpc_test.cpp prove this).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace libra::obs {

struct AggregatorConfig {
  // Background roll-up period. Tests and benches that want deterministic
  // collection points call rollup_now() instead of start().
  double rollup_period_ms = 1000.0;
  // Points kept per series; at the default 1 s period, ~2 minutes of
  // history per metric.
  std::size_t ring_capacity = 128;
  // Origin label for the local process's global registry.
  std::string local_origin = "controller";
};

// A remote process's cumulative snapshot plus the origin label it reports
// for itself (e.g. rpc::ServerConfig::stats_origin, via StatsAck).
struct LabeledSnapshot {
  std::string origin;
  MetricsSnapshot snapshot;
};

class Aggregator {
 public:
  // A remote source returns its current *cumulative* labeled snapshot, or
  // nullopt when unreachable (the roll-up skips it and keeps its last
  // series). A result whose origin is empty or collides with the local
  // origin is discarded the same way.
  using SnapshotFn = std::function<std::optional<LabeledSnapshot>()>;

  explicit Aggregator(AggregatorConfig cfg = {});
  ~Aggregator();
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  // Register a remote source. Safe to call before or after start().
  void add_source(SnapshotFn fn);

  // Start/stop the background roll-up thread. stop() is idempotent and
  // also runs from the destructor.
  void start();
  void stop();
  bool running() const;

  // One synchronous collection pass (what the background thread runs each
  // period): snapshot local + poll every source, fold deltas into series.
  void rollup_now();

  // Roll-ups completed so far.
  std::uint64_t rollups() const;

  // Merged Prometheus exposition: every origin's cumulative metrics with
  // `origin="..."` labels, HELP/TYPE emitted once per metric name.
  std::string prometheus_text() const;
  // Typed access to one counter's per-second rate ring (oldest first), for
  // in-process consumers like the fleet trainer's drift detector --
  // series_json() without the JSON round trip. Empty when the origin or the
  // counter is unknown (or no roll-up has run yet).
  std::vector<double> counter_rate_series(const std::string& origin,
                                          const std::string& name) const;

  // Ring series as one JSON object:
  //   {"period_ms":..,"rollups":..,"origins":{<origin>:{"counters":{name:
  //    {"total":..,"rate":[..]}},"gauges":{name:{"last":..,"values":[..]}},
  //    "histograms":{name:{"count":..,"p50":[..],"p95":[..],"p99":[..],
  //    "rate":[..]}}}}}
  std::string series_json() const;

 private:
  struct Ring {
    std::deque<double> pts;
    void push(double v, std::size_t cap) {
      pts.push_back(v);
      while (pts.size() > cap) pts.pop_front();
    }
  };
  struct CounterSeries {
    std::uint64_t total = 0;
    Ring rate;
  };
  struct GaugeSeries {
    double last = 0.0;
    Ring values;
  };
  struct HistSeries {
    std::uint64_t count = 0;
    Ring p50, p95, p99, rate;
  };
  struct OriginState {
    bool has_last = false;
    MetricsSnapshot last;  // last cumulative snapshot (what /metrics serves)
    std::chrono::steady_clock::time_point last_at;
    std::map<std::string, CounterSeries> counters;
    std::map<std::string, GaugeSeries> gauges;
    std::map<std::string, HistSeries> histograms;
  };

  void fold_locked(const std::string& origin, const MetricsSnapshot& now_snap,
                   std::chrono::steady_clock::time_point now);

  AggregatorConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, OriginState> origins_;
  std::vector<SnapshotFn> sources_;
  std::uint64_t rollups_ = 0;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace libra::obs
