#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace libra::obs {

double histogram_bucket_upper(std::size_t b) {
  if (b + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(std::uint64_t{1} << b);
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && buckets[b] > 0) {
      // Interpolate inside the bucket, then clamp to the observed range
      // (the first/last buckets would otherwise over-reach).
      const double lo = histogram_bucket_lower(b);
      double hi = histogram_bucket_upper(b);
      if (std::isinf(hi)) hi = max;
      const double in_bucket =
          static_cast<double>(buckets[b]) -
          (static_cast<double>(cumulative) - target);
      const double frac = in_bucket / static_cast<double>(buckets[b]);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
  }
  return max;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
}

HistogramData HistogramData::delta_since(const HistogramData& earlier) const {
  // A lower current count means the source restarted; report the current
  // cumulative view as the window instead of a wrapped subtraction.
  if (count < earlier.count) return *this;
  HistogramData d;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    d.buckets[b] =
        buckets[b] >= earlier.buckets[b] ? buckets[b] - earlier.buckets[b] : 0;
  }
  d.count = count - earlier.count;
  d.sum = sum - earlier.sum;
  d.min = min;
  d.max = max;
  return d;
}

// ---------------------------------------------------------------------------
// Registry internals

namespace {

// Monotonic registry ids let thread-local shard caches survive registry
// destruction without ever dereferencing a dead registry: cache entries key
// on the uid and own the shard via shared_ptr.
std::atomic<std::uint64_t> g_registry_uid{0};

struct ShardCacheEntry {
  std::uint64_t uid = 0;
  std::shared_ptr<detail::Shard> shard;
};

thread_local std::vector<ShardCacheEntry> t_shard_cache;

}  // namespace

struct Registry::Impl {
  std::uint64_t uid = ++g_registry_uid;
  mutable std::mutex mu;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids;
  std::map<std::string, std::uint32_t, std::less<>> gauge_ids;
  std::map<std::string, std::uint32_t, std::less<>> histogram_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  // Deques keep handle addresses stable across registration.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::array<std::atomic<double>, kMaxGauges> gauge_values{};
  std::vector<std::shared_ptr<detail::Shard>> shards;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

detail::Shard& Registry::local_shard() {
  for (const ShardCacheEntry& e : t_shard_cache) {
    if (e.uid == impl_->uid) return *e.shard;
  }
  auto shard = std::make_shared<detail::Shard>();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shards.push_back(shard);
  }
  t_shard_cache.push_back({impl_->uid, shard});
  return *shard;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->counter_ids.find(name);
  if (it != impl_->counter_ids.end()) return impl_->counters[it->second];
  if (impl_->counters.size() >= kMaxCounters) {
    throw std::length_error("obs: counter capacity exhausted");
  }
  const auto id = static_cast<std::uint32_t>(impl_->counters.size());
  impl_->counter_ids.emplace(std::string(name), id);
  impl_->counter_names.emplace_back(name);
  impl_->counters.push_back(Counter(this, id));
  return impl_->counters.back();
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->gauge_ids.find(name);
  if (it != impl_->gauge_ids.end()) return impl_->gauges[it->second];
  if (impl_->gauges.size() >= kMaxGauges) {
    throw std::length_error("obs: gauge capacity exhausted");
  }
  const auto id = static_cast<std::uint32_t>(impl_->gauges.size());
  impl_->gauge_ids.emplace(std::string(name), id);
  impl_->gauge_names.emplace_back(name);
  impl_->gauges.push_back(Gauge(this, id));
  return impl_->gauges.back();
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->histogram_ids.find(name);
  if (it != impl_->histogram_ids.end()) return impl_->histograms[it->second];
  if (impl_->histograms.size() >= kMaxHistograms) {
    throw std::length_error("obs: histogram capacity exhausted");
  }
  const auto id = static_cast<std::uint32_t>(impl_->histograms.size());
  impl_->histogram_ids.emplace(std::string(name), id);
  impl_->histogram_names.emplace_back(name);
  impl_->histograms.push_back(Histogram(this, id));
  return impl_->histograms.back();
}

const std::string& Registry::counter_name(std::uint32_t id) const {
  return impl_->counter_names[id];
}
const std::string& Registry::gauge_name(std::uint32_t id) const {
  return impl_->gauge_names[id];
}
const std::string& Registry::histogram_name(std::uint32_t id) const {
  return impl_->histogram_names[id];
}

const std::string& Counter::name() const { return reg_->counter_name(id_); }
const std::string& Gauge::name() const { return reg_->gauge_name(id_); }
const std::string& Histogram::name() const {
  return reg_->histogram_name(id_);
}

void Gauge::set(double v) {
#if LIBRA_OBS_ENABLED
  if (!enabled()) return;
  reg_->impl_->gauge_values[id_].store(v, std::memory_order_relaxed);
#else
  (void)v;
#endif
}

void Gauge::add(double delta) {
#if LIBRA_OBS_ENABLED
  if (!enabled()) return;
  std::atomic<double>& slot = reg_->impl_->gauge_values[id_];
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
#else
  (void)delta;
#endif
}

double Gauge::value() const {
  return reg_->impl_->gauge_values[id_].load(std::memory_order_relaxed);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);

  snap.counters.resize(impl_->counter_names.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    snap.counters[i].name = impl_->counter_names[i];
  }
  snap.gauges.resize(impl_->gauge_names.size());
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    snap.gauges[i].name = impl_->gauge_names[i];
    snap.gauges[i].value =
        impl_->gauge_values[i].load(std::memory_order_relaxed);
  }
  snap.histograms.resize(impl_->histogram_names.size());
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    snap.histograms[i].name = impl_->histogram_names[i];
  }

  for (const std::shared_ptr<detail::Shard>& shard : impl_->shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const detail::HistShard& hs = shard->hists[i];
      const std::uint64_t n = hs.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      HistogramData view;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        view.buckets[b] = hs.buckets[b].load(std::memory_order_relaxed);
      }
      view.count = n;
      view.sum = hs.sum.load(std::memory_order_relaxed);
      view.min = hs.min.load(std::memory_order_relaxed);
      view.max = hs.max.load(std::memory_order_relaxed);
      snap.histograms[i].data.merge(view);
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (std::atomic<double>& g : impl_->gauge_values) {
    g.store(0.0, std::memory_order_relaxed);
  }
  for (const std::shared_ptr<detail::Shard>& shard : impl_->shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (detail::HistShard& hs : shard->hists) {
      for (auto& b : hs.buckets) b.store(0, std::memory_order_relaxed);
      hs.count.store(0, std::memory_order_relaxed);
      hs.sum.store(0.0, std::memory_order_relaxed);
      hs.min.store(0.0, std::memory_order_relaxed);
      hs.max.store(0.0, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot lookups and exporters

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot d = *this;
  for (CounterValue& c : d.counters) {
    if (const CounterValue* prev = earlier.find_counter(c.name)) {
      c.value = c.value >= prev->value ? c.value - prev->value : c.value;
    }
  }
  for (HistogramValue& h : d.histograms) {
    if (const HistogramValue* prev = earlier.find_histogram(h.name)) {
      h.data = h.data.delta_since(prev->data);
    }
  }
  return d;
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(
    std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string prom_metric_name(std::string_view name) {
  std::string out = "libra_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const CounterValue& c : counters) {
    os << c.name << " " << c.value << "\n";
  }
  for (const GaugeValue& g : gauges) {
    os << g.name << " " << format_double(g.value) << "\n";
  }
  for (const HistogramValue& h : histograms) {
    os << h.name << " count=" << h.data.count
       << " mean=" << format_double(h.data.mean())
       << " p50=" << format_double(h.data.quantile(0.5))
       << " p99=" << format_double(h.data.quantile(0.99))
       << " min=" << format_double(h.data.min)
       << " max=" << format_double(h.data.max) << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(counters[i].name)
       << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(gauges[i].name)
       << "\":" << format_double(gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i) os << ",";
    const HistogramData& d = histograms[i].data;
    os << "\"" << json_escape(histograms[i].name) << "\":{"
       << "\"count\":" << d.count << ",\"sum\":" << format_double(d.sum)
       << ",\"min\":" << format_double(d.min)
       << ",\"max\":" << format_double(d.max)
       << ",\"mean\":" << format_double(d.mean())
       << ",\"p50\":" << format_double(d.quantile(0.5))
       << ",\"p99\":" << format_double(d.quantile(0.99)) << ",\"buckets\":[";
    // Trailing all-zero buckets are elided to keep the dump compact.
    std::size_t last = kHistogramBuckets;
    while (last > 0 && d.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      if (b) os << ",";
      os << d.buckets[b];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const CounterValue& c : counters) {
    const std::string n = prom_metric_name(c.name);
    os << "# HELP " << n << " " << c.name << "\n"
       << "# TYPE " << n << " counter\n"
       << n << " " << c.value << "\n";
  }
  for (const GaugeValue& g : gauges) {
    const std::string n = prom_metric_name(g.name);
    os << "# HELP " << n << " " << g.name << "\n"
       << "# TYPE " << n << " gauge\n"
       << n << " " << format_double(g.value) << "\n";
  }
  for (const HistogramValue& h : histograms) {
    const std::string n = prom_metric_name(h.name);
    const HistogramData& d = h.data;
    os << "# HELP " << n << " " << h.name << "\n"
       << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    std::size_t last = kHistogramBuckets;
    while (last > 1 && d.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      const double upper = histogram_bucket_upper(b);
      if (std::isinf(upper)) break;  // the +Inf line below covers it
      cumulative += d.buckets[b];
      os << n << "_bucket{le=\"" << format_double(upper) << "\"} "
         << cumulative << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << d.count << "\n"
       << n << "_sum " << format_double(d.sum) << "\n"
       << n << "_count " << d.count << "\n";
  }
  return os.str();
}

}  // namespace libra::obs
