#include "obs/span.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace libra::obs {

std::uint64_t trace_now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
};

// One thread's ring. Only the owner writes events and publishes `head`
// with a release store; readers acquire-load `head` and walk the completed
// prefix, so export sees fully written events.
struct Ring {
  std::array<TraceEvent, kTraceRingCapacity> events;
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
};

struct RingCacheEntry {
  std::uint64_t uid = 0;
  std::shared_ptr<Ring> ring;
};

std::atomic<std::uint64_t> g_buffer_uid{0};
thread_local std::vector<RingCacheEntry> t_ring_cache;

}  // namespace

struct TraceBuffer::Impl {
  std::uint64_t uid = ++g_buffer_uid;
  mutable std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;

  Ring& local_ring() {
    for (const RingCacheEntry& e : t_ring_cache) {
      if (e.uid == uid) return *e.ring;
    }
    auto ring = std::make_shared<Ring>();
    {
      std::lock_guard<std::mutex> lock(mu);
      ring->tid = static_cast<std::uint32_t>(rings.size() + 1);
      rings.push_back(ring);
    }
    t_ring_cache.push_back({uid, ring});
    return *ring;
  }
};

TraceBuffer::TraceBuffer() : impl_(std::make_unique<Impl>()) {}
TraceBuffer::~TraceBuffer() = default;

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::record(const char* name, std::uint64_t ts_us,
                         std::uint64_t dur_us) {
  Ring& ring = impl_->local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  TraceEvent& slot = ring.events[head % kTraceRingCapacity];
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  ring.head.store(head + 1, std::memory_order_release);
}

std::size_t TraceBuffer::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t total = 0;
  for (const std::shared_ptr<Ring>& ring : impl_->rings) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->head.load(std::memory_order_acquire), kTraceRingCapacity));
  }
  return total;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const std::shared_ptr<Ring>& ring : impl_->rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

std::string TraceBuffer::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const std::shared_ptr<Ring>& ring : impl_->rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kTraceRingCapacity);
    // Oldest surviving event first (ring order once wrapped).
    const std::uint64_t base = head - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(base + i) % kTraceRingCapacity];
      if (e.name == nullptr) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << e.name << "\",\"cat\":\"libra\",\"ph\":\"X\""
         << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
         << ",\"pid\":1,\"tid\":" << ring->tid << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void TraceBuffer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("obs: cannot open trace output file: " + path);
  }
  out << to_chrome_json();
  if (!out) {
    throw std::runtime_error("obs: failed writing trace output: " + path);
  }
}

}  // namespace libra::obs
