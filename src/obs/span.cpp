#include "obs/span.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace libra::obs {

std::uint64_t trace_now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint64_t next_trace_id() {
  // Salted per process (pid-ish entropy from the heap + clock) so ids from
  // a controller and a daemon never collide in a merged export. The low
  // bits stay a plain counter: allocation is one relaxed fetch_add.
  static const char g_salt_anchor = 0;
  static std::atomic<std::uint64_t> g_next_id{[] {
    std::uint64_t salt = 0xcbf29ce484222325ull;
    const auto now = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    const auto where = reinterpret_cast<std::uintptr_t>(&g_salt_anchor);
    for (std::uint64_t v : {now, static_cast<std::uint64_t>(where)}) {
      for (int i = 0; i < 8; ++i) {
        salt ^= (v >> (8 * i)) & 0xff;
        salt *= 0x100000001b3ull;
      }
    }
    return (salt << 20) | 1u;  // never zero, ~2^20 ids before salt bits mix
  }()};
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContextScope::TraceContextScope(TraceContext ctx)
    : saved_(detail::t_trace_ctx) {
  detail::t_trace_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { detail::t_trace_ctx = saved_; }

namespace {

std::mutex g_process_mu;
std::uint32_t g_process_pid = 1;
std::string g_process_name;

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

// One thread's ring. Only the owner writes events and publishes `head`
// with a release store; readers acquire-load `head` and walk the completed
// prefix, so export sees fully written events.
struct Ring {
  std::array<TraceEvent, kTraceRingCapacity> events;
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
};

struct RingCacheEntry {
  std::uint64_t uid = 0;
  std::shared_ptr<Ring> ring;
};

std::atomic<std::uint64_t> g_buffer_uid{0};
thread_local std::vector<RingCacheEntry> t_ring_cache;

}  // namespace

struct TraceBuffer::Impl {
  std::uint64_t uid = ++g_buffer_uid;
  mutable std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;

  Ring& local_ring() {
    for (const RingCacheEntry& e : t_ring_cache) {
      if (e.uid == uid) return *e.ring;
    }
    auto ring = std::make_shared<Ring>();
    {
      std::lock_guard<std::mutex> lock(mu);
      ring->tid = static_cast<std::uint32_t>(rings.size() + 1);
      rings.push_back(ring);
    }
    t_ring_cache.push_back({uid, ring});
    return *ring;
  }
};

TraceBuffer::TraceBuffer() : impl_(std::make_unique<Impl>()) {}
TraceBuffer::~TraceBuffer() = default;

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::record(const char* name, std::uint64_t ts_us,
                         std::uint64_t dur_us, std::uint64_t trace_id,
                         std::uint64_t span_id, std::uint64_t parent_id) {
  Ring& ring = impl_->local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  TraceEvent& slot = ring.events[head % kTraceRingCapacity];
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.trace_id = trace_id;
  slot.span_id = span_id;
  slot.parent_id = parent_id;
  ring.head.store(head + 1, std::memory_order_release);
}

void set_trace_process(std::uint32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(g_process_mu);
  g_process_pid = pid;
  g_process_name = std::move(name);
}

std::size_t TraceBuffer::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t total = 0;
  for (const std::shared_ptr<Ring>& ring : impl_->rings) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->head.load(std::memory_order_acquire), kTraceRingCapacity));
  }
  return total;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const std::shared_ptr<Ring>& ring : impl_->rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

namespace {

std::string hex_id(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string TraceBuffer::to_chrome_json() const {
  std::uint32_t pid;
  std::string pname;
  {
    std::lock_guard<std::mutex> lock(g_process_mu);
    pid = g_process_pid;
    pname = g_process_name;
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  if (!pname.empty()) {
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << pname << "\"}}";
    first = false;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const std::shared_ptr<Ring>& ring : impl_->rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kTraceRingCapacity);
    // Oldest surviving event first (ring order once wrapped).
    const std::uint64_t base = head - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(base + i) % kTraceRingCapacity];
      if (e.name == nullptr) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << e.name << "\",\"cat\":\"libra\",\"ph\":\"X\""
         << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
         << ",\"pid\":" << pid << ",\"tid\":" << ring->tid;
      if (e.trace_id != 0) {
        os << ",\"args\":{\"trace\":\"" << hex_id(e.trace_id)
           << "\",\"span\":\"" << hex_id(e.span_id) << "\",\"parent\":\""
           << hex_id(e.parent_id) << "\"}";
      }
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string merge_chrome_json(const std::vector<std::string>& docs) {
  // Every input is "{\"traceEvents\":[ ... ],\"displayTimeUnit\":\"ms\"}"
  // (this file's own exporter), so merging is slicing out the array bodies
  // and joining them.
  static constexpr std::string_view kPrefix = "{\"traceEvents\":[";
  static constexpr std::string_view kSuffix = "],\"displayTimeUnit\":\"ms\"}";
  std::string out(kPrefix);
  bool first = true;
  for (const std::string& doc : docs) {
    if (doc.size() < kPrefix.size() + kSuffix.size() ||
        doc.compare(0, kPrefix.size(), kPrefix) != 0 ||
        doc.compare(doc.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      throw std::runtime_error(
          "obs: merge_chrome_json input is not a to_chrome_json document");
    }
    const std::string_view body = std::string_view(doc).substr(
        kPrefix.size(), doc.size() - kPrefix.size() - kSuffix.size());
    if (body.empty()) continue;
    if (!first) out += ",";
    first = false;
    out += body;
  }
  out += kSuffix;
  return out;
}

void TraceBuffer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("obs: cannot open trace output file: " + path);
  }
  out << to_chrome_json();
  if (!out) {
    throw std::runtime_error("obs: failed writing trace output: " + path);
  }
}

}  // namespace libra::obs
