// Telemetry metrics: a thread-safe registry of named counters, gauges and
// log2-bucketed histograms, built for hot-path instrumentation of the fleet
// serving pipeline.
//
// Design (the same shape as production scrape pipelines):
//
//   - Handles (`Counter&`, `Gauge&`, `Histogram&`) are registered once by
//     name and cached by the call site; registration takes a mutex, the
//     handles themselves are trivially copy-free references that stay valid
//     for the registry's lifetime.
//   - Counter bumps and histogram observations land in *per-thread shards*
//     (relaxed atomics that only the owning thread writes), so the hot path
//     is wait-free: no locks, no contended cache lines. A scrape
//     (`Registry::snapshot()`) walks the shards under the registration
//     mutex and merges them.
//   - Histograms use log2 buckets: bucket 0 holds values < 1, bucket b >= 1
//     holds [2^(b-1), 2^b). With 40 buckets a microsecond-valued histogram
//     spans sub-us to ~6 days.
//   - Telemetry is observation-only: it reads clocks but never touches
//     `util::Rng` or any decision state, so enabling/disabling it cannot
//     perturb simulation results (tests/fleet_test.cpp proves this
//     bit-for-bit).
//
// Disabling: building with -DLIBRA_OBS=OFF compiles every recording call to
// an empty inline body; at runtime `set_enabled(false)` is a null-sink fast
// path (one relaxed atomic load and an early-out, a few nanoseconds per
// site).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef LIBRA_OBS_ENABLED
#define LIBRA_OBS_ENABLED 1
#endif

namespace libra::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

// Runtime null-sink switch. Recording sites early-out when disabled; the
// registry itself (names, handles) is unaffected.
inline bool enabled() {
#if LIBRA_OBS_ENABLED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// Fixed shard capacities: registration beyond these throws. Generous for
// this codebase (a few dozen metrics) while keeping per-thread shards a
// fixed-size allocation that never resizes under a concurrent scrape.
inline constexpr std::size_t kMaxCounters = 192;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;
inline constexpr std::size_t kHistogramBuckets = 40;

// Log2 bucket index: 0 for values < 1 (and NaN), else bit_width(floor(v))
// capped to the last bucket, i.e. bucket b >= 1 covers [2^(b-1), 2^b).
inline std::size_t histogram_bucket(double v) {
  if (!(v >= 1.0)) return 0;
  if (v >= 9.2e18) return kHistogramBuckets - 1;  // beyond uint64 range
  const auto u = static_cast<std::uint64_t>(v);
  return std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(u)),
                               kHistogramBuckets - 1);
}
// Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
inline double histogram_bucket_lower(std::size_t b) {
  return b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
}
// Exclusive upper bound of bucket b (1, 2, 4, 8, ...); +inf for the last.
double histogram_bucket_upper(std::size_t b);

class Registry;

namespace detail {

// One thread's slice of every metric. Only the owning thread writes;
// scrapes read the atomics with relaxed loads.
struct HistShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};  // valid only when count > 0
  std::atomic<double> max{0.0};
};

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistShard, kMaxHistograms> hists{};
};

}  // namespace detail

// Merged view of one histogram at scrape time.
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  // Quantile estimate from the buckets (linear interpolation inside the
  // winning bucket, clamped to [min, max]); q in [0, 1].
  double quantile(double q) const;

  // Fold `other` into this histogram. An empty side is the identity, bucket
  // and count adds are exact integer sums, and min/max are true extrema, so
  // merging shard views in any order (or any grouping) yields the same
  // result -- the associativity contract Registry::snapshot() and
  // obs::Aggregator rely on. (The fp `sum` is the one field where grouping
  // can differ in the last ulp; integer-valued samples merge exactly.)
  void merge(const HistogramData& other);
  // Windowed view of this cumulative histogram since `earlier`: bucket and
  // count deltas saturate at zero (a restarted source yields its current
  // values rather than wrapping). min/max cannot be recovered for a window
  // from cumulative extrema, so they stay lifetime extrema.
  HistogramData delta_since(const HistogramData& earlier) const;
};

// Point-in-time scrape of every registered metric, detached from the
// registry (safe to keep, copy, or ship inside a result struct).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramData data;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* find_counter(std::string_view name) const;
  const GaugeValue* find_gauge(std::string_view name) const;
  const HistogramValue* find_histogram(std::string_view name) const;

  // What happened since `earlier`: counters and histogram buckets are
  // saturating-subtracted (a source that reset reports its current values
  // rather than a wrapped delta), gauges keep their current value, and
  // metrics registered since `earlier` pass through unchanged.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  // Human-readable multi-line dump (the `--metrics` default).
  std::string to_text() const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  // Prometheus exposition format: names are prefixed "libra_" and dots
  // become underscores; histograms emit cumulative `_bucket{le="..."}`
  // series plus `_sum` and `_count`. Every metric gets `# HELP` / `# TYPE`
  // header lines.
  std::string to_prometheus() const;
};

// Prometheus metric name sanitizer: "libra_" prefix, [a-zA-Z0-9_] body
// (every other byte becomes '_'). Shared by to_prometheus() and the
// aggregator's merged multi-origin exposition.
std::string prom_metric_name(std::string_view name);
// Escape a label value per the exposition format: backslash, double quote
// and newline are escaped.
std::string prom_escape_label(std::string_view value);

// A named monotonically increasing counter. Wait-free inc on the calling
// thread's shard.
class Counter {
 public:
  void inc(std::uint64_t n = 1);
  const std::string& name() const;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_;
  std::uint32_t id_;
};

// A named point-in-time value (queue depth, occupancy). Gauges are global
// (not sharded): set/add are single relaxed atomics, fine for their
// call-sites' rates.
class Gauge {
 public:
  void set(double v);
  void add(double delta);
  double value() const;
  const std::string& name() const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_;
  std::uint32_t id_;
};

// A named log2-bucketed distribution (latencies, batch sizes). Wait-free
// observe on the calling thread's shard.
class Histogram {
 public:
  void observe(double v);
  const std::string& name() const;

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_;
  std::uint32_t id_;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  // Find-or-register by name; the returned reference is stable for the
  // registry's lifetime. Throws std::length_error past the shard capacity.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Merge every thread's shards into one detached snapshot.
  MetricsSnapshot snapshot() const;

  // Zero every shard and gauge (names and handles survive). Only safe when
  // no other thread is concurrently recording; meant for tests and benches.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  detail::Shard& local_shard();
  const std::string& counter_name(std::uint32_t id) const;
  const std::string& gauge_name(std::uint32_t id) const;
  const std::string& histogram_name(std::uint32_t id) const;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Wall-clock stopwatch over std::chrono::steady_clock. Always live (even
// with LIBRA_OBS=OFF) -- it is the timing primitive results like
// FleetResult::tick_latency_us are built on, telemetry or not.
class StopWatch {
 public:
  StopWatch() : t0_(std::chrono::steady_clock::now()) {}
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

// ---- inline hot paths ----

inline void Counter::inc(std::uint64_t n) {
#if LIBRA_OBS_ENABLED
  if (!enabled()) return;
  reg_->local_shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
#else
  (void)n;
#endif
}

inline void Histogram::observe(double v) {
#if LIBRA_OBS_ENABLED
  if (!enabled()) return;
  detail::HistShard& h = reg_->local_shard().hists[id_];
  h.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  // Only this thread writes the shard, so load-then-store is race-free;
  // relaxed atomics make the scrape's concurrent reads well-defined.
  const std::uint64_t before = h.count.load(std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
  if (before == 0 || v < h.min.load(std::memory_order_relaxed)) {
    h.min.store(v, std::memory_order_relaxed);
  }
  if (before == 0 || v > h.max.load(std::memory_order_relaxed)) {
    h.max.store(v, std::memory_order_relaxed);
  }
  h.count.store(before + 1, std::memory_order_relaxed);
#else
  (void)v;
#endif
}

}  // namespace libra::obs
