// Live link-adaptation controllers: Algorithm 1 executed against a live
// channel, frame by frame -- the form a chipset vendor would actually ship,
// as opposed to the trace-replay evaluation of Sec. 8.
//
// A controller owns the Tx-side adaptation state of one link: the current
// beam pair and MCS, the observation-window metric tracker, and the upward
// probing machinery. Each frame runs through a three-phase pipeline:
//
//   observe()  transmit one aggregated frame, observe the PHY feedback that
//              would ride back on the Block ACK (Sec. 7, issue 3:
//              Tx-initiated, metrics via ACKs + channel reciprocity), and
//              emit a DecisionRequest describing what the policy must rule
//              on -- or that no decision is due (RA walk in progress).
//   decide()   resolve the request into a verdict. Requests that need
//              classifier inference run it here on the caller's Rng; a
//              fleet instead gathers many links' requests and resolves them
//              through one LibraClassifier::classify_batch() call.
//   apply()    act on the verdict: run BA, enter the RA walk, or let the
//              upward prober spend the frame.
//
// step() is the single-link compatibility wrapper: observe -> decide ->
// apply on one Rng, bit-identical to the pre-split monolithic step.
//
//   LibraController    - Algorithm 1: 3-class classifier every other frame,
//                        missing-ACK rule otherwise.
//   RaFirstController  - COTS heuristic: RA on missing ACK, BA only when
//                        MCS 0 fails.
//   BaFirstController  - the patent heuristic [14]: BA first on missing
//                        ACK, then RA.
#pragma once

#include <memory>
#include <optional>

#include "core/classifier.h"
#include "core/rate_adaptation.h"
#include "faults/faults.h"
#include "mac/ack.h"
#include "mac/beam_training.h"
#include "phy/sampler.h"
#include "trace/features.h"

namespace libra::core {

struct ControllerConfig {
  double fat_ms = 10.0;            // one aggregated frame per step
  double ba_overhead_ms = 5.0;     // charged per sector sweep
  int decision_period_frames = 2;  // LiBRA decides every other frame
  double min_tput_mbps = 150.0;    // working-MCS rule (Sec. 5.2)
  double min_cdr = 0.10;
  // Adaptation fires on *persistent* Block-ACK loss, tracked as an EWMA of
  // the per-frame loss indicator: isolated misses (one interference burst,
  // one deep fade) are retried, a dead link crosses the threshold within a
  // handful of frames. With weight 0.3, a full outage crosses 0.9 after
  // ~7 frames while a 50%-duty jammer saturates at 0.5 and never triggers.
  double ack_loss_ewma_weight = 0.3;
  double ack_loss_trigger = 0.9;
  // Hysteresis: after an adaptation, classifier decisions are suppressed
  // for this many frames (persistent ACK loss still reacts). Prevents
  // observation-window noise from re-triggering on the state the link just
  // settled into.
  int post_adapt_holdoff_frames = 10;
  UpProberConfig up_prober{};
  mac::AckModelConfig ack{};
};

// What one transmitted frame produced.
struct FrameReport {
  double t_ms = 0.0;               // start of this frame
  double duration_ms = 0.0;        // fat_ms, plus sweep time if BA ran
  array::BeamId tx_beam = 0;
  array::BeamId rx_beam = 0;
  phy::McsIndex mcs = 0;
  double goodput_mbps = 0.0;       // MAC throughput achieved this frame
  bool ack = true;
  trace::Action action = trace::Action::kNA;  // adaptation fired this frame
};

// Everything observe() learned this frame and decide() needs to rule on it.
// Exactly one of three shapes:
//   - decision_due == false: the RA walk consumed the frame, no policy runs;
//   - classifier != nullptr: the verdict requires classifier inference over
//     `features` (the batching boundary -- a fleet funnels all rows sharing
//     one classifier through a single classify_batch call);
//   - otherwise: `precomputed` already is the verdict (heuristic triggers,
//     the missing-ACK rule, holdoff and off-period frames).
struct DecisionRequest {
  FrameReport report;        // the frame observe() transmitted
  phy::PhyObservation obs;   // window-averaged observation at the frame MCS
  bool decision_due = false;
  const LibraClassifier* classifier = nullptr;  // non-owning
  trace::FeatureVector features{};
  trace::Action precomputed = trace::Action::kNA;
  // Degradation ladder rung 3 (hold-last-safe-MCS): the PHY observation is
  // unusable (non-finite), so the verdict is kNA and apply() must not feed
  // the garbage into the upward prober.
  bool hold_last_mcs = false;
  // Degradation ladder rung 2, resolved at plan time: the verdict to
  // substitute when the decision backend fails at decide time (remote
  // timeout, disconnect, malformed reply -> BackendOutageError). It is the
  // same missing-ACK rule a plan-time outage precomputes, frozen here
  // because the rule reads controller state (the ACK-loss EWMA) that the
  // fleet's decide phase -- possibly on another thread -- must not touch.
  trace::Action outage_fallback = trace::Action::kNA;

  bool needs_inference() const { return decision_due && classifier != nullptr; }
  // The verdict when no inference is needed (what decide() returns without
  // touching a classifier).
  trace::Action resolved_without_inference() const {
    return decision_due ? precomputed : trace::Action::kNA;
  }
};

// Shared mechanics: beam state, per-frame transmission, the live downward
// RA walk and the upward prober. Subclasses implement the trigger policy
// through plan() (and optionally note_verdict()).
class LinkController {
 public:
  LinkController(channel::Link* link, const phy::ErrorModel* error_model,
                 ControllerConfig cfg);
  virtual ~LinkController() = default;

  // Initial association: full beam training + best working MCS.
  void start(util::Rng& rng);

  // Phase 1: transmit one frame, advance time, produce the request.
  DecisionRequest observe(util::Rng& rng);
  // Phase 2: resolve the request serially (inference on the caller's Rng).
  trace::Action decide(const DecisionRequest& request, util::Rng& rng) const;
  // Phase 3: act on the verdict and stamp it into the request's report.
  void apply(trace::Action verdict, DecisionRequest& request, util::Rng& rng);

  // Single-link compatibility wrapper: observe -> decide -> apply.
  FrameReport step(util::Rng& rng);

  // Attach a deterministic fault source (faults/faults.h) to the
  // observe/decide/apply seams, or detach with nullptr. Non-owning; with no
  // injector (or an inert one) every code path is bit-identical to an
  // un-faulted controller.
  void set_fault_injector(faults::FaultInjector* injector) {
    faults_ = injector;
  }

  double time_ms() const { return t_ms_; }
  array::BeamId tx_beam() const { return tx_beam_; }
  array::BeamId rx_beam() const { return rx_beam_; }
  phy::McsIndex mcs() const { return mcs_; }

 protected:
  // Fill the request on a steady-state frame: either set `precomputed` or
  // point `classifier` + `features` at the inference to run. Called once
  // per decision-due frame, so per-frame counters live here.
  virtual void plan(DecisionRequest& request, util::Rng& rng) = 0;
  // Bookkeeping once the verdict is known, before the mechanics run (e.g.
  // LiBRA arms its post-adaptation holdoff here).
  virtual void note_verdict(trace::Action verdict,
                            const DecisionRequest& request);

  // Run beam adaptation now: exhaustive sweep, charge the overhead.
  void run_ba(util::Rng& rng);
  // Enter the downward RA walk starting at the current MCS.
  void begin_ra_walk();

  bool is_working(double cdr, double tput_mbps) const;
  // Degradation ladder rung 2 trigger: the classifier is unavailable this
  // frame (an injected outage/timeout window).
  bool classifier_faulted(double t_ms);
  // The rung-2 verdict itself: the COTS missing-ACK heuristic (trigger RA
  // when ACKs are persistently missing or the MCS stopped working) -- the
  // rule RaFirstController runs all the time, which is what a LiBRA AP
  // degrades to when inference is unavailable.
  trace::Action missing_ack_fallback_action(
      const phy::PhyObservation& obs) const;
  void plan_missing_ack_fallback(DecisionRequest& request) const;
  // Snapshot the current observation as the reference "initial state" the
  // feature deltas are computed against.
  void rebaseline(const phy::PhyObservation& obs);
  trace::FeatureVector features_against_baseline(
      const phy::PhyObservation& obs) const;

  channel::Link* link_;                 // non-owning
  const phy::ErrorModel* error_model_;  // non-owning
  ControllerConfig cfg_;
  phy::PhySampler sampler_;
  mac::AckModel ack_model_;
  mac::BeamTrainer trainer_;

  array::BeamId tx_beam_ = 0;
  array::BeamId rx_beam_ = 0;
  phy::McsIndex mcs_ = 0;
  double t_ms_ = 0.0;

  // RA repair walk state (active while walking down).
  bool walking_ = false;
  phy::McsIndex walk_best_mcs_ = -1;
  double walk_best_tput_ = -1.0;
  bool walked_through_ba_ = false;  // second walk after a fallback BA

  UpProber up_prober_;
  std::optional<phy::PhyObservation> baseline_;
  double ack_loss_ewma_ = 0.0;

  faults::FaultInjector* faults_ = nullptr;  // non-owning; nullptr = clean
  // Last clean observation, replayed by kStalePhy faults.
  std::optional<phy::PhyObservation> last_clean_obs_;

  bool persistent_ack_loss() const {
    return ack_loss_ewma_ >= cfg_.ack_loss_trigger;
  }
};

class LibraController : public LinkController {
 public:
  LibraController(channel::Link* link, const phy::ErrorModel* error_model,
                  const LibraClassifier* classifier, ControllerConfig cfg = {});

 protected:
  void plan(DecisionRequest& request, util::Rng& rng) override;
  void note_verdict(trace::Action verdict,
                    const DecisionRequest& request) override;

 private:
  // Degradation ladder rung 2, transport flavor: true when the classifier
  // serves through a *remote* decision backend that cannot answer this
  // frame -- an injected kRpcDrop, a kRpcDelay at/past the backend's
  // deadline, or a failed health probe (daemon down, reconnect pending).
  // Always false for in-process backends. Queries the fault stream in a
  // fixed order (drop, then delay) so faulted runs replay bit-for-bit.
  bool backend_unreachable(double t_ms);

  const LibraClassifier* classifier_;  // non-owning
  int frames_since_decision_ = 0;
  int holdoff_frames_ = 0;
};

class RaFirstController : public LinkController {
 public:
  using LinkController::LinkController;

 protected:
  void plan(DecisionRequest& request, util::Rng& rng) override;
};

class BaFirstController : public LinkController {
 public:
  using LinkController::LinkController;

 protected:
  void plan(DecisionRequest& request, util::Rng& rng) override;
};

}  // namespace libra::core
