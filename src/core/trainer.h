// Fleet-scale online learning (ROADMAP item 5): a background trainer that
// keeps the deployed forest current without ever pausing the serving path.
//
// Three pieces, wired through sim::run_fleet via FleetConfig::trainer:
//
//   row stream   During scatter, each shard samples a deterministic,
//                seeded subset of its inference decisions (wants() is a
//                pure hash of (trainer seed, link id, per-link decision
//                sequence) -- it never touches the link Rng streams, so an
//                attached trainer whose gates never fire is bit-identical
//                to no trainer at all). A sampled decision resolves into a
//                TrainRow at the link's NEXT observe, when the new frame's
//                report reveals the outcome in hindsight
//                (hindsight_label), and is offered to a bounded per-shard
//                RowRing: drop-oldest when full, try_lock on contention --
//                the gather/decide/scatter path never blocks on training.
//
//   background   FleetTrainer::start() spins a thread that periodically
//   trainer      drains the rings into a sliding window (+ an every-k-th
//                holdout slice the candidate never trains on), refits a
//                candidate forest through LibraClassifier::train_labeled
//                -- the same fit path OnlineLibra's single-link retrain
//                rides -- and compiles it off-path.
//
//   swap gates   A candidate ships only when the DriftDetector (windowed
//                incumbent-vs-label mismatch rate, plus the fleet-level
//                degraded-decision fraction folded in from obs::Aggregator
//                series) reports drift AND the candidate beats the
//                incumbent on the holdout by min_accuracy_gain. Shipping
//                installs the compiled candidate into the generation-
//                tagged ModelSlot -- SwapBackend pins the slot once per
//                vote_batch, so every batch is served wholly by one model
//                generation and a swap never pauses serving -- and
//                publishes to remote daemons through the ModelPush
//                callback (set_remote_push, wired to
//                rpc::DecisionClient::push_model at the CLI layer).
//
// Determinism contract: free-running mode (start()) makes no bit-replay
// promise -- swaps land whenever the thread ships them. The test mode pins
// the schedule instead: with swap_at_ticks non-empty, run_fleet calls
// on_tick() in the serial region after every tick's shard barrier; the
// trainer drains every ring each tick (ingestion order is canonicalized by
// sorting on (tick, link), so it is independent of the shard layout) and
// force-fits + swaps exactly at the scheduled ticks from fit streams
// forked off Rng(seed) in fit order. With a fixed (fleet seed, trainer
// seed, swap_at_ticks) the run replays bit-for-bit at any
// (shards, num_threads) -- proven in tests/trainer_test.cpp, which also
// asserts trainer.rows_dropped stays 0 (a drop would break replay; the
// per-tick drain makes capacity a non-issue in pinned mode).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/classifier.h"
#include "core/controller.h"
#include "core/decision_backend.h"
#include "ml/compiled_forest.h"
#include "ml/random_forest.h"
#include "trace/features.h"
#include "util/rng.h"

namespace libra::obs {
class Aggregator;  // obs/aggregate.h
}

namespace libra::core {

// splitmix64 finalizer: the stateless mixer behind the row sampler.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// One sampled (features, outcome-label) observation from the fleet.
struct TrainRow {
  std::int64_t tick = 0;   // fleet tick the outcome resolved on
  std::uint32_t link = 0;  // global link id (ingestion sort key with tick)
  trace::FeatureVector features{};  // decision-time features, un-jittered
  trace::Action label = trace::Action::kNA;  // hindsight-correct action
};

// Hindsight labeling: what the right call was, judged by the next frame.
struct HindsightConfig {
  // The served verdict counts as correct when the next frame ACKs at or
  // above this goodput (the working-MCS rule's throughput arm).
  double min_tput_mbps = 150.0;
  // Escalation for a failed No-Adaptation verdict: BA below this MCS, RA at
  // or above it (the missing-ACK rule's shape).
  phy::McsIndex ba_mcs_threshold = 6;
};

// The label for a decision that served `served` and then saw `next`: the
// served action itself when the link kept working, else the escalation the
// failure implies (a failed BA should have been RA and vice versa; a failed
// NA should have adapted, BA/RA by MCS). Pure and deterministic.
trace::Action hindsight_label(trace::Action served, const FrameReport& next,
                              const HindsightConfig& cfg = {});

// Bounded row buffer between one producer (a shard's scatter) and the
// trainer. offer() never blocks: it try_locks, dropping the row on
// contention, and drops the oldest row when full -- both counted by the
// caller via the return value. drain() splices everything out.
class RowRing {
 public:
  explicit RowRing(std::size_t capacity);

  enum class Offer { kAccepted, kReplacedOldest, kContended };
  Offer offer(TrainRow&& row);
  void drain(std::vector<TrainRow>& out);
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<TrainRow> rows_;
  std::size_t cap_;
};

// The generation-tagged serving model: a compiled forest published with an
// atomic shared_ptr swap. Readers pin() once per batch; install() bumps the
// generation and replaces the pointer -- in-flight batches finish on the
// model they pinned, so a swap never tears or pauses a batch.
class ModelSlot {
 public:
  struct Model {
    ml::CompiledForest forest;
    std::uint64_t generation = 0;
  };

  // The current model, or nullptr before the first install.
  std::shared_ptr<const Model> pin() const;
  // Publish a new model; returns its generation (1 for the first install).
  std::uint64_t install(ml::CompiledForest forest);
  // Generation of the current model; 0 while empty.
  std::uint64_t generation() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Model> model_;
  std::uint64_t next_generation_ = 0;
};

// DecisionBackend over a ModelSlot: the fleet serves through whatever model
// the trainer last shipped. vote_batch pins the slot exactly once, so every
// batch is answered wholly by one generation. In kDouble compile mode the
// votes are exact tree counts / num_trees -- a slot seeded from the same
// forest a classifier serves is bit-identical to in-process serving.
class SwapBackend final : public DecisionBackend {
 public:
  explicit SwapBackend(const ModelSlot* slot) : slot_(slot) {}

  std::string_view name() const override { return "swap"; }
  bool local() const override { return true; }
  bool available() override { return slot_->generation() > 0; }
  double deadline_ms() const override;
  // Throws BackendOutageError while the slot is empty (degradation-ladder
  // rung 2, like any backend outage).
  std::vector<std::vector<double>> vote_batch(const ml::DataSet& rows) override;

 private:
  const ModelSlot* slot_;  // non-owning
};

struct DriftDetectorConfig {
  // score() >= threshold counts as drift (a gate a candidate must pass).
  // Values > 1 disable the gate permanently (score is a fraction).
  double threshold = 0.25;
  // Ingested rows folded into the windowed mismatch rate.
  std::size_t window_rows = 2048;

  void validate() const;  // throws std::invalid_argument
};

// Two drift signals, folded to one score (their max):
//   - the windowed fraction of ingested rows where the incumbent's
//     prediction disagrees with the hindsight label (fed by observe());
//   - the fleet-level degraded-decision fraction from the obs::Aggregator
//     ring series (fed by feed_degraded_fraction() -- outages and ladder
//     fallbacks are drift the label stream cannot see).
class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorConfig cfg = {});

  void observe(std::uint64_t rows, std::uint64_t mismatches);
  void feed_degraded_fraction(double fraction);

  double mismatch_fraction() const;
  double degraded_fraction() const { return degraded_; }
  double score() const;
  bool drifted() const { return score() >= cfg_.threshold; }
  // Forget everything (called after a shipped swap: the new incumbent
  // starts with a clean slate).
  void reset();

 private:
  DriftDetectorConfig cfg_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> chunks_;
  std::uint64_t rows_ = 0;
  std::uint64_t mismatches_ = 0;
  double degraded_ = 0.0;
};

struct FleetTrainerConfig {
  // Sampler + candidate-fit streams (fit f uses the f-th fork of Rng(seed)).
  std::uint64_t seed = 1;
  // Fraction of inference decisions sampled into the row stream.
  double sample_rate = 0.05;
  // Per-producer (per-shard) ring capacity.
  std::size_t ring_capacity = 4096;
  // Sliding training window, in rows (oldest rows fall off).
  std::size_t window_rows = 4096;
  // Every holdout_every-th ingested row lands in the holdout slice instead
  // of the window; the candidate never trains on it.
  std::size_t holdout_every = 8;
  std::size_t holdout_rows = 512;  // holdout bound (oldest rows fall off)
  // Fit preconditions: train_once() reports instead of fitting below these.
  std::size_t min_fit_rows = 64;
  std::size_t min_holdout_rows = 32;
  // Accuracy gate: candidate holdout accuracy must beat the incumbent's by
  // at least this margin to ship.
  double min_accuracy_gain = 0.02;
  DriftDetectorConfig drift{};
  // Candidate model family + compile mode (kDouble = bit-exact serving).
  ml::RandomForestConfig forest{};
  ml::CompiledForestConfig compiled{};
  // Free-running cadence: the background thread ingests this often and fits
  // once fit_every_rows new rows have arrived since the last fit.
  double train_period_ms = 250.0;
  std::size_t fit_every_rows = 256;
  // Pinned deterministic schedule (tests): non-empty disables start() and
  // makes run_fleet call on_tick() serially after every tick; the trainer
  // force-fits + swaps exactly after the listed ticks (0-based, sorted and
  // deduplicated internally). See the determinism contract above.
  std::vector<std::int64_t> swap_at_ticks;
  HindsightConfig hindsight{};

  void validate() const;  // throws std::invalid_argument
};

// The background trainer. Thread-safety: offer() is called from shard
// worker threads and touches only its ring + wait-free counters; everything
// that mutates the window/holdout/detector (ingest_now, train_once,
// on_tick, consume_aggregator) serializes on one internal mutex -- called
// either from the background thread (free-running) or from run_fleet's
// serial region (pinned). Reads (generation, window_size, ...) are safe
// from any thread.
class FleetTrainer {
 public:
  explicit FleetTrainer(FleetTrainerConfig cfg = {});
  ~FleetTrainer();  // stop()s the background thread if running

  FleetTrainer(const FleetTrainer&) = delete;
  FleetTrainer& operator=(const FleetTrainer&) = delete;

  const FleetTrainerConfig& config() const { return cfg_; }

  // Install the incumbent from an already fitted forest (generation 1).
  // Throws std::invalid_argument / std::logic_error via CompiledForest when
  // the forest is unfitted or unpackable.
  void seed_model(const ml::RandomForest& forest);

  // Serving access: point FleetConfig::backend (or a classifier's backend)
  // here and every batch rides the trainer's current generation.
  DecisionBackend* backend() { return &backend_; }
  const ModelSlot& slot() const { return slot_; }
  std::uint64_t generation() const { return slot_.generation(); }

  // --- producer side (the fleet engine) ---

  // Size the ring set: one ring per producer (run_fleet passes its shard
  // count). Discards any undrained rows. Not thread-safe against offer().
  void attach_producers(std::size_t n);
  std::size_t producers() const { return rings_.size(); }
  // Pure sampling decision for a link's seq-th inference decision --
  // stateless, so any shard layout asks the same question and gets the
  // same answer.
  bool wants(std::uint32_t link, std::uint64_t seq) const;
  // Offer a sampled row from producer p's thread. Never blocks; drops are
  // counted (trainer.rows_dropped) and visible via rows_dropped().
  void offer(std::size_t producer, TrainRow row);

  // --- pinned deterministic mode ---

  bool pinned_schedule() const { return !swap_ticks_.empty(); }
  // Drain every ring (canonical (tick, link) order) and, when `tick` is a
  // scheduled swap tick, force-fit and install the candidate. Called by
  // run_fleet after the tick's shard barrier; callable from tests.
  void on_tick(std::int64_t tick);

  // --- free-running mode ---

  // Spin the background ingest/fit thread. Throws std::logic_error when a
  // pinned schedule is configured (the two modes are mutually exclusive).
  void start();
  void stop();
  bool running() const;

  // --- manual control (tests, benches) ---

  // Drain all rings into the window/holdout now; returns rows ingested.
  std::size_t ingest_now();

  struct FitOutcome {
    bool fitted = false;
    bool shipped = false;
    std::uint64_t generation = 0;  // installed generation when shipped
    double drift_score = 0.0;
    double candidate_acc = 0.0;
    double incumbent_acc = 0.0;
    std::string reason;  // why the candidate did not ship (empty if it did)
  };
  // Fit a candidate on the current window and run it through the gates.
  // force=true ships unconditionally once fitted (the pinned-schedule
  // path). Off the serving path by construction.
  FitOutcome train_once(bool force = false);

  // Fold the fleet-level degraded-decision fraction from an aggregator's
  // ring series into the drift detector (controller.degraded_decisions rate
  // over fleet.link_frames rate, most recent roll-up point).
  void consume_aggregator(const obs::Aggregator& aggregator);

  // Remote publication: called with every shipped candidate (after the
  // local install); return false to count a push failure. Wired to
  // rpc::DecisionClient::push_model by the CLI. Not thread-safe against a
  // concurrent ship -- set it before serving starts.
  void set_remote_push(std::function<bool(const ml::RandomForest&)> fn);

  // --- stats (cheap, callable from any thread) ---

  std::uint64_t rows_sampled() const { return rows_sampled_.load(); }
  std::uint64_t rows_dropped() const { return rows_dropped_.load(); }
  std::uint64_t rows_ingested() const { return rows_ingested_.load(); }
  std::uint64_t fits() const { return fits_.load(); }
  std::uint64_t swaps_shipped() const { return swaps_shipped_.load(); }
  std::uint64_t swaps_rejected() const { return swaps_rejected_.load(); }
  double drift_score() const;
  std::size_t window_size() const;
  std::size_t holdout_size() const;

 private:
  std::size_t ingest_locked();
  FitOutcome train_once_locked(bool force);
  void thread_main();
  static double holdout_accuracy(const ml::CompiledForest& forest,
                                 const std::deque<TrainRow>& holdout);

  FleetTrainerConfig cfg_;
  std::vector<std::int64_t> swap_ticks_;  // sorted, deduplicated
  std::size_t next_swap_ = 0;

  std::vector<std::unique_ptr<RowRing>> rings_;
  ModelSlot slot_;
  SwapBackend backend_{&slot_};

  mutable std::mutex mu_;  // window/holdout/detector/fit state
  std::deque<TrainRow> window_;
  std::deque<TrainRow> holdout_;
  DriftDetector drift_;
  util::Rng fit_rng_;
  std::uint64_t rows_since_fit_ = 0;
  std::vector<TrainRow> drain_buf_;
  std::function<bool(const ml::RandomForest&)> remote_push_;

  std::atomic<std::uint64_t> rows_sampled_{0};
  std::atomic<std::uint64_t> rows_dropped_{0};
  std::atomic<std::uint64_t> rows_ingested_{0};
  std::atomic<std::uint64_t> fits_{0};
  std::atomic<std::uint64_t> swaps_shipped_{0};
  std::atomic<std::uint64_t> swaps_rejected_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace libra::core
