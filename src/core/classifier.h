// LiBRA's learned decision core (Sec. 7).
//
// A 3-class random forest (BA / RA / No-Adaptation) trained offline on
// labeled PHY-metric deltas decides, every other frame, whether adaptation
// is needed and which mechanism to trigger. When the Block ACK is missing
// the Tx has no fresh PHY metrics, so a rule distilled from the training
// data applies instead: with the current MCS below 6 BA is the right choice
// 92% of the time, so trigger BA; at MCS >= 6 the classes are balanced, so
// the choice follows the BA overhead (BA first when it is cheap).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/random_forest.h"
#include "trace/dataset.h"

namespace libra::core {

class DecisionBackend;  // core/decision_backend.h

// What classify()/classify_batch() do with a feature row containing NaN or
// Inf (e.g. a poisoned PHY observation that slipped past the controller's
// usability checks). kReject throws std::invalid_argument naming the row;
// kFallbackNA demotes the row to a No-Adaptation verdict without touching
// the forest (and without consuming window-noise draws for that row).
enum class NonFiniteFeaturePolicy { kReject, kFallbackNA };

struct LibraClassifierConfig {
  // forest.num_threads governs training/batch-inference parallelism:
  // 0 = hardware_concurrency(), 1 = serial legacy behavior. The trained
  // model is bit-identical for any setting (per-tree Rng streams).
  ml::RandomForestConfig forest{};
  // Missing-ACK rule (Sec. 7, issue 3).
  phy::McsIndex no_ack_mcs_threshold = 6;
  double no_ack_ba_overhead_threshold_ms = 10.0;
  // Observation-window feature noise: LiBRA decides on 40 ms windows, which
  // are noisier than the 1 s training traces (Sec. 7, issue 2). Sigmas are
  // the per-frame jitters scaled by 1/sqrt(window frames).
  double window_snr_jitter_db = 0.28;
  double window_noise_jitter_db = 1.06;
  double window_cdr_jitter = 0.011;
  // Confidence gate: adaptation (BA/RA) verdicts with a vote fraction below
  // this are demoted to No-Adaptation -- a misprediction costs a sweep or a
  // rate search, doing nothing costs one more observation window. 0
  // disables the gate (the paper's plain arg-max behavior).
  double min_confidence = 0.0;
  // Freeze the forest into a flat-arena CompiledForest after every (re)train
  // and serve inference through it (see ml/compiled_forest.h). With the
  // default double-precision thresholds verdicts are bit-identical to the
  // interpreted pointer walk; OFF keeps the legacy per-tree heap walk.
  bool compile_inference = true;
  ml::CompiledForestConfig compiled{};
  // Policy for NaN/Inf feature rows (see NonFiniteFeaturePolicy). The
  // default is to reject loudly: a non-finite feature reaching inference is
  // a caller bug unless the caller opted into graceful degradation.
  NonFiniteFeaturePolicy non_finite_policy = NonFiniteFeaturePolicy::kReject;
  // Where vote fractions are computed (core/decision_backend.h). Null (the
  // default) serves through this classifier's own forest -- exactly the
  // pre-backend behavior; a remote backend ships the jittered rows to an
  // inference daemon instead. Non-owning; jitter/filtering/gating always
  // stay on this side, so a loopback remote backend serving the same forest
  // is bit-identical to null. On BackendOutageError callers substitute
  // DecisionRequest::outage_fallback (degradation-ladder rung 2).
  DecisionBackend* backend = nullptr;
};

class LibraClassifier {
 public:
  // Validates the config up front (jitter sigmas >= 0, min_confidence
  // finite and >= 0, thresholds finite) and throws std::invalid_argument --
  // callers
  // like OnlineLibra construct once and retrain many times, so a bad knob
  // must fail at construction, not on the Nth update.
  explicit LibraClassifier(LibraClassifierConfig cfg = {});

  // Train the 3-class model on the (augmented) training dataset. Labels the
  // records (Dataset::labeled3) and forwards to train_labeled().
  void train(const trace::Dataset& dataset, const trace::GroundTruthConfig& gt,
             util::Rng& rng);
  // Fit directly on pre-labeled feature rows -- the single fit path shared
  // by train(), OnlineLibra's sliding-window retrain, and the fleet
  // trainer's candidate fits (core/trainer.h). Freezes the forest into its
  // compiled flat-arena form when compile_inference is on. Throws
  // std::invalid_argument on an empty set, a row width other than
  // FeatureVector::kDim, or an out-of-range label.
  void train_labeled(const ml::DataSet& rows, util::Rng& rng);

  // Classify an observation-window feature vector (BA / RA / NA). Window
  // noise is added internally to model the short observation window.
  trace::Action classify(const trace::FeatureVector& features,
                         util::Rng& rng) const;

  // Batched classification for fleet serving: row i draws its
  // observation-window jitter from rngs[i] (each link's own stream, in row
  // order), then every row rides one RandomForest::vote_fractions_batch
  // call on the forest's thread pool. Per-row min_confidence gating applies
  // exactly as in classify(); verdicts are bit-identical to N independent
  // classify() calls consuming the same per-link streams.
  std::vector<trace::Action> classify_batch(
      std::span<const trace::FeatureVector> features,
      std::span<util::Rng* const> rngs) const;
  // Same, with an explicit backend overriding cfg_.backend (null = serve
  // through the classifier's own forest). The fleet engine uses this for
  // FleetConfig::backend. Throws BackendOutageError when the backend
  // cannot answer -- after the per-row jitter draws have been consumed, so
  // a retried frame replays deterministically.
  std::vector<trace::Action> classify_batch(
      std::span<const trace::FeatureVector> features,
      std::span<util::Rng* const> rngs, DecisionBackend* backend) const;

  // The missing-ACK fallback rule.
  trace::Action no_ack_action(phy::McsIndex current_mcs,
                              double ba_overhead_ms) const;

  bool trained() const { return trained_; }
  const ml::RandomForest& forest() const { return forest_; }

  // Swap the decision backend after construction (e.g. attach an
  // rpc::RemoteBackend once the daemon address is known). Non-owning;
  // nullptr restores in-process serving.
  void set_backend(DecisionBackend* backend) { cfg_.backend = backend; }
  DecisionBackend* backend() const { return cfg_.backend; }

  // Share an external worker pool for (re)training instead of the forest's
  // own lazily created one (e.g. one pool across many live sessions).
  void set_thread_pool(util::ThreadPool* pool) {
    forest_.set_thread_pool(pool);
  }

  static ml::Label to_label(trace::Action a);
  static trace::Action to_action(ml::Label l);

 private:
  // Jitter the window-sensitive features in place from `rng` (3 draws).
  trace::FeatureVector add_window_noise(const trace::FeatureVector& features,
                                        util::Rng& rng) const;
  // Arg-max + confidence gate over per-class vote fractions; the single
  // verdict path shared by classify() and classify_batch().
  trace::Action verdict_from_votes(std::span<const double> votes) const;

  LibraClassifierConfig cfg_;
  ml::RandomForest forest_;
  bool trained_ = false;
};

}  // namespace libra::core
