// COTS 802.11ad device heuristic model (Sec. 3).
//
// Emulates what the Talon router / Acer laptop / ROG phone firmware does:
// transmit AMPDUs at the current MCS through the current Tx sector with
// quasi-omni reception; on a missing Block ACK, lower the MCS (RA); when
// even the lowest MCS fails, run a Tx-only sector sweep (BA) and start over.
// Sector probes during the sweep are single noisy measurements, which is
// what makes these devices flap between near-tied sectors and lose
// throughput even in static scenarios (Figs. 1-3).
#pragma once

#include <vector>

#include "channel/link.h"
#include "mac/ack.h"
#include "mac/beam_training.h"
#include "phy/sampler.h"

namespace libra::core {

struct CotsDeviceConfig {
  double frame_ms = 10.0;        // one AMPDU per step
  // Slow shadow-fading AR(1) process riding on the ray-traced SNR; COTS
  // links see 1-2 dB of slow variation even when nothing moves.
  double fade_sigma_db = 1.8;
  double fade_corr = 0.95;
  // Sweep probes are single SSW frames: noisy.
  double sweep_jitter_db = 1.0;
  double sweep_duration_ms = 2.0;
  int up_probe_interval_frames = 10;
  bool ba_enabled = true;
  // Vendor heterogeneity: 0 = trigger BA only after MCS 0 fails (the
  // Talon/laptop "RA first, BA last resort" heuristic); N > 0 = trigger BA
  // after N consecutive missing Block ACKs (the trigger-happy phone
  // behavior behind the 100+ sweeps per minute in Fig. 1a).
  int ba_after_ack_losses = 0;
  // Second trigger-happy path: fire BA when the in-AMPDU delivery ratio
  // (SFER) stays below this for a few consecutive frames, even though the
  // Block ACK itself arrives. 0 disables. Combined with the blind upward
  // probing this is what makes phones sweep in perfectly static scenarios.
  double ba_cdr_threshold = 0.0;
  int low_cdr_frames_to_ba = 3;
};

struct CotsFrameLog {
  double t_ms = 0.0;
  array::BeamId tx_sector = 0;
  phy::McsIndex mcs = 0;
  double throughput_mbps = 0.0;
  bool ack = true;
  bool ba_triggered = false;
};

class CotsDevice {
 public:
  CotsDevice(channel::Link* link, const phy::ErrorModel* error_model,
             CotsDeviceConfig cfg = {});

  // Initial association: sweep sectors and pick the best.
  void associate(util::Rng& rng);

  // Transmit one AMPDU and run the adaptation heuristic; returns the log
  // entry for this frame.
  CotsFrameLog step(util::Rng& rng);

  array::BeamId tx_sector() const { return tx_sector_; }
  void lock_sector(array::BeamId sector);  // disables BA and pins the sector
  phy::McsIndex mcs() const { return mcs_; }
  double time_ms() const { return t_ms_; }

 private:
  double effective_snr(util::Rng& rng);
  void run_sector_sweep(util::Rng& rng);

  channel::Link* link_;                 // non-owning
  const phy::ErrorModel* error_model_;  // non-owning
  CotsDeviceConfig cfg_;
  mac::AckModel ack_model_;
  array::BeamId tx_sector_ = 0;
  phy::McsIndex mcs_ = 0;
  double fade_db_ = 0.0;
  double t_ms_ = 0.0;
  int frames_since_up_probe_ = 0;
  int consecutive_ack_losses_ = 0;
  int low_cdr_frames_ = 0;
};

}  // namespace libra::core
