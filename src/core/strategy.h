// The five link-adaptation strategies compared in Sec. 8:
//
//   kRaFirst     - what COTS devices do: on a broken MCS, rate-adapt first,
//                  beam-train only if no MCS works.
//   kBaFirst     - the patent approach [14]: beam-train first, then RA.
//   kLibra       - this paper: the 3-class classifier picks BA / RA / NA
//                  every other frame; the missing-ACK rule covers frames
//                  with no PHY feedback.
//   kOracleData  - always picks the mechanism that maximizes bytes
//                  delivered over the flow.
//   kOracleDelay - always picks the mechanism that minimizes the link
//                  recovery delay.
//   kBeamSounding - MOCA-style failover ([24], discussed in Sec. 8): keep a
//                  pre-sounded angularly-diverse backup pair and hop to it
//                  instantly on failure, falling back to a full sweep only
//                  if the backup is also dead. The paper argues (via [9])
//                  that failover pairs stop working under angular
//                  displacement -- bench/beam_sounding quantifies it.
#pragma once

#include <string>

namespace libra::core {

enum class Strategy {
  kRaFirst,
  kBaFirst,
  kLibra,
  kOracleData,
  kOracleDelay,
  kBeamSounding,
};

std::string to_string(Strategy s);

// The five algorithms of the paper's evaluation (Sec. 8.1).
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kBaFirst, Strategy::kRaFirst, Strategy::kLibra,
    Strategy::kOracleData, Strategy::kOracleDelay};

}  // namespace libra::core
