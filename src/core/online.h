// Online-training extension.
//
// Sec. 6.2 shows accuracy drops when the model is deployed in a building it
// was not trained in, and Sec. 7 concludes offline training is sufficient
// *if* the training campaign is comprehensive -- while the authors' earlier
// work ([9]) found ML-driven RA to be environment-dependent and in need of
// online training. This module implements that missing piece: a deployed
// classifier that keeps learning. Labeled events (available in hindsight,
// once the chosen mechanism's outcome and the periodic beam refreshes
// reveal what the right call was) enter a sliding window; the forest is
// retrained every `retrain_every` new events on the seed dataset plus the
// window. Each retrain rides LibraClassifier::train_labeled -- the same
// fit path the fleet-scale background trainer (core/trainer.h) uses for
// its candidate models -- so the deployed model is re-frozen into its
// compiled flat-arena form exactly when compile_inference says so, and the
// labeled seed rows are cached once instead of re-copied and re-labeled on
// every retrain (the window is small; the seed campaign is not).
#pragma once

#include <deque>
#include <optional>

#include "core/classifier.h"

namespace libra::core {

struct OnlineLibraConfig {
  LibraClassifierConfig classifier{};
  int window_size = 400;    // most recent in-deployment events kept
  int retrain_every = 25;   // events between retrains
  // Weight of in-deployment events: each is duplicated this many times so
  // the (small) local window can counterbalance the (large) seed dataset.
  int local_weight = 3;
};

class OnlineLibra {
 public:
  explicit OnlineLibra(OnlineLibraConfig cfg = {});

  // Offline pre-training on a seed campaign (kept for every retrain).
  void seed(const trace::Dataset& offline, const trace::GroundTruthConfig& gt,
            util::Rng& rng);

  // Feed one labeled in-deployment event; retrains when due.
  void observe(const trace::CaseRecord& record,
               const trace::GroundTruthConfig& gt, util::Rng& rng);

  trace::Action classify(const trace::FeatureVector& features,
                         util::Rng& rng) const {
    return classifier_.classify(features, rng);
  }
  const LibraClassifier& classifier() const { return classifier_; }
  int observed_events() const { return observed_; }
  int retrains() const { return retrains_; }

  // Worker pool for the periodic retrains (forwarded to the forest). The
  // Sec. 7 deployment retrains every other frame, so retrain latency is on
  // the product's critical path, not just a bench number.
  void set_thread_pool(util::ThreadPool* pool) {
    classifier_.set_thread_pool(pool);
  }

 private:
  void retrain(const trace::GroundTruthConfig& gt, util::Rng& rng);
  // (Re)label the seed campaign into the cached row sets. Runs once at
  // seed() and again only if a later observe() arrives with a different
  // ground-truth parameterization.
  void relabel_seed(const trace::GroundTruthConfig& gt);

  OnlineLibraConfig cfg_;
  LibraClassifier classifier_;
  trace::Dataset seed_;  // raw records, kept only for relabel_seed
  // Labeled seed rows split the way Dataset::labeled3 orders them
  // (impairment records first, NA augmentation second): a retrain splices
  // the weighted window rows between the two halves, reproducing the
  // legacy copy-the-whole-dataset row order bit for bit.
  ml::DataSet seed_head_rows_{trace::FeatureVector::kDim};
  ml::DataSet seed_tail_rows_{trace::FeatureVector::kDim};
  std::optional<trace::GroundTruthConfig> labeled_gt_;
  std::deque<trace::CaseRecord> window_;
  int observed_ = 0;
  int since_retrain_ = 0;
  int retrains_ = 0;
};

}  // namespace libra::core
