#include "core/classifier.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/decision_backend.h"
#include "obs/span.h"

namespace libra::core {

namespace {
// Inference-serving telemetry: how many rows ride each batch, how long one
// batched pass takes, and the single-row rate for comparison.
struct ClassifierMetrics {
  obs::Counter& classifies;
  obs::Counter& batch_calls;
  obs::Counter& rows;
  obs::Counter& rejected_rows;
  obs::Histogram& batch_size;
  obs::Histogram& batch_latency_us;
};
ClassifierMetrics& classifier_metrics() {
  obs::Registry& r = obs::Registry::global();
  static ClassifierMetrics m{r.counter("classifier.classifies"),
                             r.counter("classifier.batch_calls"),
                             r.counter("classifier.rows"),
                             r.counter("classifier.rejected_rows"),
                             r.histogram("classifier.batch_size"),
                             r.histogram("classifier.batch_latency_us")};
  return m;
}

bool all_finite(const trace::FeatureVector& features) {
  for (const double v : features.v) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}
}  // namespace

LibraClassifier::LibraClassifier(LibraClassifierConfig cfg)
    : cfg_(cfg), forest_(cfg.forest) {
  const auto require = [](bool ok, const std::string& what) {
    if (!ok) throw std::invalid_argument("LibraClassifierConfig: " + what);
  };
  require(cfg_.window_snr_jitter_db >= 0.0 &&
              std::isfinite(cfg_.window_snr_jitter_db),
          "window_snr_jitter_db must be finite and >= 0");
  require(cfg_.window_noise_jitter_db >= 0.0 &&
              std::isfinite(cfg_.window_noise_jitter_db),
          "window_noise_jitter_db must be finite and >= 0");
  require(cfg_.window_cdr_jitter >= 0.0 && std::isfinite(cfg_.window_cdr_jitter),
          "window_cdr_jitter must be finite and >= 0");
  // Values > 1 are a deliberate "demote every adaptation to NA" setting
  // (no vote fraction can reach them), so only reject nonsense below 0.
  require(std::isfinite(cfg_.min_confidence) && cfg_.min_confidence >= 0.0,
          "min_confidence must be finite and >= 0, got " +
              std::to_string(cfg_.min_confidence));
  require(std::isfinite(cfg_.no_ack_ba_overhead_threshold_ms),
          "no_ack_ba_overhead_threshold_ms must be finite");
}

ml::Label LibraClassifier::to_label(trace::Action a) {
  switch (a) {
    case trace::Action::kBA: return 0;
    case trace::Action::kRA: return 1;
    case trace::Action::kNA: return 2;
  }
  // Out-of-enum values (corrupted trace rows, casts from raw ints) must not
  // silently train as label 0 == Beam Adaptation.
  throw std::invalid_argument(
      "LibraClassifier::to_label: out-of-enum trace::Action " +
      std::to_string(static_cast<int>(a)));
}

trace::Action LibraClassifier::to_action(ml::Label l) {
  switch (l) {
    case 0: return trace::Action::kBA;
    case 1: return trace::Action::kRA;
    default: return trace::Action::kNA;
  }
}

void LibraClassifier::train(const trace::Dataset& dataset,
                            const trace::GroundTruthConfig& gt,
                            util::Rng& rng) {
  ml::DataSet train(trace::FeatureVector::kDim);
  for (const trace::LabeledEntry& e : dataset.labeled3(gt)) {
    train.add(e.x.v, to_label(e.y));
  }
  train_labeled(train, rng);
}

void LibraClassifier::train_labeled(const ml::DataSet& rows, util::Rng& rng) {
  if (rows.empty()) throw std::invalid_argument("empty training dataset");
  if (rows.num_features() != trace::FeatureVector::kDim) {
    throw std::invalid_argument(
        "train_labeled: expected " +
        std::to_string(trace::FeatureVector::kDim) + " features per row, got " +
        std::to_string(rows.num_features()));
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows.label(i) < 0 || rows.label(i) > 2) {
      throw std::invalid_argument("train_labeled: label " +
                                  std::to_string(rows.label(i)) +
                                  " out of the 3-class range at row " +
                                  std::to_string(i));
    }
  }
  forest_.fit(rows, rng);
  // Freeze the freshly fitted trees for serving: every classify /
  // classify_batch (and therefore the fleet's batched decide phase) rides
  // the flat arena from here on. OnlineLibra's sliding-window retrain and
  // the fleet trainer's candidate fits ride this same path, so a
  // hot-swapped model is recompiled automatically -- and never compiled
  // when compile_inference is off.
  if (cfg_.compile_inference) forest_.compile(cfg_.compiled);
  trained_ = true;
}

trace::FeatureVector LibraClassifier::add_window_noise(
    const trace::FeatureVector& features, util::Rng& rng) const {
  trace::FeatureVector noisy = features;
  noisy.v[0] += rng.gaussian(0.0, cfg_.window_snr_jitter_db);
  noisy.v[2] += rng.gaussian(0.0, cfg_.window_noise_jitter_db);
  noisy.v[5] += rng.gaussian(0.0, cfg_.window_cdr_jitter);
  return noisy;
}

trace::Action LibraClassifier::verdict_from_votes(
    std::span<const double> votes) const {
  // First-max arg-max: identical tie-breaking to RandomForest::predict's
  // max_element over integer vote counts (fractions are counts / num_trees,
  // a monotonic map), so gated and ungated paths agree bit-for-bit.
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  const trace::Action a = to_action(static_cast<ml::Label>(best));
  if (a != trace::Action::kNA && votes[best] < cfg_.min_confidence) {
    return trace::Action::kNA;  // not sure enough to pay for adaptation
  }
  return a;
}

trace::Action LibraClassifier::classify(const trace::FeatureVector& features,
                                        util::Rng& rng) const {
  if (!trained_) throw std::logic_error("classifier not trained");
  ClassifierMetrics& metrics = classifier_metrics();
  metrics.classifies.inc();
  if (!all_finite(features)) {
    metrics.rejected_rows.inc();
    if (cfg_.non_finite_policy == NonFiniteFeaturePolicy::kReject) {
      throw std::invalid_argument("classify: non-finite feature vector");
    }
    return trace::Action::kNA;  // graceful degradation: do nothing
  }
  const trace::FeatureVector noisy = add_window_noise(features, rng);
  if (cfg_.backend != nullptr) {
    // Single-row ride through the backend: one-row batch, same votes as
    // vote_fractions (fractions are exact tree counts / num_trees).
    ml::DataSet row(trace::FeatureVector::kDim);
    row.add(noisy.v, 0);
    const std::vector<std::vector<double>> votes =
        cfg_.backend->vote_batch(row);
    if (votes.size() != 1 || votes[0].empty()) {
      throw BackendOutageError(
          std::string("classify: backend '") + std::string(cfg_.backend->name()) +
          "' returned " + std::to_string(votes.size()) + " vote rows for 1");
    }
    return verdict_from_votes(votes[0]);
  }
  return verdict_from_votes(forest_.vote_fractions(noisy.v));
}

std::vector<trace::Action> LibraClassifier::classify_batch(
    std::span<const trace::FeatureVector> features,
    std::span<util::Rng* const> rngs) const {
  return classify_batch(features, rngs, cfg_.backend);
}

std::vector<trace::Action> LibraClassifier::classify_batch(
    std::span<const trace::FeatureVector> features,
    std::span<util::Rng* const> rngs, DecisionBackend* backend) const {
  if (!trained_) throw std::logic_error("classifier not trained");
  if (features.size() != rngs.size()) {
    throw std::invalid_argument(
        "classify_batch: " + std::to_string(features.size()) +
        " feature rows but " + std::to_string(rngs.size()) + " rng streams");
  }
  ClassifierMetrics& metrics = classifier_metrics();
  OBS_SPAN("classifier.classify_batch", &metrics.batch_latency_us);
  metrics.batch_calls.inc();
  metrics.rows.inc(features.size());
  metrics.batch_size.observe(static_cast<double>(features.size()));
  // Jitter serially in row order -- each row consumes only its own link's
  // stream, so the batch boundary never changes what any link draws.
  // Non-finite rows never reach the forest: under kReject the whole call
  // throws naming the row; under kFallbackNA the row is demoted to kNA
  // (consuming no draws -- identical to what classify() would have done on
  // that link's own stream).
  ml::DataSet rows(trace::FeatureVector::kDim);
  rows.reserve(features.size());
  std::vector<std::size_t> forest_row(features.size(),
                                      std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (rngs[i] == nullptr) {
      throw std::invalid_argument("classify_batch: null rng for row " +
                                  std::to_string(i));
    }
    if (!all_finite(features[i])) {
      metrics.rejected_rows.inc();
      if (cfg_.non_finite_policy == NonFiniteFeaturePolicy::kReject) {
        throw std::invalid_argument(
            "classify_batch: non-finite feature vector at row " +
            std::to_string(i));
      }
      continue;
    }
    forest_row[i] = rows.size();
    rows.add(add_window_noise(features[i], *rngs[i]).v, 0);
  }
  // One pooled pass over every link's (finite) row: through the backend
  // when one is attached (possibly a socket round trip), else the
  // in-process forest. The jitter above has already consumed each link's
  // draws either way, so a BackendOutageError thrown here leaves the
  // streams exactly where a successful batch would have.
  std::vector<std::vector<double>> votes;
  if (backend != nullptr) {
    if (!rows.empty()) votes = backend->vote_batch(rows);
    if (votes.size() != rows.size()) {
      throw BackendOutageError(
          std::string("classify_batch: backend '") +
          std::string(backend->name()) + "' returned " +
          std::to_string(votes.size()) + " vote rows for " +
          std::to_string(rows.size()));
    }
  } else {
    votes = forest_.vote_fractions_batch(rows);
  }
  std::vector<trace::Action> verdicts(features.size(), trace::Action::kNA);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (forest_row[i] != std::numeric_limits<std::size_t>::max()) {
      verdicts[i] = verdict_from_votes(votes[forest_row[i]]);
    }
  }
  return verdicts;
}

trace::Action LibraClassifier::no_ack_action(phy::McsIndex current_mcs,
                                             double ba_overhead_ms) const {
  if (current_mcs < cfg_.no_ack_mcs_threshold) return trace::Action::kBA;
  return ba_overhead_ms <= cfg_.no_ack_ba_overhead_threshold_ms
             ? trace::Action::kBA
             : trace::Action::kRA;
}

}  // namespace libra::core
