#include "core/classifier.h"

#include <stdexcept>

namespace libra::core {

LibraClassifier::LibraClassifier(LibraClassifierConfig cfg)
    : cfg_(cfg), forest_(cfg.forest) {}

ml::Label LibraClassifier::to_label(trace::Action a) {
  switch (a) {
    case trace::Action::kBA: return 0;
    case trace::Action::kRA: return 1;
    case trace::Action::kNA: return 2;
  }
  return 0;
}

trace::Action LibraClassifier::to_action(ml::Label l) {
  switch (l) {
    case 0: return trace::Action::kBA;
    case 1: return trace::Action::kRA;
    default: return trace::Action::kNA;
  }
}

void LibraClassifier::train(const trace::Dataset& dataset,
                            const trace::GroundTruthConfig& gt,
                            util::Rng& rng) {
  ml::DataSet train(trace::FeatureVector::kDim);
  for (const trace::LabeledEntry& e : dataset.labeled3(gt)) {
    train.add(e.x.v, to_label(e.y));
  }
  if (train.empty()) throw std::invalid_argument("empty training dataset");
  forest_.fit(train, rng);
  trained_ = true;
}

trace::Action LibraClassifier::classify(const trace::FeatureVector& features,
                                        util::Rng& rng) const {
  if (!trained_) throw std::logic_error("classifier not trained");
  trace::FeatureVector noisy = features;
  noisy.v[0] += rng.gaussian(0.0, cfg_.window_snr_jitter_db);
  noisy.v[2] += rng.gaussian(0.0, cfg_.window_noise_jitter_db);
  noisy.v[5] += rng.gaussian(0.0, cfg_.window_cdr_jitter);
  if (cfg_.min_confidence <= 0.0) {
    return to_action(forest_.predict(noisy.v));
  }
  const std::vector<double> votes = forest_.vote_fractions(noisy.v);
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  const trace::Action a = to_action(static_cast<ml::Label>(best));
  if (a != trace::Action::kNA && votes[best] < cfg_.min_confidence) {
    return trace::Action::kNA;  // not sure enough to pay for adaptation
  }
  return a;
}

trace::Action LibraClassifier::no_ack_action(phy::McsIndex current_mcs,
                                             double ba_overhead_ms) const {
  if (current_mcs < cfg_.no_ack_mcs_threshold) return trace::Action::kBA;
  return ba_overhead_ms <= cfg_.no_ack_ba_overhead_threshold_ms
             ? trace::Action::kBA
             : trace::Action::kRA;
}

}  // namespace libra::core
