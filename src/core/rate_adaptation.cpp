#include "core/rate_adaptation.h"

#include <algorithm>

namespace libra::core {

RaWalk ra_repair_walk(const trace::PairTrace& t, phy::McsIndex start_mcs,
                      const trace::GroundTruthConfig& rule) {
  RaWalk walk;
  double best_tput = -1.0;
  for (phy::McsIndex m = start_mcs; m >= 0; --m) {
    walk.probes.push_back(m);
    const auto i = static_cast<std::size_t>(m);
    const bool working = trace::is_working(t.cdr[i], t.throughput_mbps[i], rule);
    if (working && walk.first_working_probe < 0) {
      walk.first_working_probe = static_cast<int>(walk.probes.size()) - 1;
    }
    if (working && t.throughput_mbps[i] > best_tput) {
      best_tput = t.throughput_mbps[i];
      walk.settled = m;
    }
    // Algorithm 1 stops descending once the throughput of a working MCS
    // starts decreasing (the ladder is unimodal below the knee).
    if (walk.settled >= 0 && m < walk.settled &&
        t.throughput_mbps[i] < best_tput) {
      break;
    }
  }
  return walk;
}

double cdr_ori(const phy::McsTable& table, phy::McsIndex current) {
  if (current >= table.max_mcs()) return 1.0;  // nothing above to probe
  const double ratio =
      table.rate_mbps(current) / table.rate_mbps(current + 1);
  const double p_mtl = 1.0 - ratio;
  return 1.0 - p_mtl / 2.0;
}

UpProber::UpProber(phy::McsIndex current, UpProberConfig cfg)
    : cfg_(cfg), current_(current), timer_(cfg.t0_frames) {}

void UpProber::reset(phy::McsIndex current) {
  current_ = current;
  timer_ = cfg_.t0_frames;
  failed_probes_ = 0;
}

phy::McsIndex UpProber::on_frame(const trace::PairTrace& t,
                                 const trace::GroundTruthConfig& rule) {
  const auto max_mcs =
      static_cast<phy::McsIndex>(t.throughput_mbps.size()) - 1;
  if (current_ >= max_mcs) return current_;
  const auto cur = static_cast<std::size_t>(current_);
  const double gate = cfg_.table ? cdr_ori(*cfg_.table, current_)
                                 : cfg_.min_cdr_for_probe;
  if (t.cdr[cur] < gate) {
    // Link not healthy enough to explore upward; hold.
    timer_ = cfg_.t0_frames;
    return current_;
  }
  if (--timer_ > 0) return current_;

  // Probe frame at the next higher MCS.
  const phy::McsIndex probe = current_ + 1;
  const auto p = static_cast<std::size_t>(probe);
  const bool better =
      trace::is_working(t.cdr[p], t.throughput_mbps[p], rule) &&
      t.throughput_mbps[p] > t.throughput_mbps[cur];
  if (better) {
    current_ = probe;
    failed_probes_ = 0;
    timer_ = cfg_.t0_frames;
  } else {
    failed_probes_ = std::min(failed_probes_ + 1, cfg_.max_backoff_exponent);
    timer_ = cfg_.t0_frames * (1 << failed_probes_);
  }
  return probe;  // the probe frame itself is sent at the probed MCS
}

}  // namespace libra::core
