#include "core/strategy.h"

namespace libra::core {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kRaFirst: return "RA First";
    case Strategy::kBaFirst: return "BA First";
    case Strategy::kLibra: return "LiBRA";
    case Strategy::kOracleData: return "Oracle-Data";
    case Strategy::kOracleDelay: return "Oracle-Delay";
    case Strategy::kBeamSounding: return "Beam Sounding";
  }
  return "?";
}

}  // namespace libra::core
