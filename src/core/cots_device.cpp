#include "core/cots_device.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libra::core {

CotsDevice::CotsDevice(channel::Link* link, const phy::ErrorModel* error_model,
                       CotsDeviceConfig cfg)
    : link_(link), error_model_(error_model), cfg_(cfg),
      ack_model_(error_model) {
  if (!link_ || !error_model_) throw std::invalid_argument("null dependency");
}

double CotsDevice::effective_snr(util::Rng& rng) {
  fade_db_ = cfg_.fade_corr * fade_db_ +
             std::sqrt(1.0 - cfg_.fade_corr * cfg_.fade_corr) *
                 rng.gaussian(0.0, cfg_.fade_sigma_db);
  return link_->snr_db(tx_sector_, array::kQuasiOmni) + fade_db_;
}

void CotsDevice::run_sector_sweep(util::Rng& rng) {
  array::BeamId best = 0;
  double best_snr = -1e9;
  for (array::BeamId s = 0; s < link_->tx().codebook().size(); ++s) {
    const double snr = link_->snr_db(s, array::kQuasiOmni) + fade_db_ +
                       rng.gaussian(0.0, cfg_.sweep_jitter_db);
    if (snr > best_snr) {
      best_snr = snr;
      best = s;
    }
  }
  tx_sector_ = best;
  // After beam training, firmware restarts the rate search from the most
  // robust MCS and climbs back up -- the ramp is the dominant cost of a
  // spurious sweep.
  mcs_ = 0;
  t_ms_ += cfg_.sweep_duration_ms;
}

void CotsDevice::associate(util::Rng& rng) { run_sector_sweep(rng); }

void CotsDevice::lock_sector(array::BeamId sector) {
  tx_sector_ = sector;
  cfg_.ba_enabled = false;
}

CotsFrameLog CotsDevice::step(util::Rng& rng) {
  CotsFrameLog log;
  log.t_ms = t_ms_;
  const double snr = effective_snr(rng);
  log.ack = ack_model_.ack_received(mcs_, snr, rng);
  if (log.ack) {
    consecutive_ack_losses_ = 0;
    log.throughput_mbps = error_model_->expected_throughput_mbps(mcs_, snr);
    // SFER-style reaction: the ACK arrived but most subframes are dying.
    // Trigger-happy firmware answers with a sector sweep (the wrong call in
    // static scenarios); with BA disabled the device sanely steps the MCS
    // down instead.
    const double cdr = error_model_->expected_cdr(mcs_, snr);
    if (cfg_.ba_cdr_threshold > 0.0 && cdr < cfg_.ba_cdr_threshold) {
      if (++low_cdr_frames_ >= cfg_.low_cdr_frames_to_ba) {
        low_cdr_frames_ = 0;
        if (cfg_.ba_enabled) {
          run_sector_sweep(rng);
          log.ba_triggered = true;
        } else if (mcs_ > 0) {
          --mcs_;
        }
      }
    } else {
      low_cdr_frames_ = 0;
    }
    // Periodic blind upward probe: COTS RA climbs whenever a single probe
    // frame at the next MCS is ACKed -- a Block ACK needs only one subframe
    // to decode, so devices overshoot the sustainable MCS and oscillate.
    if (!log.ba_triggered &&
        ++frames_since_up_probe_ >= cfg_.up_probe_interval_frames &&
        mcs_ < error_model_->table().max_mcs()) {
      frames_since_up_probe_ = 0;
      if (ack_model_.ack_received(mcs_ + 1, snr, rng)) ++mcs_;
    }
  } else {
    log.throughput_mbps = 0.0;
    ++consecutive_ack_losses_;
    const bool aggressive_ba =
        cfg_.ba_after_ack_losses > 0 &&
        consecutive_ack_losses_ >= cfg_.ba_after_ack_losses;
    // RA: drop the MCS; trigger BA when MCS 0 has already failed (the
    // "RA first, BA as last resort" heuristic) or, on trigger-happy
    // firmware, after a few consecutive ACK losses.
    if (cfg_.ba_enabled && (aggressive_ba || mcs_ == 0)) {
      run_sector_sweep(rng);
      log.ba_triggered = true;
      consecutive_ack_losses_ = 0;
    } else if (mcs_ > 0) {
      --mcs_;
    }
    frames_since_up_probe_ = 0;
  }
  t_ms_ += cfg_.frame_ms;
  log.tx_sector = tx_sector_;
  log.mcs = mcs_;
  return log;
}

}  // namespace libra::core
