// Frame-based rate adaptation (Sec. 7 "Adaptation algorithms", Algorithm 1).
//
// Repair walk: starting at the MCS in use, probe downward one aggregated
// frame per MCS until the highest-throughput working MCS is found. Upward
// exploration: after an interval of T frames with healthy CDR, probe the
// next higher MCS; failed probes back off the interval exponentially,
// T = T0 * min(2^k, 2^5), with T0 = 5 frames.
#pragma once

#include <vector>

#include "trace/collector.h"
#include "trace/ground_truth.h"

namespace libra::core {

// Result of a downward RA repair walk over a trace.
struct RaWalk {
  // MCS probed at each frame of the walk, in order (starts at the entry
  // MCS, descends).
  std::vector<phy::McsIndex> probes;
  // The MCS the walk settles on (highest-throughput working MCS at or below
  // the entry MCS); -1 when no MCS works on this trace.
  phy::McsIndex settled = -1;
  // Index into `probes` of the first *working* MCS encountered; -1 if none.
  // The link-recovery delay stops counting here (Sec. 5.2).
  int first_working_probe = -1;
};

// Simulate the downward walk on the given per-MCS trace.
RaWalk ra_repair_walk(const trace::PairTrace& t, phy::McsIndex start_mcs,
                      const trace::GroundTruthConfig& rule);

// RRAA-style opportunistic probing threshold ([63], referenced by
// Algorithm 1 as CDR_ORI). Moving from MCS m to m+1 can pay off only if the
// extra rate outweighs the extra loss: the maximum tolerable loss ratio at
// m+1 is P_MTL = 1 - rate(m)/rate(m+1), and RRAA probes opportunistically
// when the current loss is below P_ORI = P_MTL / 2 -- i.e. when the current
// CDR exceeds cdr_ori = 1 - P_ORI.
double cdr_ori(const phy::McsTable& table, phy::McsIndex current);

struct UpProberConfig {
  int t0_frames = 5;   // minimum probing interval (Sec. 7)
  int max_backoff_exponent = 5;
  // Healthy-link gate for upward probes. When `table` is set, the RRAA
  // per-MCS threshold cdr_ori() overrides this constant.
  double min_cdr_for_probe = 0.9;
  const phy::McsTable* table = nullptr;  // non-owning, optional
};

// Upward-probing state machine. Call on_frame() once per transmitted frame;
// it returns the MCS to use for that frame and internally advances the
// probe/backoff state based on the trace the link currently follows.
class UpProber {
 public:
  UpProber(phy::McsIndex current, UpProberConfig cfg = {});

  // Decide the MCS for the next frame given the trace of the pair in use.
  phy::McsIndex on_frame(const trace::PairTrace& t,
                         const trace::GroundTruthConfig& rule);

  phy::McsIndex current() const { return current_; }
  void reset(phy::McsIndex current);

 private:
  UpProberConfig cfg_;
  phy::McsIndex current_;
  int timer_;
  int failed_probes_ = 0;
};

}  // namespace libra::core
