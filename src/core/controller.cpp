#include "core/controller.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/decision_backend.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace libra::core {

namespace {
// Decision-mix telemetry: how often each verdict fires across every
// controller, the missing-ACK fallback rate, and the degradation-ladder
// rungs (rung 2 = inference unavailable/stale, COTS heuristic substituted;
// rung 3 = observation unusable, last safe MCS held).
struct VerdictCounters {
  obs::Counter& ba;
  obs::Counter& ra;
  obs::Counter& na;
  obs::Counter& no_ack_fallbacks;
  obs::Counter& degraded_decisions;
  obs::Counter& held_decisions;
};
VerdictCounters& verdict_counters() {
  obs::Registry& r = obs::Registry::global();
  static VerdictCounters c{r.counter("controller.verdict.ba"),
                           r.counter("controller.verdict.ra"),
                           r.counter("controller.verdict.na"),
                           r.counter("controller.no_ack_fallbacks"),
                           r.counter("controller.degraded_decisions"),
                           r.counter("controller.held_decisions")};
  return c;
}

// A PHY observation the decision logic can act on: all scalar metrics
// finite. Garbage-PHY faults (and any desynchronized baseband) fail this
// and land on the hold-last-safe-MCS rung instead of propagating NaN into
// triggers, features, or the upward prober.
bool observation_usable(const phy::PhyObservation& obs) {
  return std::isfinite(obs.snr_db) && std::isfinite(obs.noise_dbm) &&
         std::isfinite(obs.cdr) && std::isfinite(obs.throughput_mbps);
}

// MCS occupancy: frames transmitted at each MCS index (one counter per
// MCS, pre-registered so the per-frame path never builds a name).
obs::Counter& mcs_occupancy_counter(phy::McsIndex mcs) {
  constexpr int kMaxTracked = 16;
  static const std::array<obs::Counter*, kMaxTracked> counters = [] {
    std::array<obs::Counter*, kMaxTracked> a{};
    for (int m = 0; m < kMaxTracked; ++m) {
      a[static_cast<std::size_t>(m)] = &obs::Registry::global().counter(
          "controller.mcs_occupancy." + std::to_string(m));
    }
    return a;
  }();
  const int idx = std::clamp(static_cast<int>(mcs), 0, kMaxTracked - 1);
  return *counters[static_cast<std::size_t>(idx)];
}
}  // namespace

LinkController::LinkController(channel::Link* link,
                               const phy::ErrorModel* error_model,
                               ControllerConfig cfg)
    : link_(link),
      error_model_(error_model),
      cfg_(cfg),
      sampler_(error_model),
      ack_model_(error_model, cfg.ack),
      up_prober_(0, cfg.up_prober) {
  if (!link_ || !error_model_) throw std::invalid_argument("null dependency");
  if (!(cfg_.fat_ms > 0.0)) {
    throw std::invalid_argument("ControllerConfig: fat_ms must be > 0, got " +
                                std::to_string(cfg_.fat_ms));
  }
}

bool LinkController::is_working(double cdr, double tput_mbps) const {
  return cdr > cfg_.min_cdr && tput_mbps > cfg_.min_tput_mbps;
}

void LinkController::run_ba(util::Rng& rng) {
  const mac::SweepResult sweep = trainer_.exhaustive(*link_, sampler_, rng);
  // An injected beam-training failure charges the sweep airtime but its
  // responses are unusable: the link keeps the old pair.
  const bool sweep_failed =
      faults_ != nullptr && faults_->active() &&
      faults_->query(faults::FaultKind::kBeamTrainingFailure, t_ms_).fired;
  if (!sweep_failed) {
    tx_beam_ = sweep.tx_beam;
    rx_beam_ = sweep.rx_beam;
  }
  t_ms_ += cfg_.ba_overhead_ms;
}

bool LinkController::classifier_faulted(double t_ms) {
  return faults_ != nullptr && faults_->active() &&
         faults_->query(faults::FaultKind::kClassifierOutage, t_ms).fired;
}

trace::Action LinkController::missing_ack_fallback_action(
    const phy::PhyObservation& obs) const {
  return (persistent_ack_loss() || !is_working(obs.cdr, obs.throughput_mbps))
             ? trace::Action::kRA
             : trace::Action::kNA;
}

void LinkController::plan_missing_ack_fallback(DecisionRequest& request) const {
  const trace::Action fallback = missing_ack_fallback_action(request.obs);
  if (fallback != trace::Action::kNA) request.precomputed = fallback;
}

void LinkController::begin_ra_walk() {
  walking_ = true;
  walk_best_mcs_ = -1;
  walk_best_tput_ = -1.0;
  // The repair starts fresh: stale loss history must not re-trigger before
  // the walk has had a chance to work.
  ack_loss_ewma_ = 0.0;
}

void LinkController::start(util::Rng& rng) {
  run_ba(rng);
  // Find the best working MCS with a quick downward walk from the top.
  const int top = error_model_->table().max_mcs();
  mcs_ = top;
  double best_tput = -1.0;
  phy::McsIndex best = 0;
  for (phy::McsIndex m = top; m >= 0; --m) {
    const phy::PhyObservation obs =
        sampler_.observe(*link_, tx_beam_, rx_beam_, m, rng);
    if (is_working(obs.cdr, obs.throughput_mbps) &&
        obs.throughput_mbps > best_tput) {
      best_tput = obs.throughput_mbps;
      best = m;
    }
    if (best_tput > 0 && obs.throughput_mbps < best_tput) break;
  }
  mcs_ = best;
  up_prober_.reset(mcs_);
  const phy::PhyObservation obs =
      sampler_.observe(*link_, tx_beam_, rx_beam_, mcs_, rng);
  rebaseline(obs);
}

void LinkController::rebaseline(const phy::PhyObservation& obs) {
  baseline_ = obs;
}

trace::FeatureVector LinkController::features_against_baseline(
    const phy::PhyObservation& obs) const {
  trace::FeatureVector f;
  if (!baseline_) return f;
  f.v[0] = baseline_->snr_db - obs.snr_db;
  if (baseline_->tof_ns && obs.tof_ns) {
    f.v[1] = *baseline_->tof_ns - *obs.tof_ns;
  } else {
    f.v[1] = trace::kTofInfinity;
  }
  f.v[2] = obs.noise_dbm - baseline_->noise_dbm;
  f.v[3] = trace::aligned_pdp_similarity(baseline_->pdp, obs.pdp);
  f.v[4] = util::pearson(baseline_->csi, obs.csi);
  f.v[5] = obs.cdr;
  f.v[6] = static_cast<double>(mcs_);
  return f;
}

DecisionRequest LinkController::observe(util::Rng& rng) {
  DecisionRequest request;
  FrameReport& report = request.report;
  report.t_ms = t_ms_;
  report.tx_beam = tx_beam_;
  report.rx_beam = rx_beam_;

  // Choose this frame's MCS: walking probes downward; otherwise the upward
  // prober may spend the frame probing one MCS higher.
  const phy::McsIndex frame_mcs = mcs_;
  // Window-averaged observation (what the classifier and the settle logic
  // consume).
  request.obs = sampler_.observe(*link_, tx_beam_, rx_beam_, frame_mcs, rng);
  const phy::PhyObservation& obs = request.obs;

  // This specific frame either collides with an interference burst or not;
  // its ACK and goodput follow the instantaneous SINR, not the average.
  const double duty =
      link_->interferer() ? link_->interferer()->duty_cycle : 0.0;
  const bool jammed = duty > 0.0 && rng.bernoulli(duty);
  const double frame_snr = jammed
                               ? link_->snr_db(tx_beam_, rx_beam_)
                               : link_->snr_clean_db(tx_beam_, rx_beam_);

  report.mcs = frame_mcs;
  mcs_occupancy_counter(frame_mcs).inc();
  report.ack = ack_model_.ack_received(frame_mcs, frame_snr, rng);
  report.goodput_mbps =
      report.ack ? error_model_->expected_throughput_mbps(frame_mcs, frame_snr)
                 : 0.0;
  double frame_ms = cfg_.fat_ms;
  // Fault seam. Every link-stream draw for this frame's mechanics has
  // happened, so injected faults (drawn from the link's separate fault
  // stream) only change what the controller *sees* -- the ACK indicator
  // feeding the loss EWMA, the PHY observation feeding triggers and
  // features, and the frame clock -- never what the link draws.
  if (faults_ != nullptr && faults_->active()) {
    using faults::FaultKind;
    const double t = report.t_ms;
    if (faults_->query(FaultKind::kDropAck, t).fired) {
      report.ack = false;  // the BA never arrived; the aggregate is lost
      report.goodput_mbps = 0.0;
    } else if (faults_->query(FaultKind::kDuplicateAck, t).fired) {
      report.ack = true;  // ghost ACK: a stale BA can mask a dead frame
    }
    if (faults_->query(FaultKind::kStalePhy, t).fired) {
      if (last_clean_obs_) request.obs = *last_clean_obs_;
    } else if (faults_->query(FaultKind::kGarbagePhy, t).fired) {
      faults::corrupt_observation(request.obs);
    } else {
      const faults::FaultInjector::Verdict truncated =
          faults_->query(FaultKind::kTruncateFeatures, t);
      if (truncated.fired) {
        faults::truncate_observation(request.obs, truncated.magnitude);
      } else {
        last_clean_obs_ = request.obs;
      }
    }
    const faults::FaultInjector::Verdict skew =
        faults_->query(FaultKind::kClockSkew, t);
    if (skew.fired) frame_ms = cfg_.fat_ms * (1.0 + skew.magnitude);
  }
  report.duration_ms = frame_ms;
  t_ms_ += frame_ms;
  ack_loss_ewma_ = (1.0 - cfg_.ack_loss_ewma_weight) * ack_loss_ewma_ +
                   cfg_.ack_loss_ewma_weight * (report.ack ? 0.0 : 1.0);

  if (walking_) {
    // Evaluate the probe we just sent; the walk consumes the frame, no
    // policy decision is due.
    if (is_working(obs.cdr, obs.throughput_mbps) &&
        obs.throughput_mbps > walk_best_tput_) {
      walk_best_tput_ = obs.throughput_mbps;
      walk_best_mcs_ = frame_mcs;
    }
    const bool passed_peak =
        walk_best_mcs_ >= 0 && obs.throughput_mbps < walk_best_tput_;
    if (passed_peak || mcs_ == 0) {
      walking_ = false;
      if (walk_best_mcs_ >= 0) {
        mcs_ = walk_best_mcs_;
        up_prober_.reset(mcs_);
        rebaseline(sampler_.observe(*link_, tx_beam_, rx_beam_, mcs_, rng));
        walked_through_ba_ = false;
      } else if (!walked_through_ba_) {
        // Nothing works on this pair: BA, then a second walk (Algorithm 1).
        run_ba(rng);
        walked_through_ba_ = true;
        mcs_ = error_model_->table().max_mcs();
        begin_ra_walk();
      } else {
        // Both walks failed: camp on MCS 0 and keep trying.
        walked_through_ba_ = false;
        mcs_ = 0;
        up_prober_.reset(0);
      }
    } else {
      --mcs_;  // next probe one MCS lower
    }
    return request;
  }

  // Steady state: ask the policy what this frame's verdict needs.
  request.decision_due = true;
  // Degradation ladder rung 3: the observation is unusable and ACKs still
  // flow (persistent loss has its own obs-free rule in every policy) --
  // hold the last safe MCS. The verdict stays kNA and apply() skips the
  // upward prober so the garbage never reaches it.
  if (!observation_usable(request.obs) && !persistent_ack_loss()) {
    verdict_counters().held_decisions.inc();
    request.hold_last_mcs = true;
    return request;
  }
  plan(request, rng);
  return request;
}

trace::Action LinkController::decide(const DecisionRequest& request,
                                     util::Rng& rng) const {
  if (request.needs_inference()) {
    try {
      return request.classifier->classify(request.features, rng);
    } catch (const BackendOutageError&) {
      // Rung 2 at decide time: the decision backend died mid-request
      // (timeout, disconnect, malformed reply). The jitter draws are spent
      // either way, so substituting the plan-time fallback keeps the run
      // deterministic -- and the link degraded instead of crashed.
      verdict_counters().degraded_decisions.inc();
      outage_fallback_counter().inc();
      return request.outage_fallback;
    }
  }
  return request.resolved_without_inference();
}

void LinkController::note_verdict(trace::Action, const DecisionRequest&) {}

void LinkController::apply(trace::Action verdict, DecisionRequest& request,
                           util::Rng& rng) {
  if (!request.decision_due) return;  // the walk already consumed the frame
  note_verdict(verdict, request);
  request.report.action = verdict;
  VerdictCounters& counters = verdict_counters();
  switch (verdict) {
    case trace::Action::kBA:
      counters.ba.inc();
      run_ba(rng);
      begin_ra_walk();
      break;
    case trace::Action::kRA:
      counters.ra.inc();
      begin_ra_walk();
      break;
    case trace::Action::kNA: {
      counters.na.inc();
      // Rung 3 of the degradation ladder: the observation was unusable, so
      // camp on the current (last safe) MCS -- probing on garbage metrics
      // could walk the link off a working rate.
      if (request.hold_last_mcs) break;
      // Upward probing (shared by all policies, Sec. 8.1). To keep one
      // observation per frame, the prober's verdict applies to the next
      // frame's MCS.
      trace::PairTrace view;
      view.throughput_mbps.assign(
          static_cast<std::size_t>(error_model_->table().size()), 0.0);
      view.cdr.assign(view.throughput_mbps.size(), 0.0);
      // Fill only the two entries the prober inspects, from live estimates.
      const auto cur = static_cast<std::size_t>(mcs_);
      view.cdr[cur] = request.obs.cdr;
      view.throughput_mbps[cur] = request.obs.throughput_mbps;
      if (mcs_ < error_model_->table().max_mcs()) {
        const phy::PhyObservation up = sampler_.observe(
            *link_, tx_beam_, rx_beam_, mcs_ + 1, rng);
        view.cdr[cur + 1] = up.cdr;
        view.throughput_mbps[cur + 1] = up.throughput_mbps;
      }
      trace::GroundTruthConfig rule;
      rule.min_tput_mbps = cfg_.min_tput_mbps;
      rule.min_cdr = cfg_.min_cdr;
      up_prober_.on_frame(view, rule);
      mcs_ = up_prober_.current();
      break;
    }
  }
}

FrameReport LinkController::step(util::Rng& rng) {
  DecisionRequest request = observe(rng);
  const trace::Action verdict = decide(request, rng);
  apply(verdict, request, rng);
  return request.report;
}

// ---------- LiBRA ----------

LibraController::LibraController(channel::Link* link,
                                 const phy::ErrorModel* error_model,
                                 const LibraClassifier* classifier,
                                 ControllerConfig cfg)
    : LinkController(link, error_model, cfg), classifier_(classifier) {
  if (!classifier_) throw std::invalid_argument("null classifier");
}

void LibraController::plan(DecisionRequest& request, util::Rng& rng) {
  (void)rng;
  // Degradation ladder rung 2: the classifier is unavailable -- an injected
  // outage/timeout window, or (remote backends only) a transport fault /
  // failed health probe at the client seam -- so degrade to the COTS
  // missing-ACK heuristic wholesale. Checked before any cadence state so
  // that under a full outage this controller is frame-for-frame the
  // RaFirstController rule (tests/faults_test.cpp and tests/rpc_test.cpp
  // prove bit-identity for both flavors).
  if (classifier_faulted(request.report.t_ms) ||
      backend_unreachable(request.report.t_ms)) {
    verdict_counters().degraded_decisions.inc();
    plan_missing_ack_fallback(request);
    return;
  }
  if (persistent_ack_loss()) {
    // Missing ACKs: no fresh PHY metrics, the distilled rule fires.
    verdict_counters().no_ack_fallbacks.inc();
    holdoff_frames_ = cfg_.post_adapt_holdoff_frames;
    request.precomputed = classifier_->no_ack_action(mcs_, cfg_.ba_overhead_ms);
    return;
  }
  if (holdoff_frames_ > 0) {
    --holdoff_frames_;
    return;  // precomputed stays kNA
  }
  if (++frames_since_decision_ < cfg_.decision_period_frames) {
    return;
  }
  frames_since_decision_ = 0;
  // Rung 2 again, for stale inputs: a non-finite feature (poisoned PDP/CSI
  // taps can slip past the scalar usability check) must never reach the
  // forest -- classify{,_batch} would reject it. Fall back instead.
  const trace::FeatureVector features =
      features_against_baseline(request.obs);
  for (const double v : features.v) {
    if (!std::isfinite(v)) {
      verdict_counters().degraded_decisions.inc();
      plan_missing_ack_fallback(request);
      return;
    }
  }
  request.classifier = classifier_;
  request.features = features;
  // Freeze the rung-2 verdict this frame falls back to if the backend
  // fails between here and the (possibly off-thread, batched) decide.
  request.outage_fallback = missing_ack_fallback_action(request.obs);
}

bool LibraController::backend_unreachable(double t_ms) {
  DecisionBackend* backend = classifier_->backend();
  if (backend == nullptr || backend->local()) return false;
  // Injected transport faults fire at this seam -- the moment the
  // controller would commit to a remote round trip. Checked before the
  // health probe, and a 100%-probability window consumes no draws, so a
  // full kRpcDrop window is frame-identical to a full kClassifierOutage.
  if (faults_ != nullptr && faults_->active()) {
    if (faults_->query(faults::FaultKind::kRpcDrop, t_ms).fired) {
      outage_fallback_counter().inc();
      return true;
    }
    const faults::FaultInjector::Verdict delayed =
        faults_->query(faults::FaultKind::kRpcDelay, t_ms);
    if (delayed.fired && delayed.magnitude >= backend->deadline_ms()) {
      outage_fallback_counter().inc();
      return true;
    }
  }
  if (!backend->available()) {
    outage_fallback_counter().inc();
    return true;
  }
  return false;
}

void LibraController::note_verdict(trace::Action verdict,
                                   const DecisionRequest& request) {
  if (request.needs_inference() && verdict != trace::Action::kNA) {
    holdoff_frames_ = cfg_.post_adapt_holdoff_frames;
  }
}

// ---------- heuristics ----------

void RaFirstController::plan(DecisionRequest& request, util::Rng&) {
  // Trigger when the current MCS stops being a working MCS (Sec. 8.1);
  // Algorithm: RA first, BA happens automatically if the walk fails. This
  // exact rule doubles as rung 2 of the degradation ladder, which is why
  // it lives in the shared base helper.
  plan_missing_ack_fallback(request);
}

void BaFirstController::plan(DecisionRequest& request, util::Rng&) {
  if (persistent_ack_loss() ||
      !is_working(request.obs.cdr, request.obs.throughput_mbps)) {
    request.precomputed = trace::Action::kBA;
  }
}

}  // namespace libra::core
