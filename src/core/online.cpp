#include "core/online.h"

namespace libra::core {

OnlineLibra::OnlineLibra(OnlineLibraConfig cfg)
    : cfg_(cfg), classifier_(cfg.classifier) {}

void OnlineLibra::seed(const trace::Dataset& offline,
                       const trace::GroundTruthConfig& gt, util::Rng& rng) {
  seed_ = offline;
  classifier_.train(seed_, gt, rng);
}

void OnlineLibra::observe(const trace::CaseRecord& record,
                          const trace::GroundTruthConfig& gt,
                          util::Rng& rng) {
  window_.push_back(record);
  while (static_cast<int>(window_.size()) > cfg_.window_size) {
    window_.pop_front();
  }
  ++observed_;
  if (++since_retrain_ >= cfg_.retrain_every) {
    since_retrain_ = 0;
    retrain(gt, rng);
  }
}

void OnlineLibra::retrain(const trace::GroundTruthConfig& gt, util::Rng& rng) {
  trace::Dataset combined = seed_;
  for (const trace::CaseRecord& rec : window_) {
    for (int w = 0; w < cfg_.local_weight; ++w) {
      (rec.forced_na ? combined.na_records : combined.records).push_back(rec);
    }
  }
  classifier_.train(combined, gt, rng);
  ++retrains_;
}

}  // namespace libra::core
