#include "core/online.h"

#include <stdexcept>
#include <string>

namespace libra::core {

namespace {
// GroundTruthConfig carries no operator==; the seed-row cache only needs to
// know whether a retrain arrived with a different parameterization.
bool same_gt(const trace::GroundTruthConfig& a,
             const trace::GroundTruthConfig& b) {
  return a.alpha == b.alpha && a.fat_ms == b.fat_ms &&
         a.ba_overhead_ms == b.ba_overhead_ms &&
         a.min_tput_mbps == b.min_tput_mbps && a.min_cdr == b.min_cdr &&
         a.na_tput_fraction == b.na_tput_fraction &&
         a.tie_tolerance == b.tie_tolerance;
}
}  // namespace

OnlineLibra::OnlineLibra(OnlineLibraConfig cfg)
    : cfg_(cfg), classifier_(cfg.classifier) {
  if (cfg_.window_size < 1) {
    throw std::invalid_argument(
        "OnlineLibraConfig: window_size must be >= 1, got " +
        std::to_string(cfg_.window_size));
  }
  if (cfg_.retrain_every < 1) {
    throw std::invalid_argument(
        "OnlineLibraConfig: retrain_every must be >= 1, got " +
        std::to_string(cfg_.retrain_every));
  }
  if (cfg_.local_weight < 1) {
    throw std::invalid_argument(
        "OnlineLibraConfig: local_weight must be >= 1, got " +
        std::to_string(cfg_.local_weight));
  }
}

void OnlineLibra::relabel_seed(const trace::GroundTruthConfig& gt) {
  seed_head_rows_ = ml::DataSet(trace::FeatureVector::kDim);
  seed_tail_rows_ = ml::DataSet(trace::FeatureVector::kDim);
  seed_head_rows_.reserve(seed_.records.size());
  seed_tail_rows_.reserve(seed_.na_records.size());
  const std::vector<trace::LabeledEntry> entries = seed_.labeled3(gt);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    ml::DataSet& target =
        i < seed_.records.size() ? seed_head_rows_ : seed_tail_rows_;
    target.add(entries[i].x.v, LibraClassifier::to_label(entries[i].y));
  }
  labeled_gt_ = gt;
}

void OnlineLibra::seed(const trace::Dataset& offline,
                       const trace::GroundTruthConfig& gt, util::Rng& rng) {
  seed_ = offline;
  relabel_seed(gt);
  // Head + tail is exactly labeled3's row order over the seed dataset, so
  // this is train(seed_, gt, rng) without labeling the campaign twice.
  ml::DataSet rows(trace::FeatureVector::kDim);
  rows.reserve(seed_head_rows_.size() + seed_tail_rows_.size());
  for (std::size_t i = 0; i < seed_head_rows_.size(); ++i) {
    rows.add(seed_head_rows_.row(i), seed_head_rows_.label(i));
  }
  for (std::size_t i = 0; i < seed_tail_rows_.size(); ++i) {
    rows.add(seed_tail_rows_.row(i), seed_tail_rows_.label(i));
  }
  classifier_.train_labeled(rows, rng);
}

void OnlineLibra::observe(const trace::CaseRecord& record,
                          const trace::GroundTruthConfig& gt,
                          util::Rng& rng) {
  window_.push_back(record);
  while (static_cast<int>(window_.size()) > cfg_.window_size) {
    window_.pop_front();
  }
  ++observed_;
  if (++since_retrain_ >= cfg_.retrain_every) {
    since_retrain_ = 0;
    retrain(gt, rng);
  }
}

void OnlineLibra::retrain(const trace::GroundTruthConfig& gt, util::Rng& rng) {
  if (!labeled_gt_.has_value() || !same_gt(*labeled_gt_, gt)) {
    relabel_seed(gt);
  }
  // Label only the (small) window; the weighted duplication mirrors the
  // legacy combined-dataset append, record by record.
  trace::Dataset win;
  for (const trace::CaseRecord& rec : window_) {
    for (int w = 0; w < cfg_.local_weight; ++w) {
      (rec.forced_na ? win.na_records : win.records).push_back(rec);
    }
  }
  const std::vector<trace::LabeledEntry> win_entries = win.labeled3(gt);
  const std::size_t win_head = win.records.size();

  // Row order must replicate the legacy path exactly (bootstrap sampling is
  // row-order sensitive): seed impairment rows, weighted window impairment
  // rows, seed NA rows, weighted window forced-NA rows.
  ml::DataSet rows(trace::FeatureVector::kDim);
  rows.reserve(seed_head_rows_.size() + seed_tail_rows_.size() +
               win_entries.size());
  for (std::size_t i = 0; i < seed_head_rows_.size(); ++i) {
    rows.add(seed_head_rows_.row(i), seed_head_rows_.label(i));
  }
  for (std::size_t i = 0; i < win_head; ++i) {
    rows.add(win_entries[i].x.v, LibraClassifier::to_label(win_entries[i].y));
  }
  for (std::size_t i = 0; i < seed_tail_rows_.size(); ++i) {
    rows.add(seed_tail_rows_.row(i), seed_tail_rows_.label(i));
  }
  for (std::size_t i = win_head; i < win_entries.size(); ++i) {
    rows.add(win_entries[i].x.v, LibraClassifier::to_label(win_entries[i].y));
  }
  classifier_.train_labeled(rows, rng);
  ++retrains_;
}

}  // namespace libra::core
