#include "core/online.h"

#include <stdexcept>
#include <string>

namespace libra::core {

OnlineLibra::OnlineLibra(OnlineLibraConfig cfg)
    : cfg_(cfg), classifier_(cfg.classifier) {
  if (cfg_.window_size < 1) {
    throw std::invalid_argument(
        "OnlineLibraConfig: window_size must be >= 1, got " +
        std::to_string(cfg_.window_size));
  }
  if (cfg_.retrain_every < 1) {
    throw std::invalid_argument(
        "OnlineLibraConfig: retrain_every must be >= 1, got " +
        std::to_string(cfg_.retrain_every));
  }
  if (cfg_.local_weight < 1) {
    throw std::invalid_argument(
        "OnlineLibraConfig: local_weight must be >= 1, got " +
        std::to_string(cfg_.local_weight));
  }
}

void OnlineLibra::seed(const trace::Dataset& offline,
                       const trace::GroundTruthConfig& gt, util::Rng& rng) {
  seed_ = offline;
  classifier_.train(seed_, gt, rng);
}

void OnlineLibra::observe(const trace::CaseRecord& record,
                          const trace::GroundTruthConfig& gt,
                          util::Rng& rng) {
  window_.push_back(record);
  while (static_cast<int>(window_.size()) > cfg_.window_size) {
    window_.pop_front();
  }
  ++observed_;
  if (++since_retrain_ >= cfg_.retrain_every) {
    since_retrain_ = 0;
    retrain(gt, rng);
  }
}

void OnlineLibra::retrain(const trace::GroundTruthConfig& gt, util::Rng& rng) {
  trace::Dataset combined = seed_;
  for (const trace::CaseRecord& rec : window_) {
    for (int w = 0; w < cfg_.local_weight; ++w) {
      (rec.forced_na ? combined.na_records : combined.records).push_back(rec);
    }
  }
  classifier_.train(combined, gt, rng);
  ++retrains_;
}

}  // namespace libra::core
