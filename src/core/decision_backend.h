// Decision backends: where a classify batch's forest votes come from.
//
// LibraClassifier owns the decision *policy* -- window-noise jitter,
// non-finite row filtering, arg-max + confidence gating -- but the
// per-class vote fractions themselves can be computed anywhere: by the
// in-process forest (LocalBackend, today's behavior bit for bit) or by a
// standalone inference daemon reached over a socket (rpc::RemoteBackend,
// src/rpc/client.h). This seam is what enables the controller/minion
// topology of ROADMAP item 2: jitter is drawn client-side from each link's
// own RNG stream and only finished feature rows cross the boundary, so the
// server is stateless and a loopback round trip is bit-identical to the
// local call (vote fractions are integer tree counts / num_trees -- exact
// in double -- and ship as raw bit patterns).
//
// Failure contract: vote_batch() throws BackendOutageError when the votes
// cannot be computed (remote timeout, disconnect, malformed reply). Callers
// substitute DecisionRequest::outage_fallback -- degradation-ladder rung 2,
// the same missing-ACK rule an injected kClassifierOutage triggers -- so a
// dead daemon degrades the fleet instead of crashing it. available() is the
// cheap plan-time health probe: a controller whose backend is known-dead
// skips the request (and the jitter draws) entirely, which is what makes a
// dead-from-start remote fleet frame-identical to the RA-first heuristic.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ml/data.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"

namespace libra::core {

// The decision backend could not answer: remote timeout, disconnect, or a
// malformed reply. Carries no verdicts -- the caller falls back.
class BackendOutageError : public std::runtime_error {
 public:
  explicit BackendOutageError(const std::string& what)
      : std::runtime_error(what) {}
};

// A remote peer's cumulative metrics snapshot, labeled with the origin it
// should appear under in a merged scrape ("daemon", ...).
struct PeerStats {
  std::string origin;
  obs::MetricsSnapshot snapshot;
};

class DecisionBackend {
 public:
  virtual ~DecisionBackend() = default;

  // Backend kind for logs and error messages ("local", "remote").
  virtual std::string_view name() const = 0;

  // True when votes are computed in-process: transport faults (kRpcDrop /
  // kRpcDelay) and availability probes do not apply.
  virtual bool local() const = 0;

  // Cheap health probe at the controller's plan seam; may attempt a
  // periodic reconnect. Local backends are always available.
  virtual bool available() = 0;

  // Per-request deadline in ms -- an injected kRpcDelay of at least this
  // magnitude counts as an outage. Infinity for local backends.
  virtual double deadline_ms() const = 0;

  // The peer process's metrics snapshot for the fleet aggregator's merged
  // scrape. Local backends have no peer: the default is nullopt, which is
  // also what a remote backend answers during an outage.
  virtual std::optional<PeerStats> peer_stats() { return std::nullopt; }

  // Per-class vote fractions for every row, in row order. Throws
  // BackendOutageError when the backend cannot answer.
  virtual std::vector<std::vector<double>> vote_batch(
      const ml::DataSet& rows) = 0;
};

// The in-process backend: forwards to RandomForest::vote_fractions_batch on
// a borrowed fitted forest (compiled or interpreted, whatever the forest
// serves). Never unavailable, never throws BackendOutageError.
class LocalBackend final : public DecisionBackend {
 public:
  // `forest` is borrowed and must outlive the backend.
  explicit LocalBackend(const ml::RandomForest* forest);

  std::string_view name() const override { return "local"; }
  bool local() const override { return true; }
  bool available() override { return true; }
  double deadline_ms() const override;
  std::vector<std::vector<double>> vote_batch(
      const ml::DataSet& rows) override;

 private:
  const ml::RandomForest* forest_;  // non-owning
};

// Decisions resolved through the rung-2 fallback because the backend was
// unreachable (plan-time probe) or failed mid-batch (decide-time outage).
// Shared by core::LibraController and sim::run_fleet's decide phase.
obs::Counter& outage_fallback_counter();

}  // namespace libra::core
