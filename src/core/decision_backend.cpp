#include "core/decision_backend.h"

#include <limits>
#include <stdexcept>

namespace libra::core {

LocalBackend::LocalBackend(const ml::RandomForest* forest) : forest_(forest) {
  if (forest_ == nullptr) {
    throw std::invalid_argument("LocalBackend: null forest");
  }
}

double LocalBackend::deadline_ms() const {
  return std::numeric_limits<double>::infinity();
}

std::vector<std::vector<double>> LocalBackend::vote_batch(
    const ml::DataSet& rows) {
  return forest_->vote_fractions_batch(rows);
}

obs::Counter& outage_fallback_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("rpc.outage_fallbacks");
  return c;
}

}  // namespace libra::core
