#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/aggregate.h"
#include "obs/metrics.h"

namespace libra::core {

namespace {
// Trainer telemetry: the row-stream intake, the off-path fit loop, and the
// swap gates. The swap-latency histogram times install + remote push -- the
// window in which two generations coexist.
struct TrainerMetrics {
  obs::Counter& rows_sampled;
  obs::Counter& rows_dropped;
  obs::Counter& rows_ingested;
  obs::Counter& rows_rejected;  // non-finite features at ingest
  obs::Counter& label_mismatches;
  obs::Counter& fits;
  obs::Counter& swaps_shipped;
  obs::Counter& swaps_rejected;
  obs::Counter& remote_pushes;
  obs::Counter& remote_push_failures;
  obs::Histogram& fit_latency_us;
  obs::Histogram& swap_latency_us;
  obs::Gauge& drift_score;
  obs::Gauge& candidate_acc;
  obs::Gauge& incumbent_acc;
  obs::Gauge& generation;
  obs::Gauge& window_rows;
};
TrainerMetrics& trainer_metrics() {
  obs::Registry& r = obs::Registry::global();
  static TrainerMetrics m{r.counter("trainer.rows_sampled"),
                          r.counter("trainer.rows_dropped"),
                          r.counter("trainer.rows_ingested"),
                          r.counter("trainer.rows_rejected"),
                          r.counter("trainer.label_mismatches"),
                          r.counter("trainer.fits"),
                          r.counter("trainer.swaps_shipped"),
                          r.counter("trainer.swaps_rejected"),
                          r.counter("trainer.remote_pushes"),
                          r.counter("trainer.remote_push_failures"),
                          r.histogram("trainer.fit_latency_us"),
                          r.histogram("trainer.swap_latency_us"),
                          r.gauge("trainer.drift_score"),
                          r.gauge("trainer.candidate_acc"),
                          r.gauge("trainer.incumbent_acc"),
                          r.gauge("trainer.generation"),
                          r.gauge("trainer.window_rows")};
  return m;
}

bool all_finite(const trace::FeatureVector& features) {
  for (const double v : features.v) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}
}  // namespace

trace::Action hindsight_label(trace::Action served, const FrameReport& next,
                              const HindsightConfig& cfg) {
  if (served != trace::Action::kBA && served != trace::Action::kRA &&
      served != trace::Action::kNA) {
    throw std::invalid_argument(
        "hindsight_label: out-of-enum served action " +
        std::to_string(static_cast<int>(served)));
  }
  const bool working = next.ack && next.goodput_mbps >= cfg.min_tput_mbps;
  if (working) return served;
  switch (served) {
    case trace::Action::kBA:
      return trace::Action::kRA;  // the sweep did not fix it: rate problem
    case trace::Action::kRA:
      return trace::Action::kBA;  // the walk did not fix it: beam problem
    default:
      // Doing nothing was wrong; escalate by the missing-ACK rule's shape.
      return next.mcs < cfg.ba_mcs_threshold ? trace::Action::kBA
                                             : trace::Action::kRA;
  }
}

// ---- RowRing ----

RowRing::RowRing(std::size_t capacity) : cap_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RowRing: capacity must be >= 1");
  }
}

RowRing::Offer RowRing::offer(TrainRow&& row) {
  std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
  if (!lk.owns_lock()) return Offer::kContended;  // never block the shard
  Offer outcome = Offer::kAccepted;
  if (rows_.size() >= cap_) {
    rows_.pop_front();  // drop-oldest: recent outcomes matter more
    outcome = Offer::kReplacedOldest;
  }
  rows_.push_back(std::move(row));
  return outcome;
}

void RowRing::drain(std::vector<TrainRow>& out) {
  std::lock_guard<std::mutex> lk(mu_);
  out.insert(out.end(), std::make_move_iterator(rows_.begin()),
             std::make_move_iterator(rows_.end()));
  rows_.clear();
}

std::size_t RowRing::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rows_.size();
}

// ---- ModelSlot ----

std::shared_ptr<const ModelSlot::Model> ModelSlot::pin() const {
  std::lock_guard<std::mutex> lk(mu_);
  return model_;
}

std::uint64_t ModelSlot::install(ml::CompiledForest forest) {
  auto model = std::make_shared<Model>();
  model->forest = std::move(forest);
  std::lock_guard<std::mutex> lk(mu_);
  model->generation = ++next_generation_;
  model_ = std::move(model);
  return next_generation_;
}

std::uint64_t ModelSlot::generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return model_ ? model_->generation : 0;
}

// ---- SwapBackend ----

double SwapBackend::deadline_ms() const {
  return std::numeric_limits<double>::infinity();
}

std::vector<std::vector<double>> SwapBackend::vote_batch(
    const ml::DataSet& rows) {
  const std::shared_ptr<const ModelSlot::Model> model = slot_->pin();
  if (model == nullptr) {
    throw BackendOutageError("swap backend: no model installed yet");
  }
  // The whole batch walks this one pinned generation, whatever installs
  // land meanwhile.
  return model->forest.vote_fractions_batch(rows);
}

// ---- DriftDetector ----

void DriftDetectorConfig::validate() const {
  if (!(threshold > 0.0)) {
    throw std::invalid_argument(
        "DriftDetectorConfig: threshold must be > 0, got " +
        std::to_string(threshold));
  }
  if (window_rows == 0) {
    throw std::invalid_argument("DriftDetectorConfig: window_rows must be >= 1");
  }
}

DriftDetector::DriftDetector(DriftDetectorConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

void DriftDetector::observe(std::uint64_t rows, std::uint64_t mismatches) {
  if (rows == 0) return;
  if (mismatches > rows) {
    throw std::invalid_argument("DriftDetector: mismatches " +
                                std::to_string(mismatches) + " > rows " +
                                std::to_string(rows));
  }
  chunks_.emplace_back(rows, mismatches);
  rows_ += rows;
  mismatches_ += mismatches;
  // Slide: keep at least window_rows (whole chunks; a chunk straddling the
  // boundary stays until the window can shed it entirely).
  while (!chunks_.empty() && rows_ - chunks_.front().first >= cfg_.window_rows) {
    rows_ -= chunks_.front().first;
    mismatches_ -= chunks_.front().second;
    chunks_.pop_front();
  }
}

void DriftDetector::feed_degraded_fraction(double fraction) {
  degraded_ = std::clamp(fraction, 0.0, 1.0);
}

double DriftDetector::mismatch_fraction() const {
  return rows_ == 0 ? 0.0
                    : static_cast<double>(mismatches_) /
                          static_cast<double>(rows_);
}

double DriftDetector::score() const {
  return std::max(mismatch_fraction(), degraded_);
}

void DriftDetector::reset() {
  chunks_.clear();
  rows_ = 0;
  mismatches_ = 0;
  degraded_ = 0.0;
}

// ---- FleetTrainer ----

void FleetTrainerConfig::validate() const {
  if (!(sample_rate >= 0.0 && sample_rate <= 1.0)) {
    throw std::invalid_argument(
        "FleetTrainerConfig: sample_rate must be in [0, 1], got " +
        std::to_string(sample_rate));
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument("FleetTrainerConfig: ring_capacity must be >= 1");
  }
  if (min_fit_rows == 0) {
    throw std::invalid_argument("FleetTrainerConfig: min_fit_rows must be >= 1");
  }
  if (window_rows < min_fit_rows) {
    throw std::invalid_argument(
        "FleetTrainerConfig: window_rows (" + std::to_string(window_rows) +
        ") must be >= min_fit_rows (" + std::to_string(min_fit_rows) + ")");
  }
  if (holdout_every < 2) {
    throw std::invalid_argument(
        "FleetTrainerConfig: holdout_every must be >= 2 (1 would starve the "
        "training window), got " + std::to_string(holdout_every));
  }
  if (holdout_rows == 0) {
    throw std::invalid_argument("FleetTrainerConfig: holdout_rows must be >= 1");
  }
  if (min_holdout_rows > holdout_rows) {
    throw std::invalid_argument(
        "FleetTrainerConfig: min_holdout_rows (" +
        std::to_string(min_holdout_rows) + ") must be <= holdout_rows (" +
        std::to_string(holdout_rows) + ")");
  }
  if (!(min_accuracy_gain >= 0.0 && min_accuracy_gain <= 1.0)) {
    throw std::invalid_argument(
        "FleetTrainerConfig: min_accuracy_gain must be in [0, 1], got " +
        std::to_string(min_accuracy_gain));
  }
  if (!(train_period_ms > 0.0)) {
    throw std::invalid_argument(
        "FleetTrainerConfig: train_period_ms must be > 0, got " +
        std::to_string(train_period_ms));
  }
  if (fit_every_rows == 0) {
    throw std::invalid_argument(
        "FleetTrainerConfig: fit_every_rows must be >= 1");
  }
  if (forest.num_trees < 1) {
    throw std::invalid_argument(
        "FleetTrainerConfig: forest.num_trees must be >= 1, got " +
        std::to_string(forest.num_trees));
  }
  for (const std::int64_t t : swap_at_ticks) {
    if (t < 0) {
      throw std::invalid_argument(
          "FleetTrainerConfig: swap_at_ticks entries must be >= 0, got " +
          std::to_string(t));
    }
  }
  drift.validate();
}

FleetTrainer::FleetTrainer(FleetTrainerConfig cfg)
    : cfg_(std::move(cfg)),
      swap_ticks_(cfg_.swap_at_ticks),
      drift_(cfg_.drift),
      fit_rng_(cfg_.seed) {
  cfg_.validate();
  std::sort(swap_ticks_.begin(), swap_ticks_.end());
  swap_ticks_.erase(std::unique(swap_ticks_.begin(), swap_ticks_.end()),
                    swap_ticks_.end());
}

FleetTrainer::~FleetTrainer() { stop(); }

void FleetTrainer::seed_model(const ml::RandomForest& forest) {
  const std::uint64_t gen =
      slot_.install(ml::CompiledForest(forest, cfg_.compiled));
  trainer_metrics().generation.set(static_cast<double>(gen));
}

void FleetTrainer::attach_producers(std::size_t n) {
  // mu_ orders the ring swap against a free-running ingest; producers must
  // still not be offering concurrently (run_fleet attaches before any
  // shard thread exists).
  std::lock_guard<std::mutex> lk(mu_);
  rings_.clear();
  rings_.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    rings_.push_back(std::make_unique<RowRing>(cfg_.ring_capacity));
  }
}

bool FleetTrainer::wants(std::uint32_t link, std::uint64_t seq) const {
  if (cfg_.sample_rate >= 1.0) return true;
  if (cfg_.sample_rate <= 0.0) return false;
  // Stateless hash of (seed, link, decision sequence): the same decision
  // samples identically whatever shard or thread asks.
  const std::uint64_t h = mix64(
      mix64(cfg_.seed ^ (0x517cc1b727220a95ULL * (std::uint64_t{link} + 1))) ^
      seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < cfg_.sample_rate;
}

void FleetTrainer::offer(std::size_t producer, TrainRow row) {
  TrainerMetrics& metrics = trainer_metrics();
  if (producer >= rings_.size()) {
    throw std::out_of_range("FleetTrainer::offer: producer " +
                            std::to_string(producer) + " of " +
                            std::to_string(rings_.size()));
  }
  rows_sampled_.fetch_add(1, std::memory_order_relaxed);
  metrics.rows_sampled.inc();
  if (rings_[producer]->offer(std::move(row)) != RowRing::Offer::kAccepted) {
    rows_dropped_.fetch_add(1, std::memory_order_relaxed);
    metrics.rows_dropped.inc();
  }
}

void FleetTrainer::on_tick(std::int64_t tick) {
  std::lock_guard<std::mutex> lk(mu_);
  ingest_locked();
  bool due = false;
  while (next_swap_ < swap_ticks_.size() && tick >= swap_ticks_[next_swap_]) {
    ++next_swap_;
    due = true;
  }
  if (due) train_once_locked(/*force=*/true);
}

void FleetTrainer::start() {
  if (pinned_schedule()) {
    throw std::logic_error(
        "FleetTrainer::start: free-running mode is incompatible with a "
        "pinned swap_at_ticks schedule");
  }
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&FleetTrainer::thread_main, this);
}

void FleetTrainer::stop() {
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool FleetTrainer::running() const { return thread_.joinable(); }

void FleetTrainer::thread_main() {
  const auto period = std::chrono::duration<double, std::milli>(
      cfg_.train_period_ms);
  while (true) {
    {
      std::unique_lock<std::mutex> lk(stop_mu_);
      if (stop_cv_.wait_for(lk, period, [&] { return stop_requested_; })) {
        return;
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    ingest_locked();
    if (rows_since_fit_ >= cfg_.fit_every_rows &&
        window_.size() >= cfg_.min_fit_rows) {
      train_once_locked(/*force=*/false);
    }
  }
}

std::size_t FleetTrainer::ingest_now() {
  std::lock_guard<std::mutex> lk(mu_);
  return ingest_locked();
}

std::size_t FleetTrainer::ingest_locked() {
  TrainerMetrics& metrics = trainer_metrics();
  drain_buf_.clear();
  for (const std::unique_ptr<RowRing>& ring : rings_) {
    ring->drain(drain_buf_);
  }
  if (drain_buf_.empty()) return 0;
  // Canonicalize: rings are per-shard, so the concatenation order depends
  // on the shard layout; (tick, link) does not.
  std::sort(drain_buf_.begin(), drain_buf_.end(),
            [](const TrainRow& a, const TrainRow& b) {
              return a.tick != b.tick ? a.tick < b.tick : a.link < b.link;
            });
  const std::shared_ptr<const ModelSlot::Model> incumbent = slot_.pin();
  std::uint64_t scored = 0;
  std::uint64_t mismatches = 0;
  std::size_t accepted = 0;
  for (TrainRow& row : drain_buf_) {
    if (!all_finite(row.features)) {
      // A garbage-PHY observation that slipped into the stream must not
      // poison the window or crash the off-path fit.
      metrics.rows_rejected.inc();
      continue;
    }
    ++accepted;
    ++rows_since_fit_;
    if (incumbent != nullptr) {
      ++scored;
      if (incumbent->forest.predict(row.features.v) !=
          LibraClassifier::to_label(row.label)) {
        ++mismatches;
      }
    }
    const std::uint64_t n =
        rows_ingested_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % cfg_.holdout_every == 0) {
      holdout_.push_back(std::move(row));
      while (holdout_.size() > cfg_.holdout_rows) holdout_.pop_front();
    } else {
      window_.push_back(std::move(row));
      while (window_.size() > cfg_.window_rows) window_.pop_front();
    }
  }
  metrics.rows_ingested.inc(accepted);
  metrics.label_mismatches.inc(mismatches);
  metrics.window_rows.set(static_cast<double>(window_.size()));
  drift_.observe(scored, mismatches);
  metrics.drift_score.set(drift_.score());
  return accepted;
}

FleetTrainer::FitOutcome FleetTrainer::train_once(bool force) {
  std::lock_guard<std::mutex> lk(mu_);
  return train_once_locked(force);
}

double FleetTrainer::holdout_accuracy(const ml::CompiledForest& forest,
                                      const std::deque<TrainRow>& holdout) {
  if (holdout.empty()) return 0.0;
  std::size_t correct = 0;
  for (const TrainRow& row : holdout) {
    if (forest.predict(row.features.v) ==
        LibraClassifier::to_label(row.label)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(holdout.size());
}

FleetTrainer::FitOutcome FleetTrainer::train_once_locked(bool force) {
  TrainerMetrics& metrics = trainer_metrics();
  FitOutcome outcome;
  outcome.drift_score = drift_.score();
  rows_since_fit_ = 0;
  if (window_.size() < cfg_.min_fit_rows) {
    outcome.reason = "insufficient window rows (" +
                     std::to_string(window_.size()) + " < " +
                     std::to_string(cfg_.min_fit_rows) + ")";
    return outcome;
  }

  // Fit the candidate through the same path OnlineLibra's single-link
  // retrain uses (LibraClassifier::train_labeled), on a deterministic
  // stream: fit f consumes the f-th fork of Rng(seed), whatever thread
  // runs it.
  ml::DataSet rows(trace::FeatureVector::kDim);
  rows.reserve(window_.size());
  for (const TrainRow& row : window_) {
    rows.add(row.features.v, LibraClassifier::to_label(row.label));
  }
  LibraClassifierConfig cand_cfg;
  cand_cfg.forest = cfg_.forest;
  cand_cfg.compile_inference = true;
  cand_cfg.compiled = cfg_.compiled;
  LibraClassifier candidate(cand_cfg);
  util::Rng fit_stream = fit_rng_.fork();
  {
    const obs::StopWatch fit_watch;
    candidate.train_labeled(rows, fit_stream);
    metrics.fit_latency_us.observe(fit_watch.elapsed_us());
  }
  fits_.fetch_add(1, std::memory_order_relaxed);
  metrics.fits.inc();
  outcome.fitted = true;

  const ml::CompiledForest* compiled = candidate.forest().compiled();
  const std::shared_ptr<const ModelSlot::Model> incumbent = slot_.pin();
  if (holdout_.size() >= cfg_.min_holdout_rows) {
    outcome.candidate_acc = holdout_accuracy(*compiled, holdout_);
    outcome.incumbent_acc =
        incumbent ? holdout_accuracy(incumbent->forest, holdout_) : 0.0;
    metrics.candidate_acc.set(outcome.candidate_acc);
    metrics.incumbent_acc.set(outcome.incumbent_acc);
  }

  bool ship = force;
  if (!force) {
    if (holdout_.size() < cfg_.min_holdout_rows) {
      outcome.reason = "insufficient holdout rows (" +
                       std::to_string(holdout_.size()) + " < " +
                       std::to_string(cfg_.min_holdout_rows) + ")";
    } else if (!drift_.drifted()) {
      outcome.reason = "no drift (score " + std::to_string(outcome.drift_score) +
                       " < threshold " +
                       std::to_string(cfg_.drift.threshold) + ")";
    } else if (incumbent != nullptr &&
               outcome.candidate_acc <
                   outcome.incumbent_acc + cfg_.min_accuracy_gain) {
      outcome.reason = "accuracy gate (candidate " +
                       std::to_string(outcome.candidate_acc) +
                       " < incumbent " + std::to_string(outcome.incumbent_acc) +
                       " + " + std::to_string(cfg_.min_accuracy_gain) + ")";
    } else {
      ship = true;
    }
  }

  if (!ship) {
    swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics.swaps_rejected.inc();
    return outcome;
  }

  const obs::StopWatch swap_watch;
  outcome.generation = slot_.install(ml::CompiledForest(*compiled));
  if (remote_push_) {
    metrics.remote_pushes.inc();
    if (!remote_push_(candidate.forest())) {
      metrics.remote_push_failures.inc();
    }
  }
  metrics.swap_latency_us.observe(swap_watch.elapsed_us());
  outcome.shipped = true;
  swaps_shipped_.fetch_add(1, std::memory_order_relaxed);
  metrics.swaps_shipped.inc();
  metrics.generation.set(static_cast<double>(outcome.generation));
  drift_.reset();  // the new incumbent starts with a clean slate
  metrics.drift_score.set(drift_.score());
  return outcome;
}

void FleetTrainer::consume_aggregator(const obs::Aggregator& aggregator) {
  const std::vector<double> degraded = aggregator.counter_rate_series(
      "controller", "controller.degraded_decisions");
  const std::vector<double> frames =
      aggregator.counter_rate_series("controller", "fleet.link_frames");
  if (degraded.empty() || frames.empty() || frames.back() <= 0.0) return;
  std::lock_guard<std::mutex> lk(mu_);
  drift_.feed_degraded_fraction(degraded.back() / frames.back());
  trainer_metrics().drift_score.set(drift_.score());
}

void FleetTrainer::set_remote_push(
    std::function<bool(const ml::RandomForest&)> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  remote_push_ = std::move(fn);
}

double FleetTrainer::drift_score() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drift_.score();
}

std::size_t FleetTrainer::window_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return window_.size();
}

std::size_t FleetTrainer::holdout_size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return holdout_.size();
}

}  // namespace libra::core
