#include "rpc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/model_io.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace libra::rpc {

namespace {

// Client-side transport telemetry; rpc.client.outages is the transport
// failure count (each one becomes a BackendOutageError upstream).
struct ClientMetrics {
  obs::Counter& requests;
  obs::Counter& rows;
  obs::Counter& retries;
  obs::Counter& reconnects;
  obs::Counter& outages;
  obs::Counter& bytes_tx;
  obs::Counter& bytes_rx;
  obs::Histogram& rtt_us;
};
ClientMetrics& client_metrics() {
  obs::Registry& r = obs::Registry::global();
  static ClientMetrics m{r.counter("rpc.client.requests"),
                         r.counter("rpc.client.rows"),
                         r.counter("rpc.client.retries"),
                         r.counter("rpc.client.reconnects"),
                         r.counter("rpc.client.outages"),
                         r.counter("rpc.client.bytes_tx"),
                         r.counter("rpc.client.bytes_rx"),
                         r.histogram("rpc.client.rtt_us")};
  return m;
}

bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

timeval deadline_to_timeval(double deadline_ms) {
  timeval tv{};
  if (deadline_ms > 0.0 && std::isfinite(deadline_ms)) {
    const long total_us = static_cast<long>(deadline_ms * 1000.0);
    tv.tv_sec = total_us / 1000000;
    tv.tv_usec = total_us % 1000000;
    // A zero timeval means "block forever" to setsockopt; round a tiny
    // deadline up to 1us so it still behaves as a deadline.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  return tv;
}

}  // namespace

ClientConfig parse_remote_addr(const std::string& addr) {
  ClientConfig cfg;
  std::string rest = addr;
  if (rest.rfind("unix:", 0) == 0) {
    rest = rest.substr(5);
    if (rest.empty()) {
      throw std::invalid_argument("remote address: empty unix socket path");
    }
    cfg.unix_socket = rest;
    return cfg;
  }
  if (rest.find('/') != std::string::npos) {  // bare filesystem path
    cfg.unix_socket = rest;
    return cfg;
  }
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    throw std::invalid_argument(
        "remote address '" + addr +
        "' is not unix:PATH, a /path, or HOST:PORT");
  }
  cfg.host = rest.substr(0, colon);
  const std::string port_text = rest.substr(colon + 1);
  std::size_t pos = 0;
  int port = 0;
  try {
    port = std::stoi(port_text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != port_text.size() || port <= 0 || port > 65535) {
    throw std::invalid_argument("remote address '" + addr +
                                "': bad port '" + port_text + "'");
  }
  cfg.port = port;
  return cfg;
}

DecisionClient::DecisionClient(ClientConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.unix_socket.empty() && (cfg_.port <= 0 || cfg_.port > 65535)) {
    throw std::invalid_argument("DecisionClient: TCP port must be in [1, 65535]");
  }
  if (!cfg_.unix_socket.empty() &&
      cfg_.unix_socket.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::invalid_argument("DecisionClient: unix socket path too long: " +
                                cfg_.unix_socket);
  }
}

DecisionClient::~DecisionClient() { close(); }

std::string DecisionClient::address() const {
  if (!cfg_.unix_socket.empty()) return "unix:" + cfg_.unix_socket;
  return cfg_.host + ":" + std::to_string(cfg_.port);
}

bool DecisionClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

bool DecisionClient::connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return connect_locked();
}

void DecisionClient::close() {
  std::lock_guard<std::mutex> lock(mu_);
  close_locked();
}

bool DecisionClient::connect_locked() {
  if (fd_ >= 0) return true;
  int fd = -1;
  if (!cfg_.unix_socket.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
  }
  const timeval tv = deadline_to_timeval(cfg_.deadline_ms);
  if (tv.tv_sec != 0 || tv.tv_usec != 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  fd_ = fd;
  recv_buf_.clear();
  client_metrics().reconnects.inc();
  return true;
}

void DecisionClient::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recv_buf_.clear();
}

std::optional<Frame> DecisionClient::round_trip_locked(
    MsgType type, std::span<const std::uint8_t> payload) {
  if (fd_ < 0 && !connect_locked()) return std::nullopt;
  ClientMetrics& metrics = client_metrics();
  OBS_SPAN("rpc.client.round_trip", &metrics.rtt_us);
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  if (!send_all(fd_, bytes)) {
    close_locked();
    return std::nullopt;
  }
  metrics.bytes_tx.inc(bytes.size());
  std::uint8_t chunk[16384];
  for (;;) {
    std::size_t consumed = 0;
    std::optional<Frame> frame;
    try {
      frame = decode_frame(recv_buf_, consumed);
    } catch (const WireError&) {
      // Corrupted reply stream: no way to resync, drop the connection.
      close_locked();
      return std::nullopt;
    }
    if (frame.has_value()) {
      recv_buf_.erase(recv_buf_.begin(),
                      recv_buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return frame;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {  // server closed mid-reply
      close_locked();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK here is the SO_RCVTIMEO deadline expiring.
      close_locked();
      return std::nullopt;
    }
    metrics.bytes_rx.inc(static_cast<std::uint64_t>(n));
    recv_buf_.insert(recv_buf_.end(), chunk, chunk + n);
  }
}

std::optional<Frame> DecisionClient::request_locked(
    MsgType type, std::span<const std::uint8_t> payload) {
  client_metrics().requests.inc();
  std::optional<Frame> reply = round_trip_locked(type, payload);
  if (!reply.has_value() && cfg_.retry_once) {
    // One fresh-connection retry covers the common "server restarted
    // between batches" case without hiding a real outage.
    client_metrics().retries.inc();
    if (connect_locked()) reply = round_trip_locked(type, payload);
  }
  if (!reply.has_value()) client_metrics().outages.inc();
  return reply;
}

std::optional<HelloMsg> DecisionClient::hello() {
  std::lock_guard<std::mutex> lock(mu_);
  HelloMsg msg;
  const std::optional<Frame> reply =
      request_locked(MsgType::kHello, msg.encode());
  if (!reply.has_value() || reply->type != MsgType::kHello) return std::nullopt;
  try {
    return HelloMsg::decode(reply->payload);
  } catch (const WireError&) {
    return std::nullopt;
  }
}

bool DecisionClient::ping() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::optional<Frame> reply = request_locked(MsgType::kPing, {});
  return reply.has_value() && reply->type == MsgType::kPong;
}

std::optional<std::vector<std::vector<double>>> DecisionClient::classify(
    const ml::DataSet& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassifyRequestMsg msg =
      ClassifyRequestMsg::from_dataset(next_request_id_++, rows);
  // Stamp the calling thread's trace context so the daemon's handling
  // spans nest under this decide span in a merged export.
  const obs::TraceContext ctx = obs::current_trace();
  msg.trace_id = ctx.trace_id;
  msg.parent_span_id = ctx.span_id;
  const std::optional<Frame> reply =
      request_locked(MsgType::kClassifyRequest, msg.encode());
  if (!reply.has_value()) return std::nullopt;
  if (reply->type != MsgType::kVerdictReply) {
    // Ack{ok=false} (model mismatch, no model loaded) or protocol noise:
    // either way the verdicts never arrived.
    client_metrics().outages.inc();
    return std::nullopt;
  }
  VerdictReplyMsg verdicts;
  try {
    verdicts = VerdictReplyMsg::decode(reply->payload);
  } catch (const WireError&) {
    close_locked();
    client_metrics().outages.inc();
    return std::nullopt;
  }
  if (verdicts.request_id != msg.request_id ||
      verdicts.num_rows() != rows.size()) {
    close_locked();
    client_metrics().outages.inc();
    return std::nullopt;
  }
  client_metrics().rows.inc(rows.size());
  return verdicts.to_votes();
}

std::optional<StatsMsg> DecisionClient::pull_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  // StatsPush here is a solicitation: an empty snapshot under our origin,
  // answered by the server's cumulative StatsAck.
  StatsMsg msg;
  msg.request_id = next_request_id_++;
  msg.origin = "controller";
  const std::optional<Frame> reply =
      request_locked(MsgType::kStatsPush, msg.encode());
  if (!reply.has_value() || reply->type != MsgType::kStatsAck) {
    return std::nullopt;
  }
  try {
    StatsMsg stats = StatsMsg::decode(reply->payload);
    if (stats.request_id != msg.request_id) return std::nullopt;
    return stats;
  } catch (const WireError&) {
    close_locked();
    return std::nullopt;
  }
}

std::optional<AckMsg> DecisionClient::push_model(
    const ml::RandomForest& forest) {
  std::ostringstream out;
  ml::save_forest(forest, out);
  return push_model_text(out.str());
}

std::optional<AckMsg> DecisionClient::push_model_text(
    const std::string& model_text) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelPushMsg msg;
  msg.request_id = next_request_id_++;
  msg.model_text = model_text;
  const std::optional<Frame> reply =
      request_locked(MsgType::kModelPush, msg.encode());
  if (!reply.has_value() || reply->type != MsgType::kAck) return std::nullopt;
  try {
    return AckMsg::decode(reply->payload);
  } catch (const WireError&) {
    return std::nullopt;
  }
}

RemoteBackend::RemoteBackend(ClientConfig cfg) : client_(std::move(cfg)) {}

bool RemoteBackend::available() {
  // connect() is a no-op when already connected, so this is cheap on the
  // happy path and doubles as the reconnect probe after an outage.
  return client_.connect();
}

std::optional<core::PeerStats> RemoteBackend::peer_stats() {
  std::optional<StatsMsg> stats = client_.pull_stats();
  if (!stats.has_value()) return std::nullopt;
  core::PeerStats out;
  out.origin = stats->origin.empty() ? "daemon:" + client_.address()
                                     : std::move(stats->origin);
  out.snapshot = std::move(stats->snapshot);
  return out;
}

std::vector<std::vector<double>> RemoteBackend::vote_batch(
    const ml::DataSet& rows) {
  std::optional<std::vector<std::vector<double>>> votes =
      client_.classify(rows);
  if (!votes.has_value()) {
    throw core::BackendOutageError("remote backend " + client_.address() +
                                   " failed to answer a classify batch of " +
                                   std::to_string(rows.size()) + " rows");
  }
  return std::move(*votes);
}

}  // namespace libra::rpc
