// The LiBRA wire protocol: length-prefixed, versioned, checksummed binary
// frames carrying classify batches between the fleet (client) and the
// inference daemon (server) -- the controller/minion topology of ROADMAP
// item 2.
//
// Frame layout (all integers little-endian, fixed width):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic 0x4152424C ("LBRA")
//        4     2  protocol version (kVersion)
//        6     2  message type (MsgType)
//        8     4  payload length in bytes
//       12     4  reserved, must be 0
//       16     8  FNV-1a 64 checksum of the payload bytes
//       24     -  payload
//
// Message payloads (same integer discipline; doubles as raw IEEE-754 bit
// patterns, which is what keeps a loopback round trip bit-identical to the
// in-process call):
//
//   Hello           u16 version, u8 model_loaded, u8 pad, i32 num_classes,
//                   u32 num_trees  (client sends its version, server echoes
//                   the served model's shape)
//   Ping / Pong     empty
//   ClassifyRequest u64 request_id, u64 trace_id, u64 parent_span_id,
//                   u32 num_rows, u32 row_dim,
//                   f64[num_rows * row_dim] row-major feature rows
//                   (already jittered client-side from each link's own RNG
//                   stream -- the server stays stateless and deterministic).
//                   trace_id/parent_span_id carry the caller's
//                   obs::TraceContext (0 = no active trace) so daemon-side
//                   spans nest under the controller's decide span in a
//                   merged Perfetto export
//   VerdictReply    u64 request_id, u32 num_rows, u32 num_classes,
//                   f64[num_rows * num_classes] per-class vote fractions
//   ModelPush       u64 request_id, u32 text_len, bytes[text_len] -- the
//                   ml/model_io.h text serialization of a RandomForest; the
//                   server re-validates it through load_forest/import_model
//                   (untrusted-input discipline) and compiles it
//   Ack             u64 request_id, u8 ok, u8 pad[3], u32 message_len,
//                   bytes[message_len] (ModelPush outcome / server errors)
//   StatsPush/      u64 request_id, string origin, then three counted
//   StatsAck        sections (counters: u32 n, [string name, u64 value];
//                   gauges: u32 n, [string name, f64 value]; histograms:
//                   u32 n, [string name, u64 count, f64 sum, f64 min,
//                   f64 max, u32 n_buckets, u64[n_buckets]]) -- a
//                   serialized obs::MetricsSnapshot. Strings are u16
//                   length-prefixed. The controller's aggregator sends
//                   StatsPush as a solicitation (empty snapshot) and the
//                   daemon answers StatsAck with its cumulative registry
//                   snapshot, which then appears under its origin label in
//                   the controller's merged scrape
//
// Every decoder is bounds-checked against both the declared counts and the
// actual payload size, all size arithmetic runs in uint64 before any
// uint32/size_t narrowing, and oversized claims (a crafted >4 GiB header,
// a num_rows that cannot fit the payload) are rejected with WireError
// BEFORE any allocation -- the same untrusted-input discipline as
// ml::import_model. See tests/rpc_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ml/data.h"
#include "obs/metrics.h"

namespace libra::rpc {

// Malformed or hostile wire data: bad magic/version, truncated or
// oversized frames, checksum mismatch, inconsistent counts.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4152424Cu;  // "LBRA" little-endian
// v2: ClassifyRequest gained trace_id/parent_span_id and the
// StatsPush/StatsAck pair joined the protocol. Both sides of this codebase
// always speak the current version; a version skew is a hard WireError.
inline constexpr std::uint16_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 24;

// Hard caps on what a peer may claim. A classify batch of kMaxBatchRows *
// kMaxRowDim doubles is ~64 MiB, so the payload cap bounds every message;
// anything larger is a protocol violation, not a bigger buffer.
inline constexpr std::uint64_t kMaxPayloadBytes = 64ull << 20;  // 64 MiB
inline constexpr std::uint64_t kMaxBatchRows = 1ull << 20;
inline constexpr std::uint64_t kMaxRowDim = 512;
inline constexpr std::uint64_t kMaxModelTextBytes = 48ull << 20;
inline constexpr std::uint64_t kMaxAckMessageBytes = 1ull << 16;
// Stats snapshots: per-kind entry caps far above the registry's own
// capacities, plus a metric/origin name cap.
inline constexpr std::uint64_t kMaxStatsEntries = 4096;
inline constexpr std::uint64_t kMaxStatsNameBytes = 256;

enum class MsgType : std::uint16_t {
  kHello = 1,
  kPing = 2,
  kPong = 3,
  kClassifyRequest = 4,
  kVerdictReply = 5,
  kModelPush = 6,
  kAck = 7,
  kStatsPush = 8,
  kStatsAck = 9,
};

std::string_view to_string(MsgType type);

// FNV-1a 64 over raw bytes (the same fold sim::golden uses for digests).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
};

// Header + payload, ready to write to a socket. Throws WireError when the
// payload exceeds kMaxPayloadBytes.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload);

// Decode one frame from the front of `buf`. Returns nullopt with
// `consumed` == 0 when the buffer holds only a partial frame (read more);
// otherwise returns the frame and sets `consumed` to its full size. Throws
// WireError on bad magic, unsupported version, nonzero reserved bits, an
// oversized payload claim (checked before any allocation), an unknown
// message type, or a checksum mismatch.
std::optional<Frame> decode_frame(std::span<const std::uint8_t> buf,
                                  std::size_t& consumed);

struct HelloMsg {
  std::uint16_t version = kVersion;
  bool model_loaded = false;
  std::int32_t num_classes = 0;
  std::uint32_t num_trees = 0;

  std::vector<std::uint8_t> encode() const;
  static HelloMsg decode(std::span<const std::uint8_t> payload);
};

struct ClassifyRequestMsg {
  std::uint64_t request_id = 0;
  // The caller's obs::TraceContext (0 = no active trace): the server wraps
  // its classify handling in a TraceContextScope built from these, so
  // daemon spans parent under the controller's decide span.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint32_t row_dim = 0;
  std::vector<double> rows;  // row-major, rows.size() == num_rows * row_dim

  std::size_t num_rows() const {
    return row_dim == 0 ? 0 : rows.size() / row_dim;
  }

  // Throws WireError when the batch exceeds kMaxBatchRows/kMaxRowDim (the
  // caller must split, not truncate).
  std::vector<std::uint8_t> encode() const;
  static ClassifyRequestMsg decode(std::span<const std::uint8_t> payload);

  static ClassifyRequestMsg from_dataset(std::uint64_t request_id,
                                         const ml::DataSet& data);
  ml::DataSet to_dataset() const;
};

struct VerdictReplyMsg {
  std::uint64_t request_id = 0;
  std::uint32_t num_classes = 0;
  std::vector<double> votes;  // row-major, num_rows * num_classes

  std::size_t num_rows() const {
    return num_classes == 0 ? 0 : votes.size() / num_classes;
  }

  std::vector<std::uint8_t> encode() const;
  static VerdictReplyMsg decode(std::span<const std::uint8_t> payload);

  static VerdictReplyMsg from_votes(
      std::uint64_t request_id,
      const std::vector<std::vector<double>>& vote_rows);
  std::vector<std::vector<double>> to_votes() const;
};

struct ModelPushMsg {
  std::uint64_t request_id = 0;
  std::string model_text;  // ml/model_io.h serialization

  std::vector<std::uint8_t> encode() const;
  static ModelPushMsg decode(std::span<const std::uint8_t> payload);
};

struct AckMsg {
  std::uint64_t request_id = 0;
  bool ok = true;
  std::string message;  // empty on success; the rejection reason otherwise

  std::vector<std::uint8_t> encode() const;
  static AckMsg decode(std::span<const std::uint8_t> payload);
};

// One obs::MetricsSnapshot with an origin label -- the payload of both
// kStatsPush (a solicitation, snapshot usually empty) and kStatsAck (the
// daemon's cumulative registry snapshot).
struct StatsMsg {
  std::uint64_t request_id = 0;
  std::string origin;
  obs::MetricsSnapshot snapshot;

  std::vector<std::uint8_t> encode() const;
  static StatsMsg decode(std::span<const std::uint8_t> payload);
};

}  // namespace libra::rpc
