// Client side of the decision wire protocol: a blocking request/reply
// socket client (DecisionClient) plus the core::DecisionBackend adapter
// (RemoteBackend) that plugs it into LibraClassifier / the fleet engine.
//
// Failure contract: every transport problem -- connect refused, send/recv
// error, per-request deadline expiry, malformed or mismatched reply --
// surfaces as core::BackendOutageError from RemoteBackend::vote_batch().
// The controller catches that and falls back to the rung-2 RA-first rule
// (the same rung as faults::kClassifierOutage), so a dead or flaky daemon
// degrades the fleet instead of crashing it.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/decision_backend.h"
#include "ml/data.h"
#include "rpc/wire.h"

namespace libra::rpc {

struct ClientConfig {
  // Non-empty: connect to this Unix-domain socket path. Empty: TCP.
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int port = 0;
  // Per-request deadline (SO_RCVTIMEO/SO_SNDTIMEO). A reply slower than
  // this is an outage, matching the faults::kRpcDelay semantics.
  double deadline_ms = 250.0;
  // After a transport error the client retries the request once on a
  // fresh connection before declaring an outage.
  bool retry_once = true;
};

// "unix:PATH", a bare path containing '/', or "HOST:PORT" -> ClientConfig
// transport fields. Throws std::invalid_argument on an unparseable
// address (used by `--backend remote:ADDR`).
ClientConfig parse_remote_addr(const std::string& addr);

// One connection to a DecisionServer. Round trips are serialized under an
// internal mutex (the wire protocol is strict request/reply). Methods
// return nullopt / false on transport failure after the configured retry;
// they do not throw for transport errors (RemoteBackend turns those into
// BackendOutageError).
class DecisionClient {
 public:
  explicit DecisionClient(ClientConfig cfg);
  ~DecisionClient();

  DecisionClient(const DecisionClient&) = delete;
  DecisionClient& operator=(const DecisionClient&) = delete;

  // Establish (or re-establish) the connection. False when the server is
  // unreachable. Safe to call repeatedly.
  bool connect();
  void close();
  bool connected() const;

  // Hello round trip: the server's serving shape, nullopt on failure.
  std::optional<HelloMsg> hello();
  // Liveness probe (Ping -> Pong).
  bool ping();

  // One classify round trip. Returns the per-row vote fractions, or
  // nullopt on transport failure, deadline expiry, an Ack{ok=false}
  // reply, or a reply whose shape does not match the request.
  std::optional<std::vector<std::vector<double>>> classify(
      const ml::DataSet& rows);

  // Solicit the server's cumulative metrics snapshot (StatsPush ->
  // StatsAck). Returns the daemon's labeled snapshot, or nullopt on
  // transport failure or a mismatched reply.
  std::optional<StatsMsg> pull_stats();

  // Serialize `forest` (ml/model_io.h text format) and push it. Returns
  // the server's Ack, or nullopt on transport failure.
  std::optional<AckMsg> push_model(const ml::RandomForest& forest);
  // Raw-text variant, for tests that tamper with the serialization.
  std::optional<AckMsg> push_model_text(const std::string& model_text);

  const ClientConfig& config() const { return cfg_; }
  // Human-readable peer address ("unix:PATH" or "HOST:PORT").
  std::string address() const;

 private:
  // One request/reply exchange on the current connection; nullopt on any
  // transport or decode failure (connection is closed on failure so the
  // next call starts clean).
  std::optional<Frame> round_trip_locked(MsgType type,
                                         std::span<const std::uint8_t> payload);
  // round_trip_locked plus the retry-once-on-fresh-connection policy.
  std::optional<Frame> request_locked(MsgType type,
                                      std::span<const std::uint8_t> payload);
  bool connect_locked();
  void close_locked();

  ClientConfig cfg_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> recv_buf_;
};

// core::DecisionBackend over a DecisionClient: the "remote:" side of
// --backend. vote_batch() throws core::BackendOutageError on any failure;
// available() probes the connection (with reconnect) so the controller's
// plan-time transport check can pre-declare the outage before any verdict
// is needed.
class RemoteBackend final : public core::DecisionBackend {
 public:
  explicit RemoteBackend(ClientConfig cfg);

  std::string_view name() const override { return "remote"; }
  bool local() const override { return false; }
  bool available() override;
  double deadline_ms() const override { return client_.config().deadline_ms; }
  // The daemon's cumulative registry snapshot under its origin label (the
  // obs::Aggregator polls this each roll-up); nullopt during an outage.
  std::optional<core::PeerStats> peer_stats() override;
  std::vector<std::vector<double>> vote_batch(const ml::DataSet& rows) override;

  DecisionClient& client() { return client_; }

 private:
  DecisionClient client_;
};

}  // namespace libra::rpc
