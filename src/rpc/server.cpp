#include "rpc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/model_io.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace libra::rpc {

namespace {

// Daemon-side serving telemetry: request/byte counters, batch shapes, and
// per-request handle latency -- the /metrics view of `libra serve`.
struct ServerMetrics {
  obs::Counter& connections;
  obs::Counter& requests;
  obs::Counter& rows;
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  obs::Counter& model_pushes;
  obs::Counter& rejected_models;
  obs::Counter& wire_errors;
  obs::Counter& stats_pulls;
  obs::Histogram& batch_rows;
  obs::Histogram& handle_us;
  obs::Histogram& classify_us;
  obs::Histogram& swap_us;
  obs::Gauge& model_generation;
};
ServerMetrics& server_metrics() {
  obs::Registry& r = obs::Registry::global();
  static ServerMetrics m{r.counter("rpc.server.connections"),
                         r.counter("rpc.server.requests"),
                         r.counter("rpc.server.rows"),
                         r.counter("rpc.server.bytes_rx"),
                         r.counter("rpc.server.bytes_tx"),
                         r.counter("rpc.server.model_pushes"),
                         r.counter("rpc.server.rejected_models"),
                         r.counter("rpc.server.wire_errors"),
                         r.counter("rpc.server.stats_pulls"),
                         r.histogram("rpc.server.batch_rows"),
                         r.histogram("rpc.server.handle_us"),
                         r.histogram("rpc.server.classify_us"),
                         r.histogram("rpc.server.swap_us"),
                         r.gauge("rpc.server.model_generation")};
  return m;
}

bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

DecisionServer::DecisionServer(ServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.unix_socket.empty() && (cfg_.port < 0 || cfg_.port > 65535)) {
    throw std::invalid_argument("DecisionServer: port must be in [0, 65535]");
  }
  if (!cfg_.unix_socket.empty() &&
      cfg_.unix_socket.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::invalid_argument("DecisionServer: unix socket path longer than " +
                                std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) +
                                " bytes: " + cfg_.unix_socket);
  }
}

DecisionServer::~DecisionServer() { stop(); }

std::string DecisionServer::address() const {
  if (!cfg_.unix_socket.empty()) return "unix:" + cfg_.unix_socket;
  return cfg_.host + ":" + std::to_string(resolved_port_);
}

void DecisionServer::set_forest(const ml::RandomForest& forest) {
  auto model = std::make_shared<ServingModel>();
  // Compile a private snapshot: the server must not share mutable state
  // with the caller's forest (which may refit concurrently).
  model->compiled = ml::CompiledForest(forest, cfg_.compiled);
  model->num_features = forest.feature_importances().size();
  model->num_trees = static_cast<std::uint32_t>(model->compiled.num_trees());
  model->num_classes = model->compiled.num_classes();
  install_model(std::move(model));
}

void DecisionServer::install_model(std::shared_ptr<const ServingModel> model) {
  std::lock_guard<std::mutex> lock(model_mu_);
  model_ = std::move(model);
  const std::uint64_t generation =
      model_generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  server_metrics().model_generation.set(static_cast<double>(generation));
}

std::shared_ptr<const DecisionServer::ServingModel> DecisionServer::model()
    const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

bool DecisionServer::model_loaded() const { return model() != nullptr; }

void DecisionServer::start() {
  if (running()) throw std::logic_error("DecisionServer: already running");
  stopping_.store(false, std::memory_order_release);

  if (!cfg_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("DecisionServer: socket(): ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.unix_socket.c_str());  // stale file from a previous run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("DecisionServer: bind(" + cfg_.unix_socket +
                               "): " + err);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("DecisionServer: socket(): ") +
                               std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("DecisionServer: bad host address " +
                               cfg_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("DecisionServer: bind(" + cfg_.host + ":" +
                               std::to_string(cfg_.port) + "): " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      resolved_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  if (::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("DecisionServer: listen(): " + err);
  }

  const int resolved = util::ThreadPool::resolve(cfg_.num_workers);
  workers_ = std::make_unique<util::ThreadPool>(std::max(resolved, 2));
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DecisionServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every live connection out of its blocking read so the handler
  // tasks can drain; the pool destructor joins them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  workers_.reset();  // drains + joins handlers; they close their own fds
  if (!cfg_.unix_socket.empty()) ::unlink(cfg_.unix_socket.c_str());
}

void DecisionServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop() or fatal error
    }
    server_metrics().connections.inc();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(fd);
    }
    workers_->submit([this, fd] { serve_connection(fd); });
  }
}

void DecisionServer::serve_connection(int fd) {
  ServerMetrics& metrics = server_metrics();
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[16384];
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    metrics.bytes_rx.inc(static_cast<std::uint64_t>(n));
    buf.insert(buf.end(), chunk, chunk + n);
    // Drain every complete frame in the buffer.
    for (;;) {
      std::size_t consumed = 0;
      std::optional<Frame> frame;
      try {
        frame = decode_frame(buf, consumed);
      } catch (const WireError& e) {
        // A corrupted stream cannot be resynchronized: report and drop the
        // connection (the client reconnects with a clean one).
        metrics.wire_errors.inc();
        AckMsg nack;
        nack.ok = false;
        nack.message = e.what();
        const std::vector<std::uint8_t> reply =
            encode_frame(MsgType::kAck, nack.encode());
        if (send_all(fd, reply)) {
          metrics.bytes_tx.inc(reply.size());
        }
        alive = false;
        break;
      }
      if (!frame.has_value()) break;  // partial frame, read more
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
      const Frame reply = handle(*frame);
      const std::vector<std::uint8_t> bytes =
          encode_frame(reply.type, reply.payload);
      if (!send_all(fd, bytes)) {
        alive = false;
        break;
      }
      metrics.bytes_tx.inc(bytes.size());
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == fd) {
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

Frame DecisionServer::handle(const Frame& request) {
  ServerMetrics& metrics = server_metrics();
  OBS_SPAN("rpc.server.handle", &metrics.handle_us);
  metrics.requests.inc();
  try {
    switch (request.type) {
      case MsgType::kPing:
        return {MsgType::kPong, {}};
      case MsgType::kHello: {
        // Validate the client's hello, answer with the serving shape.
        (void)HelloMsg::decode(request.payload);
        HelloMsg reply;
        reply.version = kVersion;
        const std::shared_ptr<const ServingModel> m = model();
        reply.model_loaded = m != nullptr;
        if (m != nullptr) {
          reply.num_classes = m->num_classes;
          reply.num_trees = m->num_trees;
        }
        return {MsgType::kHello, reply.encode()};
      }
      case MsgType::kClassifyRequest:
        return handle_classify(request);
      case MsgType::kModelPush:
        return handle_model_push(request);
      case MsgType::kStatsPush: {
        // A stats solicitation: validate it, answer with this process's
        // cumulative registry snapshot under the configured origin label.
        const StatsMsg push = StatsMsg::decode(request.payload);
        metrics.stats_pulls.inc();
        StatsMsg reply;
        reply.request_id = push.request_id;
        reply.origin = cfg_.stats_origin;
        reply.snapshot = obs::Registry::global().snapshot();
        return {MsgType::kStatsAck, reply.encode()};
      }
      default: {
        AckMsg nack;
        nack.ok = false;
        nack.message = "unexpected message type " +
                       std::string(to_string(request.type));
        return {MsgType::kAck, nack.encode()};
      }
    }
  } catch (const std::exception& e) {
    // WireError from a message decoder, invalid_argument from model
    // validation: the peer sent something unusable, tell it so.
    metrics.wire_errors.inc();
    AckMsg nack;
    nack.ok = false;
    nack.message = e.what();
    return {MsgType::kAck, nack.encode()};
  }
}

Frame DecisionServer::handle_classify(const Frame& request) {
  ServerMetrics& metrics = server_metrics();
  const ClassifyRequestMsg msg = ClassifyRequestMsg::decode(request.payload);
  // Adopt the caller's trace context for the rest of this batch: the
  // classify span (and everything under it, e.g. forest batch spans)
  // parents under the controller-side decide span in a merged export.
  obs::TraceContextScope trace_scope({msg.trace_id, msg.parent_span_id});
  OBS_SPAN("rpc.server.classify", &metrics.classify_us);
  // Pin the serving model ONCE for the whole batch: a concurrent ModelPush
  // swaps the shared_ptr but can never change which forest these rows ride.
  const std::shared_ptr<const ServingModel> m = model();
  if (m == nullptr) {
    AckMsg nack;
    nack.ok = false;
    nack.message = "no model loaded (push one or start with a forest)";
    return {MsgType::kAck, nack.encode()};
  }
  if (msg.row_dim != m->num_features) {
    AckMsg nack;
    nack.ok = false;
    nack.message = "row_dim " + std::to_string(msg.row_dim) +
                   " does not match the serving model's " +
                   std::to_string(m->num_features) + " features";
    return {MsgType::kAck, nack.encode()};
  }
  const ml::DataSet rows = msg.to_dataset();
  metrics.rows.inc(rows.size());
  metrics.batch_rows.observe(static_cast<double>(rows.size()));
  const std::vector<std::vector<double>> votes =
      m->compiled.vote_fractions_batch(rows, nullptr);
  VerdictReplyMsg reply = VerdictReplyMsg::from_votes(msg.request_id, votes);
  // An empty batch still answers with the model's class count so the
  // client can sanity-check the reply shape.
  reply.num_classes = votes.empty()
                          ? static_cast<std::uint32_t>(m->num_classes)
                          : reply.num_classes;
  return {MsgType::kVerdictReply, reply.encode()};
}

Frame DecisionServer::handle_model_push(const Frame& request) {
  ServerMetrics& metrics = server_metrics();
  const ModelPushMsg msg = ModelPushMsg::decode(request.payload);
  AckMsg ack;
  ack.request_id = msg.request_id;
  try {
    // Untrusted input: load_forest runs the full import_model validation
    // (child ranges, cycles, label/class bounds), so a tampered payload is
    // rejected here and the serving model stays untouched.
    std::istringstream in(msg.model_text);
    const obs::StopWatch swap_watch;
    const ml::RandomForest pushed = ml::load_forest(in);
    auto model = std::make_shared<ServingModel>();
    model->compiled = ml::CompiledForest(pushed, cfg_.compiled);
    model->num_features = pushed.feature_importances().size();
    model->num_trees = static_cast<std::uint32_t>(model->compiled.num_trees());
    model->num_classes = model->compiled.num_classes();
    install_model(std::move(model));
    // Validate -> compile -> install: the full off-path cost of shipping a
    // pushed model, not just the pointer swap (which is ~free).
    metrics.swap_us.observe(swap_watch.elapsed_us());
    metrics.model_pushes.inc();
    ack.ok = true;
  } catch (const std::exception& e) {
    metrics.rejected_models.inc();
    ack.ok = false;
    ack.message = std::string("model rejected: ") + e.what();
  }
  return {MsgType::kAck, ack.encode()};
}

}  // namespace libra::rpc
