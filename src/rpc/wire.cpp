#include "rpc/wire.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <utility>

namespace libra::rpc {

namespace {

// Bounds-checked little-endian writer. All appends go through here so a
// message struct can never emit a frame its own decoder would reject.
struct Writer {
  std::vector<std::uint8_t> out;

  void u8(std::uint8_t v) { out.push_back(v); }
  void u16(std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> b) {
    out.insert(out.end(), b.begin(), b.end());
  }
};

// Bounds-checked reader: every get_* throws WireError instead of running
// off the payload, and trailing garbage is rejected by expect_done().
struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t pos = 0;
  const char* what;  // message name for errors

  explicit Reader(std::span<const std::uint8_t> b, const char* name)
      : buf(b), what(name) {}

  void need(std::size_t n) const {
    if (buf.size() - pos < n) {
      throw WireError(std::string(what) + ": truncated payload (" +
                      std::to_string(buf.size()) + " bytes, need " +
                      std::to_string(pos + n) + ")");
    }
  }
  std::uint8_t u8() {
    need(1);
    return buf[pos++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (std::uint16_t{buf[pos + static_cast<std::size_t>(i)]} << (8 * i)));
    }
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{buf[pos + static_cast<std::size_t>(i)]} << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{buf[pos + static_cast<std::size_t>(i)]} << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    const std::span<const std::uint8_t> b = buf.subspan(pos, n);
    pos += n;
    return b;
  }
  void expect_done() const {
    if (pos != buf.size()) {
      throw WireError(std::string(what) + ": " +
                      std::to_string(buf.size() - pos) +
                      " trailing bytes after payload");
    }
  }
};

bool known_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(MsgType::kHello) &&
         t <= static_cast<std::uint16_t>(MsgType::kStatsAck);
}

// Shared string codec for the stats messages: u16 length prefix, capped.
void put_string(Writer& w, const std::string& s, const char* what) {
  if (s.size() > kMaxStatsNameBytes) {
    throw WireError(std::string(what) + ": string of " +
                    std::to_string(s.size()) + " bytes exceeds the cap of " +
                    std::to_string(kMaxStatsNameBytes));
  }
  w.u16(static_cast<std::uint16_t>(s.size()));
  w.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::string get_string(Reader& r, const char* what) {
  const std::uint64_t len = r.u16();
  if (len > kMaxStatsNameBytes) {
    throw WireError(std::string(what) + ": string-length claim of " +
                    std::to_string(len) + " bytes exceeds the cap of " +
                    std::to_string(kMaxStatsNameBytes));
  }
  const std::span<const std::uint8_t> b =
      r.bytes(static_cast<std::size_t>(len));
  return b.empty()
             ? std::string()
             : std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kClassifyRequest: return "ClassifyRequest";
    case MsgType::kVerdictReply: return "VerdictReply";
    case MsgType::kModelPush: return "ModelPush";
    case MsgType::kAck: return "Ack";
    case MsgType::kStatsPush: return "StatsPush";
    case MsgType::kStatsAck: return "StatsAck";
  }
  return "unknown";
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw WireError("encode_frame: payload of " +
                    std::to_string(payload.size()) + " bytes exceeds the " +
                    std::to_string(kMaxPayloadBytes) + "-byte frame cap");
  }
  Writer w;
  w.out.reserve(kHeaderBytes + payload.size());
  w.u32(kMagic);
  w.u16(kVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(0);  // reserved
  w.u64(fnv1a64(payload));
  w.bytes(payload);
  return w.out;
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> buf,
                                  std::size_t& consumed) {
  consumed = 0;
  if (buf.size() < kHeaderBytes) return std::nullopt;
  Reader r(buf.first(kHeaderBytes), "frame header");
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw WireError("frame: bad magic 0x" +
                    [&] {
                      char hex[16];
                      std::snprintf(hex, sizeof hex, "%08x", magic);
                      return std::string(hex);
                    }());
  }
  const std::uint16_t version = r.u16();
  if (version != kVersion) {
    throw WireError("frame: unsupported protocol version " +
                    std::to_string(version) + " (this side speaks " +
                    std::to_string(kVersion) + ")");
  }
  const std::uint16_t type = r.u16();
  if (!known_type(type)) {
    throw WireError("frame: unknown message type " + std::to_string(type));
  }
  // The length claim is validated against the cap BEFORE comparing with the
  // buffer or allocating: a crafted header claiming ~4 GiB must die here,
  // not stall the reader waiting for bytes that never come.
  const std::uint64_t payload_len = r.u32();
  if (payload_len > kMaxPayloadBytes) {
    throw WireError("frame: payload claim of " + std::to_string(payload_len) +
                    " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
                    "-byte frame cap");
  }
  const std::uint32_t reserved = r.u32();
  if (reserved != 0) {
    throw WireError("frame: nonzero reserved field");
  }
  const std::uint64_t checksum = r.u64();
  const std::uint64_t total = kHeaderBytes + payload_len;
  if (buf.size() < total) return std::nullopt;  // partial frame, read more
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  const std::span<const std::uint8_t> payload =
      buf.subspan(kHeaderBytes, static_cast<std::size_t>(payload_len));
  if (fnv1a64(payload) != checksum) {
    throw WireError(std::string("frame: checksum mismatch on ") +
                    std::string(to_string(frame.type)) + " payload");
  }
  frame.payload.assign(payload.begin(), payload.end());
  consumed = static_cast<std::size_t>(total);
  return frame;
}

// ---------- Hello ----------

std::vector<std::uint8_t> HelloMsg::encode() const {
  Writer w;
  w.u16(version);
  w.u8(model_loaded ? 1 : 0);
  w.u8(0);  // pad
  w.i32(num_classes);
  w.u32(num_trees);
  return w.out;
}

HelloMsg HelloMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "Hello");
  HelloMsg m;
  m.version = r.u16();
  const std::uint8_t loaded = r.u8();
  if (loaded > 1) {
    throw WireError("Hello: model_loaded must be 0 or 1, got " +
                    std::to_string(loaded));
  }
  m.model_loaded = loaded == 1;
  if (r.u8() != 0) throw WireError("Hello: nonzero pad byte");
  m.num_classes = r.i32();
  m.num_trees = r.u32();
  r.expect_done();
  return m;
}

// ---------- ClassifyRequest ----------

std::vector<std::uint8_t> ClassifyRequestMsg::encode() const {
  if (row_dim == 0 && !rows.empty()) {
    throw WireError("ClassifyRequest: nonzero rows with row_dim 0");
  }
  if (row_dim > kMaxRowDim) {
    throw WireError("ClassifyRequest: row_dim " + std::to_string(row_dim) +
                    " exceeds the cap of " + std::to_string(kMaxRowDim));
  }
  if (row_dim != 0 && rows.size() % row_dim != 0) {
    throw WireError("ClassifyRequest: " + std::to_string(rows.size()) +
                    " doubles do not tile into rows of " +
                    std::to_string(row_dim));
  }
  // All size math in uint64: a caller batching size_t rows must get a loud
  // rejection when the batch cannot be expressed on the wire, never a
  // silently truncated uint32.
  const std::uint64_t n_rows = num_rows();
  if (n_rows > kMaxBatchRows) {
    throw WireError("ClassifyRequest: batch of " + std::to_string(n_rows) +
                    " rows exceeds the cap of " +
                    std::to_string(kMaxBatchRows) +
                    " -- split the batch, truncation would corrupt verdicts");
  }
  Writer w;
  w.out.reserve(32 + rows.size() * 8);
  w.u64(request_id);
  w.u64(trace_id);
  w.u64(parent_span_id);
  w.u32(static_cast<std::uint32_t>(n_rows));
  w.u32(row_dim);
  for (const double v : rows) w.f64(v);
  return w.out;
}

ClassifyRequestMsg ClassifyRequestMsg::decode(
    std::span<const std::uint8_t> payload) {
  Reader r(payload, "ClassifyRequest");
  ClassifyRequestMsg m;
  m.request_id = r.u64();
  m.trace_id = r.u64();
  m.parent_span_id = r.u64();
  const std::uint64_t n_rows = r.u32();
  m.row_dim = r.u32();
  if (n_rows > kMaxBatchRows) {
    throw WireError("ClassifyRequest: row-count claim of " +
                    std::to_string(n_rows) + " exceeds the cap of " +
                    std::to_string(kMaxBatchRows));
  }
  if (m.row_dim > kMaxRowDim) {
    throw WireError("ClassifyRequest: row_dim claim of " +
                    std::to_string(m.row_dim) + " exceeds the cap of " +
                    std::to_string(kMaxRowDim));
  }
  if (n_rows > 0 && m.row_dim == 0) {
    throw WireError("ClassifyRequest: " + std::to_string(n_rows) +
                    " rows claimed with row_dim 0");
  }
  const std::uint64_t count = n_rows * m.row_dim;  // <= 2^20 * 512, no wrap
  r.need(static_cast<std::size_t>(count) * 8);     // before the allocation
  m.rows.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) m.rows.push_back(r.f64());
  r.expect_done();
  return m;
}

ClassifyRequestMsg ClassifyRequestMsg::from_dataset(std::uint64_t request_id,
                                                    const ml::DataSet& data) {
  if (data.num_features() > kMaxRowDim) {
    throw WireError("ClassifyRequest: dataset with " +
                    std::to_string(data.num_features()) +
                    " features exceeds the row_dim cap of " +
                    std::to_string(kMaxRowDim));
  }
  if (data.size() > kMaxBatchRows) {
    throw WireError("ClassifyRequest: dataset of " +
                    std::to_string(data.size()) +
                    " rows exceeds the batch cap of " +
                    std::to_string(kMaxBatchRows) +
                    " -- split the batch, truncation would corrupt verdicts");
  }
  ClassifyRequestMsg m;
  m.request_id = request_id;
  m.row_dim = static_cast<std::uint32_t>(data.num_features());
  m.rows.reserve(data.size() * data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::span<const double> row = data.row(i);
    m.rows.insert(m.rows.end(), row.begin(), row.end());
  }
  return m;
}

ml::DataSet ClassifyRequestMsg::to_dataset() const {
  ml::DataSet data(row_dim);
  const std::size_t n = num_rows();
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.add({rows.data() + i * row_dim, row_dim}, 0);
  }
  return data;
}

// ---------- VerdictReply ----------

std::vector<std::uint8_t> VerdictReplyMsg::encode() const {
  if (num_classes == 0 && !votes.empty()) {
    throw WireError("VerdictReply: nonzero votes with num_classes 0");
  }
  if (num_classes > kMaxRowDim) {
    throw WireError("VerdictReply: num_classes " +
                    std::to_string(num_classes) + " exceeds the cap of " +
                    std::to_string(kMaxRowDim));
  }
  if (num_classes != 0 && votes.size() % num_classes != 0) {
    throw WireError("VerdictReply: " + std::to_string(votes.size()) +
                    " doubles do not tile into rows of " +
                    std::to_string(num_classes));
  }
  const std::uint64_t n_rows = num_rows();
  if (n_rows > kMaxBatchRows) {
    throw WireError("VerdictReply: batch of " + std::to_string(n_rows) +
                    " rows exceeds the cap of " +
                    std::to_string(kMaxBatchRows));
  }
  Writer w;
  w.out.reserve(16 + votes.size() * 8);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(n_rows));
  w.u32(num_classes);
  for (const double v : votes) w.f64(v);
  return w.out;
}

VerdictReplyMsg VerdictReplyMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "VerdictReply");
  VerdictReplyMsg m;
  m.request_id = r.u64();
  const std::uint64_t n_rows = r.u32();
  m.num_classes = r.u32();
  if (n_rows > kMaxBatchRows) {
    throw WireError("VerdictReply: row-count claim of " +
                    std::to_string(n_rows) + " exceeds the cap of " +
                    std::to_string(kMaxBatchRows));
  }
  if (m.num_classes > kMaxRowDim) {
    throw WireError("VerdictReply: num_classes claim of " +
                    std::to_string(m.num_classes) + " exceeds the cap of " +
                    std::to_string(kMaxRowDim));
  }
  if (n_rows > 0 && m.num_classes == 0) {
    throw WireError("VerdictReply: " + std::to_string(n_rows) +
                    " rows claimed with num_classes 0");
  }
  const std::uint64_t count = n_rows * m.num_classes;
  r.need(static_cast<std::size_t>(count) * 8);
  m.votes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) m.votes.push_back(r.f64());
  r.expect_done();
  return m;
}

VerdictReplyMsg VerdictReplyMsg::from_votes(
    std::uint64_t request_id,
    const std::vector<std::vector<double>>& vote_rows) {
  VerdictReplyMsg m;
  m.request_id = request_id;
  if (vote_rows.empty()) return m;
  m.num_classes = static_cast<std::uint32_t>(vote_rows.front().size());
  m.votes.reserve(vote_rows.size() * m.num_classes);
  for (const std::vector<double>& row : vote_rows) {
    if (row.size() != m.num_classes) {
      throw WireError("VerdictReply: ragged vote rows (" +
                      std::to_string(row.size()) + " vs " +
                      std::to_string(m.num_classes) + " classes)");
    }
    m.votes.insert(m.votes.end(), row.begin(), row.end());
  }
  return m;
}

std::vector<std::vector<double>> VerdictReplyMsg::to_votes() const {
  std::vector<std::vector<double>> rows;
  const std::size_t n = num_rows();
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.emplace_back(votes.begin() + static_cast<std::ptrdiff_t>(i * num_classes),
                      votes.begin() + static_cast<std::ptrdiff_t>((i + 1) * num_classes));
  }
  return rows;
}

// ---------- ModelPush ----------

std::vector<std::uint8_t> ModelPushMsg::encode() const {
  if (model_text.size() > kMaxModelTextBytes) {
    throw WireError("ModelPush: serialized model of " +
                    std::to_string(model_text.size()) +
                    " bytes exceeds the cap of " +
                    std::to_string(kMaxModelTextBytes));
  }
  Writer w;
  w.out.reserve(12 + model_text.size());
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(model_text.size()));
  w.bytes({reinterpret_cast<const std::uint8_t*>(model_text.data()),
           model_text.size()});
  return w.out;
}

ModelPushMsg ModelPushMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "ModelPush");
  ModelPushMsg m;
  m.request_id = r.u64();
  const std::uint64_t len = r.u32();
  if (len > kMaxModelTextBytes) {
    throw WireError("ModelPush: text-length claim of " + std::to_string(len) +
                    " bytes exceeds the cap of " +
                    std::to_string(kMaxModelTextBytes));
  }
  const std::span<const std::uint8_t> text =
      r.bytes(static_cast<std::size_t>(len));
  if (!text.empty()) {
    m.model_text.assign(reinterpret_cast<const char*>(text.data()),
                        text.size());
  }
  r.expect_done();
  return m;
}

// ---------- Ack ----------

std::vector<std::uint8_t> AckMsg::encode() const {
  if (message.size() > kMaxAckMessageBytes) {
    throw WireError("Ack: message of " + std::to_string(message.size()) +
                    " bytes exceeds the cap of " +
                    std::to_string(kMaxAckMessageBytes));
  }
  Writer w;
  w.u64(request_id);
  w.u8(ok ? 1 : 0);
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.bytes({reinterpret_cast<const std::uint8_t*>(message.data()),
           message.size()});
  return w.out;
}

AckMsg AckMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "Ack");
  AckMsg m;
  m.request_id = r.u64();
  const std::uint8_t ok = r.u8();
  if (ok > 1) {
    throw WireError("Ack: ok must be 0 or 1, got " + std::to_string(ok));
  }
  m.ok = ok == 1;
  for (int i = 0; i < 3; ++i) {
    if (r.u8() != 0) throw WireError("Ack: nonzero pad byte");
  }
  const std::uint64_t len = r.u32();
  if (len > kMaxAckMessageBytes) {
    throw WireError("Ack: message-length claim of " + std::to_string(len) +
                    " bytes exceeds the cap of " +
                    std::to_string(kMaxAckMessageBytes));
  }
  const std::span<const std::uint8_t> text =
      r.bytes(static_cast<std::size_t>(len));
  if (!text.empty()) {
    m.message.assign(reinterpret_cast<const char*>(text.data()), text.size());
  }
  r.expect_done();
  return m;
}

// ---------- StatsPush / StatsAck ----------

std::vector<std::uint8_t> StatsMsg::encode() const {
  if (snapshot.counters.size() > kMaxStatsEntries ||
      snapshot.gauges.size() > kMaxStatsEntries ||
      snapshot.histograms.size() > kMaxStatsEntries) {
    throw WireError("Stats: snapshot exceeds the per-kind entry cap of " +
                    std::to_string(kMaxStatsEntries));
  }
  Writer w;
  w.u64(request_id);
  put_string(w, origin, "Stats origin");
  w.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& c : snapshot.counters) {
    put_string(w, c.name, "Stats counter name");
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& g : snapshot.gauges) {
    put_string(w, g.name, "Stats gauge name");
    w.f64(g.value);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& h : snapshot.histograms) {
    put_string(w, h.name, "Stats histogram name");
    w.u64(h.data.count);
    w.f64(h.data.sum);
    w.f64(h.data.min);
    w.f64(h.data.max);
    // Trailing all-zero buckets are elided on the wire.
    std::size_t last = obs::kHistogramBuckets;
    while (last > 0 && h.data.buckets[last - 1] == 0) --last;
    w.u32(static_cast<std::uint32_t>(last));
    for (std::size_t b = 0; b < last; ++b) w.u64(h.data.buckets[b]);
  }
  return w.out;
}

StatsMsg StatsMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "Stats");
  StatsMsg m;
  m.request_id = r.u64();
  m.origin = get_string(r, "Stats origin");

  const std::uint64_t n_counters = r.u32();
  if (n_counters > kMaxStatsEntries) {
    throw WireError("Stats: counter-count claim of " +
                    std::to_string(n_counters) + " exceeds the cap of " +
                    std::to_string(kMaxStatsEntries));
  }
  // Each entry is at least 10 bytes (2-byte length + 8-byte value), so the
  // claim is sanity-checked against the remaining payload before reserving.
  r.need(static_cast<std::size_t>(n_counters) * 10);
  m.snapshot.counters.reserve(static_cast<std::size_t>(n_counters));
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    obs::MetricsSnapshot::CounterValue c;
    c.name = get_string(r, "Stats counter name");
    c.value = r.u64();
    m.snapshot.counters.push_back(std::move(c));
  }

  const std::uint64_t n_gauges = r.u32();
  if (n_gauges > kMaxStatsEntries) {
    throw WireError("Stats: gauge-count claim of " + std::to_string(n_gauges) +
                    " exceeds the cap of " + std::to_string(kMaxStatsEntries));
  }
  r.need(static_cast<std::size_t>(n_gauges) * 10);
  m.snapshot.gauges.reserve(static_cast<std::size_t>(n_gauges));
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    obs::MetricsSnapshot::GaugeValue g;
    g.name = get_string(r, "Stats gauge name");
    g.value = r.f64();
    m.snapshot.gauges.push_back(std::move(g));
  }

  const std::uint64_t n_hists = r.u32();
  if (n_hists > kMaxStatsEntries) {
    throw WireError("Stats: histogram-count claim of " +
                    std::to_string(n_hists) + " exceeds the cap of " +
                    std::to_string(kMaxStatsEntries));
  }
  r.need(static_cast<std::size_t>(n_hists) * 38);
  m.snapshot.histograms.reserve(static_cast<std::size_t>(n_hists));
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    obs::MetricsSnapshot::HistogramValue h;
    h.name = get_string(r, "Stats histogram name");
    h.data.count = r.u64();
    h.data.sum = r.f64();
    h.data.min = r.f64();
    h.data.max = r.f64();
    const std::uint64_t n_buckets = r.u32();
    if (n_buckets > obs::kHistogramBuckets) {
      throw WireError("Stats: bucket-count claim of " +
                      std::to_string(n_buckets) + " exceeds the " +
                      std::to_string(obs::kHistogramBuckets) +
                      "-bucket histogram layout");
    }
    r.need(static_cast<std::size_t>(n_buckets) * 8);
    for (std::uint64_t b = 0; b < n_buckets; ++b) {
      h.data.buckets[b] = r.u64();
    }
    m.snapshot.histograms.push_back(std::move(h));
  }
  r.expect_done();
  return m;
}

}  // namespace libra::rpc
