// The LiBRA inference daemon: owns compiled forests and answers batched
// classify RPCs over Unix-domain or TCP sockets (`libra serve`).
//
// Topology (ROADMAP item 2, Terragraph-style controller/minion): the fleet
// process keeps the controllers and the per-link RNG streams; this server
// is a stateless vote calculator. Feature rows arrive already jittered, so
// serving the same forest locally or through a loopback socket produces
// bit-identical verdicts (vote fractions are integer tree counts divided
// by num_trees -- exact doubles -- shipped as raw bit patterns).
//
// Concurrency: one accept thread plus connection handlers dispatched onto
// a util::ThreadPool. The serving forest lives behind a
// shared_ptr<const CompiledForest>; each ClassifyRequest pins the pointer
// once for its whole batch, and ModelPush validates (load_forest ->
// import_model discipline), compiles, then swaps the pointer under a mutex
// -- so a hot swap never mixes forests inside one batch and never blocks
// in-flight batches on the old model (they finish on the pinned pointer).
// tests/rpc_test.cpp hammers exactly this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ml/compiled_forest.h"
#include "ml/random_forest.h"
#include "rpc/wire.h"
#include "util/thread_pool.h"

namespace libra::rpc {

struct ServerConfig {
  // Non-empty: listen on this Unix-domain socket path (the file is
  // unlinked on bind and again on stop). Empty: TCP on host:port.
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int port = 0;  // TCP only; 0 picks an ephemeral port (see DecisionServer::port())
  // Connection-handler workers (a handler owns its connection until the
  // peer disconnects). Follows the library knob convention, clamped to a
  // minimum of 2 so one camped connection cannot starve the accept queue.
  int num_workers = 4;
  int listen_backlog = 16;
  // Compilation config for pushed models (ModelPush recompiles on arrival;
  // the default double-threshold mode is the bit-exact one).
  ml::CompiledForestConfig compiled{};
  // Origin label on StatsAck replies -- the label this daemon's metrics
  // appear under in the controller's merged scrape.
  std::string stats_origin = "daemon";
};

class DecisionServer {
 public:
  explicit DecisionServer(ServerConfig cfg);
  ~DecisionServer();  // stop()s if still running

  DecisionServer(const DecisionServer&) = delete;
  DecisionServer& operator=(const DecisionServer&) = delete;

  // Install the serving forest (compiles a snapshot of `forest`). May be
  // called before start() or while serving -- the swap is atomic per batch.
  // Throws std::logic_error when the forest is unfitted.
  void set_forest(const ml::RandomForest& forest);

  // Bind, listen, and spin up the accept loop. Throws std::runtime_error
  // on socket/bind/listen failure (address in use, bad path, ...).
  void start();
  // Shut the listener and every live connection down, join the handlers.
  // Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Resolved TCP port after start() (== cfg.port unless it was 0).
  int port() const { return resolved_port_; }
  // Human-readable bound address: "unix:PATH" or "HOST:PORT".
  std::string address() const;

  // Serving-model snapshot (Hello answers from this).
  bool model_loaded() const;
  // Monotonic swap count: 0 until the first set_forest()/ModelPush install,
  // then +1 per installed model (rejected pushes don't advance it). The
  // trainer's swap tests read this to prove a push actually landed.
  std::uint64_t model_generation() const {
    return model_generation_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  // Dispatch one decoded frame to its reply frame. Pure request/reply --
  // all socket IO stays in serve_connection.
  Frame handle(const Frame& request);
  Frame handle_classify(const Frame& request);
  Frame handle_model_push(const Frame& request);

  // One immutable serving model: the compiled forest plus the row shape
  // requests are validated against. Swapped as a unit so a batch can never
  // see one model's arena with another's dimensions.
  struct ServingModel {
    ml::CompiledForest compiled;
    std::size_t num_features = 0;
    std::uint32_t num_trees = 0;
    int num_classes = 0;
  };
  std::shared_ptr<const ServingModel> model() const;
  void install_model(std::shared_ptr<const ServingModel> model);

  ServerConfig cfg_;
  // Atomic because stop() writes -1 (after shutdown()+close()) while the
  // accept loop is still reading the fd for its next ::accept call.
  std::atomic<int> listen_fd_{-1};
  int resolved_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> workers_;

  mutable std::mutex model_mu_;
  std::shared_ptr<const ServingModel> model_;
  std::atomic<std::uint64_t> model_generation_{0};

  // Live connection fds, tracked so stop() can shutdown() blocked readers.
  std::mutex conns_mu_;
  std::vector<int> conns_;
};

}  // namespace libra::rpc
