#include "mac/timing.h"

namespace libra::mac {

double worst_case_delay_ms(int num_mcs, double fat_ms, double ba_overhead_ms) {
  return static_cast<double>(num_mcs) * fat_ms + ba_overhead_ms +
         static_cast<double>(num_mcs) * fat_ms;
}

}  // namespace libra::mac
