#include "mac/beacon_interval.h"

#include <cmath>
#include <stdexcept>

namespace libra::mac {

int sectors_for_beamwidth(double coverage_deg, double beamwidth_deg) {
  if (beamwidth_deg <= 0.0 || coverage_deg <= 0.0) {
    throw std::invalid_argument("beamwidth/coverage must be positive");
  }
  return static_cast<int>(std::ceil(coverage_deg / beamwidth_deg));
}

double sls_duration_ms(int sectors, const SswTiming& timing) {
  if (sectors < 1) throw std::invalid_argument("sectors < 1");
  const double sweep_us =
      sectors * timing.ssw_frame_us + (sectors - 1) * timing.sbifs_us;
  return (sweep_us + timing.mbifs_us + timing.feedback_us) / 1000.0;
}

double full_sls_duration_ms(int tx_sectors, int rx_sectors,
                            const SswTiming& timing) {
  // Initiator sweep, MBIFS, responder sweep, feedback (Sec. 2's O(N) SLS).
  const double tx_us =
      tx_sectors * timing.ssw_frame_us + (tx_sectors - 1) * timing.sbifs_us;
  const double rx_us =
      rx_sectors * timing.ssw_frame_us + (rx_sectors - 1) * timing.sbifs_us;
  return (tx_us + timing.mbifs_us + rx_us + timing.mbifs_us +
          timing.feedback_us) /
         1000.0;
}

double exhaustive_duration_ms(int tx_sectors, int rx_sectors,
                              const SswTiming& timing) {
  const long probes = static_cast<long>(tx_sectors) * rx_sectors;
  const double sweep_us =
      probes * timing.ssw_frame_us + (probes - 1) * timing.sbifs_us;
  return (sweep_us + timing.mbifs_us + timing.feedback_us) / 1000.0;
}

double expected_abft_intervals(int contenders,
                               const BeaconIntervalConfig& bi) {
  if (contenders < 1) throw std::invalid_argument("contenders < 1");
  if (contenders == 1) return 1.0;
  // A station succeeds in a BI if no other contender picked its slot:
  // p = (1 - 1/slots)^(contenders-1); geometric expectation 1/p.
  const double p = std::pow(1.0 - 1.0 / bi.abft_slots, contenders - 1);
  return 1.0 / p;
}

}  // namespace libra::mac
