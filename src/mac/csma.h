// CSMA/CA coexistence model for the interference study (Sec. 4.2).
//
// The paper's interferer is a Talon router + laptop pair acting as a hidden
// terminal to the X60 link. Two questions decide how much it hurts:
//
//   1. Is it actually hidden? Directional 60 GHz transmission makes carrier
//      sensing unreliable ("deafness"): the interferer senses the victim
//      only if the victim's transmit power reaches it through both devices'
//      beam patterns above the sensing threshold. When sensing works,
//      CSMA serializes the two links and the overlap collapses; when it
//      fails, the interferer transmits obliviously.
//   2. How often does it transmit? A saturated CSMA sender with frame
//      airtime T_f and contention/idle overhead T_i occupies a duty cycle
//      of load * T_f / (T_f + T_i) -- that duty is the burst fraction the
//      dataset's calibrated interferer applies (channel::Interferer).
#pragma once

#include "channel/link.h"

namespace libra::mac {

struct CsmaConfig {
  double frame_airtime_ms = 2.0;   // interferer AMPDU airtime
  double contention_ms = 0.05;     // DIFS + average backoff per frame
  double sensing_threshold_dbm = -74.0;  // preamble-detect level (~noise floor)
};

// Airtime fraction a CSMA sender with the given offered load occupies when
// nothing throttles it (its victim is hidden). offered_load in [0, 1] is
// the fraction of time it has traffic queued.
double unthrottled_duty(double offered_load, const CsmaConfig& cfg = {});

// True if `listener` can carrier-sense transmissions from `talker` --
// i.e. the talker's signal through the current beams exceeds the sensing
// threshold at the listener. Deafness (false) creates a hidden terminal.
// The link argument models talker->listener propagation: its Tx is the
// talker with the beam it uses for its own traffic, its Rx is the listener
// with the (quasi-omni) pattern it listens on.
bool can_sense(const channel::Link& talker_to_listener,
               array::BeamId talker_beam, array::BeamId listener_beam,
               const CsmaConfig& cfg = {});

// Interference duty the victim experiences: 0 when sensing serializes the
// links, the unthrottled duty when the interferer is deaf.
double interference_duty(bool interferer_senses_victim, double offered_load,
                         const CsmaConfig& cfg = {});

}  // namespace libra::mac
