// Block-ACK model. COTS devices trigger RA when no Block ACK arrives after
// an AMPDU (Sec. 3); LiBRA's Tx-initiated design also keys off missing ACKs
// (Sec. 7, issue 3). An ACK comes back as long as at least one MPDU of the
// aggregate decodes, so the miss probability is the probability that every
// subframe fails.
#pragma once

#include "phy/error_model.h"
#include "util/rng.h"

namespace libra::mac {

struct AckModelConfig {
  // Number of independently CRC'd subframes whose joint failure loses the
  // Block ACK. An AMPDU carries tens of MPDUs; the ACK itself is sent at a
  // robust control rate, so data decode dominates.
  int subframes = 32;
};

class AckModel {
 public:
  AckModel(const phy::ErrorModel* error_model, AckModelConfig cfg = {});

  // P(Block ACK received) for a frame at this MCS and SNR.
  double ack_probability(phy::McsIndex mcs, double snr_db) const;

  bool ack_received(phy::McsIndex mcs, double snr_db, util::Rng& rng) const;

 private:
  const phy::ErrorModel* error_model_;  // non-owning
  AckModelConfig cfg_;
};

}  // namespace libra::mac
