// MAC timing: the X60 TDMA frame structure (Sec. 4.1) and the protocol
// parameter sets used in the LiBRA evaluation (Sec. 8.1).
#pragma once

namespace libra::mac {

// X60: TDMA, 10 ms frames divided into 100 slots of 100 us; each slot
// carries 92 CRC'd codewords. An X60 frame plays the role of an 802.11
// AMPDU (Sec. 4.1).
struct TdmaConfig {
  double frame_ms = 10.0;
  int slots_per_frame = 100;
  double slot_us = 100.0;
  int codewords_per_slot = 92;

  int codewords_per_frame() const { return slots_per_frame * codewords_per_slot; }
};

// Protocol parameters swept in Sec. 8.1.
struct ProtocolParams {
  // Frame aggregation time: one RA probe sends one aggregated frame.
  // 2 ms = max in 802.11ad; 10 ms = max in 802.11ac, also X60.
  double fat_ms = 10.0;
  // Beam-adaptation (sector sweep) duration. Paper values: 0.5 ms and 5 ms
  // (O(N) quasi-omni, 30-degree / 3-degree beams), 150 ms and 250 ms
  // (O(N^2) directional, 9/7-degree beams).
  double ba_overhead_ms = 5.0;
  // Utility weight alpha of Eqn. (1): 0.7 with low BA overhead, 0.5 with
  // high (Sec. 8.1).
  double alpha = 0.7;
};

// The four (BA overhead, alpha) points x two FAT values of Sec. 8.1.
inline constexpr double kBaOverheadsMs[] = {0.5, 5.0, 150.0, 250.0};
inline constexpr double kFatsMs[] = {2.0, 10.0};

inline double alpha_for_ba_overhead(double ba_overhead_ms) {
  return ba_overhead_ms <= 10.0 ? 0.7 : 0.5;
}

// Worst-case link recovery delay Dmax (Sec. 5.2): RA probes all MCSs, fails,
// performs BA, then probes all MCSs again.
double worst_case_delay_ms(int num_mcs, double fat_ms, double ba_overhead_ms);

}  // namespace libra::mac
