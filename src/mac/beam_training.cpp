#include "mac/beam_training.h"

#include <algorithm>

namespace libra::mac {

namespace {
double probes_to_ms(int probes, const BeamTrainerConfig& cfg) {
  return static_cast<double>(probes) * cfg.probe_us / 1000.0;
}
}  // namespace

SweepResult BeamTrainer::exhaustive(const channel::Link& link,
                                    const phy::PhySampler& sampler,
                                    util::Rng& rng) const {
  SweepResult best;
  best.snr_db = -1e9;
  const int n_tx = link.tx().codebook().size();
  const int n_rx = link.rx().codebook().size();
  for (array::BeamId tb = 0; tb < n_tx; ++tb) {
    for (array::BeamId rb = 0; rb < n_rx; ++rb) {
      const double snr = sampler.measure_snr_db(link, tb, rb, rng);
      ++best.measurements;
      if (snr > best.snr_db) {
        best.snr_db = snr;
        best.tx_beam = tb;
        best.rx_beam = rb;
      }
    }
  }
  best.duration_ms = probes_to_ms(best.measurements, cfg_);
  return best;
}

SweepResult BeamTrainer::sls_80211ad(const channel::Link& link,
                                     const phy::PhySampler& sampler,
                                     util::Rng& rng) const {
  SweepResult best;
  best.snr_db = -1e9;
  // Phase 1: Tx sweep, quasi-omni reception.
  for (array::BeamId tb = 0; tb < link.tx().codebook().size(); ++tb) {
    const double snr = sampler.measure_snr_db(link, tb, array::kQuasiOmni, rng);
    ++best.measurements;
    if (snr > best.snr_db) {
      best.snr_db = snr;
      best.tx_beam = tb;
    }
  }
  // Phase 2: Rx sweep with the chosen Tx beam... the standard actually uses
  // quasi-omni transmission, but evaluating with the trained Tx beam is
  // equivalent for pair selection and matches what devices do in practice.
  double best_rx_snr = -1e9;
  best.rx_beam = 0;
  for (array::BeamId rb = 0; rb < link.rx().codebook().size(); ++rb) {
    const double snr = sampler.measure_snr_db(link, best.tx_beam, rb, rng);
    ++best.measurements;
    if (snr > best_rx_snr) {
      best_rx_snr = snr;
      best.rx_beam = rb;
    }
  }
  best.snr_db = best_rx_snr;
  best.duration_ms = probes_to_ms(best.measurements, cfg_);
  return best;
}

SweepResult BeamTrainer::sls_tx_only(const channel::Link& link,
                                     const phy::PhySampler& sampler,
                                     util::Rng& rng) const {
  SweepResult best;
  best.snr_db = -1e9;
  best.rx_beam = array::kQuasiOmni;
  for (array::BeamId tb = 0; tb < link.tx().codebook().size(); ++tb) {
    const double snr = sampler.measure_snr_db(link, tb, array::kQuasiOmni, rng);
    ++best.measurements;
    if (snr > best.snr_db) {
      best.snr_db = snr;
      best.tx_beam = tb;
    }
  }
  best.duration_ms = probes_to_ms(best.measurements, cfg_);
  return best;
}

SweepResult BeamTrainer::coarse_fine(const channel::Link& link,
                                     const phy::PhySampler& sampler,
                                     util::Rng& rng, int stride,
                                     int radius) const {
  SweepResult best;
  best.snr_db = -1e9;
  const int n_tx = link.tx().codebook().size();
  const int n_rx = link.rx().codebook().size();

  // Level 1: coarse grid, offset so the probes straddle the span center.
  const int offset = stride / 2;
  for (array::BeamId tb = offset; tb < n_tx; tb += stride) {
    for (array::BeamId rb = offset; rb < n_rx; rb += stride) {
      const double snr = sampler.measure_snr_db(link, tb, rb, rng);
      ++best.measurements;
      if (snr > best.snr_db) {
        best.snr_db = snr;
        best.tx_beam = tb;
        best.rx_beam = rb;
      }
    }
  }

  // Level 2: exhaustive refinement around the coarse winner.
  const array::BeamId coarse_tx = best.tx_beam;
  const array::BeamId coarse_rx = best.rx_beam;
  for (array::BeamId tb = std::max(0, coarse_tx - radius);
       tb <= std::min(n_tx - 1, coarse_tx + radius); ++tb) {
    for (array::BeamId rb = std::max(0, coarse_rx - radius);
         rb <= std::min(n_rx - 1, coarse_rx + radius); ++rb) {
      if (tb == coarse_tx && rb == coarse_rx) continue;  // already measured
      const double snr = sampler.measure_snr_db(link, tb, rb, rng);
      ++best.measurements;
      if (snr > best.snr_db) {
        best.snr_db = snr;
        best.tx_beam = tb;
        best.rx_beam = rb;
      }
    }
  }
  best.duration_ms = probes_to_ms(best.measurements, cfg_);
  return best;
}

}  // namespace libra::mac
