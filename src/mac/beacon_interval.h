// 802.11ad beamforming-training timing (Sec. 8.1's BA overhead derivation).
//
// The paper's four BA-overhead operating points are not arbitrary: 0.5 ms
// and 5 ms follow from the O(N) quasi-omni sector sweep with 30-degree and
// 3-degree beams (Eqn. 2 of [24]), and 150/250 ms from the O(N^2)
// directional search with 9/7-degree beams. This module implements that
// arithmetic from first principles -- SSW frame airtime, short/medium
// inter-frame spaces, the feedback exchange, and the beacon-interval
// structure (BTI / A-BFT / DTI) inside which training happens.
#pragma once

namespace libra::mac {

// Single SSW frame airtime and the inter-frame spaces of 802.11ad.
struct SswTiming {
  double ssw_frame_us = 15.8;   // 26-byte SSW frame at the control rate
  double sbifs_us = 1.0;        // short beamforming IFS between SSW frames
  double mbifs_us = 9.0;        // medium beamforming IFS between phases
  double feedback_us = 40.0;    // SSW-Feedback + SSW-ACK exchange
};

// Beacon-interval structure: beam training opportunities occur in the BTI
// (initiator sweep) and A-BFT (responder slots); data flows in the DTI.
struct BeaconIntervalConfig {
  double bi_ms = 102.4;         // default 802.11ad beacon interval
  int abft_slots = 8;           // responder SSW slots per BI
  int ssw_frames_per_slot = 16; // FSS: sweep frames per A-BFT slot
};

// Number of sectors needed to cover `coverage_deg` with `beamwidth_deg`
// beams (ceil).
int sectors_for_beamwidth(double coverage_deg, double beamwidth_deg);

// O(N) sector sweep: N SSW frames + spacing + feedback (the COTS/standard
// path with quasi-omni reception).
double sls_duration_ms(int sectors, const SswTiming& timing = {});

// Both-sides O(N) training: initiator + responder sweeps + feedback.
double full_sls_duration_ms(int tx_sectors, int rx_sectors,
                            const SswTiming& timing = {});

// O(N^2) exhaustive directional search: every Tx sector repeated for every
// Rx sector (no quasi-omni), plus feedback.
double exhaustive_duration_ms(int tx_sectors, int rx_sectors,
                              const SswTiming& timing = {});

// How many beacon intervals a responder needs, in expectation, to complete
// its A-BFT training when `contenders` stations pick among the slots
// uniformly (collisions void a slot).
double expected_abft_intervals(int contenders,
                               const BeaconIntervalConfig& bi = {});

}  // namespace libra::mac
