#include "mac/ack.h"

#include <cmath>
#include <stdexcept>

namespace libra::mac {

AckModel::AckModel(const phy::ErrorModel* error_model, AckModelConfig cfg)
    : error_model_(error_model), cfg_(cfg) {
  if (!error_model_) throw std::invalid_argument("null error model");
  if (cfg_.subframes < 1) throw std::invalid_argument("subframes < 1");
}

double AckModel::ack_probability(phy::McsIndex mcs, double snr_db) const {
  const double p_subframe =
      error_model_->codeword_success_prob(mcs, snr_db);
  return 1.0 - std::pow(1.0 - p_subframe, cfg_.subframes);
}

bool AckModel::ack_received(phy::McsIndex mcs, double snr_db,
                            util::Rng& rng) const {
  return rng.bernoulli(ack_probability(mcs, snr_db));
}

}  // namespace libra::mac
