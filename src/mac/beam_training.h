// Beam adaptation (BA) algorithms (Sec. 2):
//
//   exhaustive    - naive O(N^2): every Tx x Rx beam pair is measured. This
//                   is what the dataset collection uses to find the ground-
//                   truth best pair (Sec. 5.1).
//   sls_80211ad   - O(N): Tx sector sweep with quasi-omni reception, then Rx
//                   sweep with quasi-omni transmission (standard SLS).
//   sls_tx_only   - O(N)/2: COTS devices only train the Tx beam and always
//                   receive quasi-omni.
//
// Each returns the selected pair, its SNR, the number of probe measurements
// and the sweep airtime (per-probe time x probes).
#pragma once

#include "array/codebook.h"
#include "channel/link.h"
#include "phy/sampler.h"
#include "util/rng.h"

namespace libra::mac {

struct SweepResult {
  array::BeamId tx_beam = 0;
  array::BeamId rx_beam = array::kQuasiOmni;
  double snr_db = 0.0;
  int measurements = 0;
  double duration_ms = 0.0;
};

struct BeamTrainerConfig {
  // Airtime per probe (one SSW frame + turnaround). 802.11ad SSW frames are
  // ~15 us plus SBIFS; X60 uses one 100 us slot per measurement.
  double probe_us = 20.0;
};

class BeamTrainer {
 public:
  explicit BeamTrainer(BeamTrainerConfig cfg = {}) : cfg_(cfg) {}

  SweepResult exhaustive(const channel::Link& link,
                         const phy::PhySampler& sampler, util::Rng& rng) const;

  SweepResult sls_80211ad(const channel::Link& link,
                          const phy::PhySampler& sampler, util::Rng& rng) const;

  SweepResult sls_tx_only(const channel::Link& link,
                          const phy::PhySampler& sampler, util::Rng& rng) const;

  // Coarse-to-fine two-level search (overhead-reduction family of Sec. 2
  // [11, 28, 31, 43, 54, 57, 70]): probe every `stride`-th beam pair on a
  // coarse grid, then exhaustively refine within +-`radius` beams of the
  // coarse winner. With 25 beams, stride 5 and radius 2 this needs 5x5 +
  // 5x5 = 50 probes instead of 625 -- it can miss the optimum when the
  // coarse grid straddles a narrow feature, which the ba_algorithms bench
  // quantifies.
  SweepResult coarse_fine(const channel::Link& link,
                          const phy::PhySampler& sampler, util::Rng& rng,
                          int stride = 5, int radius = 2) const;

  const BeamTrainerConfig& config() const { return cfg_; }

 private:
  BeamTrainerConfig cfg_;
};

}  // namespace libra::mac
