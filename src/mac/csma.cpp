#include "mac/csma.h"

#include <algorithm>
#include <stdexcept>

namespace libra::mac {

double unthrottled_duty(double offered_load, const CsmaConfig& cfg) {
  if (offered_load < 0.0 || offered_load > 1.0) {
    throw std::invalid_argument("offered_load must be in [0, 1]");
  }
  const double busy =
      cfg.frame_airtime_ms / (cfg.frame_airtime_ms + cfg.contention_ms);
  return offered_load * busy;
}

bool can_sense(const channel::Link& talker_to_listener,
               array::BeamId talker_beam, array::BeamId listener_beam,
               const CsmaConfig& cfg) {
  return talker_to_listener.rx_power_dbm(talker_beam, listener_beam) >=
         cfg.sensing_threshold_dbm;
}

double interference_duty(bool interferer_senses_victim, double offered_load,
                         const CsmaConfig& cfg) {
  if (interferer_senses_victim) {
    // CSMA defers: residual overlap only from the vulnerable window around
    // each frame start, negligible at these airtimes.
    return 0.0;
  }
  return unthrottled_duty(offered_load, cfg);
}

}  // namespace libra::mac
