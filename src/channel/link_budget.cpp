#include "channel/link_budget.h"

#include <algorithm>
#include <cmath>

namespace libra::channel {

double fspl_db(double distance_m, double frequency_hz) {
  const double d = std::max(distance_m, 0.1);  // near-field guard
  return 20.0 * std::log10(d) + 20.0 * std::log10(frequency_hz) +
         20.0 * std::log10(4.0 * M_PI / libra::util::kSpeedOfLightMps);
}

double path_loss_db(const LinkBudgetConfig& cfg, double distance_m) {
  return fspl_db(distance_m, cfg.frequency_hz) +
         cfg.oxygen_db_per_m * distance_m + cfg.implementation_loss_db;
}

double thermal_noise_floor_dbm(const LinkBudgetConfig& cfg) {
  return -174.0 + 10.0 * std::log10(cfg.bandwidth_hz) + cfg.noise_figure_db;
}

}  // namespace libra::channel
