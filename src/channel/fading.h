// Temporal channel fading.
//
// The ray tracer gives the deterministic geometry; real links additionally
// see slow log-normal shadowing (people moving nearby, small sway) and
// residual fast fading. This process generates a dB offset that evolves as
// an AR(1) (Gauss-Markov) sequence with a configurable coherence time --
// the standard model for shadowing dynamics. Sessions apply it through
// Link::set_fade_db.
#pragma once

#include <cmath>

#include "util/rng.h"

namespace libra::channel {

struct FadingConfig {
  double sigma_db = 1.5;          // stationary standard deviation
  double coherence_time_ms = 200; // autocorrelation ~ exp(-dt / tau)
};

class FadingProcess {
 public:
  FadingProcess(FadingConfig cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  // Advance the process by dt and return the current fade offset (dB).
  double advance(double dt_ms) {
    const double rho =
        cfg_.coherence_time_ms > 0
            ? std::exp(-dt_ms / cfg_.coherence_time_ms)
            : 0.0;
    fade_db_ = rho * fade_db_ +
               std::sqrt(1.0 - rho * rho) * rng_.gaussian(0.0, cfg_.sigma_db);
    return fade_db_;
  }

  double current_db() const { return fade_db_; }
  const FadingConfig& config() const { return cfg_; }

 private:
  FadingConfig cfg_;
  util::Rng rng_;
  double fade_db_ = 0.0;
};

}  // namespace libra::channel
