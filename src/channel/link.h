// A Tx-Rx 60 GHz link: environment + two phased arrays + the ray-traced
// multipath channel between them. Produces, per beam pair, the quantities
// the X60 testbed logs: received power, SNR, and per-path contributions
// (from which the PHY layer synthesizes the PDP and the ToF).
#pragma once

#include <optional>
#include <vector>

#include "array/phased_array.h"
#include "channel/link_budget.h"
#include "channel/path_tracer.h"
#include "env/environment.h"

namespace libra::channel {

// A hidden-terminal interferer (Sec. 4.2 "Interference"): a CSMA 60 GHz
// source at a fixed position that transmits in bursts (duty_cycle fraction
// of airtime). During a burst its power reaches the Rx through the Rx beam
// pattern and the multipath between interferer and Rx. Because the coupling
// depends on the Rx beam's gain toward the interferer, changing beams can
// sometimes mitigate it -- which is why BA still wins about a third of the
// interference cases in the paper's dataset (Table 1) -- but bursts arriving
// through the serving beam cannot be escaped, which is why RA usually wins.
struct Interferer {
  geom::Vec2 position;
  double eirp_dbm = 20.0;
  double duty_cycle = 1.0;  // fraction of airtime the interferer transmits
};

struct PathContribution {
  double rx_power_dbm;  // through the current beam pair, incl. blockage
  double delay_ns;
  double aod_deg;
  double aoa_deg;
  int bounces;
};

class Link {
 public:
  Link(const env::Environment* env, array::PhasedArray* tx,
       array::PhasedArray* rx, LinkBudgetConfig cfg = {});

  // Re-run the ray tracer. Must be called after the Tx or Rx moves or the
  // environment's walls change. Blocker changes do NOT require a refresh
  // (blockage is applied per query).
  void refresh();

  // Per-path received power for a beam pair (blockage applied per leg).
  std::vector<PathContribution> contributions(array::BeamId tx_beam,
                                              array::BeamId rx_beam) const;

  // Total received power: non-coherent sum over paths. Returns a very low
  // floor (-200 dBm) when no path exists.
  double rx_power_dbm(array::BeamId tx_beam, array::BeamId rx_beam) const;

  // SINR over the effective noise floor seen by this Rx beam while the
  // interferer (if any) is transmitting (thermal + flat rise + interferer
  // coupling). With no interferer this equals snr_clean_db.
  double snr_db(array::BeamId tx_beam, array::BeamId rx_beam) const;

  // SNR excluding the burst interferer (between bursts).
  double snr_clean_db(array::BeamId tx_beam, array::BeamId rx_beam) const;

  double thermal_floor_dbm() const { return thermal_floor_dbm_; }
  // Effective noise floor for a given Rx beam. With kQuasiOmni this is what
  // a COTS device would report as its noise level.
  double noise_floor_dbm(array::BeamId rx_beam = array::kQuasiOmni) const;

  // Temporal fading offset (dB) applied to the received signal power on
  // every path; driven by a channel::FadingProcess during live sessions.
  void set_fade_db(double fade_db) { fade_db_ = fade_db; }
  double fade_db() const { return fade_db_; }

  // Flat interference: rise (dB) of the noise floor on every beam equally.
  void set_interference_rise_db(double rise_db) {
    interference_rise_db_ = rise_db;
  }
  double interference_rise_db() const { return interference_rise_db_; }

  // Directional hidden-terminal interferer; coupling depends on the Rx beam.
  void set_interferer(std::optional<Interferer> interferer);
  const std::optional<Interferer>& interferer() const { return interferer_; }
  // Interference power (dBm) leaking into the given Rx beam; -inf-ish floor
  // when no interferer is present.
  double interference_power_dbm(array::BeamId rx_beam) const;

  const std::vector<Path>& paths() const { return paths_; }
  const env::Environment& environment() const { return *env_; }
  array::PhasedArray& tx() { return *tx_; }
  array::PhasedArray& rx() { return *rx_; }
  const array::PhasedArray& tx() const { return *tx_; }
  const array::PhasedArray& rx() const { return *rx_; }
  const LinkBudgetConfig& budget() const { return cfg_; }

 private:
  const env::Environment* env_;  // non-owning
  array::PhasedArray* tx_;       // non-owning
  array::PhasedArray* rx_;       // non-owning
  LinkBudgetConfig cfg_;
  PathTracer tracer_;
  std::vector<Path> paths_;
  // Multipath from the interferer to the Rx: interference arrives from
  // several directions (LOS + reflections), so switching the Rx beam only
  // partially escapes it -- the reason RA remains the better choice in most
  // interference cases (Table 1).
  std::vector<Path> interferer_paths_;
  double thermal_floor_dbm_;
  double interference_rise_db_ = 0.0;
  double fade_db_ = 0.0;
  std::optional<Interferer> interferer_;
};

}  // namespace libra::channel
