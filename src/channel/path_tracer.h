// Image-method ray tracer for sparse 60 GHz indoor channels.
//
// Finds the LOS path plus first- and second-order specular reflections
// between Tx and Rx. mmWave channels are sparse (Sec. 6.1: PDP similarity is
// always > 0.65 because there are few significant paths), so a handful of
// specular components is an accurate model.
#pragma once

#include <vector>

#include "env/environment.h"
#include "geom/geometry.h"

namespace libra::channel {

struct Path {
  // World-frame angle of departure at the Tx and of arrival at the Rx
  // (direction the Rx must look toward to receive this path).
  double aod_deg = 0.0;
  double aoa_deg = 0.0;
  double length_m = 0.0;
  double reflection_loss_db = 0.0;  // sum of per-bounce material losses
  int bounces = 0;
  // Polyline Tx -> (reflection points) -> Rx; used for blockage evaluation.
  std::vector<geom::Vec2> points;
};

class PathTracer {
 public:
  explicit PathTracer(int max_bounces = 2) : max_bounces_(max_bounces) {}

  // All valid specular paths from tx to rx in env. Walls both reflect and
  // obstruct; human blockers do NOT remove paths (they attenuate them --
  // evaluated later, because blockers move between states).
  std::vector<Path> trace(const env::Environment& env, geom::Vec2 tx,
                          geom::Vec2 rx) const;

 private:
  bool leg_clear(const env::Environment& env, geom::Vec2 a, geom::Vec2 b,
                 const geom::Wall* skip1, const geom::Wall* skip2) const;

  int max_bounces_;
};

}  // namespace libra::channel
