#include "channel/path_tracer.h"

namespace libra::channel {

bool PathTracer::leg_clear(const env::Environment& env, geom::Vec2 a,
                           geom::Vec2 b, const geom::Wall* skip1,
                           const geom::Wall* skip2) const {
  const geom::Segment ray{a, b};
  for (const geom::Wall& w : env.walls()) {
    if (&w == skip1 || &w == skip2) continue;
    if (geom::segments_cross(ray, w.seg)) return false;
  }
  return true;
}

std::vector<Path> PathTracer::trace(const env::Environment& env, geom::Vec2 tx,
                                    geom::Vec2 rx) const {
  std::vector<Path> paths;

  // LOS.
  if (leg_clear(env, tx, rx, nullptr, nullptr)) {
    Path p;
    p.aod_deg = (rx - tx).angle_deg();
    p.aoa_deg = (tx - rx).angle_deg();
    p.length_m = geom::distance(tx, rx);
    p.bounces = 0;
    p.points = {tx, rx};
    paths.push_back(std::move(p));
  }

  if (max_bounces_ < 1) return paths;

  // First-order reflections: mirror tx across each wall; the reflection
  // point is where image->rx crosses the wall.
  for (const geom::Wall& w : env.walls()) {
    const geom::Vec2 image = geom::mirror(tx, w.seg);
    const auto hit = geom::intersect({image, rx}, w.seg);
    if (!hit) continue;
    if (!leg_clear(env, tx, *hit, &w, nullptr)) continue;
    if (!leg_clear(env, *hit, rx, &w, nullptr)) continue;
    Path p;
    p.aod_deg = (*hit - tx).angle_deg();
    p.aoa_deg = (*hit - rx).angle_deg();
    p.length_m = geom::distance(tx, *hit) + geom::distance(*hit, rx);
    p.reflection_loss_db = w.reflection_loss_db;
    p.bounces = 1;
    p.points = {tx, *hit, rx};
    paths.push_back(std::move(p));
  }

  if (max_bounces_ < 2) return paths;

  // Second-order reflections: mirror tx across wall i, then that image
  // across wall j; unfold back to front.
  for (const geom::Wall& wi : env.walls()) {
    const geom::Vec2 image1 = geom::mirror(tx, wi.seg);
    for (const geom::Wall& wj : env.walls()) {
      if (&wi == &wj) continue;
      const geom::Vec2 image2 = geom::mirror(image1, wj.seg);
      const auto hit2 = geom::intersect({image2, rx}, wj.seg);
      if (!hit2) continue;
      const auto hit1 = geom::intersect({image1, *hit2}, wi.seg);
      if (!hit1) continue;
      if (!leg_clear(env, tx, *hit1, &wi, nullptr)) continue;
      if (!leg_clear(env, *hit1, *hit2, &wi, &wj)) continue;
      if (!leg_clear(env, *hit2, rx, &wj, nullptr)) continue;
      Path p;
      p.aod_deg = (*hit1 - tx).angle_deg();
      p.aoa_deg = (*hit2 - rx).angle_deg();
      p.length_m = geom::distance(tx, *hit1) + geom::distance(*hit1, *hit2) +
                   geom::distance(*hit2, rx);
      p.reflection_loss_db = wi.reflection_loss_db + wj.reflection_loss_db;
      p.bounces = 2;
      p.points = {tx, *hit1, *hit2, rx};
      paths.push_back(std::move(p));
    }
  }
  return paths;
}

}  // namespace libra::channel
