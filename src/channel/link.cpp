#include "channel/link.h"

#include <stdexcept>

#include "util/units.h"

namespace libra::channel {

namespace {
constexpr double kNoSignalDbm = -200.0;
}

Link::Link(const env::Environment* env, array::PhasedArray* tx,
           array::PhasedArray* rx, LinkBudgetConfig cfg)
    : env_(env),
      tx_(tx),
      rx_(rx),
      cfg_(cfg),
      thermal_floor_dbm_(thermal_noise_floor_dbm(cfg)) {
  if (!env_ || !tx_ || !rx_) throw std::invalid_argument("null link member");
  refresh();
}

void Link::refresh() {
  paths_ = tracer_.trace(*env_, tx_->position(), rx_->position());
  if (interferer_) {
    interferer_paths_ =
        tracer_.trace(*env_, interferer_->position, rx_->position());
  } else {
    interferer_paths_.clear();
  }
}

void Link::set_interferer(std::optional<Interferer> interferer) {
  interferer_ = interferer;
  if (interferer_) {
    interferer_paths_ =
        tracer_.trace(*env_, interferer_->position, rx_->position());
  } else {
    interferer_paths_.clear();
  }
}

std::vector<PathContribution> Link::contributions(
    array::BeamId tx_beam, array::BeamId rx_beam) const {
  std::vector<PathContribution> out;
  out.reserve(paths_.size());
  for (const Path& p : paths_) {
    double blockage_db = 0.0;
    for (std::size_t i = 0; i + 1 < p.points.size(); ++i) {
      blockage_db += env_->blockage_loss_db(p.points[i], p.points[i + 1]);
    }
    const double power =
        cfg_.tx_power_dbm + tx_->gain_dbi(tx_beam, p.aod_deg) +
        rx_->gain_dbi(rx_beam, p.aoa_deg) - path_loss_db(cfg_, p.length_m) -
        p.reflection_loss_db - blockage_db;
    out.push_back({power,
                   p.length_m / libra::util::kSpeedOfLightMps *
                       libra::util::kNsPerSecond,
                   p.aod_deg, p.aoa_deg, p.bounces});
  }
  return out;
}

double Link::rx_power_dbm(array::BeamId tx_beam, array::BeamId rx_beam) const {
  double total_mw = 0.0;
  for (const PathContribution& c : contributions(tx_beam, rx_beam)) {
    total_mw += libra::util::dbm_to_mw(c.rx_power_dbm);
  }
  if (total_mw <= 0.0) return kNoSignalDbm;
  return libra::util::mw_to_dbm(total_mw) + fade_db_;
}

double Link::interference_power_dbm(array::BeamId rx_beam) const {
  if (!interferer_) return kNoSignalDbm;
  double total_mw = 0.0;
  for (const Path& p : interferer_paths_) {
    const double power = interferer_->eirp_dbm +
                         rx_->gain_dbi(rx_beam, p.aoa_deg) -
                         path_loss_db(cfg_, p.length_m) - p.reflection_loss_db;
    total_mw += libra::util::dbm_to_mw(power);
  }
  if (total_mw <= 0.0) return kNoSignalDbm;
  return libra::util::mw_to_dbm(total_mw);
}

double Link::noise_floor_dbm(array::BeamId rx_beam) const {
  const double base = thermal_floor_dbm_ + interference_rise_db_;
  if (!interferer_) return base;
  return libra::util::dbm_add(base, interference_power_dbm(rx_beam));
}

double Link::snr_db(array::BeamId tx_beam, array::BeamId rx_beam) const {
  return rx_power_dbm(tx_beam, rx_beam) - noise_floor_dbm(rx_beam);
}

double Link::snr_clean_db(array::BeamId tx_beam,
                          array::BeamId rx_beam) const {
  return rx_power_dbm(tx_beam, rx_beam) -
         (thermal_floor_dbm_ + interference_rise_db_);
}

}  // namespace libra::channel
