// 60 GHz link-budget math: free-space path loss, atmospheric (oxygen)
// absorption, thermal noise floor over the 802.11ad channel bandwidth.
#pragma once

#include "util/units.h"

namespace libra::channel {

struct LinkBudgetConfig {
  double tx_power_dbm = 3.0;           // per-element PA power; with the
                                       // array gains this spans MCS 2-8
                                       // over the measured 2.5-30 m range
  double frequency_hz = libra::util::k60GHzFrequencyHz;
  double bandwidth_hz = 1.76e9;        // 802.11ad SC PHY occupied bandwidth
  double noise_figure_db = 7.0;
  double oxygen_db_per_m = 0.016;      // ~16 dB/km O2 absorption at 60 GHz
  double implementation_loss_db = 3.0;
};

// Free-space path loss (dB) at distance d (m) and frequency f (Hz).
double fspl_db(double distance_m, double frequency_hz);

// FSPL + oxygen absorption for this budget.
double path_loss_db(const LinkBudgetConfig& cfg, double distance_m);

// Thermal noise floor (dBm): -174 dBm/Hz + 10log10(B) + NF.
double thermal_noise_floor_dbm(const LinkBudgetConfig& cfg);

}  // namespace libra::channel
