#include "env/registry.h"

namespace libra::env {
namespace {

// Material reflection losses (dB per bounce) at 60 GHz.
constexpr double kMetal = 4.0;
constexpr double kGlassMetalPanel = 5.0;
constexpr double kWhiteboard = 6.0;
constexpr double kDrywall = 8.0;
constexpr double kOldBrick = 12.0;

geom::Wall wall(geom::Vec2 a, geom::Vec2 b, double loss, std::string name) {
  return geom::Wall{{a, b}, loss, std::move(name)};
}

}  // namespace

std::vector<geom::Wall> rectangle_walls(double w, double h, double loss_s,
                                        double loss_e, double loss_n,
                                        double loss_w) {
  return {
      wall({0, 0}, {w, 0}, loss_s, "south"),
      wall({w, 0}, {w, h}, loss_e, "east"),
      wall({w, h}, {0, h}, loss_n, "north"),
      wall({0, h}, {0, 0}, loss_w, "west"),
  };
}

Environment make_lobby() {
  // 24 x 12 m open space. North side: glass panels over metallic sheets
  // (Fig. 14a) -> strong reflector. South side: drywall. Two pillars.
  auto walls = rectangle_walls(24.0, 12.0, kDrywall, kDrywall,
                               kGlassMetalPanel, kDrywall);
  walls.push_back(wall({8.0, 5.5}, {8.6, 5.5}, kMetal, "pillar1"));
  walls.push_back(wall({16.0, 5.5}, {16.6, 5.5}, kMetal, "pillar2"));
  return Environment("lobby", std::move(walls));
}

Environment make_lab() {
  // 11.8 x 9.2 m; metallic storage cabinets line the east wall and
  // whiteboards the north wall; rows of desks create weak scatterers that we
  // fold into slightly lossier side walls.
  auto walls = rectangle_walls(11.8, 9.2, kDrywall, kMetal, kWhiteboard,
                               kDrywall);
  // A row of metallic cabinets partway into the room.
  walls.push_back(wall({2.0, 6.4}, {9.0, 6.4}, kMetal, "cabinets"));
  return Environment("lab", std::move(walls));
}

Environment make_conference_room() {
  // 10.4 x 6.8 m; whiteboard covers the west wall (Fig. 14c), metallic
  // cabinets on the east wall; a large central desk blocks low paths but not
  // the antenna height, so it is not modeled as an obstacle.
  auto walls = rectangle_walls(10.4, 6.8, kDrywall, kMetal, kDrywall,
                               kWhiteboard);
  return Environment("conference_room", std::move(walls));
}

Environment make_corridor(double width_m) {
  auto walls =
      rectangle_walls(30.0, width_m, kDrywall, kDrywall, kDrywall, kDrywall);
  return Environment("corridor_" + std::to_string(width_m).substr(0, 4),
                     std::move(walls));
}

Environment make_building1_corridor() {
  // Old building: different wall material, fewer reflective surfaces
  // (Sec. 6.2 "Accuracy with a different dataset").
  auto walls =
      rectangle_walls(35.0, 2.5, kOldBrick, kOldBrick, kOldBrick, kOldBrick);
  return Environment("building1_corridor", std::move(walls));
}

Environment make_building2_open_area() {
  auto walls = rectangle_walls(32.0, 18.0, kDrywall, kGlassMetalPanel,
                               kDrywall, kDrywall);
  return Environment("building2_open_area", std::move(walls));
}

std::vector<Environment> training_environments() {
  std::vector<Environment> envs;
  envs.push_back(make_lobby());
  envs.push_back(make_lab());
  envs.push_back(make_conference_room());
  envs.push_back(make_corridor(1.74));
  envs.push_back(make_corridor(3.2));
  envs.push_back(make_corridor(6.2));
  return envs;
}

std::vector<Environment> testing_environments() {
  std::vector<Environment> envs;
  envs.push_back(make_building1_corridor());
  envs.push_back(make_building2_open_area());
  return envs;
}

}  // namespace libra::env
