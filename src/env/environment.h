// Indoor measurement environments (Sec. 4.2, Appendix A.2.1).
//
// Each environment is a plan-view polygon of material walls plus optional
// interior obstacles (cabinets, desks). Environments both reflect paths
// (image-method ray tracing) and block them (LOS obstruction).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geom/geometry.h"

namespace libra::env {

// A human blocker standing on/near a path (Sec. 4.2 "Blockage"): modeled as
// a disc that attenuates any ray passing within its radius. Measured 60 GHz
// human-body losses are 15-30 dB; partial occlusion yields less.
struct Blocker {
  geom::Vec2 position;
  double radius_m = 0.25;
  double attenuation_db = 28.0;
};

class Environment {
 public:
  Environment(std::string name, std::vector<geom::Wall> walls);

  const std::string& name() const { return name_; }
  const std::vector<geom::Wall>& walls() const { return walls_; }

  void add_blocker(const Blocker& b) { blockers_.push_back(b); }
  void clear_blockers() { blockers_.clear(); }
  const std::vector<Blocker>& blockers() const { return blockers_; }

  // Total blockage attenuation (dB) a ray from a to b suffers from the
  // blockers currently present. Grazing incidence (ray passes near the edge
  // of the disc) attenuates proportionally less than a dead-center hit.
  double blockage_loss_db(geom::Vec2 a, geom::Vec2 b) const;

  // True if the straight segment a->b is interrupted by any wall.
  bool wall_obstructs(geom::Vec2 a, geom::Vec2 b) const;

  // Axis-aligned bounding box over all wall endpoints.
  struct BoundingBox {
    geom::Vec2 min;
    geom::Vec2 max;
  };
  BoundingBox bounding_box() const;

  // Clamp a point into the bounding box with the given margin.
  geom::Vec2 clamp_inside(geom::Vec2 p, double margin_m = 0.3) const;

 private:
  std::string name_;
  std::vector<geom::Wall> walls_;
  std::vector<Blocker> blockers_;
};

}  // namespace libra::env
