// Concrete environments from the paper (Fig. 14, Appendix A.2.1):
//
//   Main (training) building: lobby, lab, conference room, three corridors
//   of width 1.74 m, 3.2 m and 6.2 m.
//   Testing buildings: Building 1 (old, 2.5 m corridor, weakly reflective
//   walls), Building 2 (wide open area, larger than the lobby).
//
// Wall materials set the per-bounce reflection loss, which controls how
// useful NLOS (reflected) paths are -- the key environment property for the
// BA-vs-RA ground truth.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "env/environment.h"

namespace libra::env {

// Rectangular room helper: four walls with the given losses
// (order: south, east, north, west), origin at (0,0), size (w,h).
std::vector<geom::Wall> rectangle_walls(double w, double h,
                                        double loss_s, double loss_e,
                                        double loss_n, double loss_w);

// Large open space; one side glass+metal panels (strong reflector), the
// other a drywall. ~24 x 12 m.
Environment make_lobby();

// 11.8 x 9.2 m lab with rows of desks and metallic storage cabinets
// (strong reflectors) along the walls.
Environment make_lab();

// 10.4 x 6.8 m conference room, one wall covered by a whiteboard
// (strong reflector), metallic cabinets, central table.
Environment make_conference_room();

// A straight corridor of the given width; length 30 m. Drywall sides.
Environment make_corridor(double width_m);

// Testing Building 1: long 2.5 m corridor, old construction, lossy walls
// (fewer reflective surfaces -> reflections are ~6 dB weaker).
Environment make_building1_corridor();

// Testing Building 2: wide open area, much larger than the lobby.
Environment make_building2_open_area();

// The six training environments, in Table-1 order.
std::vector<Environment> training_environments();
// The two testing environments (Table 2).
std::vector<Environment> testing_environments();

}  // namespace libra::env
