#include "env/environment.h"

#include <algorithm>

namespace libra::env {

Environment::Environment(std::string name, std::vector<geom::Wall> walls)
    : name_(std::move(name)), walls_(std::move(walls)) {}

double Environment::blockage_loss_db(geom::Vec2 a, geom::Vec2 b) const {
  double loss = 0.0;
  const geom::Segment ray{a, b};
  for (const Blocker& blk : blockers_) {
    const double d = geom::point_segment_distance(blk.position, ray);
    if (d >= blk.radius_m) continue;
    // Linear taper from full attenuation at the disc center to 0 at the rim
    // approximates partial (grazing) occlusion; the paper observes SNR drops
    // spanning 1-15 dB under "blockage" because the LOS was often only
    // partially blocked (Sec. 6.1.2).
    const double frac = 1.0 - d / blk.radius_m;
    loss += blk.attenuation_db * frac;
  }
  return loss;
}

Environment::BoundingBox Environment::bounding_box() const {
  BoundingBox box{{1e18, 1e18}, {-1e18, -1e18}};
  for (const geom::Wall& w : walls_) {
    for (geom::Vec2 p : {w.seg.a, w.seg.b}) {
      box.min.x = std::min(box.min.x, p.x);
      box.min.y = std::min(box.min.y, p.y);
      box.max.x = std::max(box.max.x, p.x);
      box.max.y = std::max(box.max.y, p.y);
    }
  }
  return box;
}

geom::Vec2 Environment::clamp_inside(geom::Vec2 p, double margin_m) const {
  const BoundingBox box = bounding_box();
  return {std::clamp(p.x, box.min.x + margin_m, box.max.x - margin_m),
          std::clamp(p.y, box.min.y + margin_m, box.max.y - margin_m)};
}

bool Environment::wall_obstructs(geom::Vec2 a, geom::Vec2 b) const {
  const geom::Segment ray{a, b};
  return std::any_of(walls_.begin(), walls_.end(), [&](const geom::Wall& w) {
    return geom::segments_cross(ray, w.seg);
  });
}

}  // namespace libra::env
