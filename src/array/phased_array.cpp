#include "array/phased_array.h"

#include <stdexcept>

namespace libra::array {

PhasedArray::PhasedArray(geom::Vec2 position, double boresight_deg,
                         const Codebook* codebook)
    : position_(position), boresight_deg_(boresight_deg), codebook_(codebook) {
  if (codebook_ == nullptr) throw std::invalid_argument("null codebook");
}

void PhasedArray::rotate(double delta_deg) {
  boresight_deg_ = geom::wrap_angle_deg(boresight_deg_ + delta_deg);
}

double PhasedArray::gain_dbi(BeamId beam, double world_angle_deg) const {
  const double array_angle =
      geom::wrap_angle_deg(world_angle_deg - boresight_deg_);
  return codebook_->gain_dbi(beam, array_angle);
}

double PhasedArray::angle_to(geom::Vec2 target) const {
  return (target - position_).angle_deg();
}

}  // namespace libra::array
