#include "array/codebook.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/geometry.h"
#include "util/rng.h"
#include "util/units.h"

namespace libra::array {
namespace {

// Gaussian-shaped lobe: 3 dB down at half the HPBW from the peak.
double lobe_gain_db(double delta_deg, double peak_db, double hpbw_deg) {
  const double x = delta_deg / (hpbw_deg / 2.0);
  return peak_db - 3.0 * x * x;
}

}  // namespace

BeamPattern::BeamPattern(BeamId id, double steer_deg, double hpbw_deg,
                         double peak_gain_dbi, std::vector<SideLobe> side_lobes)
    : id_(id),
      steer_deg_(steer_deg),
      hpbw_deg_(hpbw_deg),
      peak_gain_dbi_(peak_gain_dbi),
      side_lobes_(std::move(side_lobes)) {}

double BeamPattern::gain_dbi(double angle_deg) const {
  const double delta = geom::wrap_angle_deg(angle_deg - steer_deg_);
  double best = lobe_gain_db(delta, peak_gain_dbi_, hpbw_deg_);
  for (const SideLobe& sl : side_lobes_) {
    const double sl_delta = geom::wrap_angle_deg(delta - sl.offset_deg);
    best = std::max(best, lobe_gain_db(sl_delta, peak_gain_dbi_ + sl.gain_db,
                                       sl.width_deg));
  }
  return best;
}

Codebook::Codebook(const CodebookConfig& config) : config_(config) {
  if (config.num_beams < 1) throw std::invalid_argument("num_beams < 1");
  util::Rng rng(config.pattern_seed);
  beams_.reserve(static_cast<std::size_t>(config.num_beams));
  const double span = config.max_steer_deg - config.min_steer_deg;
  for (int i = 0; i < config.num_beams; ++i) {
    const double frac =
        config.num_beams == 1
            ? 0.5
            : static_cast<double>(i) / static_cast<double>(config.num_beams - 1);
    const double steer = config.min_steer_deg + frac * span;
    // HPBW varies 25..35 degrees across the codebook (Sec. 4.1), here as a
    // deterministic per-beam perturbation around the base width.
    const double hpbw =
        config.base_hpbw_deg + rng.uniform(-5.0, 5.0);
    // Two large side lobes per beam, like SiBeam/COTS patterns; offsets are
    // fixed per beam so the pattern is a stable property of the hardware.
    std::vector<SideLobe> lobes;
    lobes.push_back({rng.uniform(35.0, 70.0) * (rng.bernoulli(0.5) ? 1 : -1),
                     rng.uniform(-14.0, -6.0), rng.uniform(15.0, 30.0)});
    lobes.push_back({rng.uniform(70.0, 120.0) * (rng.bernoulli(0.5) ? 1 : -1),
                     rng.uniform(-18.0, -9.0), rng.uniform(15.0, 30.0)});
    beams_.emplace_back(i, steer, hpbw, config.peak_gain_dbi, std::move(lobes));
  }
}

const BeamPattern& Codebook::beam(BeamId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("beam id");
  return beams_[static_cast<std::size_t>(id)];
}

double Codebook::gain_dbi(BeamId id, double angle_deg) const {
  if (id == kQuasiOmni) {
    // Quasi-omni: near-flat over the front hemisphere, attenuated behind.
    return std::abs(geom::wrap_angle_deg(angle_deg)) <= 90.0
               ? config_.quasi_omni_gain_dbi
               : config_.quasi_omni_gain_dbi - 8.0;
  }
  return std::max(beam(id).gain_dbi(angle_deg), config_.backlobe_floor_dbi);
}

BeamId Codebook::nearest_beam(double angle_deg) const {
  BeamId best = 0;
  double best_delta = std::abs(geom::wrap_angle_deg(angle_deg -
                                                    beams_[0].steering_deg()));
  for (int i = 1; i < size(); ++i) {
    const double d = std::abs(geom::wrap_angle_deg(
        angle_deg - beams_[static_cast<std::size_t>(i)].steering_deg()));
    if (d < best_delta) {
      best_delta = d;
      best = i;
    }
  }
  return best;
}

}  // namespace libra::array
