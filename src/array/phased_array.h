// A phased antenna array placed in the world: position + boresight
// orientation + codebook. Converts world-frame departure/arrival angles into
// array-frame angles and looks up beam gains.
#pragma once

#include "array/codebook.h"
#include "geom/geometry.h"

namespace libra::array {

class PhasedArray {
 public:
  PhasedArray(geom::Vec2 position, double boresight_deg,
              const Codebook* codebook);

  geom::Vec2 position() const { return position_; }
  double boresight_deg() const { return boresight_deg_; }
  const Codebook& codebook() const { return *codebook_; }

  void set_position(geom::Vec2 p) { position_ = p; }
  void set_boresight_deg(double deg) { boresight_deg_ = deg; }
  // Rotate by delta degrees (positive = counter-clockwise), as in the
  // paper's rotation experiments (steps of 15 degrees, Sec. 4.2).
  void rotate(double delta_deg);

  // Gain (dBi) of `beam` toward a world-frame direction (degrees).
  double gain_dbi(BeamId beam, double world_angle_deg) const;

  // World-frame angle from this array toward a point.
  double angle_to(geom::Vec2 target) const;

 private:
  geom::Vec2 position_;
  double boresight_deg_;
  const Codebook* codebook_;  // non-owning; outlives the array
};

}  // namespace libra::array
