// Beam codebook modeling the SiBeam reference codebook used by the X60
// testbed (Sec. 4.1): 25 steerable beam patterns spaced ~5 degrees apart in
// their main lobe, spanning -60..60 degrees in azimuth, with a 3 dB
// beamwidth of 25-35 degrees and large side lobes -- deliberately imperfect,
// like the patterns in COTS 60 GHz devices.
#pragma once

#include <cstdint>
#include <vector>

namespace libra::array {

// Identifies a beam inside a codebook. kQuasiOmni is the pseudo-beam used
// for quasi-omni reception during sector sweeps.
using BeamId = int;
inline constexpr BeamId kQuasiOmni = -1;

struct SideLobe {
  double offset_deg;  // angular offset of the side-lobe peak from main lobe
  double gain_db;     // side-lobe peak gain relative to main-lobe peak (< 0)
  double width_deg;   // side-lobe 3 dB width
};

// One entry of the codebook. Gain is a deterministic function of the angle
// relative to the array boresight.
class BeamPattern {
 public:
  BeamPattern(BeamId id, double steer_deg, double hpbw_deg, double peak_gain_dbi,
              std::vector<SideLobe> side_lobes);

  // Directivity gain (dBi) toward `angle_deg` measured from array boresight.
  double gain_dbi(double angle_deg) const;

  BeamId id() const { return id_; }
  double steering_deg() const { return steer_deg_; }
  double hpbw_deg() const { return hpbw_deg_; }
  double peak_gain_dbi() const { return peak_gain_dbi_; }
  const std::vector<SideLobe>& side_lobes() const { return side_lobes_; }

 private:
  BeamId id_;
  double steer_deg_;
  double hpbw_deg_;
  double peak_gain_dbi_;
  std::vector<SideLobe> side_lobes_;
};

struct CodebookConfig {
  int num_beams = 25;
  double min_steer_deg = -60.0;
  double max_steer_deg = 60.0;
  double base_hpbw_deg = 30.0;      // varies 25..35 across beams
  double peak_gain_dbi = 17.0;      // 12-element array at 60 GHz
  double quasi_omni_gain_dbi = 3.0; // flat gain in quasi-omni mode
  double backlobe_floor_dbi = -12.0;
  std::uint64_t pattern_seed = 42;  // deterministic side-lobe structure
};

class Codebook {
 public:
  explicit Codebook(const CodebookConfig& config = {});

  int size() const { return static_cast<int>(beams_.size()); }
  const BeamPattern& beam(BeamId id) const;
  const std::vector<BeamPattern>& beams() const { return beams_; }

  // Gain toward angle for either a real beam or kQuasiOmni.
  double gain_dbi(BeamId id, double angle_deg) const;

  // The beam whose steering angle is closest to `angle_deg`.
  BeamId nearest_beam(double angle_deg) const;

  const CodebookConfig& config() const { return config_; }

 private:
  CodebookConfig config_;
  std::vector<BeamPattern> beams_;
};

}  // namespace libra::array
