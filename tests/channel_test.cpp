#include <gtest/gtest.h>

#include <cmath>

#include "channel/fading.h"
#include "channel/link.h"
#include "channel/link_budget.h"
#include "channel/path_tracer.h"
#include "env/registry.h"
#include "util/stats.h"

namespace libra::channel {
namespace {

env::Environment box() {
  return env::Environment("box", env::rectangle_walls(20, 10, 8, 8, 8, 8));
}

// ---------- link budget ----------

TEST(LinkBudget, FsplMatchesClosedForm) {
  // 68 dB at 1 m and 60 GHz is the textbook value.
  EXPECT_NEAR(fspl_db(1.0, 60e9), 68.0, 0.2);
  // +20 dB per decade of distance.
  EXPECT_NEAR(fspl_db(10.0, 60e9) - fspl_db(1.0, 60e9), 20.0, 1e-9);
}

TEST(LinkBudget, NearFieldGuard) {
  EXPECT_DOUBLE_EQ(fspl_db(0.0, 60e9), fspl_db(0.1, 60e9));
}

TEST(LinkBudget, OxygenAbsorptionAccumulates) {
  const LinkBudgetConfig cfg;
  const double d1 = path_loss_db(cfg, 10.0);
  const double d2 = path_loss_db(cfg, 1000.0);
  // At 1 km the O2 term alone adds ~16 dB beyond FSPL scaling.
  const double fspl_delta = fspl_db(1000.0, cfg.frequency_hz) -
                            fspl_db(10.0, cfg.frequency_hz);
  EXPECT_NEAR(d2 - d1 - fspl_delta, cfg.oxygen_db_per_m * 990.0, 1e-9);
}

TEST(LinkBudget, ThermalNoiseFloor) {
  LinkBudgetConfig cfg;
  // -174 + 10log10(1.76e9) + 7 = -74.5 dBm.
  EXPECT_NEAR(thermal_noise_floor_dbm(cfg), -74.5, 0.2);
}

// ---------- path tracer ----------

TEST(PathTracer, FreeSpaceHasOnlyLos) {
  const env::Environment empty("empty", {});
  const PathTracer tracer;
  const auto paths = tracer.trace(empty, {0, 0}, {5, 0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].bounces, 0);
  EXPECT_DOUBLE_EQ(paths[0].length_m, 5.0);
  EXPECT_NEAR(paths[0].aod_deg, 0.0, 1e-9);
  EXPECT_NEAR(paths[0].aoa_deg, 180.0, 1e-9);
}

TEST(PathTracer, BoxYieldsLosAndReflections) {
  const env::Environment e = box();
  const PathTracer tracer;
  const auto paths = tracer.trace(e, {2, 5}, {18, 5});
  int los = 0, first = 0, second = 0;
  for (const auto& p : paths) {
    if (p.bounces == 0) ++los;
    if (p.bounces == 1) ++first;
    if (p.bounces == 2) ++second;
  }
  EXPECT_EQ(los, 1);
  // Midline between parallel walls: ceiling + floor wall reflections exist.
  EXPECT_GE(first, 2);
  EXPECT_GE(second, 2);
}

TEST(PathTracer, ReflectionGeometryIsSpecular) {
  const env::Environment e = box();
  const PathTracer tracer(1);
  const auto paths = tracer.trace(e, {5, 5}, {15, 5});
  for (const auto& p : paths) {
    if (p.bounces != 1) continue;
    ASSERT_EQ(p.points.size(), 3u);
    // For the two horizontal walls the reflection point is equidistant in x
    // (symmetric Tx/Rx heights); end walls reflect at other points.
    const bool horizontal_wall =
        std::abs(p.points[1].y) < 1e-6 || std::abs(p.points[1].y - 10.0) < 1e-6;
    if (horizontal_wall) {
      EXPECT_NEAR(p.points[1].x, 10.0, 1e-6);
    }
    // Any reflected path is longer than the LOS.
    EXPECT_GT(p.length_m, 10.0);
  }
}

TEST(PathTracer, ReflectionLossComesFromWallMaterial) {
  auto walls = env::rectangle_walls(20, 10, 3, 99, 12, 99);
  const env::Environment e("mixed", std::move(walls));
  const PathTracer tracer(1);
  const auto paths = tracer.trace(e, {5, 5}, {15, 5});
  bool saw3 = false, saw12 = false;
  for (const auto& p : paths) {
    if (p.bounces != 1) continue;
    saw3 |= p.reflection_loss_db == 3.0;
    saw12 |= p.reflection_loss_db == 12.0;
  }
  EXPECT_TRUE(saw3);
  EXPECT_TRUE(saw12);
}

TEST(PathTracer, WallBlocksLos) {
  auto walls = env::rectangle_walls(20, 10, 8, 8, 8, 8);
  walls.push_back({{{10, 0}, {10, 10}}, 5.0, "divider"});
  const env::Environment e("divided", std::move(walls));
  const PathTracer tracer;
  const auto paths = tracer.trace(e, {5, 5}, {15, 5});
  for (const auto& p : paths) {
    EXPECT_NE(p.bounces, 0);  // no LOS through the divider
  }
}

TEST(PathTracer, MaxBouncesZero) {
  const env::Environment e = box();
  const PathTracer tracer(0);
  const auto paths = tracer.trace(e, {5, 5}, {15, 5});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].bounces, 0);
}

TEST(PathTracer, SecondOrderPathLengthExceedsFirstOrder) {
  const env::Environment e = box();
  const PathTracer tracer;
  const auto paths = tracer.trace(e, {2, 5}, {18, 5});
  double min2 = 1e18, min1 = 1e18;
  for (const auto& p : paths) {
    if (p.bounces == 1) min1 = std::min(min1, p.length_m);
    if (p.bounces == 2) min2 = std::min(min2, p.length_m);
  }
  EXPECT_GT(min2, min1);
}

// ---------- link ----------

struct LinkFixture : ::testing::Test {
  LinkFixture()
      : environment(box()),
        tx({2, 5}, 0.0, &codebook),
        rx({18, 5}, 180.0, &codebook),
        link(&environment, &tx, &rx) {}

  array::Codebook codebook;
  env::Environment environment;
  array::PhasedArray tx;
  array::PhasedArray rx;
  Link link;
};

TEST_F(LinkFixture, AlignedBeamsGiveBestPower) {
  const double aligned = link.rx_power_dbm(12, 12);
  EXPECT_GT(aligned, link.rx_power_dbm(0, 12));
  EXPECT_GT(aligned, link.rx_power_dbm(12, 0));
  EXPECT_GT(aligned, link.rx_power_dbm(12, array::kQuasiOmni));
}

TEST_F(LinkFixture, PowerDecreasesWithDistance) {
  const double near = link.rx_power_dbm(12, 12);
  rx.set_position({10, 5});
  link.refresh();
  const double nearer = link.rx_power_dbm(12, 12);
  EXPECT_GT(nearer, near);
}

TEST_F(LinkFixture, SnrIsPowerMinusNoise) {
  EXPECT_NEAR(link.snr_db(12, 12),
              link.rx_power_dbm(12, 12) - link.noise_floor_dbm(12), 1e-9);
}

TEST_F(LinkFixture, FlatInterferenceRaisesFloor) {
  const double before = link.snr_db(12, 12);
  link.set_interference_rise_db(10.0);
  EXPECT_NEAR(link.snr_db(12, 12), before - 10.0, 1e-9);
}

TEST_F(LinkFixture, BlockerReducesPowerWithoutRefresh) {
  const double before = link.rx_power_dbm(12, 12);
  environment.add_blocker({{10, 5}, 0.25, 28.0});
  const double after = link.rx_power_dbm(12, 12);
  EXPECT_LT(after, before - 10.0);  // LOS dominated, so most power is gone
}

TEST_F(LinkFixture, InterfererCouplingDependsOnRxBeam) {
  link.set_interferer(Interferer{{18, 1}, 30.0, 1.0});
  // The interferer sits below the Rx; a beam looking toward it couples more
  // than a beam looking away.
  const array::BeamId toward = codebook.nearest_beam(
      geom::wrap_angle_deg((geom::Vec2{18, 1} - rx.position()).angle_deg() -
                           rx.boresight_deg()));
  double max_power = -1e9, min_power = 1e9;
  for (array::BeamId b = 0; b < codebook.size(); ++b) {
    const double p = link.interference_power_dbm(b);
    max_power = std::max(max_power, p);
    min_power = std::min(min_power, p);
  }
  EXPECT_GT(max_power - min_power, 5.0);
  EXPECT_GT(link.interference_power_dbm(toward), min_power);
}

TEST_F(LinkFixture, CleanSnrIgnoresInterferer) {
  const double before = link.snr_clean_db(12, 12);
  link.set_interferer(Interferer{{10, 2}, 40.0, 0.5});
  EXPECT_NEAR(link.snr_clean_db(12, 12), before, 1e-9);
  EXPECT_LT(link.snr_db(12, 12), before);
}

TEST_F(LinkFixture, RemovingInterfererRestoresFloor) {
  const double base = link.noise_floor_dbm(12);
  link.set_interferer(Interferer{{10, 2}, 40.0, 1.0});
  EXPECT_GT(link.noise_floor_dbm(12), base);
  link.set_interferer(std::nullopt);
  EXPECT_NEAR(link.noise_floor_dbm(12), base, 1e-12);
}

TEST_F(LinkFixture, ContributionsDelaysMatchGeometry) {
  const auto contributions = link.contributions(12, 12);
  ASSERT_FALSE(contributions.empty());
  // The earliest arrival is the LOS at distance/c.
  double min_delay = 1e18;
  for (const auto& c : contributions) min_delay = std::min(min_delay, c.delay_ns);
  EXPECT_NEAR(min_delay, 16.0 / 0.299792458, 0.01);
}

TEST_F(LinkFixture, NoPathsYieldsFloorPower) {
  // Fully separate the endpoints with a box around the Tx.
  auto walls = env::rectangle_walls(20, 10, 8, 8, 8, 8);
  for (const auto& w : env::rectangle_walls(2, 2, 99, 99, 99, 99)) {
    walls.push_back({{{w.seg.a.x + 1, w.seg.a.y + 4},
                      {w.seg.b.x + 1, w.seg.b.y + 4}},
                     99.0, "cage"});
  }
  env::Environment caged("caged", std::move(walls));
  array::PhasedArray tx2({2, 5}, 0.0, &codebook);
  array::PhasedArray rx2({18, 5}, 180.0, &codebook);
  Link caged_link(&caged, &tx2, &rx2);
  // Tx sits inside the cage: no LOS, and the cage participates in
  // reflections but every LOS leg is cut.
  EXPECT_LT(caged_link.rx_power_dbm(12, 12), link.rx_power_dbm(12, 12));
}

TEST_F(LinkFixture, FadeOffsetsSignalNotNoise) {
  const double snr0 = link.snr_db(12, 12);
  const double floor0 = link.noise_floor_dbm(12);
  link.set_fade_db(-6.0);
  EXPECT_NEAR(link.snr_db(12, 12), snr0 - 6.0, 1e-9);
  EXPECT_NEAR(link.noise_floor_dbm(12), floor0, 1e-12);
  link.set_fade_db(0.0);
  EXPECT_NEAR(link.snr_db(12, 12), snr0, 1e-9);
}

TEST(Fading, StationaryStatistics) {
  FadingConfig cfg;
  cfg.sigma_db = 2.0;
  cfg.coherence_time_ms = 100.0;
  FadingProcess fading(cfg, 7);
  util::RunningStats stats;
  // Sample far apart relative to the coherence time for near-independence.
  for (int i = 0; i < 5000; ++i) stats.add(fading.advance(500.0));
  EXPECT_NEAR(stats.mean(), 0.0, 0.15);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.15);
}

TEST(Fading, TemporalCorrelation) {
  FadingConfig cfg;
  cfg.sigma_db = 2.0;
  cfg.coherence_time_ms = 1000.0;
  FadingProcess fading(cfg, 8);
  fading.advance(10000.0);  // burn in
  // Tiny steps: consecutive values stay close.
  double prev = fading.current_db();
  double max_step = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double cur = fading.advance(1.0);
    max_step = std::max(max_step, std::abs(cur - prev));
    prev = cur;
  }
  EXPECT_LT(max_step, 0.5);
}

TEST(Fading, ZeroCoherenceIsWhiteNoise) {
  FadingConfig cfg;
  cfg.sigma_db = 1.0;
  cfg.coherence_time_ms = 0.0;
  FadingProcess fading(cfg, 9);
  const double a = fading.advance(1.0);
  const double b = fading.advance(1.0);
  EXPECT_NE(a, b);
}

TEST(Link, NullDependenciesThrow) {
  array::Codebook cb;
  env::Environment e = box();
  array::PhasedArray a({0, 0}, 0, &cb);
  EXPECT_THROW(Link(nullptr, &a, &a), std::invalid_argument);
  EXPECT_THROW(Link(&e, nullptr, &a), std::invalid_argument);
  EXPECT_THROW(Link(&e, &a, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace libra::channel
