// Telemetry subsystem (obs/): registry semantics under concurrency, log2
// bucket boundaries, exporter well-formedness, and trace-span export.
//
// The global registry is process-cumulative (like any scrape endpoint), so
// every test uses uniquely named metrics and asserts on deltas, never on
// absolute process-wide state.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_mini.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/span.h"

namespace libra {
namespace {

using libra::testing::JsonValue;
using libra::testing::parse_json;

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            std::string_view name) {
  const auto* c = snap.find_counter(name);
  return c ? c->value : 0;
}

// ---- histogram merge / snapshot delta (pure data, no registry) -------------

obs::HistogramData make_hist(std::initializer_list<double> samples) {
  obs::HistogramData d;
  for (double v : samples) {
    if (d.count == 0) {
      d.min = v;
      d.max = v;
    } else {
      d.min = std::min(d.min, v);
      d.max = std::max(d.max, v);
    }
    ++d.buckets[obs::histogram_bucket(v)];
    ++d.count;
    d.sum += v;
  }
  return d;
}

void expect_hist_eq(const obs::HistogramData& a, const obs::HistogramData& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(ObsHistogram, MergeIsOrderInvariant) {
  // Integer-valued samples so even the fp sum is exact under any grouping
  // (the same RunningStats::merge-style shuffle discipline).
  const obs::HistogramData a = make_hist({1.0, 3.0, 7.0});
  const obs::HistogramData b = make_hist({2.0, 200.0});
  const obs::HistogramData c = make_hist({0.0, 5000.0, 12.0, 64.0});

  // Every merge order and grouping lands on the same result.
  obs::HistogramData ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  obs::HistogramData a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);
  obs::HistogramData cba = c;
  cba.merge(b);
  cba.merge(a);
  expect_hist_eq(ab_c, a_bc);
  expect_hist_eq(ab_c, cba);
  EXPECT_EQ(ab_c.count, 9u);
  EXPECT_DOUBLE_EQ(ab_c.min, 0.0);
  EXPECT_DOUBLE_EQ(ab_c.max, 5000.0);
  EXPECT_DOUBLE_EQ(ab_c.sum, 1 + 3 + 7 + 2 + 200 + 0 + 5000 + 12 + 64.0);

  // The empty histogram is the identity on both sides.
  obs::HistogramData left;
  left.merge(a);
  expect_hist_eq(left, a);
  obs::HistogramData right = a;
  right.merge(obs::HistogramData{});
  expect_hist_eq(right, a);
}

TEST(ObsHistogram, DeltaSinceSubtractsWindowAndDetectsRestart) {
  const obs::HistogramData earlier = make_hist({1.0, 3.0});
  obs::HistogramData now = earlier;
  now.merge(make_hist({7.0, 9.0, 100.0}));

  const obs::HistogramData window = now.delta_since(earlier);
  EXPECT_EQ(window.count, 3u);
  EXPECT_DOUBLE_EQ(window.sum, 116.0);
  EXPECT_EQ(window.buckets[obs::histogram_bucket(7.0)], 1u);
  EXPECT_EQ(window.buckets[obs::histogram_bucket(9.0)], 1u);
  EXPECT_EQ(window.buckets[obs::histogram_bucket(100.0)], 1u);
  EXPECT_EQ(window.buckets[obs::histogram_bucket(1.0)], 0u);

  // A source that restarted (count went backwards) reports its current
  // cumulative values instead of a wrapped delta.
  const obs::HistogramData restarted = make_hist({5.0});
  expect_hist_eq(restarted.delta_since(now), restarted);
}

TEST(ObsSnapshot, DeltaSinceCountersSaturateAndNewMetricsPassThrough) {
  obs::MetricsSnapshot earlier;
  earlier.counters.push_back({"a", 10});
  earlier.counters.push_back({"b", 100});
  obs::MetricsSnapshot now;
  now.counters.push_back({"a", 25});
  now.counters.push_back({"b", 40});  // restarted: went backwards
  now.counters.push_back({"c", 7});   // registered since `earlier`
  now.gauges.push_back({"g", 3.5});
  now.histograms.push_back({"h", make_hist({2.0, 6.0})});

  const obs::MetricsSnapshot d = now.delta_since(earlier);
  EXPECT_EQ(d.find_counter("a")->value, 15u);
  EXPECT_EQ(d.find_counter("b")->value, 40u);  // saturating: current value
  EXPECT_EQ(d.find_counter("c")->value, 7u);
  EXPECT_DOUBLE_EQ(d.find_gauge("g")->value, 3.5);  // gauges: current value
  EXPECT_EQ(d.find_histogram("h")->data.count, 2u);
}

// ---- Prometheus exposition: sanitization, escaping, mini-parser ------------

TEST(ObsExport, PromNameSanitizationAndLabelEscaping) {
  EXPECT_EQ(obs::prom_metric_name("fleet.tick_latency_us"),
            "libra_fleet_tick_latency_us");
  EXPECT_EQ(obs::prom_metric_name("weird-name:1"), "libra_weird_name_1");
  EXPECT_EQ(obs::prom_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom_escape_label("a\nb"), "a\\nb");
}

// A deliberately strict reader for the exposition format our exporters
// emit: "# HELP/TYPE" headers plus "name{labels} value" samples. Escaped
// label values are decoded, so a parse -> compare round trip catches both
// malformed structure and broken escaping.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};
struct PromDoc {
  std::map<std::string, std::string> types;  // metric name -> counter/...
  std::map<std::string, std::string> helps;
  std::vector<PromSample> samples;
};

PromDoc parse_prometheus(const std::string& text) {
  PromDoc doc;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name, rest;
      ls >> hash >> kind >> name;
      std::getline(ls >> std::ws, rest);
      if (kind == "TYPE") {
        // One TYPE per metric name, and it must precede every sample
        // (checked below by samples-so-far not containing the name).
        EXPECT_EQ(doc.types.count(name), 0u) << "duplicate TYPE for " << name;
        for (const PromSample& s : doc.samples) {
          EXPECT_FALSE(s.name.rfind(name, 0) == 0)
              << "TYPE after samples of " << name;
        }
        doc.types[name] = rest;
      } else if (kind == "HELP") {
        doc.helps[name] = rest;
      } else {
        ADD_FAILURE() << "unknown comment line: " << line;
      }
      continue;
    }
    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    EXPECT_FALSE(s.name.empty());
    for (char c : s.name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name byte in " << s.name;
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          ADD_FAILURE() << "malformed label in: " << line;
          return doc;
        }
        const std::string key = line.substr(i, eq - i);
        std::string val;
        std::size_t j = eq + 2;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\' && j + 1 < line.size()) {
            const char e = line[j + 1];
            val += e == 'n' ? '\n' : e;
            j += 2;
          } else {
            val += line[j++];
          }
        }
        if (j >= line.size()) {
          ADD_FAILURE() << "unterminated label value: " << line;
          return doc;
        }
        s.labels[key] = val;
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) {
        ADD_FAILURE() << "unterminated label set: " << line;
        return doc;
      }
      ++i;  // '}'
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) {
      ADD_FAILURE() << "sample without value: " << line;
      return doc;
    }
    s.value = std::stod(line.substr(i));
    doc.samples.push_back(std::move(s));
  }
  return doc;
}

// Cross-check one histogram's bucket series: cumulative counts must be
// monotone and the +Inf bucket must equal _count.
void expect_valid_histogram(const PromDoc& doc, const std::string& base,
                            const std::map<std::string, std::string>& labels) {
  double prev = 0.0, inf = -1.0, count = -1.0;
  for (const PromSample& s : doc.samples) {
    auto rest_match = [&](const PromSample& sample) {
      for (const auto& [k, v] : labels) {
        const auto it = sample.labels.find(k);
        if (it == sample.labels.end() || it->second != v) return false;
      }
      return true;
    };
    if (!rest_match(s)) continue;
    if (s.name == base + "_bucket") {
      EXPECT_GE(s.value, prev) << "bucket series not cumulative for " << base;
      prev = s.value;
      if (s.labels.count("le") && s.labels.at("le") == "+Inf") inf = s.value;
    } else if (s.name == base + "_count") {
      count = s.value;
    }
  }
  EXPECT_GE(inf, 0.0) << "missing +Inf bucket for " << base;
  EXPECT_EQ(inf, count) << "+Inf bucket != _count for " << base;
}

TEST(ObsExport, SnapshotPrometheusRoundTripsThroughParser) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"obs_test.parser.counter", 42});
  snap.gauges.push_back({"obs_test.parser.gauge", -2.5});
  snap.histograms.push_back({"obs_test.parser.hist", make_hist({3.0, 90.0})});

  const PromDoc doc = parse_prometheus(snap.to_prometheus());
  EXPECT_EQ(doc.types.at("libra_obs_test_parser_counter"), "counter");
  EXPECT_EQ(doc.types.at("libra_obs_test_parser_gauge"), "gauge");
  EXPECT_EQ(doc.types.at("libra_obs_test_parser_hist"), "histogram");
  EXPECT_EQ(doc.helps.count("libra_obs_test_parser_counter"), 1u);

  bool saw_counter = false;
  for (const PromSample& s : doc.samples) {
    if (s.name == "libra_obs_test_parser_counter") {
      saw_counter = true;
      EXPECT_EQ(s.value, 42.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  expect_valid_histogram(doc, "libra_obs_test_parser_hist", {});
}

TEST(ObsRegistry, HandlesAreFindOrRegister) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("obs_test.same_name");
  obs::Counter& b = reg.counter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "obs_test.same_name");
}

#if LIBRA_OBS_ENABLED

TEST(ObsRegistry, ConcurrentCounterSumsExactly) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& counter = reg.counter("obs_test.concurrent");
  const std::uint64_t before =
      counter_value(reg.snapshot(), "obs_test.concurrent");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& t : threads) t.join();

  // Every bump lands in its own thread's shard; the merge must lose none.
  const std::uint64_t after =
      counter_value(reg.snapshot(), "obs_test.concurrent");
  EXPECT_EQ(after - before, kThreads * kIncsPerThread);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  obs::Gauge& g = obs::Registry::global().gauge("obs_test.gauge");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* gv = snap.find_gauge("obs_test.gauge");
  ASSERT_NE(gv, nullptr);
  EXPECT_DOUBLE_EQ(gv->value, 2.25);
}

TEST(ObsRegistry, HistogramObservationsMergeIntoSnapshot) {
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h = reg.histogram("obs_test.hist");
  h.observe(3.0);
  h.observe(5.0);
  h.observe(100.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* hv = snap.find_histogram("obs_test.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->data.count, 3u);
  EXPECT_DOUBLE_EQ(hv->data.sum, 108.0);
  EXPECT_DOUBLE_EQ(hv->data.min, 3.0);
  EXPECT_DOUBLE_EQ(hv->data.max, 100.0);
  EXPECT_EQ(hv->data.buckets[obs::histogram_bucket(3.0)], 1u);   // [2, 4)
  EXPECT_EQ(hv->data.buckets[obs::histogram_bucket(5.0)], 1u);   // [4, 8)
  EXPECT_EQ(hv->data.buckets[obs::histogram_bucket(100.0)], 1u);  // [64, 128)
}

TEST(ObsRegistry, RuntimeDisableIsANullSink) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.disabled");
  obs::Histogram& h = reg.histogram("obs_test.disabled_hist");
  const obs::MetricsSnapshot before = reg.snapshot();
  const std::size_t events_before = obs::TraceBuffer::global().event_count();

  obs::set_enabled(false);
  c.inc(10);
  h.observe(42.0);
  { OBS_SPAN("obs_test.disabled_span"); }
  obs::set_enabled(true);

  const obs::MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(counter_value(after, "obs_test.disabled"),
            counter_value(before, "obs_test.disabled"));
  const auto* hv = after.find_histogram("obs_test.disabled_hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->data.count, 0u);
  EXPECT_EQ(obs::TraceBuffer::global().event_count(), events_before);
}

TEST(ObsTrace, SpanExportIsValidChromeTraceJson) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  {
    OBS_SPAN("obs_test.outer");
    { OBS_SPAN("obs_test.inner"); }
  }
  ASSERT_GE(buf.event_count(), 2u);

  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  buf.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();

  const JsonValue root = parse_json(ss.str());
  ASSERT_TRUE(root.is_object());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->array.size(), 2u);

  bool saw_outer = false, saw_inner = false;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* dur = e.find("dur");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_EQ(ph->str, "X");  // complete duration events only
    EXPECT_TRUE(ts->is_number());
    EXPECT_TRUE(dur->is_number());
    EXPECT_GE(dur->number, 0.0);
    saw_outer |= name->str == "obs_test.outer";
    saw_inner |= name->str == "obs_test.inner";
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  buf.clear();
}

TEST(ObsExport, JsonSnapshotParses) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("obs_test.json_counter").inc(7);
  reg.histogram("obs_test.json_hist").observe(12.0);
  const JsonValue root = parse_json(reg.snapshot().to_json());
  ASSERT_TRUE(root.is_object());
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("obs_test.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number, 7.0);
  const JsonValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->find("obs_test.json_hist"), nullptr);
}

TEST(ObsExport, PrometheusContainsCumulativeBuckets) {
  obs::Registry& reg = obs::Registry::global();
  reg.histogram("obs_test.prom_hist").observe(3.0);
  const std::string prom = reg.snapshot().to_prometheus();
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_count"), std::string::npos);
}

// ---- aggregator: roll-ups, multi-origin merge, series feed -----------------

TEST(ObsAggregator, RejectsBadConfig) {
  obs::AggregatorConfig bad_period;
  bad_period.rollup_period_ms = 0.0;
  EXPECT_THROW(obs::Aggregator{bad_period}, std::invalid_argument);
  obs::AggregatorConfig bad_ring;
  bad_ring.ring_capacity = 0;
  EXPECT_THROW(obs::Aggregator{bad_ring}, std::invalid_argument);
}

TEST(ObsAggregator, RollupFoldsLocalRegistryIntoSeries) {
  obs::Counter& c = obs::Registry::global().counter("obs_test.agg_local");
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_test.agg_local_hist");
  obs::Aggregator agg;  // local_origin defaults to "controller"

  c.inc(5);
  h.observe(16.0);
  agg.rollup_now();
  c.inc(7);
  agg.rollup_now();
  EXPECT_EQ(agg.rollups(), 2u);

  const testing::JsonValue root = parse_json(agg.series_json());
  const testing::JsonValue* origins = root.find("origins");
  ASSERT_NE(origins, nullptr);
  const testing::JsonValue* ctl = origins->find("controller");
  ASSERT_NE(ctl, nullptr);
  const testing::JsonValue* counters = ctl->find("counters");
  ASSERT_NE(counters, nullptr);
  const testing::JsonValue* series = counters->find("obs_test.agg_local");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("total")->number, 12.0);
  const testing::JsonValue* rate = series->find("rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(rate->array.size(), 2u);
  EXPECT_GT(rate->array[0].number, 0.0);  // first window: the 5-inc
  const testing::JsonValue* hist =
      ctl->find("histograms")->find("obs_test.agg_local_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 1.0);
  ASSERT_EQ(hist->find("p99")->array.size(), 2u);

  // The merged exposition carries the local origin label and parses.
  const PromDoc doc = parse_prometheus(agg.prometheus_text());
  bool saw = false;
  for (const PromSample& s : doc.samples) {
    if (s.name == "libra_obs_test_agg_local") {
      saw = true;
      EXPECT_EQ(s.labels.at("origin"), "controller");
      EXPECT_EQ(s.value, 12.0);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ObsAggregator, MergesRemoteSourceUnderItsOwnOrigin) {
  obs::Aggregator agg;
  agg.add_source([]() -> std::optional<obs::LabeledSnapshot> {
    obs::MetricsSnapshot snap;
    snap.counters.push_back({"obs_test.remote_counter", 42});
    snap.histograms.push_back({"obs_test.remote_hist", make_hist({8.0})});
    return obs::LabeledSnapshot{"daemon", std::move(snap)};
  });
  agg.rollup_now();

  const PromDoc doc = parse_prometheus(agg.prometheus_text());
  bool saw_remote = false, saw_local_origin = false;
  for (const PromSample& s : doc.samples) {
    if (s.name == "libra_obs_test_remote_counter") {
      saw_remote = true;
      EXPECT_EQ(s.labels.at("origin"), "daemon");
      EXPECT_EQ(s.value, 42.0);
    }
    if (s.labels.count("origin") && s.labels.at("origin") == "controller") {
      saw_local_origin = true;
    }
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_TRUE(saw_local_origin);
  expect_valid_histogram(doc, "libra_obs_test_remote_hist",
                         {{"origin", "daemon"}});

  const testing::JsonValue root = parse_json(agg.series_json());
  EXPECT_NE(root.find("origins")->find("daemon"), nullptr);
}

// counter_rate_series is series_json() without the JSON round trip: the
// same per-window rate points, addressed by (origin, counter name). The
// fleet trainer's drift detector consumes it directly.
TEST(ObsAggregator, CounterRateSeriesMatchesJsonExport) {
  obs::Counter& c = obs::Registry::global().counter("obs_test.rate_series");
  obs::Aggregator agg;  // local_origin defaults to "controller"
  c.inc(5);
  agg.rollup_now();
  c.inc(7);
  agg.rollup_now();

  const std::vector<double> rates =
      agg.counter_rate_series("controller", "obs_test.rate_series");
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_GT(rates[0], 0.0);
  EXPECT_GT(rates[1], 0.0);

  const testing::JsonValue root = parse_json(agg.series_json());
  const testing::JsonValue* rate = root.find("origins")
                                       ->find("controller")
                                       ->find("counters")
                                       ->find("obs_test.rate_series")
                                       ->find("rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(rate->array.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    // The JSON export prints ~6 significant digits; compare to its
    // round-trip precision, not bit-exactly.
    EXPECT_NEAR(rate->array[i].number, rates[i],
                1e-4 * std::abs(rates[i]) + 1e-12)
        << "window " << i;
  }

  // Unknown origin or counter: empty, not a throw.
  EXPECT_TRUE(agg.counter_rate_series("nobody", "obs_test.rate_series").empty());
  EXPECT_TRUE(agg.counter_rate_series("controller", "no.such.counter").empty());
}

TEST(ObsAggregator, HostileSourcesAreCountedNotFatal) {
  const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
  obs::Aggregator agg;
  agg.add_source([]() -> std::optional<obs::LabeledSnapshot> {
    throw std::runtime_error("daemon hung up");
  });
  agg.add_source([]() -> std::optional<obs::LabeledSnapshot> {
    // Colliding with the local origin would corrupt the delta chain; the
    // roll-up must discard it.
    return obs::LabeledSnapshot{"controller", obs::MetricsSnapshot{}};
  });
  agg.add_source([]() -> std::optional<obs::LabeledSnapshot> {
    return obs::LabeledSnapshot{"", obs::MetricsSnapshot{}};
  });
  agg.rollup_now();
  EXPECT_EQ(agg.rollups(), 1u);
  const obs::MetricsSnapshot after = obs::Registry::global().snapshot();
  EXPECT_EQ(counter_value(after, "obs.aggregator.source_errors") -
                counter_value(before, "obs.aggregator.source_errors"),
            3u);
}

TEST(ObsAggregator, BackgroundThreadRollsUp) {
  obs::AggregatorConfig cfg;
  cfg.rollup_period_ms = 5.0;
  obs::Aggregator agg(cfg);
  agg.start();
  EXPECT_TRUE(agg.running());
  for (int i = 0; i < 200 && agg.rollups() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  agg.stop();
  EXPECT_GE(agg.rollups(), 3u);
  EXPECT_FALSE(agg.running());
}

// ---- scrape server: routes and hostile requests ----------------------------

// Raw request helper for the negative tests http_get cannot express.
std::string raw_http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ObsScrape, ServesMetricsHealthzAndSeries) {
  obs::Registry::global().counter("obs_test.scrape_counter").inc(3);
  obs::Aggregator agg;
  agg.rollup_now();
  obs::ScrapeServer server(agg);  // port 0: ephemeral
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto health = obs::http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  const auto metrics = obs::http_get("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  const PromDoc doc = parse_prometheus(metrics->body);
  bool saw = false;
  for (const PromSample& s : doc.samples) {
    saw |= s.name == "libra_obs_test_scrape_counter";
  }
  EXPECT_TRUE(saw);

  const auto series =
      obs::http_get("127.0.0.1", server.port(), "/series.json");
  ASSERT_TRUE(series.has_value());
  EXPECT_EQ(series->status, 200);
  EXPECT_TRUE(parse_json(series->body).is_object());

  const auto missing = obs::http_get("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
  // A stopped server refuses connections.
  EXPECT_FALSE(
      obs::http_get("127.0.0.1", server.port(), "/healthz").has_value());
}

TEST(ObsScrape, RejectsHostileRequests) {
  obs::Aggregator agg;
  obs::ScrapeConfig cfg;
  cfg.max_request_bytes = 1024;  // small cap so the oversized test is cheap
  obs::ScrapeServer server(agg, cfg);
  server.start();

  // Non-GET methods are refused.
  EXPECT_NE(raw_http_exchange(server.port(),
                              "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  // A request line without METHOD SP PATH SP VERSION is malformed.
  EXPECT_NE(raw_http_exchange(server.port(), "GARBAGE\r\n\r\n").find("400"),
            std::string::npos);
  // A request head past the cap (no newline, so the server keeps reading)
  // is cut off with 431, not buffered without bound.
  EXPECT_NE(raw_http_exchange(server.port(), std::string(4096, 'A'))
                .find("431"),
            std::string::npos);
  // The server survives all of the above and still serves.
  const auto health = obs::http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
}

// ---- trace context: nesting, adoption, merged exports ----------------------

// Export the global buffer and return the parsed traceEvents array.
testing::JsonValue exported_events() {
  const testing::JsonValue root =
      parse_json(obs::TraceBuffer::global().to_chrome_json());
  const testing::JsonValue* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  return events != nullptr ? *events : testing::JsonValue{};
}

const testing::JsonValue* find_event(const testing::JsonValue& events,
                                     const std::string& name) {
  for (const testing::JsonValue& e : events.array) {
    const testing::JsonValue* n = e.find("name");
    if (n != nullptr && n->str == name) return &e;
  }
  return nullptr;
}

TEST(ObsTrace, NestedSpansShareATraceAndParentLinks) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  {
    OBS_SPAN("obs_test.trace_outer");
    { OBS_SPAN("obs_test.trace_inner"); }
  }
  const testing::JsonValue events = exported_events();
  const testing::JsonValue* outer =
      find_event(events, "obs_test.trace_outer");
  const testing::JsonValue* inner =
      find_event(events, "obs_test.trace_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  const testing::JsonValue* oargs = outer->find("args");
  const testing::JsonValue* iargs = inner->find("args");
  ASSERT_NE(oargs, nullptr);
  ASSERT_NE(iargs, nullptr);
  // Same trace, inner parented under outer, outer is a root.
  EXPECT_EQ(oargs->find("trace")->str, iargs->find("trace")->str);
  EXPECT_EQ(iargs->find("parent")->str, oargs->find("span")->str);
  EXPECT_EQ(oargs->find("parent")->str, "0x0");
  buf.clear();
}

TEST(ObsTrace, ContextScopeAdoptsRemoteParent) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  const obs::TraceContext remote{0x1234abcdu, 0x77u};
  {
    obs::TraceContextScope scope(remote);
    OBS_SPAN("obs_test.trace_adopted");
  }
  // The scope restores the previous (empty) context on exit.
  EXPECT_EQ(obs::current_trace().trace_id, 0u);
  const testing::JsonValue events = exported_events();
  const testing::JsonValue* e = find_event(events, "obs_test.trace_adopted");
  ASSERT_NE(e, nullptr);
  const testing::JsonValue* args = e->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("trace")->str, "0x1234abcd");
  EXPECT_EQ(args->find("parent")->str, "0x77");
  buf.clear();
}

TEST(ObsTrace, NextTraceIdIsNeverZeroAndMonotone) {
  const std::uint64_t a = obs::next_trace_id();
  const std::uint64_t b = obs::next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(ObsTrace, MergeChromeJsonSplicesDocuments) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  { OBS_SPAN("obs_test.merge_a"); }
  const std::string doc_a = buf.to_chrome_json();
  buf.clear();
  { OBS_SPAN("obs_test.merge_b"); }
  const std::string doc_b = buf.to_chrome_json();
  buf.clear();

  const std::string merged = obs::merge_chrome_json({doc_a, doc_b});
  const testing::JsonValue root = parse_json(merged);
  const testing::JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_NE(find_event(*events, "obs_test.merge_a"), nullptr);
  EXPECT_NE(find_event(*events, "obs_test.merge_b"), nullptr);

  // Inputs that did not come from our exporter are refused, not spliced.
  EXPECT_THROW(obs::merge_chrome_json({"{\"foo\":1}"}), std::runtime_error);
}

#endif  // LIBRA_OBS_ENABLED

TEST(ObsHistogram, Log2BucketBoundaries) {
  // Bucket 0 holds v < 1 (and NaN); bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(obs::histogram_bucket(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket(0.5), 0u);
  EXPECT_EQ(obs::histogram_bucket(-3.0), 0u);
  EXPECT_EQ(obs::histogram_bucket(std::nan("")), 0u);
  EXPECT_EQ(obs::histogram_bucket(1.0), 1u);
  EXPECT_EQ(obs::histogram_bucket(1.5), 1u);
  EXPECT_EQ(obs::histogram_bucket(2.0), 2u);
  EXPECT_EQ(obs::histogram_bucket(3.0), 2u);
  EXPECT_EQ(obs::histogram_bucket(4.0), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023.0), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024.0), 11u);
  // Everything past the last boundary lands in the final bucket.
  EXPECT_EQ(obs::histogram_bucket(1e300), obs::kHistogramBuckets - 1);

  // Bounds round-trip: lower(b) maps into b, upper(b) into b+1.
  for (std::size_t b = 1; b + 1 < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_lower(b)), b);
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_upper(b)), b + 1);
  }
  EXPECT_TRUE(
      std::isinf(obs::histogram_bucket_upper(obs::kHistogramBuckets - 1)));
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  obs::HistogramData d;
  // 10 samples of 3.0: everything lives in bucket [2, 4).
  d.count = 10;
  d.sum = 30.0;
  d.min = 3.0;
  d.max = 3.0;
  d.buckets[obs::histogram_bucket(3.0)] = 10;
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  // The estimate interpolates inside [2, 4) but clamps to [min, max].
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 3.0);

  obs::HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

}  // namespace
}  // namespace libra
