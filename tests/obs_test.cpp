// Telemetry subsystem (obs/): registry semantics under concurrency, log2
// bucket boundaries, exporter well-formedness, and trace-span export.
//
// The global registry is process-cumulative (like any scrape endpoint), so
// every test uses uniquely named metrics and asserts on deltas, never on
// absolute process-wide state.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_mini.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace libra {
namespace {

using libra::testing::JsonValue;
using libra::testing::parse_json;

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            std::string_view name) {
  const auto* c = snap.find_counter(name);
  return c ? c->value : 0;
}

TEST(ObsRegistry, HandlesAreFindOrRegister) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("obs_test.same_name");
  obs::Counter& b = reg.counter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "obs_test.same_name");
}

#if LIBRA_OBS_ENABLED

TEST(ObsRegistry, ConcurrentCounterSumsExactly) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& counter = reg.counter("obs_test.concurrent");
  const std::uint64_t before =
      counter_value(reg.snapshot(), "obs_test.concurrent");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& t : threads) t.join();

  // Every bump lands in its own thread's shard; the merge must lose none.
  const std::uint64_t after =
      counter_value(reg.snapshot(), "obs_test.concurrent");
  EXPECT_EQ(after - before, kThreads * kIncsPerThread);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  obs::Gauge& g = obs::Registry::global().gauge("obs_test.gauge");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* gv = snap.find_gauge("obs_test.gauge");
  ASSERT_NE(gv, nullptr);
  EXPECT_DOUBLE_EQ(gv->value, 2.25);
}

TEST(ObsRegistry, HistogramObservationsMergeIntoSnapshot) {
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h = reg.histogram("obs_test.hist");
  h.observe(3.0);
  h.observe(5.0);
  h.observe(100.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* hv = snap.find_histogram("obs_test.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->data.count, 3u);
  EXPECT_DOUBLE_EQ(hv->data.sum, 108.0);
  EXPECT_DOUBLE_EQ(hv->data.min, 3.0);
  EXPECT_DOUBLE_EQ(hv->data.max, 100.0);
  EXPECT_EQ(hv->data.buckets[obs::histogram_bucket(3.0)], 1u);   // [2, 4)
  EXPECT_EQ(hv->data.buckets[obs::histogram_bucket(5.0)], 1u);   // [4, 8)
  EXPECT_EQ(hv->data.buckets[obs::histogram_bucket(100.0)], 1u);  // [64, 128)
}

TEST(ObsRegistry, RuntimeDisableIsANullSink) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.disabled");
  obs::Histogram& h = reg.histogram("obs_test.disabled_hist");
  const obs::MetricsSnapshot before = reg.snapshot();
  const std::size_t events_before = obs::TraceBuffer::global().event_count();

  obs::set_enabled(false);
  c.inc(10);
  h.observe(42.0);
  { OBS_SPAN("obs_test.disabled_span"); }
  obs::set_enabled(true);

  const obs::MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(counter_value(after, "obs_test.disabled"),
            counter_value(before, "obs_test.disabled"));
  const auto* hv = after.find_histogram("obs_test.disabled_hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->data.count, 0u);
  EXPECT_EQ(obs::TraceBuffer::global().event_count(), events_before);
}

TEST(ObsTrace, SpanExportIsValidChromeTraceJson) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  {
    OBS_SPAN("obs_test.outer");
    { OBS_SPAN("obs_test.inner"); }
  }
  ASSERT_GE(buf.event_count(), 2u);

  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  buf.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();

  const JsonValue root = parse_json(ss.str());
  ASSERT_TRUE(root.is_object());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->array.size(), 2u);

  bool saw_outer = false, saw_inner = false;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* dur = e.find("dur");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_EQ(ph->str, "X");  // complete duration events only
    EXPECT_TRUE(ts->is_number());
    EXPECT_TRUE(dur->is_number());
    EXPECT_GE(dur->number, 0.0);
    saw_outer |= name->str == "obs_test.outer";
    saw_inner |= name->str == "obs_test.inner";
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  buf.clear();
}

TEST(ObsExport, JsonSnapshotParses) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("obs_test.json_counter").inc(7);
  reg.histogram("obs_test.json_hist").observe(12.0);
  const JsonValue root = parse_json(reg.snapshot().to_json());
  ASSERT_TRUE(root.is_object());
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("obs_test.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number, 7.0);
  const JsonValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->find("obs_test.json_hist"), nullptr);
}

TEST(ObsExport, PrometheusContainsCumulativeBuckets) {
  obs::Registry& reg = obs::Registry::global();
  reg.histogram("obs_test.prom_hist").observe(3.0);
  const std::string prom = reg.snapshot().to_prometheus();
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(prom.find("libra_obs_test_prom_hist_count"), std::string::npos);
}

#endif  // LIBRA_OBS_ENABLED

TEST(ObsHistogram, Log2BucketBoundaries) {
  // Bucket 0 holds v < 1 (and NaN); bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(obs::histogram_bucket(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket(0.5), 0u);
  EXPECT_EQ(obs::histogram_bucket(-3.0), 0u);
  EXPECT_EQ(obs::histogram_bucket(std::nan("")), 0u);
  EXPECT_EQ(obs::histogram_bucket(1.0), 1u);
  EXPECT_EQ(obs::histogram_bucket(1.5), 1u);
  EXPECT_EQ(obs::histogram_bucket(2.0), 2u);
  EXPECT_EQ(obs::histogram_bucket(3.0), 2u);
  EXPECT_EQ(obs::histogram_bucket(4.0), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023.0), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024.0), 11u);
  // Everything past the last boundary lands in the final bucket.
  EXPECT_EQ(obs::histogram_bucket(1e300), obs::kHistogramBuckets - 1);

  // Bounds round-trip: lower(b) maps into b, upper(b) into b+1.
  for (std::size_t b = 1; b + 1 < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_lower(b)), b);
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_upper(b)), b + 1);
  }
  EXPECT_TRUE(
      std::isinf(obs::histogram_bucket_upper(obs::kHistogramBuckets - 1)));
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  obs::HistogramData d;
  // 10 samples of 3.0: everything lives in bucket [2, 4).
  d.count = 10;
  d.sum = 30.0;
  d.min = 3.0;
  d.max = 3.0;
  d.buckets[obs::histogram_bucket(3.0)] = 10;
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  // The estimate interpolates inside [2, 4) but clamps to [min, max].
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 3.0);

  obs::HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

}  // namespace
}  // namespace libra
