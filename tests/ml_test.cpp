#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "ml/compiled_forest.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "util/simd.h"
#include "util/stats.h"

namespace libra::ml {
namespace {

// Two well-separated Gaussian blobs (trivially separable).
DataSet blobs(int n_per_class, util::Rng& rng, double separation = 6.0) {
  DataSet d(2);
  for (int i = 0; i < n_per_class; ++i) {
    d.add(std::vector<double>{rng.gaussian(0, 1), rng.gaussian(0, 1)}, 0);
    d.add(std::vector<double>{rng.gaussian(separation, 1),
                              rng.gaussian(separation, 1)},
          1);
  }
  return d;
}

// XOR pattern: not linearly separable.
DataSet xor_data(int n_per_quadrant, util::Rng& rng) {
  DataSet d(2);
  for (int i = 0; i < n_per_quadrant; ++i) {
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        const double x = sx * (1.0 + rng.uniform(0, 1));
        const double y = sy * (1.0 + rng.uniform(0, 1));
        d.add(std::vector<double>{x, y}, sx * sy > 0 ? 1 : 0);
      }
    }
  }
  return d;
}

double holdout_accuracy(Classifier& model, const DataSet& train,
                        const DataSet& test, util::Rng& rng) {
  model.fit(train, rng);
  return accuracy(test.labels(), model.predict_all(test));
}

// ---------- DataSet ----------

TEST(DataSet, AddAndAccess) {
  DataSet d(2);
  d.add(std::vector<double>{1.0, 2.0}, 0);
  d.add(std::vector<double>{3.0, 4.0}, 1);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 3.0);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.num_classes(), 2);
}

TEST(DataSet, InconsistentDimensionThrows) {
  DataSet d(2);
  d.add(std::vector<double>{1.0, 2.0}, 0);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 0), std::invalid_argument);
}

TEST(DataSet, Subset) {
  DataSet d(1);
  for (int i = 0; i < 5; ++i) d.add(std::vector<double>{double(i)}, i % 2);
  const std::vector<std::size_t> idx{0, 2, 4};
  const DataSet s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 2.0);
}

TEST(DataSet, ReserveDoesNotChangeContents) {
  DataSet d(3);
  d.reserve(100);
  EXPECT_TRUE(d.empty());
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{double(i), double(i) + 0.5, -double(i)}, i % 3);
  }
  EXPECT_EQ(d.size(), 100u);
  EXPECT_DOUBLE_EQ(d.row(42)[1], 42.5);
  EXPECT_EQ(d.label(99), 0);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  DataSet d(2);
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    d.add(std::vector<double>{rng.gaussian(5, 3), rng.gaussian(-2, 0.5)}, 0);
  }
  Standardizer s;
  s.fit(d);
  const DataSet z = s.transform(d);
  util::RunningStats col0, col1;
  for (std::size_t i = 0; i < z.size(); ++i) {
    col0.add(z.row(i)[0]);
    col1.add(z.row(i)[1]);
  }
  EXPECT_NEAR(col0.mean(), 0.0, 1e-9);
  // Standardizer normalizes by the population stddev; RunningStats reports
  // the sample stddev, hence the sqrt(n/(n-1)) Bessel factor.
  EXPECT_NEAR(col0.stddev(), std::sqrt(500.0 / 499.0), 1e-9);
  EXPECT_NEAR(col1.mean(), 0.0, 1e-9);
}

TEST(Standardizer, ConstantFeatureSafe) {
  DataSet d(1);
  d.add(std::vector<double>{7.0}, 0);
  d.add(std::vector<double>{7.0}, 1);
  Standardizer s;
  s.fit(d);
  const auto z = s.transform_row(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(StratifiedKfold, PreservesClassBalance) {
  DataSet d(1);
  for (int i = 0; i < 100; ++i) d.add(std::vector<double>{double(i)}, 0);
  for (int i = 0; i < 20; ++i) d.add(std::vector<double>{double(i)}, 1);
  util::Rng rng(3);
  const auto splits = stratified_kfold(d, 5, rng);
  ASSERT_EQ(splits.size(), 5u);
  for (const FoldSplit& split : splits) {
    EXPECT_EQ(split.train.size() + split.test.size(), 120u);
    int test_minority = 0;
    for (std::size_t i : split.test) test_minority += d.label(i) == 1;
    EXPECT_EQ(test_minority, 4);  // 20 / 5 folds
  }
}

TEST(StratifiedKfold, FoldsPartitionData) {
  DataSet d(1);
  for (int i = 0; i < 30; ++i) d.add(std::vector<double>{double(i)}, i % 3);
  util::Rng rng(3);
  const auto splits = stratified_kfold(d, 3, rng);
  std::vector<int> seen(30, 0);
  for (const auto& split : splits) {
    for (std::size_t i : split.test) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(StratifiedKfold, InvalidKThrows) {
  DataSet d(1);
  d.add(std::vector<double>{0.0}, 0);
  util::Rng rng(1);
  EXPECT_THROW(stratified_kfold(d, 1, rng), std::invalid_argument);
}

// ---------- decision tree ----------

TEST(DecisionTree, SeparableBlobsPerfect) {
  util::Rng rng(1);
  const DataSet train = blobs(100, rng);
  const DataSet test = blobs(50, rng);
  DecisionTree dt;
  EXPECT_GT(holdout_accuracy(dt, train, test, rng), 0.95);
}

TEST(DecisionTree, SolvesXor) {
  util::Rng rng(2);
  const DataSet train = xor_data(50, rng);
  const DataSet test = xor_data(25, rng);
  DecisionTree dt;
  EXPECT_GT(holdout_accuracy(dt, train, test, rng), 0.95);
}

TEST(DecisionTree, DepthCapRespected) {
  util::Rng rng(3);
  const DataSet train = xor_data(50, rng);
  DecisionTreeConfig cfg;
  cfg.max_depth = 2;
  DecisionTree dt(cfg);
  dt.fit(train, rng);
  EXPECT_LE(dt.depth(), 3);  // root + 2 levels
}

TEST(DecisionTree, EntropyImpurityAlsoWorks) {
  util::Rng rng(4);
  const DataSet train = blobs(100, rng);
  const DataSet test = blobs(50, rng);
  DecisionTreeConfig cfg;
  cfg.impurity = Impurity::kEntropy;
  DecisionTree dt(cfg);
  EXPECT_GT(holdout_accuracy(dt, train, test, rng), 0.98);
}

TEST(DecisionTree, ImportancesSumToOne) {
  util::Rng rng(5);
  const DataSet train = xor_data(50, rng);
  DecisionTree dt;
  dt.fit(train, rng);
  double sum = 0.0;
  for (double i : dt.feature_importances()) sum += i;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DecisionTree, IrrelevantFeatureGetsLowImportance) {
  util::Rng rng(6);
  DataSet d(2);
  for (int i = 0; i < 400; ++i) {
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    // Feature 0 decides the class; feature 1 is pure noise.
    d.add(std::vector<double>{y * 4.0 + rng.gaussian(0, 0.5),
                              rng.gaussian(0, 1)},
          y);
  }
  DecisionTree dt;
  dt.fit(d, rng);
  EXPECT_GT(dt.feature_importances()[0], 0.9);
  EXPECT_LT(dt.feature_importances()[1], 0.1);
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  DataSet d(1);
  for (int i = 0; i < 10; ++i) d.add(std::vector<double>{double(i)}, 0);
  util::Rng rng(7);
  DecisionTree dt;
  dt.fit(d, rng);
  EXPECT_EQ(dt.node_count(), 1);
  EXPECT_EQ(dt.predict(std::vector<double>{3.0}), 0);
}

TEST(DecisionTree, PredictBeforeFitReturnsDefault) {
  DecisionTree dt;
  EXPECT_EQ(dt.predict(std::vector<double>{0.0}), 0);
}

TEST(DecisionTree, MulticlassSupport) {
  util::Rng rng(8);
  DataSet d(1);
  for (int i = 0; i < 300; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y * 3.0 + rng.gaussian(0, 0.4)}, y);
  }
  DecisionTree dt;
  dt.fit(d, rng);
  EXPECT_EQ(dt.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(dt.predict(std::vector<double>{3.0}), 1);
  EXPECT_EQ(dt.predict(std::vector<double>{6.0}), 2);
}

// ---------- random forest ----------

TEST(RandomForest, BeatsOrMatchesSingleTreeOnNoisyData) {
  util::Rng rng(9);
  DataSet train(4), test(4);
  auto gen = [&](DataSet& d, int n) {
    for (int i = 0; i < n; ++i) {
      const int y = rng.bernoulli(0.5) ? 1 : 0;
      // Weak signal spread over several features + noise.
      std::vector<double> x(4);
      for (auto& v : x) v = y * 0.8 + rng.gaussian(0, 1.0);
      d.add(x, y);
    }
  };
  gen(train, 400);
  gen(test, 400);
  DecisionTree dt;
  RandomForest rf;
  const double acc_dt = holdout_accuracy(dt, train, test, rng);
  const double acc_rf = holdout_accuracy(rf, train, test, rng);
  EXPECT_GE(acc_rf + 0.02, acc_dt);
  EXPECT_GT(acc_rf, 0.7);
}

TEST(RandomForest, ImportancesNormalized) {
  util::Rng rng(10);
  const DataSet train = xor_data(50, rng);
  RandomForest rf;
  rf.fit(train, rng);
  double sum = 0.0;
  for (double i : rf.feature_importances()) sum += i;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(rf.trees().size(), 60u);
}

TEST(RandomForest, ConfigurableTreeCount) {
  RandomForestConfig cfg;
  cfg.num_trees = 7;
  RandomForest rf(cfg);
  util::Rng rng(11);
  rf.fit(blobs(30, rng), rng);
  EXPECT_EQ(rf.trees().size(), 7u);
}

TEST(RandomForest, ParallelFitBitIdenticalToSerial) {
  // The same seed must yield the same forest whether trees are trained on
  // one thread or four: each tree consumes only its own forked stream.
  util::Rng data_rng(30);
  const DataSet train = xor_data(60, data_rng);
  const DataSet test = xor_data(40, data_rng);

  RandomForestConfig serial_cfg;
  serial_cfg.num_threads = 1;
  RandomForestConfig parallel_cfg;
  parallel_cfg.num_threads = 4;

  RandomForest serial(serial_cfg), parallel(parallel_cfg);
  util::Rng r1(31), r2(31);
  serial.fit(train, r1);
  parallel.fit(train, r2);

  EXPECT_EQ(serial.feature_importances(), parallel.feature_importances());
  EXPECT_EQ(serial.predict_batch(test), parallel.predict_batch(test));
  ASSERT_EQ(serial.trees().size(), parallel.trees().size());
  for (std::size_t t = 0; t < serial.trees().size(); ++t) {
    EXPECT_EQ(serial.trees()[t].node_count(), parallel.trees()[t].node_count());
  }
}

TEST(RandomForest, FitOnEmptySetThrows) {
  RandomForest rf;
  DataSet empty(3);
  util::Rng rng(1);
  EXPECT_THROW(rf.fit(empty, rng), std::invalid_argument);
}

TEST(RandomForest, PredictOnUnfittedForestThrows) {
  const RandomForest rf;
  EXPECT_THROW(rf.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(RandomForest, VoteFractionsOnUnfittedForestAreZero) {
  const RandomForest rf;
  const auto votes = rf.vote_fractions(std::vector<double>{0.0});
  for (double v : votes) EXPECT_EQ(v, 0.0);
}

TEST(RandomForest, PredictBatchMatchesPredict) {
  util::Rng rng(32);
  const DataSet train = blobs(40, rng);
  RandomForestConfig cfg;
  cfg.num_threads = 4;
  RandomForest rf(cfg);
  rf.fit(train, rng);
  const std::vector<Label> batch = rf.predict_batch(train);
  ASSERT_EQ(batch.size(), train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(batch[i], rf.predict(train.row(i)));
  }
}

TEST(RandomForest, MajorityVoteMulticlass) {
  util::Rng rng(12);
  DataSet d(1);
  for (int i = 0; i < 300; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y * 3.0 + rng.gaussian(0, 0.4)}, y);
  }
  RandomForest rf;
  rf.fit(d, rng);
  EXPECT_EQ(rf.predict(std::vector<double>{6.0}), 2);
}

// ---------- compiled forest ----------

// Three separable 1-D clusters (the 3-class shape LiBRA deploys).
DataSet three_class(int n, util::Rng& rng) {
  DataSet d(1);
  for (int i = 0; i < n; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y * 3.0 + rng.gaussian(0, 0.6)}, y);
  }
  return d;
}

// The compiled arena in double mode must reproduce the pointer walk bit
// for bit: same labels, same vote fractions, single-row and batch.
void expect_compiled_matches_interpreted(const RandomForest& interpreted,
                                         const CompiledForest& compiled,
                                         const DataSet& test) {
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(compiled.predict(test.row(i)), interpreted.predict(test.row(i)))
        << "row " << i;
    EXPECT_EQ(compiled.vote_fractions(test.row(i)),
              interpreted.vote_fractions(test.row(i)))
        << "row " << i;
  }
  EXPECT_EQ(compiled.predict_batch(test), interpreted.predict_batch(test));
  EXPECT_EQ(compiled.vote_fractions_batch(test),
            interpreted.vote_fractions_batch(test));
}

TEST(CompiledForest, BitIdenticalTwoClass) {
  util::Rng rng(40);
  const DataSet train = xor_data(60, rng);
  const DataSet test = xor_data(40, rng);
  RandomForestConfig cfg;
  cfg.num_trees = 15;
  RandomForest rf(cfg);
  rf.fit(train, rng);
  const CompiledForest compiled(rf);  // rf itself stays interpreted
  EXPECT_EQ(compiled.num_trees(), 15);
  EXPECT_EQ(compiled.num_classes(), rf.num_classes());
  EXPECT_GT(compiled.arena_bytes(), 0u);
  expect_compiled_matches_interpreted(rf, compiled, test);
}

TEST(CompiledForest, BitIdenticalThreeClass) {
  util::Rng rng(41);
  const DataSet train = three_class(240, rng);
  const DataSet test = three_class(120, rng);
  RandomForestConfig cfg;
  cfg.num_trees = 25;
  RandomForest rf(cfg);
  rf.fit(train, rng);
  const CompiledForest compiled(rf);
  EXPECT_EQ(compiled.num_classes(), 3);
  expect_compiled_matches_interpreted(rf, compiled, test);
}

TEST(CompiledForest, BitIdenticalAfterModelIoRoundTrip) {
  util::Rng rng(42);
  const DataSet train = three_class(200, rng);
  const DataSet test = three_class(100, rng);
  RandomForestConfig cfg;
  cfg.num_trees = 12;
  RandomForest rf(cfg);
  rf.fit(train, rng);

  std::stringstream io;
  save_forest(rf, io);
  RandomForest loaded = load_forest(io);
  const CompiledForest compiled(loaded);
  // Serialization quantizes nothing (max_digits10 text round-trip), so the
  // compiled round-tripped forest must still match the in-memory walk.
  expect_compiled_matches_interpreted(rf, compiled, test);
}

TEST(CompiledForest, RowBlockedPoolMatchesSerial) {
  util::Rng rng(43);
  const DataSet train = xor_data(80, rng);
  const DataSet test = xor_data(200, rng);
  RandomForest rf;
  rf.fit(train, rng);
  CompiledForestConfig cfg;
  cfg.row_block = 16;  // force several blocks
  const CompiledForest compiled(rf, cfg);
  util::ThreadPool pool(4);
  EXPECT_EQ(compiled.vote_fractions_batch(test, &pool),
            compiled.vote_fractions_batch(test, nullptr));
  EXPECT_EQ(compiled.predict_batch(test, &pool),
            compiled.predict_batch(test, nullptr));
}

TEST(CompiledForest, ForestDispatchesThroughCompiledForm) {
  util::Rng rng(44);
  const DataSet train = xor_data(60, rng);
  const DataSet test = xor_data(40, rng);
  RandomForest interpreted, compiled_rf;
  util::Rng r1(45), r2(45);
  interpreted.fit(train, r1);
  compiled_rf.fit(train, r2);
  compiled_rf.compile();
  ASSERT_NE(compiled_rf.compiled(), nullptr);
  // The forest's own entry points now ride the arena -- bit-identically.
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(compiled_rf.predict(test.row(i)),
              interpreted.predict(test.row(i)));
    EXPECT_EQ(compiled_rf.vote_fractions(test.row(i)),
              interpreted.vote_fractions(test.row(i)));
  }
  EXPECT_EQ(compiled_rf.predict_batch(test), interpreted.predict_batch(test));
  EXPECT_EQ(compiled_rf.vote_fractions_batch(test),
            interpreted.vote_fractions_batch(test));
  // Refitting drops the stale compiled form.
  util::Rng r3(46);
  compiled_rf.fit(train, r3);
  EXPECT_EQ(compiled_rf.compiled(), nullptr);
}

TEST(CompiledForest, FloatThresholdModeStaysAccurate) {
  util::Rng rng(47);
  const DataSet train = blobs(100, rng);
  const DataSet test = blobs(60, rng);
  RandomForest rf;
  rf.fit(train, rng);
  CompiledForestConfig cfg;
  cfg.precision = ThresholdPrecision::kFloat;
  const CompiledForest compiled(rf, cfg);
  // Float thresholds quantize split points, so bit-identity is out of
  // contract; on well-separated data the verdicts still agree.
  const std::vector<Label> a = compiled.predict_batch(test);
  const std::vector<Label> b = rf.predict_batch(test);
  ASSERT_EQ(a.size(), b.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i) agree += a[i] == b[i];
  EXPECT_GE(agree, a.size() - 2);
}

TEST(CompiledForest, CompileUnfittedThrows) {
  RandomForest rf;
  EXPECT_THROW(rf.compile(), std::logic_error);
  EXPECT_THROW(CompiledForest{rf}, std::invalid_argument);
}

// ---------- SIMD dispatch & precision parity ----------

// Integer-valued blobs: features land on a unit grid, so split midpoints
// are exact halves (mathematically equal thresholds stay bit-identical
// doubles) and threshold gaps stay far above the int16 quantization step —
// the firmware-quantized input shape the int16 arena targets.
DataSet grid_blobs(int n_per_class, util::Rng& rng) {
  DataSet d(2);
  for (int i = 0; i < n_per_class; ++i) {
    d.add(std::vector<double>{std::round(rng.gaussian(0, 25)),
                              std::round(rng.gaussian(0, 25))},
          0);
    d.add(std::vector<double>{std::round(rng.gaussian(150, 25)),
                              std::round(rng.gaussian(150, 25))},
          1);
  }
  return d;
}

// One-split single-tree forest: f0 <= thr -> 0, else 1.
RandomForest stump_forest(double thr, int num_classes = 2) {
  std::vector<DecisionTree::Node> nodes(3);
  nodes[0].feature = 0;
  nodes[0].threshold = thr;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[2].label = 1;
  DecisionTree tree;
  tree.import_model(nodes, {1.0}, num_classes);
  RandomForest rf;
  rf.import_model({tree}, {1.0}, num_classes);
  return rf;
}

// The dispatched batch path must be bit-identical to the forced-scalar
// path for every precision mode, whatever the batch shape: remainder
// groups (n % 8 != 0), single rows, super-group boundaries (32/33) and
// row-block boundaries (64/65).
TEST(CompiledForestSimd, DispatchedBatchBitIdenticalToForcedScalar) {
  util::Rng rng(51);
  const DataSet train = grid_blobs(100, rng);
  RandomForest rf;
  rf.fit(train, rng);
  for (const ThresholdPrecision p :
       {ThresholdPrecision::kDouble, ThresholdPrecision::kFloat,
        ThresholdPrecision::kInt16}) {
    CompiledForestConfig cfg;
    cfg.precision = p;
    const CompiledForest compiled(rf, cfg);
    for (const int rows : {1, 3, 7, 8, 9, 31, 32, 33, 63, 64, 65}) {
      DataSet batch(2);
      for (int i = 0; i < rows; ++i) {
        const auto k = static_cast<std::size_t>(i) % train.size();
        batch.add(train.row(k), train.label(k));
      }
      const std::vector<std::vector<double>> dispatched =
          compiled.vote_fractions_batch(batch);
      util::simd::ScopedForceScalar scalar;
      EXPECT_EQ(dispatched, compiled.vote_fractions_batch(batch))
          << "precision=" << static_cast<int>(p) << " rows=" << rows;
    }
  }
}

// Non-finite feature values must take identical branches on every ISA:
// NaN fails <= and goes right, -inf goes left, +inf goes right (the int16
// mode maps them to ordering sentinels before the kernels ever see them).
// The single-row latency path must agree with the batch path too.
TEST(CompiledForestSimd, NonFiniteRowsBitIdenticalAcrossIsaAndPaths) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  util::Rng rng(52);
  const DataSet train = grid_blobs(80, rng);
  RandomForest rf;
  rf.fit(train, rng);
  DataSet batch(2);
  batch.add(std::vector<double>{kNaN, 10.0}, 0);
  batch.add(std::vector<double>{kInf, -kInf}, 0);
  batch.add(std::vector<double>{10.0, kNaN}, 0);
  batch.add(std::vector<double>{-kInf, kNaN}, 0);
  for (int i = 0; batch.size() < 24; ++i) {  // fill full vector groups
    batch.add(train.row(static_cast<std::size_t>(i)),
              train.label(static_cast<std::size_t>(i)));
  }
  for (const ThresholdPrecision p :
       {ThresholdPrecision::kDouble, ThresholdPrecision::kFloat,
        ThresholdPrecision::kInt16}) {
    CompiledForestConfig cfg;
    cfg.precision = p;
    const CompiledForest compiled(rf, cfg);
    const std::vector<Label> dispatched = compiled.predict_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(dispatched[i], compiled.predict(batch.row(i)))
          << "precision=" << static_cast<int>(p) << " row=" << i;
    }
    util::simd::ScopedForceScalar scalar;
    EXPECT_EQ(dispatched, compiled.predict_batch(batch))
        << "precision=" << static_cast<int>(p);
  }
}

// An exact tie x == threshold quantizes equal on both sides and goes left,
// exactly like the double compare; values a full quantization step past
// the threshold go right. Thresholds {0, 100} make the feature's quantizer
// step 100/65534 ~ 0.0015, so +-0.5 sits far outside the tolerance band.
TEST(CompiledForestSimd, Int16TieBreaksLeftAtExactThreshold) {
  std::vector<DecisionTree::Node> nodes(5);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].label = 0;
  nodes[2].feature = 0;
  nodes[2].threshold = 100.0;
  nodes[2].left = 3;
  nodes[2].right = 4;
  nodes[3].label = 1;
  nodes[4].label = 2;
  DecisionTree tree;
  tree.import_model(nodes, {1.0}, 3);
  RandomForest rf;
  rf.import_model({tree}, {1.0}, 3);
  CompiledForestConfig cfg;
  cfg.precision = ThresholdPrecision::kInt16;
  const CompiledForest q(rf, cfg);
  const CompiledForest d(rf);
  DataSet batch(1);
  for (const double x : {-0.5, 0.0, 0.5, 99.5, 100.0, 100.5}) {
    EXPECT_EQ(q.predict(std::vector<double>{x}),
              d.predict(std::vector<double>{x}))
        << "x=" << x;
    for (int rep = 0; rep < 8; ++rep) batch.add(std::vector<double>{x}, 0);
  }
  EXPECT_EQ(q.predict(std::vector<double>{0.0}), 0);    // tie -> left
  EXPECT_EQ(q.predict(std::vector<double>{100.0}), 1);  // tie -> left
  // Whole-group batches push the ties through the vector kernel when one
  // is available; results must not move.
  const std::vector<Label> dispatched = q.predict_batch(batch);
  EXPECT_EQ(dispatched, d.predict_batch(batch));
  util::simd::ScopedForceScalar scalar;
  EXPECT_EQ(dispatched, q.predict_batch(batch));
}

// Two distinct thresholds of one feature collapsing to the same quantized
// value would rewrite the forest's decision structure, so kInt16
// compilation must reject the forest instead of mispredicting quietly.
TEST(CompiledForestSimd, Int16OrderingLossThrows) {
  std::vector<DecisionTree::Node> nodes(7);
  nodes[0].feature = 0;
  nodes[0].threshold = 1e-7;  // quantizes equal to 0.0 under range [0, 100]
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].feature = 0;
  nodes[1].threshold = 0.0;
  nodes[1].left = 3;
  nodes[1].right = 4;
  nodes[2].feature = 0;
  nodes[2].threshold = 100.0;
  nodes[2].left = 5;
  nodes[2].right = 6;
  DecisionTree tree;
  tree.import_model(nodes, {1.0}, 2);
  RandomForest rf;
  rf.import_model({tree}, {1.0}, 2);
  CompiledForestConfig cfg;
  cfg.precision = ThresholdPrecision::kInt16;
  EXPECT_THROW(CompiledForest(rf, cfg), std::invalid_argument);
}

// The float-mode tolerance contract, pinned on a hand-built split: a row
// value strictly between thr and double(float(thr)) is the only place a
// branch may flip, and there it must flip deterministically (both operands
// round to the same float, and ties go left).
TEST(CompiledForestSimd, FloatModeFlipsOnlyWithinOneUlpOfThreshold) {
  const double thr = 0.1;  // rounds UP to float: float(0.1) > 0.1
  const double thr_f = static_cast<double>(static_cast<float>(thr));
  ASSERT_GT(thr_f, thr);
  RandomForest rf = stump_forest(thr);
  const CompiledForest d(rf);
  CompiledForestConfig cfg;
  cfg.precision = ThresholdPrecision::kFloat;
  const CompiledForest fl(rf, cfg);
  const double inside = thr + (thr_f - thr) / 2.0;  // in the flip interval
  ASSERT_GT(inside, thr);
  ASSERT_LT(inside, thr_f);
  EXPECT_EQ(d.predict(std::vector<double>{inside}), 1);   // double: right
  EXPECT_EQ(fl.predict(std::vector<double>{inside}), 0);  // float: tie, left
  EXPECT_EQ(fl.predict(std::vector<double>{thr_f}), 0);
  EXPECT_EQ(d.predict(std::vector<double>{thr_f}), 1);
  // Outside the interval both modes agree.
  const double above = static_cast<double>(
      std::nextafter(static_cast<float>(thr), 1.0f));
  for (const double x : {0.05, thr, above + above * 1e-7, 0.2}) {
    EXPECT_EQ(fl.predict(std::vector<double>{x}),
              d.predict(std::vector<double>{x}))
        << "x=" << x;
  }
}

// On grid-quantized features (gaps far above the quantization step) the
// int16 argmax must agree with kDouble exactly — the cross-precision half
// of the contract.
TEST(CompiledForestSimd, Int16ArgmaxMatchesDoubleOnGridFeatures) {
  util::Rng rng(53);
  const DataSet train = grid_blobs(100, rng);
  const DataSet test = grid_blobs(60, rng);
  RandomForest rf;
  rf.fit(train, rng);
  CompiledForestConfig cfg;
  cfg.precision = ThresholdPrecision::kInt16;
  const CompiledForest q(rf, cfg);
  const CompiledForest d(rf);
  EXPECT_EQ(q.predict_batch(test), d.predict_batch(test));
}

// dispatch_isa folds precision mode and the runtime knobs: kDouble is the
// scalar reference and never dispatches SIMD; the reduced-precision modes
// follow active_isa(), including the forced-scalar override.
TEST(CompiledForestSimd, DispatchIsaReflectsPrecisionAndForceScalar) {
  util::Rng rng(54);
  RandomForest rf;
  rf.fit(grid_blobs(40, rng), rng);
  const CompiledForest d(rf);
  EXPECT_EQ(d.dispatch_isa(), util::simd::Isa::kScalar);
  CompiledForestConfig cfg;
  cfg.precision = ThresholdPrecision::kFloat;
  const CompiledForest fl(rf, cfg);
  EXPECT_EQ(fl.dispatch_isa(), util::simd::active_isa());
  util::simd::ScopedForceScalar guard;
  EXPECT_EQ(fl.dispatch_isa(), util::simd::Isa::kScalar);
}

// ---------- model import validation ----------

TEST(ImportModel, ChildIndexOutOfRangeThrows) {
  std::vector<DecisionTree::Node> nodes(2);
  nodes[0].feature = 0;
  nodes[0].left = 1;
  nodes[0].right = 7;  // out of range
  DecisionTree tree;
  EXPECT_THROW(tree.import_model(nodes, {1.0}, 2), std::invalid_argument);
  nodes[0].right = -3;
  EXPECT_THROW(tree.import_model(nodes, {1.0}, 2), std::invalid_argument);
}

TEST(ImportModel, CycleThrows) {
  std::vector<DecisionTree::Node> nodes(3);
  nodes[0].feature = 0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].feature = 0;
  nodes[1].left = 0;  // back edge to the root
  nodes[1].right = 2;
  DecisionTree tree;
  EXPECT_THROW(tree.import_model(nodes, {1.0}, 2), std::invalid_argument);
}

TEST(ImportModel, SharedSubtreeThrows) {
  std::vector<DecisionTree::Node> nodes(2);
  nodes[0].feature = 0;
  nodes[0].left = 1;
  nodes[0].right = 1;  // both children alias one leaf
  DecisionTree tree;
  EXPECT_THROW(tree.import_model(nodes, {1.0}, 2), std::invalid_argument);
}

TEST(ImportModel, UnreachableNodeThrows) {
  std::vector<DecisionTree::Node> nodes(2);  // root is a leaf, node 1 orphaned
  DecisionTree tree;
  EXPECT_THROW(tree.import_model(nodes, {1.0}, 2), std::invalid_argument);
}

TEST(ImportModel, LabelOutsideNumClassesThrows) {
  std::vector<DecisionTree::Node> nodes(1);
  nodes[0].label = 2;
  DecisionTree tree;
  EXPECT_THROW(tree.import_model(nodes, {1.0}, 2), std::invalid_argument);
}

TEST(ImportModel, FeatureBeyondImportancesThrows) {
  std::vector<DecisionTree::Node> nodes(3);
  nodes[0].feature = 5;  // model only has 2 features
  nodes[0].left = 1;
  nodes[0].right = 2;
  DecisionTree tree;
  EXPECT_THROW(tree.import_model(nodes, {0.5, 0.5}, 2),
               std::invalid_argument);
}

TEST(ImportModel, ValidTreeAccepted) {
  std::vector<DecisionTree::Node> nodes(3);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[2].label = 1;
  DecisionTree tree;
  tree.import_model(nodes, {1.0}, 2);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0}), 1);
}

TEST(ImportModel, ForestClassCountMismatchThrows) {
  util::Rng rng(48);
  const DataSet train = three_class(150, rng);
  DecisionTree tree;
  tree.fit(train, rng);  // a 3-class tree
  std::vector<DecisionTree> trees{tree};
  RandomForest forest;
  EXPECT_THROW(
      forest.import_model(trees, std::vector<double>(train.num_features()), 2),
      std::invalid_argument);
}

TEST(ImportModel, ForestImportanceSizeMismatchThrows) {
  util::Rng rng(49);
  const DataSet train = blobs(40, rng);  // 2 features
  DecisionTree tree;
  tree.fit(train, rng);
  std::vector<DecisionTree> trees{tree};
  RandomForest forest;
  EXPECT_THROW(forest.import_model(trees, {1.0, 0.0, 0.0}, 2),
               std::invalid_argument);
}

TEST(ImportModel, TamperedSerializedForestThrows) {
  util::Rng rng(50);
  const DataSet train = blobs(40, rng);
  RandomForestConfig cfg;
  cfg.num_trees = 3;
  RandomForest rf(cfg);
  rf.fit(train, rng);
  std::stringstream out;
  save_forest(rf, out);
  // Point the first internal node's left child out of range.
  std::string text = out.str();
  const std::string needle = "libra-tree-v1";
  const std::size_t tree_pos = text.find(needle);
  ASSERT_NE(tree_pos, std::string::npos);
  const std::size_t line_end = text.find('\n', tree_pos);
  std::size_t node_start = line_end + 1;
  // Walk node lines until an internal one (feature >= 0), then corrupt it.
  bool corrupted = false;
  while (!corrupted) {
    const std::size_t node_end = text.find('\n', node_start);
    ASSERT_NE(node_end, std::string::npos);
    std::istringstream line(text.substr(node_start, node_end - node_start));
    int feature, left, right, label;
    double threshold;
    ASSERT_TRUE(
        static_cast<bool>(line >> feature >> threshold >> left >> right >>
                          label));
    if (feature >= 0) {
      std::ostringstream bad;
      bad << feature << ' ' << threshold << ' ' << 999999 << ' ' << right
          << ' ' << label;
      text.replace(node_start, node_end - node_start, bad.str());
      corrupted = true;
    } else {
      node_start = node_end + 1;
    }
  }
  std::istringstream in(text);
  EXPECT_THROW(load_forest(in), std::invalid_argument);
}

// ---------- SVM ----------

TEST(Svm, LinearKernelOnSeparableBlobs) {
  util::Rng rng(13);
  const DataSet train = blobs(80, rng);
  const DataSet test = blobs(40, rng);
  SvmConfig cfg;
  cfg.kernel = Kernel::kLinear;
  Svm svm(cfg);
  EXPECT_GT(holdout_accuracy(svm, train, test, rng), 0.97);
}

TEST(Svm, RbfKernelSolvesXor) {
  util::Rng rng(14);
  const DataSet train = xor_data(60, rng);
  const DataSet test = xor_data(30, rng);
  Svm svm;
  EXPECT_GT(holdout_accuracy(svm, train, test, rng), 0.9);
}

TEST(Svm, LinearKernelFailsXor) {
  util::Rng rng(15);
  const DataSet train = xor_data(60, rng);
  const DataSet test = xor_data(30, rng);
  SvmConfig cfg;
  cfg.kernel = Kernel::kLinear;
  Svm svm(cfg);
  EXPECT_LT(holdout_accuracy(svm, train, test, rng), 0.75);
}

TEST(Svm, MulticlassOneVsRest) {
  util::Rng rng(16);
  DataSet d(2);
  for (int i = 0; i < 200; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y * 5.0 + rng.gaussian(0, 0.5),
                              rng.gaussian(0, 0.5)},
          y);
  }
  Svm svm;
  svm.fit(d, rng);
  EXPECT_EQ(svm.predict(std::vector<double>{0.0, 0.0}), 0);
  EXPECT_EQ(svm.predict(std::vector<double>{5.0, 0.0}), 1);
  EXPECT_EQ(svm.predict(std::vector<double>{10.0, 0.0}), 2);
}

TEST(BinarySvm, BadInputThrows) {
  BinarySvm svm;
  DataSet empty(2);
  util::Rng rng(1);
  EXPECT_THROW(svm.fit(empty, {}, rng), std::invalid_argument);
}

// ---------- neural net ----------

TEST(NeuralNet, SolvesBlobs) {
  util::Rng rng(17);
  const DataSet train = blobs(80, rng);
  const DataSet test = blobs(40, rng);
  NeuralNetConfig cfg;
  cfg.epochs = 80;
  NeuralNet nn(cfg);
  EXPECT_GT(holdout_accuracy(nn, train, test, rng), 0.97);
}

TEST(NeuralNet, SolvesXor) {
  util::Rng rng(18);
  const DataSet train = xor_data(80, rng);
  const DataSet test = xor_data(40, rng);
  NeuralNetConfig cfg;
  cfg.epochs = 250;
  cfg.dropout = 0.05;
  NeuralNet nn(cfg);
  EXPECT_GT(holdout_accuracy(nn, train, test, rng), 0.9);
}

TEST(NeuralNet, ProbabilitiesSumToOne) {
  util::Rng rng(19);
  const DataSet train = blobs(50, rng);
  NeuralNetConfig cfg;
  cfg.epochs = 20;
  NeuralNet nn(cfg);
  nn.fit(train, rng);
  const auto p = nn.predict_proba(train.row(0));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
}

TEST(NeuralNet, MulticlassSoftmax) {
  util::Rng rng(20);
  DataSet d(1);
  for (int i = 0; i < 400; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y * 4.0 + rng.gaussian(0, 0.4)}, y);
  }
  NeuralNetConfig cfg;
  cfg.epochs = 120;
  NeuralNet nn(cfg);
  nn.fit(d, rng);
  EXPECT_EQ(nn.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(nn.predict(std::vector<double>{8.0}), 2);
}

// ---------- metrics ----------

TEST(Metrics, AccuracyBasic) {
  const std::vector<Label> t{0, 1, 1, 0};
  const std::vector<Label> p{0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(accuracy(t, p), 0.75);
}

TEST(Metrics, AccuracyThrowsOnMismatch) {
  const std::vector<Label> t{0, 1};
  const std::vector<Label> p{0};
  EXPECT_THROW(accuracy(t, p), std::invalid_argument);
}

TEST(Metrics, ConfusionMatrix) {
  const std::vector<Label> t{0, 0, 1, 1, 1};
  const std::vector<Label> p{0, 1, 1, 1, 0};
  const auto cm = confusion_matrix(t, p);
  EXPECT_EQ(cm[0][0], 1);
  EXPECT_EQ(cm[0][1], 1);
  EXPECT_EQ(cm[1][0], 1);
  EXPECT_EQ(cm[1][1], 2);
}

TEST(Metrics, WeightedF1HandComputed) {
  // class 0: support 2, tp=1, fp=1, fn=1 -> P=0.5 R=0.5 F1=0.5
  // class 1: support 3, tp=2, fp=1, fn=1 -> P=2/3 R=2/3 F1=2/3
  // weighted: 0.5*2/5 + (2/3)*3/5 = 0.2 + 0.4 = 0.6
  const std::vector<Label> t{0, 0, 1, 1, 1};
  const std::vector<Label> p{0, 1, 1, 1, 0};
  EXPECT_NEAR(weighted_f1(t, p), 0.6, 1e-9);
}

TEST(Metrics, PerfectPredictionF1IsOne) {
  const std::vector<Label> t{0, 1, 2, 1, 0};
  EXPECT_DOUBLE_EQ(weighted_f1(t, t), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(t, t), 1.0);
}

// ---------- cross validation ----------

TEST(CrossValidation, HighAccuracyOnSeparableData) {
  util::Rng rng(21);
  const DataSet d = blobs(60, rng);
  const auto result = cross_validate(
      d, [] { return std::make_unique<DecisionTree>(); }, 5, 2, rng);
  EXPECT_GT(result.accuracy, 0.97);
  EXPECT_GT(result.weighted_f1, 0.97);
  EXPECT_EQ(result.folds, 5);
  EXPECT_EQ(result.repeats, 2);
}

TEST(CrossValidation, InvalidInputsThrow) {
  util::Rng rng(23);
  const DataSet d = blobs(10, rng);
  const ClassifierFactory factory = [] {
    return std::make_unique<DecisionTree>();
  };
  EXPECT_THROW(cross_validate(d, factory, 1, 2, rng), std::invalid_argument);
  EXPECT_THROW(cross_validate(d, factory, 5, 0, rng), std::invalid_argument);
  DataSet tiny(1);
  tiny.add(std::vector<double>{0.0}, 0);
  tiny.add(std::vector<double>{1.0}, 1);
  EXPECT_THROW(cross_validate(tiny, factory, 5, 1, rng),
               std::invalid_argument);
}

TEST(CrossValidation, ParallelPoolBitIdenticalToSerial) {
  util::Rng data_rng(24);
  const DataSet d = blobs(40, data_rng);
  const ClassifierFactory factory = [] {
    RandomForestConfig cfg;
    cfg.num_trees = 10;
    cfg.num_threads = 1;
    return std::make_unique<RandomForest>(cfg);
  };
  util::Rng r1(25), r2(25);
  const CvResult serial = cross_validate(d, factory, 5, 3, r1, nullptr);
  util::ThreadPool pool(4);
  const CvResult parallel = cross_validate(d, factory, 5, 3, r2, &pool);
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_EQ(serial.weighted_f1, parallel.weighted_f1);
}

TEST(CrossValidation, TrainTestSeparation) {
  util::Rng rng(22);
  const DataSet train = blobs(60, rng);
  // Shifted test distribution: accuracy degrades but stays above chance.
  DataSet test(2);
  for (int i = 0; i < 50; ++i) {
    test.add(std::vector<double>{rng.gaussian(1, 1), rng.gaussian(1, 1)}, 0);
    test.add(std::vector<double>{rng.gaussian(5, 1), rng.gaussian(5, 1)}, 1);
  }
  const auto result = train_test(
      train, test, [] { return std::make_unique<DecisionTree>(); }, rng);
  EXPECT_GT(result.accuracy, 0.6);
}

}  // namespace
}  // namespace libra::ml
