// Fleet serving (sim/fleet.h): the lockstep batched decision engine must be
// an exact refactoring of N independent sessions -- same per-link results,
// bit for bit, for any forest thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/controller.h"
#include "env/registry.h"
#include "json_mini.h"
#include "obs/span.h"
#include "sim/fleet.h"
#include "sim/golden.h"
#include "test_helpers.h"

namespace libra {
namespace {

using libra::testing::make_record;

// A trained 3-class classifier over clearly separated synthetic cases,
// with a multi-threaded forest: the fleet contract must hold under
// parallel batched inference. `compiled` picks the flat-arena serving path
// vs. the legacy pointer walk (both train the identical forest).
core::LibraClassifier make_fleet_classifier(bool compiled) {
  trace::Dataset ds;
  for (int i = 0; i < 40; ++i) {
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
    ba.new_at_init_pair.tof_ns = std::nullopt;
    ds.records.push_back(ba);
    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.init_best.tof_ns = 20.0;
    ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
    ra.new_at_init_pair.tof_ns = 45.0;
    ds.records.push_back(ra);
    trace::CaseRecord na = make_record(6, 6, 6);
    na.forced_na = true;
    na.init_best.snr_db = 22.0;
    na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
    ds.na_records.push_back(na);
  }
  core::LibraClassifierConfig cfg;
  cfg.forest.num_threads = 4;  // num_threads = K in the fleet contract
  cfg.compile_inference = compiled;
  core::LibraClassifier c(cfg);
  util::Rng rng(1);
  c.train(ds, {}, rng);
  return c;
}

const core::LibraClassifier& fleet_classifier() {
  static const core::LibraClassifier clf =
      make_fleet_classifier(/*compiled=*/true);
  return clf;
}

const phy::ErrorModel& shared_error_model() {
  static const phy::McsTable table;
  static const phy::ErrorModel em(&table);
  return em;
}

// One station's whole world, self-contained so fleet and serial reference
// runs can each build an identical fresh copy.
struct Station {
  env::Environment env;
  array::PhasedArray ap;
  array::PhasedArray client;
  channel::Link link;
  std::unique_ptr<core::LinkController> controller;
  sim::SessionScript script;

  // `clf` = the LiBRA classifier serving this station, or nullptr for the
  // RA-first baseline controller.
  Station(const array::Codebook* codebook, geom::Vec2 client_pos,
          const core::LibraClassifier* clf)
      : env(env::make_lobby()),
        ap({2, 6}, 0.0, codebook),
        client(client_pos, 180.0, codebook),
        link(&env, &ap, &client) {
    if (clf != nullptr) {
      controller = std::make_unique<core::LibraController>(
          &link, &shared_error_model(), clf);
    } else {
      controller = std::make_unique<core::RaFirstController>(
          &link, &shared_error_model(), core::ControllerConfig{});
    }
  }
};

// A 4-station mixed fleet with per-station impairments and staggered
// session lengths (station 3 finishes early and sits out later ticks).
std::vector<std::unique_ptr<Station>> build_stations(
    const array::Codebook* codebook,
    const core::LibraClassifier* clf = &fleet_classifier()) {
  std::vector<std::unique_ptr<Station>> stations;
  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{10, 6}, clf));
  stations[0]->script.duration_ms = 2000.0;
  stations[0]->script.rx_trajectory =
      sim::Trajectory::stationary({10, 6}, 180.0);
  stations[0]->script.blockage.push_back({600.0, 1400.0, {{6, 6}, 0.3, 35.0}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{12, 7}, clf));
  stations[1]->script.duration_ms = 2000.0;
  stations[1]->script.rx_trajectory =
      sim::Trajectory::walk({12, 7}, {18, 8}, 2000.0, geom::Vec2{2, 6});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{9, 5}, nullptr));
  stations[2]->script.duration_ms = 2000.0;
  stations[2]->script.rx_trajectory =
      sim::Trajectory::stationary({9, 5}, 180.0);
  stations[2]->script.interference.push_back(
      {500.0, 1500.0, {{10, 1}, 50.0, 0.5}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{11, 6}, clf));
  stations[3]->script.duration_ms = 800.0;  // early finisher
  stations[3]->script.rx_trajectory =
      sim::Trajectory::stationary({11, 6}, 180.0);
  return stations;
}

TEST(Fleet, BitIdenticalToIndependentSessions) {
  const array::Codebook codebook;
  constexpr std::uint64_t kSeed = 77;

  // Fleet run: lockstep ticks, batched inference.
  auto fleet_stations = build_stations(&codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : fleet_stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = kSeed;
  cfg.keep_frame_logs = true;
  const sim::FleetResult fleet = sim::run_fleet(members, cfg);
  ASSERT_EQ(fleet.links.size(), fleet_stations.size());
  EXPECT_GT(fleet.ticks, 0);
  EXPECT_GT(fleet.batched_rows, 0);  // the LiBRA stations used the engine
  EXPECT_EQ(fleet.tick_latency_us.count(),
            static_cast<std::size_t>(fleet.ticks));

  // Serial reference: independent sessions on the same forked streams.
  auto serial_stations = build_stations(&codebook);
  util::Rng fleet_rng(kSeed);
  for (std::size_t i = 0; i < serial_stations.size(); ++i) {
    util::Rng link_rng = fleet_rng.fork();
    Station& s = *serial_stations[i];
    const sim::SessionResult serial = sim::run_session(
        s.env, s.link, *s.controller, s.script, link_rng,
        /*keep_frame_log=*/true);
    const sim::SessionResult& batched = fleet.links[i];

    EXPECT_EQ(batched.frames, serial.frames) << "link " << i;
    EXPECT_EQ(batched.bytes_mb, serial.bytes_mb) << "link " << i;
    EXPECT_EQ(batched.avg_goodput_mbps, serial.avg_goodput_mbps)
        << "link " << i;
    EXPECT_EQ(batched.adaptations_ba, serial.adaptations_ba) << "link " << i;
    EXPECT_EQ(batched.adaptations_ra, serial.adaptations_ra) << "link " << i;
    EXPECT_EQ(batched.outages, serial.outages) << "link " << i;
    EXPECT_EQ(batched.total_outage_ms, serial.total_outage_ms)
        << "link " << i;
    ASSERT_EQ(batched.frame_log.size(), serial.frame_log.size())
        << "link " << i;
    for (std::size_t fidx = 0; fidx < serial.frame_log.size(); ++fidx) {
      const core::FrameReport& a = batched.frame_log[fidx];
      const core::FrameReport& b = serial.frame_log[fidx];
      ASSERT_EQ(a.t_ms, b.t_ms) << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.mcs, b.mcs) << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.goodput_mbps, b.goodput_mbps)
          << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.ack, b.ack) << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.action, b.action) << "link " << i << " frame " << fidx;
    }
  }
}

// Per-link results from one fleet run, flattened for comparison.
std::vector<sim::SessionResult> run_build_stations_fleet(
    const array::Codebook* codebook, std::uint64_t seed,
    const core::LibraClassifier* clf = &fleet_classifier(), int shards = 0,
    int num_threads = 1) {
  auto stations = build_stations(codebook, clf);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = seed;
  cfg.keep_frame_logs = true;
  cfg.shards = shards;
  cfg.num_threads = num_threads;
  return sim::run_fleet(members, cfg).links;
}

// Full bit-identity check between two per-link result sets, frame logs
// included (every float compared with ==, the determinism contract).
void expect_links_identical(const std::vector<sim::SessionResult>& a,
                            const std::vector<sim::SessionResult>& b,
                            const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frames, b[i].frames) << tag << " link " << i;
    EXPECT_EQ(a[i].bytes_mb, b[i].bytes_mb) << tag << " link " << i;
    EXPECT_EQ(a[i].avg_goodput_mbps, b[i].avg_goodput_mbps)
        << tag << " link " << i;
    EXPECT_EQ(a[i].adaptations_ba, b[i].adaptations_ba)
        << tag << " link " << i;
    EXPECT_EQ(a[i].adaptations_ra, b[i].adaptations_ra)
        << tag << " link " << i;
    EXPECT_EQ(a[i].outages, b[i].outages) << tag << " link " << i;
    EXPECT_EQ(a[i].total_outage_ms, b[i].total_outage_ms)
        << tag << " link " << i;
    ASSERT_EQ(a[i].frame_log.size(), b[i].frame_log.size())
        << tag << " link " << i;
    for (std::size_t f = 0; f < a[i].frame_log.size(); ++f) {
      const core::FrameReport& x = a[i].frame_log[f];
      const core::FrameReport& y = b[i].frame_log[f];
      ASSERT_EQ(x.t_ms, y.t_ms) << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.mcs, y.mcs) << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.goodput_mbps, y.goodput_mbps)
          << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.ack, y.ack) << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.action, y.action) << tag << " link " << i << " frame " << f;
    }
  }
}

// The sharding contract on the mixed 4-station fleet: ANY (shards,
// num_threads) combination -- serial multi-shard, threaded, more shards
// than links -- must reproduce the legacy single-shard serial run bit for
// bit.
TEST(Fleet, ShardThreadGridBitIdentical) {
  const array::Codebook codebook;
  const std::vector<sim::SessionResult> baseline =
      run_build_stations_fleet(&codebook, 77, &fleet_classifier(),
                               /*shards=*/1, /*num_threads=*/1);
  constexpr struct {
    int shards;
    int threads;
  } kGrid[] = {{2, 1}, {3, 1}, {4, 1}, {0, 4}, {2, 4}, {4, 2}, {9, 3}};
  for (const auto& g : kGrid) {
    const std::vector<sim::SessionResult> run = run_build_stations_fleet(
        &codebook, 77, &fleet_classifier(), g.shards, g.threads);
    expect_links_identical(baseline, run,
                           "shards=" + std::to_string(g.shards) +
                               " threads=" + std::to_string(g.threads));
  }
}

TEST(Fleet, ShardsClampedToLinkCountAndReported) {
  const array::Codebook codebook;
  auto stations = build_stations(&codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = 77;
  cfg.shards = 64;  // more shards than links
  EXPECT_EQ(sim::run_fleet(members, cfg).shards_used, 4);
}

TEST(Fleet, NegativeShardOrThreadCountThrows) {
  const array::Codebook codebook;
  Station station(&codebook, {10, 6}, nullptr);
  std::vector<sim::FleetLink> members;
  members.push_back({&station.env, &station.link, station.controller.get(),
                     station.script});
  sim::FleetConfig bad_shards;
  bad_shards.shards = -1;
  EXPECT_THROW(sim::run_fleet(members, bad_shards), std::invalid_argument);
  sim::FleetConfig bad_threads;
  bad_threads.num_threads = -2;
  EXPECT_THROW(sim::run_fleet(members, bad_threads), std::invalid_argument);
}

// Telemetry is observation-only: disabling it at runtime must leave every
// frame of every link bit-identical -- no counter, span, or clock read may
// feed back into RNG draws or decisions.
TEST(Fleet, TelemetryOnOffBitIdentical) {
  const array::Codebook codebook;
  const std::vector<sim::SessionResult> with_obs =
      run_build_stations_fleet(&codebook, 77);
  obs::set_enabled(false);
  const std::vector<sim::SessionResult> without_obs =
      run_build_stations_fleet(&codebook, 77);
  obs::set_enabled(true);

  ASSERT_EQ(with_obs.size(), without_obs.size());
  for (std::size_t i = 0; i < with_obs.size(); ++i) {
    const sim::SessionResult& a = with_obs[i];
    const sim::SessionResult& b = without_obs[i];
    EXPECT_EQ(a.frames, b.frames) << "link " << i;
    EXPECT_EQ(a.bytes_mb, b.bytes_mb) << "link " << i;
    EXPECT_EQ(a.avg_goodput_mbps, b.avg_goodput_mbps) << "link " << i;
    EXPECT_EQ(a.adaptations_ba, b.adaptations_ba) << "link " << i;
    EXPECT_EQ(a.adaptations_ra, b.adaptations_ra) << "link " << i;
    EXPECT_EQ(a.outages, b.outages) << "link " << i;
    EXPECT_EQ(a.total_outage_ms, b.total_outage_ms) << "link " << i;
    ASSERT_EQ(a.frame_log.size(), b.frame_log.size()) << "link " << i;
    for (std::size_t f = 0; f < a.frame_log.size(); ++f) {
      ASSERT_EQ(a.frame_log[f].t_ms, b.frame_log[f].t_ms)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].mcs, b.frame_log[f].mcs)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].goodput_mbps, b.frame_log[f].goodput_mbps)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].ack, b.frame_log[f].ack)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].action, b.frame_log[f].action)
          << "link " << i << " frame " << f;
    }
  }
}

// Compiled flat-arena inference is a pure serving-path optimization: a
// fleet served by the compiled forest must be bit-identical, frame for
// frame, to the same fleet served by the interpreted pointer walk. (In
// double-threshold mode the two engines evaluate the exact same
// comparisons; only the memory layout differs.)
TEST(Fleet, CompiledInferenceOnOffBitIdentical) {
  const array::Codebook codebook;
  const core::LibraClassifier compiled_clf =
      make_fleet_classifier(/*compiled=*/true);
  const core::LibraClassifier interpreted_clf =
      make_fleet_classifier(/*compiled=*/false);
  ASSERT_NE(compiled_clf.forest().compiled(), nullptr);
  ASSERT_EQ(interpreted_clf.forest().compiled(), nullptr);

  const std::vector<sim::SessionResult> compiled =
      run_build_stations_fleet(&codebook, 77, &compiled_clf);
  const std::vector<sim::SessionResult> interpreted =
      run_build_stations_fleet(&codebook, 77, &interpreted_clf);

  ASSERT_EQ(compiled.size(), interpreted.size());
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    const sim::SessionResult& a = compiled[i];
    const sim::SessionResult& b = interpreted[i];
    EXPECT_EQ(a.frames, b.frames) << "link " << i;
    EXPECT_EQ(a.bytes_mb, b.bytes_mb) << "link " << i;
    EXPECT_EQ(a.avg_goodput_mbps, b.avg_goodput_mbps) << "link " << i;
    EXPECT_EQ(a.adaptations_ba, b.adaptations_ba) << "link " << i;
    EXPECT_EQ(a.adaptations_ra, b.adaptations_ra) << "link " << i;
    EXPECT_EQ(a.outages, b.outages) << "link " << i;
    EXPECT_EQ(a.total_outage_ms, b.total_outage_ms) << "link " << i;
    ASSERT_EQ(a.frame_log.size(), b.frame_log.size()) << "link " << i;
    for (std::size_t f = 0; f < a.frame_log.size(); ++f) {
      ASSERT_EQ(a.frame_log[f].t_ms, b.frame_log[f].t_ms)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].mcs, b.frame_log[f].mcs)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].goodput_mbps, b.frame_log[f].goodput_mbps)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].ack, b.frame_log[f].ack)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].action, b.frame_log[f].action)
          << "link " << i << " frame " << f;
    }
  }
}

#if LIBRA_OBS_ENABLED

// A fleet run's exported trace must be valid Chrome trace-event JSON and
// cover the tick phases plus the batched inference span (the acceptance
// check behind `libra simulate --trace-out`).
TEST(Fleet, TraceContainsFleetSpans) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  const array::Codebook codebook;
  (void)run_build_stations_fleet(&codebook, 77);

  const std::string path = ::testing::TempDir() + "fleet_trace.json";
  buf.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const libra::testing::JsonValue root = libra::testing::parse_json(ss.str());
  const libra::testing::JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool gather = false, decide = false, scatter = false, classify = false;
  for (const libra::testing::JsonValue& e : events->array) {
    const libra::testing::JsonValue* name = e.find("name");
    const libra::testing::JsonValue* ph = e.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");
    gather |= name->str == "fleet.gather";
    decide |= name->str == "fleet.decide";
    scatter |= name->str == "fleet.scatter";
    classify |= name->str == "classifier.classify_batch";
  }
  EXPECT_TRUE(gather);
  EXPECT_TRUE(decide);
  EXPECT_TRUE(scatter);
  EXPECT_TRUE(classify);
  buf.clear();
}

// The scrape rides back on FleetResult: phase histograms and tick counters
// must reflect the run that produced them.
TEST(Fleet, ResultCarriesMetricsSnapshot) {
  const array::Codebook codebook;
  auto stations = build_stations(&codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  const sim::FleetResult result = sim::run_fleet(members, {});

  const auto* ticks = result.metrics.find_counter("fleet.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GE(ticks->value, static_cast<std::uint64_t>(result.ticks));
  const auto* hist = result.metrics.find_histogram("fleet.tick_latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->data.count, static_cast<std::uint64_t>(result.ticks));
  const auto* rows = result.metrics.find_counter("fleet.batched_rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_GE(rows->value, static_cast<std::uint64_t>(result.batched_rows));
}

#endif  // LIBRA_OBS_ENABLED

// A ~1k-link mixed-impairment fleet over a small codebook (5 beams keeps
// the per-link association sweep cheap enough to run a thousand of them in
// a unit test). Stations cycle through stationary / walker / blockage /
// interference worlds, a third run the RA-first baseline (two classifier
// groups per shard), and every 7th finishes early.
sim::FleetResult run_scale_fleet(const array::Codebook* codebook, int n,
                                 std::uint64_t seed, int shards,
                                 int num_threads) {
  std::vector<std::unique_ptr<Station>> stations;
  stations.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const geom::Vec2 pos{8.0 + (i % 11), 3.0 + (i % 5)};
    const core::LibraClassifier* clf =
        (i % 3 == 2) ? nullptr : &fleet_classifier();
    stations.push_back(std::make_unique<Station>(codebook, pos, clf));
    Station& s = *stations.back();
    s.script.duration_ms = (i % 7 == 6) ? 30.0 : 60.0;  // early finishers
    s.script.rx_trajectory = sim::Trajectory::stationary(pos, 180.0);
    switch (i % 4) {
      case 1:
        s.script.rx_trajectory = sim::Trajectory::walk(
            pos, {pos.x + 3.0, pos.y + 1.0}, s.script.duration_ms,
            geom::Vec2{2, 6});
        break;
      case 2:
        s.script.blockage.push_back({15.0, 45.0, {{6, 6}, 0.3, 35.0}});
        break;
      case 3:
        s.script.interference.push_back(
            {10.0, 40.0, {{pos.x + 2.0, 1.0}, 50.0, 0.5}});
        break;
      default:
        break;
    }
  }
  std::vector<sim::FleetLink> members;
  members.reserve(stations.size());
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = seed;
  cfg.keep_frame_logs = true;
  cfg.shards = shards;
  cfg.num_threads = num_threads;
  return sim::run_fleet(members, cfg);
}

// Fleet-scale shard/thread invariance: the 1k-link run must produce
// bit-identical SessionResults AND the same frame-log digest at every
// point of the shard/thread grid.
TEST(Fleet, ThousandLinkShardThreadInvariant) {
  array::CodebookConfig cb;
  cb.num_beams = 5;
  const array::Codebook codebook(cb);
  constexpr int kLinks = 1000;

  const sim::FleetResult baseline =
      run_scale_fleet(&codebook, kLinks, 123, /*shards=*/1,
                      /*num_threads=*/1);
  ASSERT_EQ(baseline.links.size(), static_cast<std::size_t>(kLinks));
  EXPECT_EQ(baseline.shards_used, 1);
  EXPECT_GT(baseline.ticks, 0);
  EXPECT_GT(baseline.batched_rows, 0);  // classifier groups actually batched
  EXPECT_GT(baseline.link_frames, static_cast<std::int64_t>(kLinks));
  const std::uint64_t digest = sim::degradation_digest(baseline);

  constexpr struct {
    int shards;
    int threads;
  } kGrid[] = {{8, 1}, {0, 4}, {16, 4}};
  for (const auto& g : kGrid) {
    const sim::FleetResult run =
        run_scale_fleet(&codebook, kLinks, 123, g.shards, g.threads);
    const std::string tag = "shards=" + std::to_string(g.shards) +
                            " threads=" + std::to_string(g.threads);
    EXPECT_GT(run.shards_used, 1) << tag;
    EXPECT_EQ(sim::degradation_digest(run), digest) << tag;
    EXPECT_EQ(run.ticks, baseline.ticks) << tag;
    EXPECT_EQ(run.batched_rows, baseline.batched_rows) << tag;
    EXPECT_EQ(run.link_frames, baseline.link_frames) << tag;
    expect_links_identical(baseline.links, run.links, tag);
  }
}

// Faulted sharded replay: with a fault plan attached, a run is a pure
// function of (seed, fault seed) -- re-running at a different shard/thread
// count, or simply re-running, replays bit for bit.
TEST(Fleet, FaultedShardedRunReplaysBitForBit) {
  const array::Codebook codebook;
  const auto run = [&](int shards, int threads) {
    auto stations = build_stations(&codebook);
    std::vector<sim::FleetLink> members;
    for (auto& s : stations) {
      members.push_back({&s->env, &s->link, s->controller.get(), s->script});
    }
    sim::FleetConfig cfg;
    cfg.seed = 77;
    cfg.keep_frame_logs = true;
    cfg.shards = shards;
    cfg.num_threads = threads;
    cfg.faults = faults::demo_plan(1234);
    return sim::run_fleet(members, cfg);
  };
  const sim::FleetResult serial = run(1, 1);
  const sim::FleetResult sharded = run(3, 4);
  const sim::FleetResult replay = run(3, 4);
  const std::uint64_t digest = sim::degradation_digest(serial);
  EXPECT_EQ(sim::degradation_digest(sharded), digest);
  EXPECT_EQ(sim::degradation_digest(replay), digest);
  expect_links_identical(serial.links, sharded.links, "faulted sharded");
  expect_links_identical(sharded.links, replay.links, "faulted replay");
}

// The counter-overflow regression: every accounting field that aggregates
// across a 10^5-10^6-link fleet must be 64-bit, and accumulating past
// INT32_MAX through the actual result fields must not wrap.
TEST(Fleet, AccountingFieldsAreInt64) {
  static_assert(
      std::is_same_v<decltype(sim::FleetResult::ticks), std::int64_t>);
  static_assert(
      std::is_same_v<decltype(sim::FleetResult::batched_rows), std::int64_t>);
  static_assert(
      std::is_same_v<decltype(sim::FleetResult::link_frames), std::int64_t>);
  static_assert(
      std::is_same_v<decltype(sim::SessionResult::frames), std::int64_t>);
  static_assert(std::is_same_v<decltype(sim::SessionResult::adaptations_ba),
                               std::int64_t>);
  static_assert(std::is_same_v<decltype(sim::SessionResult::adaptations_ra),
                               std::int64_t>);
  static_assert(
      std::is_same_v<decltype(sim::SessionResult::outages), std::int64_t>);

  // The engine's accumulation pattern: per-group row counts (size_t)
  // summed into the result, 30 batches of 1e8 rows -- minutes of a
  // 10^5-link run -- lands at 3e9, past any int32.
  sim::FleetResult result;
  const std::size_t group_rows = 100'000'000;
  for (int i = 0; i < 30; ++i) {
    result.batched_rows += static_cast<std::int64_t>(group_rows);
    result.link_frames += static_cast<std::int64_t>(group_rows);
  }
  EXPECT_EQ(result.batched_rows, 3'000'000'000LL);
  EXPECT_GT(result.batched_rows,
            static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max()));
  EXPECT_EQ(result.link_frames, 3'000'000'000LL);
}

TEST(Fleet, EmptyFleetFinishesImmediately) {
  const sim::FleetResult result = sim::run_fleet({}, {});
  EXPECT_TRUE(result.links.empty());
  EXPECT_EQ(result.ticks, 0);
  EXPECT_EQ(result.batched_rows, 0);
}

TEST(Fleet, NullMembersThrow) {
  sim::FleetLink bad;  // all nullptrs
  std::vector<sim::FleetLink> members{bad};
  EXPECT_THROW(sim::run_fleet(members, {}), std::invalid_argument);
}

TEST(Fleet, InvalidScriptThrows) {
  const array::Codebook codebook;
  Station station(&codebook, {10, 6}, nullptr);
  station.script.duration_ms = 0.0;
  std::vector<sim::FleetLink> members;
  members.push_back({&station.env, &station.link, station.controller.get(),
                     station.script});
  EXPECT_THROW(sim::run_fleet(members, {}), std::invalid_argument);
}

}  // namespace
}  // namespace libra
