// Fleet serving (sim/fleet.h): the lockstep batched decision engine must be
// an exact refactoring of N independent sessions -- same per-link results,
// bit for bit, for any forest thread count.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/controller.h"
#include "env/registry.h"
#include "json_mini.h"
#include "obs/span.h"
#include "sim/fleet.h"
#include "test_helpers.h"

namespace libra {
namespace {

using libra::testing::make_record;

// A trained 3-class classifier over clearly separated synthetic cases,
// with a multi-threaded forest: the fleet contract must hold under
// parallel batched inference. `compiled` picks the flat-arena serving path
// vs. the legacy pointer walk (both train the identical forest).
core::LibraClassifier make_fleet_classifier(bool compiled) {
  trace::Dataset ds;
  for (int i = 0; i < 40; ++i) {
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
    ba.new_at_init_pair.tof_ns = std::nullopt;
    ds.records.push_back(ba);
    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.init_best.tof_ns = 20.0;
    ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
    ra.new_at_init_pair.tof_ns = 45.0;
    ds.records.push_back(ra);
    trace::CaseRecord na = make_record(6, 6, 6);
    na.forced_na = true;
    na.init_best.snr_db = 22.0;
    na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
    ds.na_records.push_back(na);
  }
  core::LibraClassifierConfig cfg;
  cfg.forest.num_threads = 4;  // num_threads = K in the fleet contract
  cfg.compile_inference = compiled;
  core::LibraClassifier c(cfg);
  util::Rng rng(1);
  c.train(ds, {}, rng);
  return c;
}

const core::LibraClassifier& fleet_classifier() {
  static const core::LibraClassifier clf =
      make_fleet_classifier(/*compiled=*/true);
  return clf;
}

const phy::ErrorModel& shared_error_model() {
  static const phy::McsTable table;
  static const phy::ErrorModel em(&table);
  return em;
}

// One station's whole world, self-contained so fleet and serial reference
// runs can each build an identical fresh copy.
struct Station {
  env::Environment env;
  array::PhasedArray ap;
  array::PhasedArray client;
  channel::Link link;
  std::unique_ptr<core::LinkController> controller;
  sim::SessionScript script;

  // `clf` = the LiBRA classifier serving this station, or nullptr for the
  // RA-first baseline controller.
  Station(const array::Codebook* codebook, geom::Vec2 client_pos,
          const core::LibraClassifier* clf)
      : env(env::make_lobby()),
        ap({2, 6}, 0.0, codebook),
        client(client_pos, 180.0, codebook),
        link(&env, &ap, &client) {
    if (clf != nullptr) {
      controller = std::make_unique<core::LibraController>(
          &link, &shared_error_model(), clf);
    } else {
      controller = std::make_unique<core::RaFirstController>(
          &link, &shared_error_model(), core::ControllerConfig{});
    }
  }
};

// A 4-station mixed fleet with per-station impairments and staggered
// session lengths (station 3 finishes early and sits out later ticks).
std::vector<std::unique_ptr<Station>> build_stations(
    const array::Codebook* codebook,
    const core::LibraClassifier* clf = &fleet_classifier()) {
  std::vector<std::unique_ptr<Station>> stations;
  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{10, 6}, clf));
  stations[0]->script.duration_ms = 2000.0;
  stations[0]->script.rx_trajectory =
      sim::Trajectory::stationary({10, 6}, 180.0);
  stations[0]->script.blockage.push_back({600.0, 1400.0, {{6, 6}, 0.3, 35.0}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{12, 7}, clf));
  stations[1]->script.duration_ms = 2000.0;
  stations[1]->script.rx_trajectory =
      sim::Trajectory::walk({12, 7}, {18, 8}, 2000.0, geom::Vec2{2, 6});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{9, 5}, nullptr));
  stations[2]->script.duration_ms = 2000.0;
  stations[2]->script.rx_trajectory =
      sim::Trajectory::stationary({9, 5}, 180.0);
  stations[2]->script.interference.push_back(
      {500.0, 1500.0, {{10, 1}, 50.0, 0.5}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{11, 6}, clf));
  stations[3]->script.duration_ms = 800.0;  // early finisher
  stations[3]->script.rx_trajectory =
      sim::Trajectory::stationary({11, 6}, 180.0);
  return stations;
}

TEST(Fleet, BitIdenticalToIndependentSessions) {
  const array::Codebook codebook;
  constexpr std::uint64_t kSeed = 77;

  // Fleet run: lockstep ticks, batched inference.
  auto fleet_stations = build_stations(&codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : fleet_stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = kSeed;
  cfg.keep_frame_logs = true;
  const sim::FleetResult fleet = sim::run_fleet(members, cfg);
  ASSERT_EQ(fleet.links.size(), fleet_stations.size());
  EXPECT_GT(fleet.ticks, 0);
  EXPECT_GT(fleet.batched_rows, 0);  // the LiBRA stations used the engine
  EXPECT_EQ(fleet.tick_latency_us.count(),
            static_cast<std::size_t>(fleet.ticks));

  // Serial reference: independent sessions on the same forked streams.
  auto serial_stations = build_stations(&codebook);
  util::Rng fleet_rng(kSeed);
  for (std::size_t i = 0; i < serial_stations.size(); ++i) {
    util::Rng link_rng = fleet_rng.fork();
    Station& s = *serial_stations[i];
    const sim::SessionResult serial = sim::run_session(
        s.env, s.link, *s.controller, s.script, link_rng,
        /*keep_frame_log=*/true);
    const sim::SessionResult& batched = fleet.links[i];

    EXPECT_EQ(batched.frames, serial.frames) << "link " << i;
    EXPECT_EQ(batched.bytes_mb, serial.bytes_mb) << "link " << i;
    EXPECT_EQ(batched.avg_goodput_mbps, serial.avg_goodput_mbps)
        << "link " << i;
    EXPECT_EQ(batched.adaptations_ba, serial.adaptations_ba) << "link " << i;
    EXPECT_EQ(batched.adaptations_ra, serial.adaptations_ra) << "link " << i;
    EXPECT_EQ(batched.outages, serial.outages) << "link " << i;
    EXPECT_EQ(batched.total_outage_ms, serial.total_outage_ms)
        << "link " << i;
    ASSERT_EQ(batched.frame_log.size(), serial.frame_log.size())
        << "link " << i;
    for (std::size_t fidx = 0; fidx < serial.frame_log.size(); ++fidx) {
      const core::FrameReport& a = batched.frame_log[fidx];
      const core::FrameReport& b = serial.frame_log[fidx];
      ASSERT_EQ(a.t_ms, b.t_ms) << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.mcs, b.mcs) << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.goodput_mbps, b.goodput_mbps)
          << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.ack, b.ack) << "link " << i << " frame " << fidx;
      ASSERT_EQ(a.action, b.action) << "link " << i << " frame " << fidx;
    }
  }
}

// Per-link results from one fleet run, flattened for comparison.
std::vector<sim::SessionResult> run_build_stations_fleet(
    const array::Codebook* codebook, std::uint64_t seed,
    const core::LibraClassifier* clf = &fleet_classifier()) {
  auto stations = build_stations(codebook, clf);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = seed;
  cfg.keep_frame_logs = true;
  return sim::run_fleet(members, cfg).links;
}

// Telemetry is observation-only: disabling it at runtime must leave every
// frame of every link bit-identical -- no counter, span, or clock read may
// feed back into RNG draws or decisions.
TEST(Fleet, TelemetryOnOffBitIdentical) {
  const array::Codebook codebook;
  const std::vector<sim::SessionResult> with_obs =
      run_build_stations_fleet(&codebook, 77);
  obs::set_enabled(false);
  const std::vector<sim::SessionResult> without_obs =
      run_build_stations_fleet(&codebook, 77);
  obs::set_enabled(true);

  ASSERT_EQ(with_obs.size(), without_obs.size());
  for (std::size_t i = 0; i < with_obs.size(); ++i) {
    const sim::SessionResult& a = with_obs[i];
    const sim::SessionResult& b = without_obs[i];
    EXPECT_EQ(a.frames, b.frames) << "link " << i;
    EXPECT_EQ(a.bytes_mb, b.bytes_mb) << "link " << i;
    EXPECT_EQ(a.avg_goodput_mbps, b.avg_goodput_mbps) << "link " << i;
    EXPECT_EQ(a.adaptations_ba, b.adaptations_ba) << "link " << i;
    EXPECT_EQ(a.adaptations_ra, b.adaptations_ra) << "link " << i;
    EXPECT_EQ(a.outages, b.outages) << "link " << i;
    EXPECT_EQ(a.total_outage_ms, b.total_outage_ms) << "link " << i;
    ASSERT_EQ(a.frame_log.size(), b.frame_log.size()) << "link " << i;
    for (std::size_t f = 0; f < a.frame_log.size(); ++f) {
      ASSERT_EQ(a.frame_log[f].t_ms, b.frame_log[f].t_ms)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].mcs, b.frame_log[f].mcs)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].goodput_mbps, b.frame_log[f].goodput_mbps)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].ack, b.frame_log[f].ack)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].action, b.frame_log[f].action)
          << "link " << i << " frame " << f;
    }
  }
}

// Compiled flat-arena inference is a pure serving-path optimization: a
// fleet served by the compiled forest must be bit-identical, frame for
// frame, to the same fleet served by the interpreted pointer walk. (In
// double-threshold mode the two engines evaluate the exact same
// comparisons; only the memory layout differs.)
TEST(Fleet, CompiledInferenceOnOffBitIdentical) {
  const array::Codebook codebook;
  const core::LibraClassifier compiled_clf =
      make_fleet_classifier(/*compiled=*/true);
  const core::LibraClassifier interpreted_clf =
      make_fleet_classifier(/*compiled=*/false);
  ASSERT_NE(compiled_clf.forest().compiled(), nullptr);
  ASSERT_EQ(interpreted_clf.forest().compiled(), nullptr);

  const std::vector<sim::SessionResult> compiled =
      run_build_stations_fleet(&codebook, 77, &compiled_clf);
  const std::vector<sim::SessionResult> interpreted =
      run_build_stations_fleet(&codebook, 77, &interpreted_clf);

  ASSERT_EQ(compiled.size(), interpreted.size());
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    const sim::SessionResult& a = compiled[i];
    const sim::SessionResult& b = interpreted[i];
    EXPECT_EQ(a.frames, b.frames) << "link " << i;
    EXPECT_EQ(a.bytes_mb, b.bytes_mb) << "link " << i;
    EXPECT_EQ(a.avg_goodput_mbps, b.avg_goodput_mbps) << "link " << i;
    EXPECT_EQ(a.adaptations_ba, b.adaptations_ba) << "link " << i;
    EXPECT_EQ(a.adaptations_ra, b.adaptations_ra) << "link " << i;
    EXPECT_EQ(a.outages, b.outages) << "link " << i;
    EXPECT_EQ(a.total_outage_ms, b.total_outage_ms) << "link " << i;
    ASSERT_EQ(a.frame_log.size(), b.frame_log.size()) << "link " << i;
    for (std::size_t f = 0; f < a.frame_log.size(); ++f) {
      ASSERT_EQ(a.frame_log[f].t_ms, b.frame_log[f].t_ms)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].mcs, b.frame_log[f].mcs)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].goodput_mbps, b.frame_log[f].goodput_mbps)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].ack, b.frame_log[f].ack)
          << "link " << i << " frame " << f;
      ASSERT_EQ(a.frame_log[f].action, b.frame_log[f].action)
          << "link " << i << " frame " << f;
    }
  }
}

#if LIBRA_OBS_ENABLED

// A fleet run's exported trace must be valid Chrome trace-event JSON and
// cover the tick phases plus the batched inference span (the acceptance
// check behind `libra simulate --trace-out`).
TEST(Fleet, TraceContainsFleetSpans) {
  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  const array::Codebook codebook;
  (void)run_build_stations_fleet(&codebook, 77);

  const std::string path = ::testing::TempDir() + "fleet_trace.json";
  buf.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const libra::testing::JsonValue root = libra::testing::parse_json(ss.str());
  const libra::testing::JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool gather = false, decide = false, scatter = false, classify = false;
  for (const libra::testing::JsonValue& e : events->array) {
    const libra::testing::JsonValue* name = e.find("name");
    const libra::testing::JsonValue* ph = e.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");
    gather |= name->str == "fleet.gather";
    decide |= name->str == "fleet.decide";
    scatter |= name->str == "fleet.scatter";
    classify |= name->str == "classifier.classify_batch";
  }
  EXPECT_TRUE(gather);
  EXPECT_TRUE(decide);
  EXPECT_TRUE(scatter);
  EXPECT_TRUE(classify);
  buf.clear();
}

// The scrape rides back on FleetResult: phase histograms and tick counters
// must reflect the run that produced them.
TEST(Fleet, ResultCarriesMetricsSnapshot) {
  const array::Codebook codebook;
  auto stations = build_stations(&codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  const sim::FleetResult result = sim::run_fleet(members, {});

  const auto* ticks = result.metrics.find_counter("fleet.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GE(ticks->value, static_cast<std::uint64_t>(result.ticks));
  const auto* hist = result.metrics.find_histogram("fleet.tick_latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->data.count, static_cast<std::uint64_t>(result.ticks));
  const auto* rows = result.metrics.find_counter("fleet.batched_rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_GE(rows->value, static_cast<std::uint64_t>(result.batched_rows));
}

#endif  // LIBRA_OBS_ENABLED

TEST(Fleet, EmptyFleetFinishesImmediately) {
  const sim::FleetResult result = sim::run_fleet({}, {});
  EXPECT_TRUE(result.links.empty());
  EXPECT_EQ(result.ticks, 0);
  EXPECT_EQ(result.batched_rows, 0);
}

TEST(Fleet, NullMembersThrow) {
  sim::FleetLink bad;  // all nullptrs
  std::vector<sim::FleetLink> members{bad};
  EXPECT_THROW(sim::run_fleet(members, {}), std::invalid_argument);
}

TEST(Fleet, InvalidScriptThrows) {
  const array::Codebook codebook;
  Station station(&codebook, {10, 6}, nullptr);
  station.script.duration_ms = 0.0;
  std::vector<sim::FleetLink> members;
  members.push_back({&station.env, &station.link, station.controller.get(),
                     station.script});
  EXPECT_THROW(sim::run_fleet(members, {}), std::invalid_argument);
}

}  // namespace
}  // namespace libra
