// Fleet online learning (core/trainer.h): the sampled row stream, the
// drift/accuracy swap gates, and the zero-pause generation-tagged model
// swap -- plus the determinism contract that makes the whole subsystem
// replayable: a pinned swap schedule must reproduce bit-for-bit at any
// (shards, num_threads), and an attached trainer whose gates never fire
// must be indistinguishable from no trainer at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/classifier.h"
#include "core/controller.h"
#include "core/decision_backend.h"
#include "core/online.h"
#include "core/trainer.h"
#include "env/registry.h"
#include "ml/random_forest.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "sim/fleet.h"
#include "test_helpers.h"

namespace libra {
namespace {

using libra::testing::make_record;

// ---------- synthetic row fixtures ----------

// Three cleanly separated feature clusters, one per action class: a forest
// fit on (cluster(a), a) pairs predicts the cluster's action essentially
// perfectly, which lets the gate tests dial mismatch rates by relabeling.
trace::FeatureVector cluster_features(trace::Action cluster, int i) {
  const double c =
      static_cast<double>(core::LibraClassifier::to_label(cluster));
  trace::FeatureVector f;
  f.v = {2.0 + 4.0 * c + 0.01 * (i % 10),
         1.0 + c,
         0.5 * c,
         3.0 - c,
         0.1 * (i % 7),
         2.0 + 0.2 * c,
         1.0};
  return f;
}

core::TrainRow make_row(std::int64_t tick, std::uint32_t link,
                        trace::Action cluster, trace::Action label, int i) {
  core::TrainRow row;
  row.tick = tick;
  row.link = link;
  row.features = cluster_features(cluster, i);
  row.label = label;
  return row;
}

trace::Action action_of(int i) {
  switch (i % 3) {
    case 0: return trace::Action::kBA;
    case 1: return trace::Action::kRA;
    default: return trace::Action::kNA;
  }
}

trace::Action rotate(trace::Action a) {
  return core::LibraClassifier::to_action(
      (core::LibraClassifier::to_label(a) + 1) % 3);
}

// A forest that has learned the cluster -> action mapping (the "accurate
// incumbent" of the gate tests).
ml::RandomForest make_cluster_forest(int num_trees = 15,
                                     std::uint64_t seed = 3) {
  ml::DataSet ds(trace::FeatureVector::kDim);
  for (int i = 0; i < 150; ++i) {
    const trace::Action a = action_of(i);
    ds.add(cluster_features(a, i).v, core::LibraClassifier::to_label(a));
  }
  ml::RandomForestConfig cfg;
  cfg.num_trees = num_trees;
  ml::RandomForest forest(cfg);
  util::Rng rng(seed);
  forest.fit(ds, rng);
  return forest;
}

core::FleetTrainerConfig small_trainer_cfg() {
  core::FleetTrainerConfig cfg;
  cfg.seed = 11;
  cfg.ring_capacity = 4096;
  cfg.window_rows = 1024;
  cfg.holdout_every = 4;
  cfg.holdout_rows = 128;
  cfg.min_fit_rows = 32;
  cfg.min_holdout_rows = 8;
  cfg.min_accuracy_gain = 0.02;
  cfg.drift.threshold = 0.25;
  cfg.drift.window_rows = 256;
  cfg.forest.num_trees = 15;
  return cfg;
}

// Offer `n` rows whose labels come from `label_of(cluster, i)`, advancing
// the shared tick cursor so ingestion order stays canonical.
template <typename LabelFn>
void offer_rows(core::FleetTrainer& trainer, int n, std::int64_t* tick,
                LabelFn label_of) {
  for (int i = 0; i < n; ++i) {
    const trace::Action cluster = action_of(i);
    trainer.offer(0, make_row((*tick)++, static_cast<std::uint32_t>(i % 16),
                              cluster, label_of(cluster, i), i));
  }
}

void offer_consistent(core::FleetTrainer& trainer, int n, std::int64_t* tick) {
  offer_rows(trainer, n, tick,
             [](trace::Action cluster, int) { return cluster; });
}

void offer_rotated(core::FleetTrainer& trainer, int n, std::int64_t* tick) {
  offer_rows(trainer, n, tick,
             [](trace::Action cluster, int) { return rotate(cluster); });
}

#if LIBRA_OBS_ENABLED
std::uint64_t counter_value(const char* name) {
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* c = snap.find_counter(name);
  return c == nullptr ? 0 : c->value;
}
#endif

// ---------- config validation ----------

TEST(TrainerConfig, ValidationThrows) {
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.sample_rate = 1.5;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.ring_capacity = 0;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.window_rows = 8;  // < min_fit_rows
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.holdout_every = 1;  // would starve the training window
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.min_holdout_rows = cfg.holdout_rows + 1;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.min_accuracy_gain = -0.1;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.train_period_ms = 0.0;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.fit_every_rows = 0;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.swap_at_ticks = {10, -1};
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.drift.threshold = 0.0;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
  {
    core::FleetTrainerConfig cfg = small_trainer_cfg();
    cfg.drift.window_rows = 0;
    EXPECT_THROW(core::FleetTrainer{cfg}, std::invalid_argument);
  }
}

// The hoisted LibraClassifierConfig validation: a bad config must throw at
// construction, not surface as NaN jitter deep inside a fleet run.
TEST(TrainerConfig, ClassifierConfigValidatedAtConstruction) {
  {
    core::LibraClassifierConfig cfg;
    cfg.min_confidence = -0.5;
    EXPECT_THROW(core::LibraClassifier{cfg}, std::invalid_argument);
  }
  {
    core::LibraClassifierConfig cfg;
    cfg.min_confidence = std::numeric_limits<double>::infinity();
    EXPECT_THROW(core::LibraClassifier{cfg}, std::invalid_argument);
  }
  {
    core::LibraClassifierConfig cfg;
    cfg.window_snr_jitter_db = -1.0;
    EXPECT_THROW(core::LibraClassifier{cfg}, std::invalid_argument);
  }
  {
    core::LibraClassifierConfig cfg;
    cfg.window_cdr_jitter = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(core::LibraClassifier{cfg}, std::invalid_argument);
  }
}

TEST(TrainerConfig, TrainLabeledRejectsBadRows) {
  core::LibraClassifier clf{core::LibraClassifierConfig{}};
  util::Rng rng(1);
  ml::DataSet empty(trace::FeatureVector::kDim);
  EXPECT_THROW(clf.train_labeled(empty, rng), std::invalid_argument);

  ml::DataSet wrong_dim(3);
  wrong_dim.add(std::vector<double>{1.0, 2.0, 3.0}, 0);
  EXPECT_THROW(clf.train_labeled(wrong_dim, rng), std::invalid_argument);

  ml::DataSet bad_label(trace::FeatureVector::kDim);
  bad_label.add(cluster_features(trace::Action::kBA, 0).v, 5);
  EXPECT_THROW(clf.train_labeled(bad_label, rng), std::invalid_argument);
}

// ---------- hindsight labeling ----------

TEST(Hindsight, LabelRules) {
  core::HindsightConfig cfg;  // min_tput 150, ba threshold at MCS 6
  core::FrameReport good;
  good.ack = true;
  good.goodput_mbps = 200.0;
  // Working link: whatever was served was right.
  EXPECT_EQ(core::hindsight_label(trace::Action::kBA, good, cfg),
            trace::Action::kBA);
  EXPECT_EQ(core::hindsight_label(trace::Action::kRA, good, cfg),
            trace::Action::kRA);
  EXPECT_EQ(core::hindsight_label(trace::Action::kNA, good, cfg),
            trace::Action::kNA);

  // A NACK fails regardless of goodput; a low-goodput ACK fails too.
  core::FrameReport nack = good;
  nack.ack = false;
  core::FrameReport slow = good;
  slow.goodput_mbps = 10.0;
  for (const core::FrameReport& next : {nack, slow}) {
    EXPECT_EQ(core::hindsight_label(trace::Action::kBA, next, cfg),
              trace::Action::kRA);
    EXPECT_EQ(core::hindsight_label(trace::Action::kRA, next, cfg),
              trace::Action::kBA);
  }

  // A failed No-Adaptation escalates by the missing-ACK rule's shape.
  core::FrameReport low_mcs = nack;
  low_mcs.mcs = 3;
  EXPECT_EQ(core::hindsight_label(trace::Action::kNA, low_mcs, cfg),
            trace::Action::kBA);
  core::FrameReport high_mcs = nack;
  high_mcs.mcs = 9;
  EXPECT_EQ(core::hindsight_label(trace::Action::kNA, high_mcs, cfg),
            trace::Action::kRA);

  EXPECT_THROW(
      core::hindsight_label(static_cast<trace::Action>(17), good, cfg),
      std::invalid_argument);
}

// ---------- row sampler ----------

TEST(RowSampler, DeterministicSeededAndRateBounded) {
  core::FleetTrainerConfig cfg = small_trainer_cfg();
  cfg.sample_rate = 0.1;
  const core::FleetTrainer a(cfg);
  const core::FleetTrainer b(cfg);
  cfg.seed = 99;
  const core::FleetTrainer other_seed(cfg);

  int sampled = 0;
  bool seeds_differ = false;
  for (std::uint32_t link = 0; link < 100; ++link) {
    for (std::uint64_t seq = 0; seq < 1000; ++seq) {
      const bool want = a.wants(link, seq);
      // Pure hash: the same (seed, link, seq) answers identically whatever
      // trainer instance (== whatever shard) asks.
      ASSERT_EQ(want, b.wants(link, seq));
      sampled += want ? 1 : 0;
      seeds_differ |= want != other_seed.wants(link, seq);
    }
  }
  EXPECT_TRUE(seeds_differ);
  // 100k decisions at 10%: a generous 3-sigma-ish band.
  EXPECT_GT(sampled, 7000);
  EXPECT_LT(sampled, 13000);

  cfg = small_trainer_cfg();
  cfg.sample_rate = 1.0;
  const core::FleetTrainer all(cfg);
  cfg.sample_rate = 0.0;
  const core::FleetTrainer none(cfg);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_TRUE(all.wants(7, seq));
    EXPECT_FALSE(none.wants(7, seq));
  }
}

// ---------- row ring ----------

TEST(RowRing, DropOldestNeverGrowsPastCapacity) {
  core::RowRing ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.offer(make_row(i, 0, trace::Action::kBA,
                                  trace::Action::kBA, i)),
              core::RowRing::Offer::kAccepted);
  }
  for (int i = 4; i < 6; ++i) {
    EXPECT_EQ(ring.offer(make_row(i, 0, trace::Action::kBA,
                                  trace::Action::kBA, i)),
              core::RowRing::Offer::kReplacedOldest);
  }
  EXPECT_EQ(ring.size(), 4u);

  std::vector<core::TrainRow> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 4u);
  // Oldest two (ticks 0, 1) were dropped; the survivors are 2..5 in order.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].tick, i + 2);
  EXPECT_EQ(ring.size(), 0u);

  EXPECT_THROW(core::RowRing{0}, std::invalid_argument);
}

// ---------- model slot + swap backend ----------

TEST(ModelSlot, GenerationTagsAndPinnedModelSurvivesSwap) {
  core::ModelSlot slot;
  EXPECT_EQ(slot.pin(), nullptr);
  EXPECT_EQ(slot.generation(), 0u);

  const ml::RandomForest ten = make_cluster_forest(10);
  const ml::RandomForest seven = make_cluster_forest(7, /*seed=*/5);
  EXPECT_EQ(slot.install(ml::CompiledForest(ten)), 1u);
  const std::shared_ptr<const core::ModelSlot::Model> pinned = slot.pin();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->generation, 1u);
  EXPECT_EQ(pinned->forest.num_trees(), 10);

  EXPECT_EQ(slot.install(ml::CompiledForest(seven)), 2u);
  EXPECT_EQ(slot.generation(), 2u);
  // The pre-swap pin still serves the old generation (in-flight batches
  // finish on the model they pinned).
  EXPECT_EQ(pinned->generation, 1u);
  EXPECT_EQ(pinned->forest.num_trees(), 10);
  EXPECT_EQ(slot.pin()->forest.num_trees(), 7);
}

TEST(SwapBackend, OutageWhileEmptyBitExactOnceSeeded) {
  core::ModelSlot slot;
  core::SwapBackend backend(&slot);
  EXPECT_EQ(backend.name(), "swap");
  EXPECT_TRUE(backend.local());
  EXPECT_FALSE(backend.available());

  ml::DataSet rows(trace::FeatureVector::kDim);
  for (int i = 0; i < 4; ++i) {
    rows.add(cluster_features(action_of(i), i).v, 0);
  }
  EXPECT_THROW(backend.vote_batch(rows), core::BackendOutageError);

  const ml::RandomForest forest = make_cluster_forest(10);
  slot.install(ml::CompiledForest(forest));
  EXPECT_TRUE(backend.available());
  const std::vector<std::vector<double>> votes = backend.vote_batch(rows);
  const std::vector<std::vector<double>> local =
      forest.vote_fractions_batch(rows);
  ASSERT_EQ(votes.size(), local.size());
  for (std::size_t r = 0; r < local.size(); ++r) {
    ASSERT_EQ(votes[r].size(), local[r].size()) << "row " << r;
    for (std::size_t c = 0; c < local[r].size(); ++c) {
      EXPECT_EQ(votes[r][c], local[r][c]) << "row " << r << " class " << c;
    }
  }
}

// True when `v` is an exact multiple of 1/num_trees (vote fractions are
// integer tree counts over num_trees -- exact in double).
bool fits_denominator(double v, int num_trees) {
  const double scaled = v * num_trees;
  return scaled == std::round(scaled) && scaled >= 0 && scaled <= num_trees;
}

// The local swap-atomicity stress: hammer vote_batch from several threads
// while the main thread swaps between a 10-tree and a 7-tree model. Every
// batch must be served wholly by one generation: a reply mixing k/10 and
// k/7 denominators would mean a torn swap. (TSan runs this test too.)
TEST(SwapStress, LocalBatchesNeverMixGenerations) {
  core::ModelSlot slot;
  core::SwapBackend backend(&slot);
  const ml::CompiledForest ten(make_cluster_forest(10));
  const ml::CompiledForest seven(make_cluster_forest(7, /*seed=*/5));
  slot.install(ml::CompiledForest(ten));

  ml::DataSet rows(trace::FeatureVector::kDim);
  for (int i = 0; i < 6; ++i) {
    rows.add(cluster_features(action_of(i), i).v, 0);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> replies{0};
  std::atomic<int> violations{0};
  auto hammer = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<std::vector<double>> votes = backend.vote_batch(rows);
      replies.fetch_add(1, std::memory_order_relaxed);
      bool all_ten = true, all_seven = true;
      for (const std::vector<double>& row : votes) {
        for (const double v : row) {
          if (!fits_denominator(v, 10)) all_ten = false;
          if (!fits_denominator(v, 7)) all_seven = false;
        }
      }
      if (!all_ten && !all_seven) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(hammer);
  // Don't start swapping until the hammer threads are actually serving --
  // 200 installs can finish before a thread gets its first batch through.
  while (replies.load(std::memory_order_relaxed) < 4) {
    std::this_thread::yield();
  }
  for (int swap = 0; swap < 200; ++swap) {
    slot.install(
        ml::CompiledForest(swap % 2 == 0 ? seven : ten));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_GT(replies.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(slot.generation(), 201u);
}

// The same property through the trainer itself: forced swaps (the pinned-
// schedule ship path, remote push included) while serving threads hammer
// the trainer's backend.
TEST(SwapStress, TrainerForcedSwapsDuringConcurrentServing) {
  core::FleetTrainerConfig cfg = small_trainer_cfg();
  core::FleetTrainer trainer(cfg);
  trainer.seed_model(make_cluster_forest(15));
  trainer.attach_producers(1);
  std::int64_t tick = 0;
  offer_consistent(trainer, 200, &tick);
  ASSERT_GT(trainer.ingest_now(), 0u);

  std::atomic<int> pushes{0};
  trainer.set_remote_push([&](const ml::RandomForest& forest) {
    pushes.fetch_add(1, std::memory_order_relaxed);
    return forest.feature_importances().size() ==
           static_cast<std::size_t>(trace::FeatureVector::kDim);
  });

  ml::DataSet rows(trace::FeatureVector::kDim);
  for (int i = 0; i < 6; ++i) {
    rows.add(cluster_features(action_of(i), i).v, 0);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> replies{0};
  std::atomic<int> violations{0};
  auto hammer = [&] {
    std::uint64_t last_generation = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<std::vector<double>> votes =
          trainer.backend()->vote_batch(rows);
      replies.fetch_add(1, std::memory_order_relaxed);
      for (const std::vector<double>& row : votes) {
        for (const double v : row) {
          // Every candidate (and the seed) is a 15-tree forest: any other
          // denominator means a torn batch.
          if (!fits_denominator(v, 15)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      // Generations only move forward under swaps.
      const std::uint64_t g = trainer.generation();
      if (g < last_generation) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      last_generation = g;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(hammer);
  while (replies.load(std::memory_order_relaxed) < 4) {
    std::this_thread::yield();
  }
  for (int swap = 0; swap < 8; ++swap) {
    const core::FleetTrainer::FitOutcome outcome =
        trainer.train_once(/*force=*/true);
    ASSERT_TRUE(outcome.fitted) << outcome.reason;
    ASSERT_TRUE(outcome.shipped) << outcome.reason;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_GT(replies.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(trainer.swaps_shipped(), 8u);
  EXPECT_EQ(trainer.generation(), 9u);  // seed + 8 forced swaps
  EXPECT_EQ(pushes.load(), 8);
}

// ---------- drift detector ----------

TEST(DriftDetector, ScoreIsMaxOfMismatchAndDegraded) {
  core::DriftDetector drift({/*threshold=*/0.25, /*window_rows=*/100});
  EXPECT_EQ(drift.score(), 0.0);
  EXPECT_FALSE(drift.drifted());

  drift.observe(100, 10);
  EXPECT_NEAR(drift.mismatch_fraction(), 0.1, 1e-12);
  EXPECT_FALSE(drift.drifted());
  drift.feed_degraded_fraction(0.5);
  EXPECT_NEAR(drift.score(), 0.5, 1e-12);
  EXPECT_TRUE(drift.drifted());
  drift.feed_degraded_fraction(-3.0);  // clamped
  EXPECT_NEAR(drift.score(), 0.1, 1e-12);

  drift.reset();
  EXPECT_EQ(drift.score(), 0.0);

  // Sliding window: old clean chunks age out, so a fresh mismatch burst
  // dominates even after a long clean history.
  for (int i = 0; i < 20; ++i) drift.observe(50, 0);
  EXPECT_EQ(drift.mismatch_fraction(), 0.0);
  drift.observe(50, 50);
  EXPECT_GE(drift.mismatch_fraction(), 0.5);
  EXPECT_TRUE(drift.drifted());
  EXPECT_THROW(drift.observe(10, 11), std::invalid_argument);
}

// ---------- swap gates ----------

TEST(DriftGate, StationaryWorkloadShipsNothing) {
  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.seed_model(make_cluster_forest());
  trainer.attach_producers(1);

  std::int64_t tick = 0;
  offer_consistent(trainer, 400, &tick);
  EXPECT_GT(trainer.ingest_now(), 0u);
  EXPECT_GT(trainer.window_size(), 0u);
  EXPECT_GT(trainer.holdout_size(), 0u);

  const core::FleetTrainer::FitOutcome outcome = trainer.train_once();
  EXPECT_TRUE(outcome.fitted);
  EXPECT_FALSE(outcome.shipped);
  EXPECT_NE(outcome.reason.find("no drift"), std::string::npos)
      << outcome.reason;
  EXPECT_LT(outcome.drift_score, 0.25);
  EXPECT_EQ(trainer.swaps_shipped(), 0u);
  EXPECT_EQ(trainer.swaps_rejected(), 1u);
  EXPECT_EQ(trainer.generation(), 1u);  // still the seed
}

TEST(DriftGate, RegimeShiftShipsWithinBudget) {
#if LIBRA_OBS_ENABLED
  const std::uint64_t shipped_before = counter_value("trainer.swaps_shipped");
#endif
  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.seed_model(make_cluster_forest());
  trainer.attach_producers(1);

  // The regime shift: same features, rotated labels. The incumbent now
  // mismatches essentially every row (drift), and a candidate trained on
  // the new labels beats it on the holdout (accuracy gain).
  std::int64_t tick = 0;
  bool shipped = false;
  constexpr int kMaxFitRounds = 5;
  for (int round = 0; round < kMaxFitRounds && !shipped; ++round) {
    offer_rotated(trainer, 200, &tick);
    ASSERT_GT(trainer.ingest_now(), 0u);
    const core::FleetTrainer::FitOutcome outcome = trainer.train_once();
    ASSERT_TRUE(outcome.fitted) << outcome.reason;
    if (outcome.shipped) {
      shipped = true;
      EXPECT_GE(outcome.drift_score, 0.25);
      EXPECT_GE(outcome.candidate_acc,
                outcome.incumbent_acc + trainer.config().min_accuracy_gain);
      EXPECT_EQ(outcome.generation, 2u);
    }
  }
  EXPECT_TRUE(shipped) << "no swap within " << kMaxFitRounds << " fit rounds";
  EXPECT_EQ(trainer.swaps_shipped(), 1u);
  EXPECT_EQ(trainer.generation(), 2u);
  // A shipped swap resets the detector: the new incumbent starts clean.
  EXPECT_EQ(trainer.drift_score(), 0.0);
#if LIBRA_OBS_ENABLED
  EXPECT_EQ(counter_value("trainer.swaps_shipped"), shipped_before + 1);
#endif
}

TEST(DriftGate, CorruptedLabelCandidateRejectedByAccuracyGate) {
#if LIBRA_OBS_ENABLED
  const std::uint64_t rejected_before =
      counter_value("trainer.swaps_rejected");
#endif
  core::FleetTrainerConfig cfg = small_trainer_cfg();
  // A garbage-labeled candidate can land anywhere near chance; demand a
  // solid gain so the gate decision is not a coin flip.
  cfg.min_accuracy_gain = 0.2;
  core::FleetTrainer trainer(cfg);
  trainer.seed_model(make_cluster_forest());
  trainer.attach_producers(1);

  // Corrupted labels: cycled independently of the feature cluster, so no
  // classifier (incumbent or candidate) can track them -- but the incumbent
  // mismatch rate blows past the drift threshold, so only the accuracy
  // gate stands between the garbage candidate and the fleet.
  std::int64_t tick = 0;
  offer_rows(trainer, 600, &tick, [](trace::Action, int i) {
    return action_of(i / 3);
  });
  ASSERT_GT(trainer.ingest_now(), 0u);

  const core::FleetTrainer::FitOutcome outcome = trainer.train_once();
  EXPECT_TRUE(outcome.fitted);
  EXPECT_FALSE(outcome.shipped);
  EXPECT_GE(outcome.drift_score, 0.25);  // drift DID fire
  EXPECT_NE(outcome.reason.find("accuracy gate"), std::string::npos)
      << outcome.reason;
  EXPECT_EQ(trainer.swaps_shipped(), 0u);
  EXPECT_EQ(trainer.generation(), 1u);  // the accurate seed keeps serving
#if LIBRA_OBS_ENABLED
  EXPECT_EQ(counter_value("trainer.swaps_rejected"), rejected_before + 1);
#endif
}

// The faults:: garbage-PHY scenario at the row-stream boundary: non-finite
// features must be rejected at ingest, never reaching the window or the
// off-path fit.
TEST(DriftGate, GarbagePhyRowsRejectedAtIngest) {
#if LIBRA_OBS_ENABLED
  const std::uint64_t rejected_before = counter_value("trainer.rows_rejected");
#endif
  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.attach_producers(1);

  std::int64_t tick = 0;
  for (int i = 0; i < 10; ++i) {
    core::TrainRow row = make_row(tick++, 0, action_of(i), action_of(i), i);
    row.features.v[i % trace::FeatureVector::kDim] =
        i % 2 == 0 ? std::numeric_limits<double>::quiet_NaN()
                   : std::numeric_limits<double>::infinity();
    trainer.offer(0, std::move(row));
  }
  EXPECT_EQ(trainer.ingest_now(), 0u);
  EXPECT_EQ(trainer.window_size(), 0u);
  EXPECT_EQ(trainer.holdout_size(), 0u);
  EXPECT_EQ(trainer.rows_ingested(), 0u);

  // A mixed batch keeps only the finite rows.
  for (int i = 0; i < 10; ++i) {
    core::TrainRow good = make_row(tick++, 1, action_of(i), action_of(i), i);
    trainer.offer(0, std::move(good));
    core::TrainRow bad = make_row(tick++, 2, action_of(i), action_of(i), i);
    bad.features.v[0] = std::numeric_limits<double>::quiet_NaN();
    trainer.offer(0, std::move(bad));
  }
  EXPECT_EQ(trainer.ingest_now(), 10u);
  EXPECT_EQ(trainer.rows_ingested(), 10u);
#if LIBRA_OBS_ENABLED
  EXPECT_EQ(counter_value("trainer.rows_rejected"), rejected_before + 20);
#endif
}

TEST(DriftGate, InsufficientDataReportsReasonInsteadOfFitting) {
  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.seed_model(make_cluster_forest());
  trainer.attach_producers(1);

  // Empty window: no fit at all.
  const core::FleetTrainer::FitOutcome no_rows = trainer.train_once();
  EXPECT_FALSE(no_rows.fitted);
  EXPECT_NE(no_rows.reason.find("insufficient window rows"),
            std::string::npos);
  EXPECT_EQ(trainer.fits(), 0u);

  // Enough window, not enough holdout: fits but reports the gate.
  core::FleetTrainerConfig starved = small_trainer_cfg();
  starved.holdout_every = 1000;  // holdout fills far too slowly
  starved.min_holdout_rows = 64;
  core::FleetTrainer trainer2(starved);
  trainer2.seed_model(make_cluster_forest());
  trainer2.attach_producers(1);
  std::int64_t tick = 0;
  offer_consistent(trainer2, 100, &tick);
  ASSERT_GT(trainer2.ingest_now(), 0u);
  const core::FleetTrainer::FitOutcome starved_outcome = trainer2.train_once();
  EXPECT_TRUE(starved_outcome.fitted);
  EXPECT_FALSE(starved_outcome.shipped);
  EXPECT_NE(starved_outcome.reason.find("insufficient holdout rows"),
            std::string::npos);
}

TEST(FleetTrainer, OfferValidation) {
  core::FleetTrainer trainer(small_trainer_cfg());
  // No producers attached yet.
  EXPECT_THROW(
      trainer.offer(0, make_row(0, 0, trace::Action::kBA,
                                trace::Action::kBA, 0)),
      std::out_of_range);
  trainer.attach_producers(2);
  EXPECT_THROW(
      trainer.offer(2, make_row(0, 0, trace::Action::kBA,
                                trace::Action::kBA, 0)),
      std::out_of_range);
}

TEST(FleetTrainer, StartIncompatibleWithPinnedSchedule) {
  core::FleetTrainerConfig cfg = small_trainer_cfg();
  cfg.swap_at_ticks = {10, 20};
  core::FleetTrainer trainer(cfg);
  EXPECT_TRUE(trainer.pinned_schedule());
  EXPECT_THROW(trainer.start(), std::logic_error);
  EXPECT_FALSE(trainer.running());
}

#if LIBRA_OBS_ENABLED
// The degraded-decision fraction from the aggregator's ring series folds
// into the drift score (outages and ladder fallbacks are drift the label
// stream cannot see).
TEST(TrainerAggregator, DegradedFractionFoldsIntoDriftScore) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& degraded = reg.counter("controller.degraded_decisions");
  obs::Counter& frames = reg.counter("fleet.link_frames");
  obs::Aggregator agg;       // local_origin defaults to "controller"
  agg.rollup_now();          // absorb whatever this process accumulated
  degraded.inc(30);
  frames.inc(100);
  agg.rollup_now();

  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.consume_aggregator(agg);
  EXPECT_NEAR(trainer.drift_score(), 0.3, 1e-6);
  EXPECT_TRUE(trainer.drift_score() >= trainer.config().drift.threshold);
}
#endif  // LIBRA_OBS_ENABLED

// ---------- ModelPush loopback ----------

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/libra_trainer_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// The remote leg of the swap: every shipped candidate rides ModelPush to
// the daemon, whose generation counter advances push by push while
// concurrent classify batches stay internally consistent.
TEST(ModelPushLoopback, TrainerShipsToRemoteDaemonDuringServing) {
  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(make_cluster_forest(10));
  server.start();
  ASSERT_EQ(server.model_generation(), 1u);

  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.seed_model(make_cluster_forest());
  trainer.attach_producers(1);
  std::int64_t tick = 0;
  offer_consistent(trainer, 200, &tick);
  ASSERT_GT(trainer.ingest_now(), 0u);

  rpc::ClientConfig pcfg;
  pcfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient pusher(pcfg);
  trainer.set_remote_push([&](const ml::RandomForest& forest) {
    const std::optional<rpc::AckMsg> ack = pusher.push_model(forest);
    return ack.has_value() && ack->ok;
  });

  ml::DataSet rows(trace::FeatureVector::kDim);
  for (int i = 0; i < 4; ++i) {
    rows.add(cluster_features(action_of(i), i).v, 0);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> replies{0};
  std::atomic<int> violations{0};
  auto hammer = [&] {
    rpc::ClientConfig ccfg;
    ccfg.unix_socket = scfg.unix_socket;
    rpc::DecisionClient client(ccfg);
    while (!stop.load(std::memory_order_acquire)) {
      const std::optional<std::vector<std::vector<double>>> votes =
          client.classify(rows);
      if (!votes.has_value()) continue;  // transient
      replies.fetch_add(1, std::memory_order_relaxed);
      bool all_ten = true, all_fifteen = true;
      for (const std::vector<double>& row : *votes) {
        for (const double v : row) {
          // 10-tree initial model or a 15-tree shipped candidate -- never
          // a mix inside one reply.
          if (!fits_denominator(v, 10)) all_ten = false;
          if (!fits_denominator(v, 15)) all_fifteen = false;
        }
      }
      if (!all_ten && !all_fifteen) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread t1(hammer), t2(hammer);
  for (int swap = 0; swap < 5; ++swap) {
    const core::FleetTrainer::FitOutcome outcome =
        trainer.train_once(/*force=*/true);
    ASSERT_TRUE(outcome.shipped) << outcome.reason;
  }
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();

  EXPECT_GT(replies.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  // Initial set_forest + 5 pushed candidates.
  EXPECT_EQ(server.model_generation(), 6u);
  EXPECT_EQ(trainer.swaps_shipped(), 5u);
  server.stop();
}

// A dead daemon must not block the local swap: the push fails, the local
// generation still advances.
TEST(ModelPushLoopback, RemotePushFailureKeepsLocalSwap) {
  core::FleetTrainer trainer(small_trainer_cfg());
  trainer.seed_model(make_cluster_forest());
  trainer.attach_producers(1);
  std::int64_t tick = 0;
  offer_consistent(trainer, 100, &tick);
  ASSERT_GT(trainer.ingest_now(), 0u);

  rpc::ClientConfig dead;
  dead.unix_socket = unique_socket_path();  // never bound
  rpc::DecisionClient client(dead);
  trainer.set_remote_push([&](const ml::RandomForest& forest) {
    const std::optional<rpc::AckMsg> ack = client.push_model(forest);
    return ack.has_value() && ack->ok;
  });

  const core::FleetTrainer::FitOutcome outcome =
      trainer.train_once(/*force=*/true);
  EXPECT_TRUE(outcome.shipped) << outcome.reason;
  EXPECT_EQ(trainer.generation(), 2u);
}

// ---------- fleet determinism ----------

// A trained 3-class classifier over clearly separated synthetic cases
// (same corpus as fleet_test/rpc_test).
core::LibraClassifier make_fleet_classifier() {
  trace::Dataset ds;
  for (int i = 0; i < 40; ++i) {
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
    ba.new_at_init_pair.tof_ns = std::nullopt;
    ds.records.push_back(ba);
    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.init_best.tof_ns = 20.0;
    ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
    ra.new_at_init_pair.tof_ns = 45.0;
    ds.records.push_back(ra);
    trace::CaseRecord na = make_record(6, 6, 6);
    na.forced_na = true;
    na.init_best.snr_db = 22.0;
    na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
    ds.na_records.push_back(na);
  }
  core::LibraClassifierConfig cfg;
  cfg.forest.num_threads = 4;
  cfg.compile_inference = true;
  core::LibraClassifier c(cfg);
  util::Rng rng(1);
  c.train(ds, {}, rng);
  return c;
}

const core::LibraClassifier& fleet_classifier() {
  static const core::LibraClassifier clf = make_fleet_classifier();
  return clf;
}

const phy::ErrorModel& shared_error_model() {
  static const phy::McsTable table;
  static const phy::ErrorModel em(&table);
  return em;
}

// One station's whole world, self-contained so every grid point builds an
// identical fresh copy (same pattern as fleet_test).
struct Station {
  env::Environment env;
  array::PhasedArray ap;
  array::PhasedArray client;
  channel::Link link;
  std::unique_ptr<core::LinkController> controller;
  sim::SessionScript script;

  Station(const array::Codebook* codebook, geom::Vec2 client_pos,
          const core::LibraClassifier* clf)
      : env(env::make_lobby()),
        ap({2, 6}, 0.0, codebook),
        client(client_pos, 180.0, codebook),
        link(&env, &ap, &client) {
    if (clf != nullptr) {
      controller = std::make_unique<core::LibraController>(
          &link, &shared_error_model(), clf);
    } else {
      controller = std::make_unique<core::RaFirstController>(
          &link, &shared_error_model(), core::ControllerConfig{});
    }
  }
};

// A 4-station mixed fleet: three LiBRA stations (one blocked, one walking)
// plus one RA-first baseline, with an early finisher.
std::vector<std::unique_ptr<Station>> build_stations(
    const array::Codebook* codebook) {
  const core::LibraClassifier* clf = &fleet_classifier();
  std::vector<std::unique_ptr<Station>> stations;
  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{10, 6}, clf));
  stations[0]->script.duration_ms = 1500.0;
  stations[0]->script.rx_trajectory =
      sim::Trajectory::stationary({10, 6}, 180.0);
  stations[0]->script.blockage.push_back({400.0, 1100.0, {{6, 6}, 0.3, 35.0}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{12, 7}, clf));
  stations[1]->script.duration_ms = 1500.0;
  stations[1]->script.rx_trajectory =
      sim::Trajectory::walk({12, 7}, {18, 8}, 1500.0, geom::Vec2{2, 6});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{9, 5}, nullptr));
  stations[2]->script.duration_ms = 1500.0;
  stations[2]->script.rx_trajectory =
      sim::Trajectory::stationary({9, 5}, 180.0);
  stations[2]->script.interference.push_back(
      {300.0, 1200.0, {{10, 1}, 50.0, 0.5}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{11, 6}, clf));
  stations[3]->script.duration_ms = 600.0;  // early finisher
  stations[3]->script.rx_trajectory =
      sim::Trajectory::stationary({11, 6}, 180.0);
  return stations;
}

struct TrainedFleetRun {
  sim::FleetResult result;
  std::uint64_t rows_sampled = 0;
  std::uint64_t rows_dropped = 0;
  std::uint64_t generation = 0;
  std::uint64_t fits = 0;
};

TrainedFleetRun run_trained_fleet(const array::Codebook* codebook,
                                  const core::FleetTrainerConfig& trainer_cfg,
                                  int shards, int num_threads,
                                  bool serve_through_trainer) {
  auto stations = build_stations(codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  core::FleetTrainer trainer(trainer_cfg);
  trainer.seed_model(fleet_classifier().forest());
  sim::FleetConfig cfg;
  cfg.seed = 77;
  cfg.keep_frame_logs = true;
  cfg.shards = shards;
  cfg.num_threads = num_threads;
  cfg.trainer = &trainer;
  if (serve_through_trainer) cfg.backend = trainer.backend();
  TrainedFleetRun run;
  run.result = sim::run_fleet(members, cfg);
  run.rows_sampled = trainer.rows_sampled();
  run.rows_dropped = trainer.rows_dropped();
  run.generation = trainer.generation();
  run.fits = trainer.fits();
  return run;
}

sim::FleetResult run_plain_fleet(const array::Codebook* codebook, int shards,
                                 int num_threads) {
  auto stations = build_stations(codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = 77;
  cfg.keep_frame_logs = true;
  cfg.shards = shards;
  cfg.num_threads = num_threads;
  return sim::run_fleet(members, cfg);
}

// Full bit-identity check between two per-link result sets, frame logs
// included (every float compared with ==).
void expect_links_identical(const std::vector<sim::SessionResult>& a,
                            const std::vector<sim::SessionResult>& b,
                            const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frames, b[i].frames) << tag << " link " << i;
    EXPECT_EQ(a[i].bytes_mb, b[i].bytes_mb) << tag << " link " << i;
    EXPECT_EQ(a[i].avg_goodput_mbps, b[i].avg_goodput_mbps)
        << tag << " link " << i;
    EXPECT_EQ(a[i].adaptations_ba, b[i].adaptations_ba)
        << tag << " link " << i;
    EXPECT_EQ(a[i].adaptations_ra, b[i].adaptations_ra)
        << tag << " link " << i;
    EXPECT_EQ(a[i].outages, b[i].outages) << tag << " link " << i;
    EXPECT_EQ(a[i].total_outage_ms, b[i].total_outage_ms)
        << tag << " link " << i;
    ASSERT_EQ(a[i].frame_log.size(), b[i].frame_log.size())
        << tag << " link " << i;
    for (std::size_t f = 0; f < a[i].frame_log.size(); ++f) {
      const core::FrameReport& x = a[i].frame_log[f];
      const core::FrameReport& y = b[i].frame_log[f];
      ASSERT_EQ(x.t_ms, y.t_ms) << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.mcs, y.mcs) << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.goodput_mbps, y.goodput_mbps)
          << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.ack, y.ack) << tag << " link " << i << " frame " << f;
      ASSERT_EQ(x.action, y.action) << tag << " link " << i << " frame " << f;
    }
  }
}

// The headline replay contract: with a pinned swap schedule, the whole
// online-learning loop -- sampling, ingestion, candidate fits, swaps that
// CHANGE what the fleet serves -- replays bit-for-bit at any
// (shards, num_threads). Also proves the per-tick drain never drops a row.
TEST(PinnedReplay, ShardThreadGridBitIdentical) {
  const array::Codebook codebook;

  // Probe: a trainer-off run fixes the tick horizon the schedule pins to.
  const sim::FleetResult probe = run_plain_fleet(&codebook, 1, 1);
  ASSERT_GT(probe.ticks, 30);

  core::FleetTrainerConfig tcfg;
  tcfg.seed = 9;
  tcfg.sample_rate = 1.0;  // every inference decision feeds the stream
  tcfg.ring_capacity = 65536;
  tcfg.window_rows = 65536;
  tcfg.holdout_every = 64;  // keep nearly everything in the training window
  tcfg.holdout_rows = 512;
  tcfg.min_fit_rows = 8;
  tcfg.min_holdout_rows = 1;
  tcfg.forest.num_trees = 15;
  tcfg.swap_at_ticks = {probe.ticks / 3, (2 * probe.ticks) / 3};

  const TrainedFleetRun baseline =
      run_trained_fleet(&codebook, tcfg, 1, 1, /*serve_through_trainer=*/true);
  EXPECT_GT(baseline.rows_sampled, 0u);
  EXPECT_EQ(baseline.rows_dropped, 0u);
  EXPECT_GE(baseline.generation, 2u);  // at least one swap actually shipped
  EXPECT_GT(baseline.fits, 0u);
  EXPECT_EQ(baseline.result.trainer_rows_sampled,
            static_cast<std::int64_t>(baseline.rows_sampled));

  constexpr struct {
    int shards;
    int threads;
  } kGrid[] = {{3, 2}, {0, 4}, {4, 1}};
  for (const auto& g : kGrid) {
    const TrainedFleetRun run = run_trained_fleet(
        &codebook, tcfg, g.shards, g.threads, /*serve_through_trainer=*/true);
    const std::string tag = "shards=" + std::to_string(g.shards) +
                            " threads=" + std::to_string(g.threads);
    EXPECT_EQ(run.rows_sampled, baseline.rows_sampled) << tag;
    EXPECT_EQ(run.rows_dropped, 0u) << tag;
    EXPECT_EQ(run.generation, baseline.generation) << tag;
    EXPECT_EQ(run.fits, baseline.fits) << tag;
    EXPECT_EQ(run.result.ticks, baseline.result.ticks) << tag;
    expect_links_identical(baseline.result.links, run.result.links, tag);
  }
}

// An attached trainer whose gates never fire is bit-identical to no
// trainer at all -- even free-running (background ingest thread racing the
// shard workers) and even serving THROUGH the trainer's backend (the
// seeded slot serves the same compiled forest the classifier would).
TEST(PinnedReplay, NeverSwappingTrainerBitIdenticalToTrainerOff) {
  const array::Codebook codebook;
  const sim::FleetResult off = run_plain_fleet(&codebook, 3, 2);

  auto stations = build_stations(&codebook);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  core::FleetTrainerConfig tcfg;
  tcfg.seed = 9;
  tcfg.sample_rate = 0.5;
  tcfg.min_fit_rows = 8;
  tcfg.min_holdout_rows = 1;
  tcfg.fit_every_rows = 16;
  tcfg.train_period_ms = 2.0;      // ingest aggressively during the run
  tcfg.drift.threshold = 1.5;      // > 1: the drift gate can never open
  tcfg.forest.num_trees = 15;
  core::FleetTrainer trainer(tcfg);
  trainer.seed_model(fleet_classifier().forest());
  trainer.start();

  sim::FleetConfig cfg;
  cfg.seed = 77;
  cfg.keep_frame_logs = true;
  cfg.shards = 3;
  cfg.num_threads = 2;
  cfg.trainer = &trainer;
  cfg.backend = trainer.backend();
  const sim::FleetResult on = sim::run_fleet(members, cfg);
  trainer.stop();

  EXPECT_EQ(trainer.swaps_shipped(), 0u);
  EXPECT_EQ(trainer.generation(), 1u);  // still the seed
  EXPECT_GT(trainer.rows_sampled(), 0u);
  expect_links_identical(off.links, on.links, "gates-never-fire");
}

}  // namespace
}  // namespace libra
