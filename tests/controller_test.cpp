#include <gtest/gtest.h>

#include <memory>

#include "core/controller.h"
#include "env/registry.h"
#include "sim/session.h"
#include "test_helpers.h"

namespace libra {
namespace {

using libra::testing::make_record;

// A trained classifier over clearly separated synthetic cases.
const core::LibraClassifier& test_classifier() {
  static const core::LibraClassifier clf = [] {
    trace::Dataset ds;
    for (int i = 0; i < 40; ++i) {
      trace::CaseRecord ba = make_record(4, -1, 4);
      ba.init_best.snr_db = 20.0;
      ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
      ba.new_at_init_pair.tof_ns = std::nullopt;
      ds.records.push_back(ba);
      trace::CaseRecord ra = make_record(8, 5, 5);
      ra.init_best.snr_db = 26.0;
      ra.init_best.tof_ns = 20.0;
      ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
      ra.new_at_init_pair.tof_ns = 45.0;
      ds.records.push_back(ra);
      trace::CaseRecord na = make_record(6, 6, 6);
      na.forced_na = true;
      na.init_best.snr_db = 22.0;
      na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
      ds.na_records.push_back(na);
    }
    core::LibraClassifier c;
    util::Rng rng(1);
    c.train(ds, {}, rng);
    return c;
  }();
  return clf;
}

struct LiveFixture : ::testing::Test {
  LiveFixture()
      : em(&table),
        lobby(env::make_lobby()),
        tx({2, 6}, 0.0, &codebook),
        rx({10, 6}, 180.0, &codebook),
        link(&lobby, &tx, &rx) {}

  phy::McsTable table;
  phy::ErrorModel em;
  array::Codebook codebook;
  env::Environment lobby;
  array::PhasedArray tx;
  array::PhasedArray rx;
  channel::Link link;
};

// ---------- Trajectory ----------

TEST(Trajectory, StationaryHoldsPose) {
  const auto t = sim::Trajectory::stationary({3, 4}, 45.0);
  const auto w = t.at(5000.0);
  EXPECT_DOUBLE_EQ(w.position.x, 3.0);
  EXPECT_DOUBLE_EQ(w.boresight_deg, 45.0);
}

TEST(Trajectory, WalkInterpolatesLinearly) {
  const auto t = sim::Trajectory::walk({0, 0}, {10, 0}, 1000.0);
  EXPECT_DOUBLE_EQ(t.at(0.0).position.x, 0.0);
  EXPECT_DOUBLE_EQ(t.at(500.0).position.x, 5.0);
  EXPECT_DOUBLE_EQ(t.at(1000.0).position.x, 10.0);
  EXPECT_DOUBLE_EQ(t.at(2000.0).position.x, 10.0);  // clamped
}

TEST(Trajectory, WalkFacingFixedTarget) {
  // Walking away while facing the origin: orientation points back.
  const auto t = sim::Trajectory::walk({5, 0}, {15, 0}, 1000.0,
                                       geom::Vec2{0, 0});
  EXPECT_NEAR(t.at(0.0).boresight_deg, 180.0, 1e-9);
  EXPECT_NEAR(t.at(1000.0).boresight_deg, 180.0, 1e-9);
}

TEST(Trajectory, RotateSweepsOrientation) {
  const auto t = sim::Trajectory::rotate({1, 1}, 0.0, 90.0, 1000.0);
  EXPECT_NEAR(t.at(500.0).boresight_deg, 45.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.at(500.0).position.x, 1.0);
}

TEST(Trajectory, UnsortedWaypointsThrow) {
  EXPECT_THROW(sim::Trajectory({{100.0, {0, 0}, 0.0}, {50.0, {1, 1}, 0.0}}),
               std::invalid_argument);
}

// ---------- LinkController basics ----------

TEST_F(LiveFixture, StartTrainsBeamsAndPicksWorkingMcs) {
  core::RaFirstController ctrl(&link, &em, {});
  util::Rng rng(1);
  ctrl.start(rng);
  // Straight-ahead geometry: near-center beams, a working MCS.
  EXPECT_NEAR(ctrl.tx_beam(), 12, 1);
  EXPECT_NEAR(ctrl.rx_beam(), 12, 1);
  EXPECT_GE(ctrl.mcs(), 0);
  const double snr = link.snr_db(ctrl.tx_beam(), ctrl.rx_beam());
  EXPECT_GE(em.expected_throughput_mbps(ctrl.mcs(), snr), 150.0);
}

TEST_F(LiveFixture, SteadyStateDelivers) {
  core::RaFirstController ctrl(&link, &em, {});
  util::Rng rng(2);
  ctrl.start(rng);
  double goodput = 0.0;
  for (int i = 0; i < 100; ++i) goodput += ctrl.step(rng).goodput_mbps;
  EXPECT_GT(goodput / 100, 500.0);
}

TEST_F(LiveFixture, TimeAdvancesByFat) {
  core::ControllerConfig cfg;
  cfg.fat_ms = 2.0;
  core::RaFirstController ctrl(&link, &em, cfg);
  util::Rng rng(3);
  ctrl.start(rng);
  const double t0 = ctrl.time_ms();
  ctrl.step(rng);
  EXPECT_NEAR(ctrl.time_ms() - t0, 2.0, 1e-9);
}

TEST_F(LiveFixture, BlockageMakesRaFirstWalkDown) {
  core::RaFirstController ctrl(&link, &em, {});
  util::Rng rng(4);
  ctrl.start(rng);
  for (int i = 0; i < 20; ++i) ctrl.step(rng);
  const phy::McsIndex before = ctrl.mcs();
  // Partial blockage: initial MCS breaks but a lower one still works.
  lobby.add_blocker({{6, 6}, 0.25, 12.0});
  bool triggered_ra = false;
  for (int i = 0; i < 60; ++i) {
    triggered_ra |= ctrl.step(rng).action == trace::Action::kRA;
  }
  EXPECT_TRUE(triggered_ra);
  EXPECT_LT(ctrl.mcs(), before);
}

TEST_F(LiveFixture, HardBlockageMakesBaFirstSwitchBeams) {
  core::BaFirstController ctrl(&link, &em, {});
  util::Rng rng(5);
  ctrl.start(rng);
  for (int i = 0; i < 10; ++i) ctrl.step(rng);
  const auto before_tx = ctrl.tx_beam();
  lobby.add_blocker({{6, 6}, 0.3, 35.0});
  bool triggered_ba = false;
  for (int i = 0; i < 60; ++i) {
    triggered_ba |= ctrl.step(rng).action == trace::Action::kBA;
  }
  EXPECT_TRUE(triggered_ba);
  // The LOS is gone: the controller must have re-trained onto another pair
  // (or at minimum changed something and recovered some goodput).
  double goodput = 0.0;
  for (int i = 0; i < 50; ++i) goodput += ctrl.step(rng).goodput_mbps;
  EXPECT_GT(goodput / 50, 150.0);
  (void)before_tx;
}

TEST_F(LiveFixture, RaFirstFallsBackToBaWhenNothingWorks) {
  core::RaFirstController ctrl(&link, &em, {});
  util::Rng rng(6);
  ctrl.start(rng);
  for (int i = 0; i < 10; ++i) ctrl.step(rng);
  // Full blockage: no MCS works on the old pair; Algorithm 1's RA walk must
  // fall back to BA and recover via a reflection.
  lobby.add_blocker({{6, 6}, 0.3, 40.0});
  double late_goodput = 0.0;
  for (int i = 0; i < 300; ++i) {
    const auto r = ctrl.step(rng);
    if (i >= 250) late_goodput += r.goodput_mbps;
  }
  EXPECT_GT(late_goodput / 50, 150.0);
}

TEST_F(LiveFixture, UpProbingRecoversAfterBlockerLeaves) {
  core::RaFirstController ctrl(&link, &em, {});
  util::Rng rng(7);
  ctrl.start(rng);
  for (int i = 0; i < 10; ++i) ctrl.step(rng);
  const phy::McsIndex healthy = ctrl.mcs();
  lobby.add_blocker({{6, 6}, 0.25, 12.0});
  for (int i = 0; i < 80; ++i) ctrl.step(rng);
  EXPECT_LT(ctrl.mcs(), healthy);
  lobby.clear_blockers();
  for (int i = 0; i < 400; ++i) ctrl.step(rng);
  EXPECT_GE(ctrl.mcs(), healthy - 1);
}

TEST_F(LiveFixture, ConfigRejectsNonPositiveFat) {
  core::ControllerConfig cfg;
  cfg.fat_ms = 0.0;
  EXPECT_THROW(core::RaFirstController(&link, &em, cfg),
               std::invalid_argument);
  cfg.fat_ms = -1.0;
  EXPECT_THROW(core::RaFirstController(&link, &em, cfg),
               std::invalid_argument);
}

// The compatibility contract of the observe/decide/apply split: driving the
// phases by hand is bit-identical to step(), frame for frame, through
// steady state, a blockage, the RA walk and the fallback BA.
TEST(ObserveDecideApply, PhasesMatchStepBitForBit) {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  array::Codebook codebook;

  env::Environment env_a = env::make_lobby();
  env::Environment env_b = env::make_lobby();
  array::PhasedArray tx_a({2, 6}, 0.0, &codebook), tx_b({2, 6}, 0.0, &codebook);
  array::PhasedArray rx_a({10, 6}, 180.0, &codebook),
      rx_b({10, 6}, 180.0, &codebook);
  channel::Link link_a(&env_a, &tx_a, &rx_a);
  channel::Link link_b(&env_b, &tx_b, &rx_b);
  core::LibraController stepped(&link_a, &em, &test_classifier(), {});
  core::LibraController phased(&link_b, &em, &test_classifier(), {});

  util::Rng rng_a(21), rng_b(21);
  stepped.start(rng_a);
  phased.start(rng_b);
  for (int i = 0; i < 150; ++i) {
    if (i == 40) {
      // Same impairment in both worlds, mid-run: exercises the decision,
      // the walk and the recovery paths of both drivers.
      env_a.add_blocker({{6, 6}, 0.3, 35.0});
      env_b.add_blocker({{6, 6}, 0.3, 35.0});
    }
    const core::FrameReport a = stepped.step(rng_a);
    core::DecisionRequest request = phased.observe(rng_b);
    const trace::Action verdict = phased.decide(request, rng_b);
    phased.apply(verdict, request, rng_b);
    const core::FrameReport& b = request.report;

    ASSERT_EQ(a.t_ms, b.t_ms) << "frame " << i;
    ASSERT_EQ(a.duration_ms, b.duration_ms) << "frame " << i;
    ASSERT_EQ(a.tx_beam, b.tx_beam) << "frame " << i;
    ASSERT_EQ(a.rx_beam, b.rx_beam) << "frame " << i;
    ASSERT_EQ(a.mcs, b.mcs) << "frame " << i;
    ASSERT_EQ(a.goodput_mbps, b.goodput_mbps) << "frame " << i;
    ASSERT_EQ(a.ack, b.ack) << "frame " << i;
    ASSERT_EQ(a.action, b.action) << "frame " << i;
  }
  EXPECT_EQ(stepped.mcs(), phased.mcs());
  EXPECT_EQ(stepped.tx_beam(), phased.tx_beam());
  EXPECT_EQ(stepped.time_ms(), phased.time_ms());
}

TEST_F(LiveFixture, WalkFramesCarryNoDecision) {
  core::RaFirstController ctrl(&link, &em, {});
  util::Rng rng(22);
  ctrl.start(rng);
  // Full blockage forces the RA walk; while walking, observe() must mark
  // the frame as not decision-due and apply() must leave the report alone.
  lobby.add_blocker({{6, 6}, 0.3, 40.0});
  bool saw_walk_frame = false;
  for (int i = 0; i < 40; ++i) {
    core::DecisionRequest request = ctrl.observe(rng);
    const trace::Action verdict = ctrl.decide(request, rng);
    if (!request.decision_due) {
      saw_walk_frame = true;
      EXPECT_FALSE(request.needs_inference());
      EXPECT_EQ(verdict, trace::Action::kNA);
    }
    ctrl.apply(verdict, request, rng);
  }
  EXPECT_TRUE(saw_walk_frame);
}

TEST_F(LiveFixture, LibraControllerNeedsClassifier) {
  EXPECT_THROW(core::LibraController(&link, &em, nullptr),
               std::invalid_argument);
}

TEST_F(LiveFixture, LibraControllerRunsAndAdapts) {
  core::LibraController ctrl(&link, &em, &test_classifier(), {});
  util::Rng rng(8);
  ctrl.start(rng);
  for (int i = 0; i < 20; ++i) ctrl.step(rng);
  lobby.add_blocker({{6, 6}, 0.3, 35.0});
  int adaptations = 0;
  for (int i = 0; i < 100; ++i) {
    adaptations += ctrl.step(rng).action != trace::Action::kNA;
  }
  EXPECT_GT(adaptations, 0);
  double goodput = 0.0;
  for (int i = 0; i < 50; ++i) goodput += ctrl.step(rng).goodput_mbps;
  EXPECT_GT(goodput / 50, 150.0);
}

// ---------- sessions ----------

TEST_F(LiveFixture, StaticSessionStaysUp) {
  core::RaFirstController ctrl(&link, &em, {});
  sim::SessionScript script;
  script.duration_ms = 3000.0;
  script.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
  util::Rng rng(9);
  const auto r = sim::run_session(lobby, link, ctrl, script, rng);
  EXPECT_GT(r.avg_goodput_mbps, 500.0);
  EXPECT_EQ(r.outages, 0);
  EXPECT_GE(r.frames, 290);
}

TEST_F(LiveFixture, BlockageEpisodeCausesOneOutageWindow) {
  core::BaFirstController ctrl(&link, &em, {});
  sim::SessionScript script;
  script.duration_ms = 5000.0;
  script.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
  script.blockage.push_back({2000.0, 3000.0, {{6, 6}, 0.3, 35.0}});
  util::Rng rng(10);
  const auto r = sim::run_session(lobby, link, ctrl, script, rng);
  EXPECT_GE(r.outages, 1);
  EXPECT_GT(r.adaptations_ba, 0);
  // The outage must be shorter than the blockage: adaptation worked.
  EXPECT_LT(r.total_outage_ms, 1000.0);
}

TEST_F(LiveFixture, InterferenceEpisodeAppliesAndClears) {
  core::RaFirstController ctrl(&link, &em, {});
  sim::SessionScript script;
  script.duration_ms = 3000.0;
  script.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
  script.interference.push_back({1000.0, 2000.0, {{10, 1}, 50.0, 0.5}});
  util::Rng rng(11);
  const auto r =
      sim::run_session(lobby, link, ctrl, script, rng, /*log=*/true);
  ASSERT_FALSE(r.frame_log.empty());
  // Goodput during the burst window is depressed relative to before.
  double before = 0.0, during = 0.0;
  int nb = 0, nd = 0;
  for (const auto& f : r.frame_log) {
    if (f.t_ms < 900) {
      before += f.goodput_mbps;
      ++nb;
    } else if (f.t_ms >= 1100 && f.t_ms < 1900) {
      during += f.goodput_mbps;
      ++nd;
    }
  }
  ASSERT_GT(nb, 0);
  ASSERT_GT(nd, 0);
  EXPECT_LT(during / nd, 0.85 * (before / nb));
}

TEST_F(LiveFixture, WalkSessionKeepsLinkAlive) {
  core::LibraController ctrl(&link, &em, &test_classifier(), {});
  sim::SessionScript script;
  script.duration_ms = 8000.0;
  script.rx_trajectory = sim::Trajectory::walk(
      {6, 6}, {20, 6}, 8000.0, geom::Vec2{2, 6});
  util::Rng rng(12);
  const auto r = sim::run_session(lobby, link, ctrl, script, rng);
  EXPECT_GT(r.avg_goodput_mbps, 300.0);
  EXPECT_LT(r.total_outage_ms, 1500.0);
}

TEST_F(LiveFixture, SessionRejectsNonPositiveDuration) {
  core::RaFirstController ctrl(&link, &em, {});
  sim::SessionScript script;
  script.duration_ms = 0.0;
  util::Rng rng(14);
  EXPECT_THROW(sim::run_session(lobby, link, ctrl, script, rng),
               std::invalid_argument);
  script.duration_ms = -100.0;
  EXPECT_THROW(sim::run_session(lobby, link, ctrl, script, rng),
               std::invalid_argument);
}

TEST_F(LiveFixture, SessionFrameLogOnlyWhenRequested) {
  core::RaFirstController ctrl(&link, &em, {});
  sim::SessionScript script;
  script.duration_ms = 500.0;
  script.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
  util::Rng rng(13);
  const auto quiet = sim::run_session(lobby, link, ctrl, script, rng, false);
  EXPECT_TRUE(quiet.frame_log.empty());
}

}  // namespace
}  // namespace libra
