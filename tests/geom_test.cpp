#include <gtest/gtest.h>

#include <cmath>

#include "geom/geometry.h"

namespace libra::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_DOUBLE_EQ((a + b).x, 4);
  EXPECT_DOUBLE_EQ((a + b).y, 1);
  EXPECT_DOUBLE_EQ((a - b).x, -2);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
}

TEST(Vec2, NormAndNormalized) {
  const Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
}

TEST(Vec2, NormalizedZeroIsZero) {
  const Vec2 z{};
  EXPECT_DOUBLE_EQ(z.normalized().x, 0.0);
  EXPECT_DOUBLE_EQ(z.normalized().y, 0.0);
}

TEST(Vec2, AngleDeg) {
  EXPECT_NEAR((Vec2{1, 0}).angle_deg(), 0.0, 1e-12);
  EXPECT_NEAR((Vec2{0, 1}).angle_deg(), 90.0, 1e-12);
  EXPECT_NEAR((Vec2{-1, 0}).angle_deg(), 180.0, 1e-12);
  EXPECT_NEAR((Vec2{0, -1}).angle_deg(), -90.0, 1e-12);
  EXPECT_NEAR((Vec2{1, 1}).angle_deg(), 45.0, 1e-12);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

class WrapAngle : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WrapAngle, WrapsIntoRange) {
  const auto [in, expected] = GetParam();
  EXPECT_NEAR(wrap_angle_deg(in), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WrapAngle,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{180.0, 180.0},
                      std::pair{-180.0, 180.0}, std::pair{190.0, -170.0},
                      std::pair{-190.0, 170.0}, std::pair{360.0, 0.0},
                      std::pair{720.0 + 30.0, 30.0},
                      std::pair{-720.0 - 30.0, -30.0}));

TEST(Segment, LengthDirectionNormal) {
  const Segment s{{0, 0}, {0, 2}};
  EXPECT_DOUBLE_EQ(s.length(), 2.0);
  EXPECT_NEAR(s.direction().y, 1.0, 1e-12);
  // Normal is the left-hand normal of a->b.
  EXPECT_NEAR(s.normal().x, -1.0, 1e-12);
}

TEST(Intersect, CrossingSegments) {
  const auto p = intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Intersect, NonCrossing) {
  EXPECT_FALSE(intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
}

TEST(Intersect, ParallelSegments) {
  EXPECT_FALSE(intersect({{0, 0}, {1, 1}}, {{0, 1}, {1, 2}}).has_value());
}

TEST(Intersect, TouchingAtEndpointCounts) {
  // intersect() is inclusive of endpoints (used to find reflection points).
  const auto p = intersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-9);
}

TEST(SegmentsCross, StrictInteriorOnly) {
  // Proper crossing.
  EXPECT_TRUE(segments_cross({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  // Shared endpoint does NOT count (a reflected leg leaving a wall).
  EXPECT_FALSE(segments_cross({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
  // One endpoint lying on the other's interior does not count either.
  EXPECT_FALSE(segments_cross({{0, 0}, {1, 0}}, {{1, 0}, {1, 1}}));
  // Disjoint.
  EXPECT_FALSE(segments_cross({{0, 0}, {1, 0}}, {{3, 3}, {4, 4}}));
}

TEST(Mirror, AcrossHorizontalLine) {
  const Segment wall{{0, 1}, {10, 1}};
  const Vec2 m = mirror({3, 4}, wall);
  EXPECT_NEAR(m.x, 3.0, 1e-12);
  EXPECT_NEAR(m.y, -2.0, 1e-12);
}

TEST(Mirror, AcrossDiagonalLine) {
  const Segment wall{{0, 0}, {1, 1}};  // y = x
  const Vec2 m = mirror({2, 0}, wall);
  EXPECT_NEAR(m.x, 0.0, 1e-12);
  EXPECT_NEAR(m.y, 2.0, 1e-12);
}

TEST(Mirror, PointOnLineIsFixed) {
  const Segment wall{{0, 0}, {5, 0}};
  const Vec2 m = mirror({2, 0}, wall);
  EXPECT_NEAR(m.x, 2.0, 1e-12);
  EXPECT_NEAR(m.y, 0.0, 1e-12);
}

TEST(Mirror, IsInvolution) {
  const Segment wall{{1, -2}, {4, 7}};
  const Vec2 p{3.3, 0.7};
  const Vec2 twice = mirror(mirror(p, wall), wall);
  EXPECT_NEAR(twice.x, p.x, 1e-12);
  EXPECT_NEAR(twice.y, p.y, 1e-12);
}

TEST(PointSegmentDistance, PerpendicularFoot) {
  EXPECT_DOUBLE_EQ(point_segment_distance({1, 1}, {{0, 0}, {2, 0}}), 1.0);
}

TEST(PointSegmentDistance, BeyondEndpointsUsesEndpoint) {
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 4}, {{0, 0}, {2, 0}}), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-3, 4}, {{0, 0}, {2, 0}}), 5.0);
}

TEST(PointSegmentDistance, DegenerateSegment) {
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {{0, 0}, {0, 0}}), 5.0);
}

// Image-method identity: the unfolded path through the mirror image has the
// same total length as the reflected path.
TEST(Mirror, ImageMethodPreservesPathLength) {
  const Segment wall{{0, 5}, {10, 5}};
  const Vec2 tx{1, 1}, rx{7, 2};
  const Vec2 image = mirror(tx, wall);
  const auto hit = intersect({image, rx}, wall);
  ASSERT_TRUE(hit.has_value());
  const double reflected = distance(tx, *hit) + distance(*hit, rx);
  EXPECT_NEAR(reflected, distance(image, rx), 1e-9);
  // Specular law: the incoming and outgoing rays make equal angles with
  // the (horizontal) wall, so their direction angles have equal magnitude.
  const double in_angle = std::abs((*hit - tx).angle_deg());
  const double out_angle = std::abs((rx - *hit).angle_deg());
  EXPECT_NEAR(in_angle, out_angle, 1e-6);
}

}  // namespace
}  // namespace libra::geom
